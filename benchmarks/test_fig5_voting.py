"""Fig. 5 + §IV-C2: per-LLM accuracy and majority voting.

Paper reference: average accuracies ChatGPT 0.84, Gemini 0.88,
Claude 0.86, Grok 0.84; majority voting over the top three (Gemini,
Claude, Grok) reaches 0.885 average, with single-lane road stuck at
0.682 because all models over-call "single-lane" on any road view.
"""

from conftest import publish
from repro.llm import DISPLAY_NAMES, PAPER_MODEL_ACCURACY


def test_fig5_voting(suite, benchmark, results_dir):
    result = benchmark.pedantic(suite.run_fig5, rounds=1, iterations=1)
    publish(result, results_dir)

    # Per-model averages land within a few points of the paper.
    for model_id, paper_accuracy in PAPER_MODEL_ACCURACY.items():
        row = result.row_by("model", DISPLAY_NAMES[model_id])
        assert abs(row["average"] - paper_accuracy) < 0.06, model_id

    vote = result.row_by("model", "Majority vote (top 3)")
    gemini = result.row_by("model", "Gemini 1.5 Pro")
    grok = result.row_by("model", "Grok 2")
    # Voting reaches the high-80s and beats the weaker members.
    assert vote["average"] > 0.84
    assert vote["average"] >= grok["average"]
    # The paper's signature failure: single-lane road is by far the
    # worst voted class (68% in the paper).
    class_accuracies = {
        key: vote[key] for key in ("SL", "SW", "SR", "MR", "PL", "AP")
    }
    assert min(class_accuracies, key=class_accuracies.get) == "SR"
    assert vote["SR"] < 0.78
