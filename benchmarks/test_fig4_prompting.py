"""Fig. 4: parallel vs sequential prompting.

Paper reference (average recall): Gemini 0.92 parallel vs 0.80
sequential; ChatGPT 0.83 parallel vs 0.79 sequential — simple parallel
questions beat complex run-on constructions, with the larger gap on
Gemini.

Note: our simulators are calibrated to the per-class Appendix tables
(Table III gives ChatGPT an average recall of 0.91), so ChatGPT's
absolute parallel recall lands near 0.90 rather than Fig. 4's 0.83;
the parallel-vs-sequential *gap* follows Fig. 4's ratios.
"""

from conftest import publish


def test_fig4_prompting(suite, benchmark, results_dir):
    result = benchmark.pedantic(suite.run_fig4, rounds=1, iterations=1)
    publish(result, results_dir)

    gemini = result.row_by("model", "Gemini 1.5 Pro")
    chatgpt = result.row_by("model", "ChatGPT 4o mini")
    # Shape: parallel beats sequential for both models.
    assert gemini["parallel"] > gemini["sequential"] + 0.05
    assert chatgpt["parallel"] > chatgpt["sequential"]
    # The gap is larger for Gemini, as in the paper.
    gemini_gap = gemini["parallel"] - gemini["sequential"]
    chatgpt_gap = chatgpt["parallel"] - chatgpt["sequential"]
    assert gemini_gap > chatgpt_gap
