"""§IV-C4: temperature and top-p sweeps on Gemini 1.5 Pro.

Paper reference: F1 0.78 / 0.81 / 0.79 at temperature 0.1 / 1.0 / 1.5
and 0.79 / 0.79 / 0.81 at top-p 0.5 / 0.75 / 0.95 — i.e. sampling
parameters "mainly influence output variety rather than task
performance".
"""

from conftest import publish


def test_param_tuning(suite, benchmark, results_dir):
    result = benchmark.pedantic(suite.run_param, rounds=1, iterations=1)
    publish(result, results_dir)

    temperature_f1 = {
        row["value"]: row["f1"]
        for row in result.rows
        if row["parameter"] == "temperature"
    }
    top_p_f1 = {
        row["value"]: row["f1"]
        for row in result.rows
        if row["parameter"] == "top_p"
    }
    # Shape: flat within a few F1 points across both sweeps.
    assert max(temperature_f1.values()) - min(temperature_f1.values()) < 0.05
    assert max(top_p_f1.values()) - min(top_p_f1.values()) < 0.05
    # Everything stays at the working level of the default setting.
    for f1 in list(temperature_f1.values()) + list(top_p_f1.values()):
        assert f1 > 0.70
