"""Ablation benches for the design decisions DESIGN.md §4 calls out.

Each ablation retrains the detector with one design element removed,
on a reduced-but-meaningful scale (independent of the suite's shared
inputs, so this file can run standalone):

* **occupancy-aware target assignment** (vs. bbox-footprint): the fix
  for diagonal/skeletal objects (sidewalk strips, poles, wires);
* **neighborhood-context features** (vs. local-only): the "neck" that
  separates streetlight poles from tree trunks;
* **feature pre-smoothing** (vs. raw pixels): the noise-robustness
  mechanism behind Fig. 3.
"""

import numpy as np
import pytest
from conftest import publish
from repro.core.indicators import Indicator
from repro.detect import (
    ModelConfig,
    TrainConfig,
    build_training_tensors,
    evaluate_detector,
    train_detector,
)
from repro.experiments.results import ExperimentResult
from repro.gsv import build_survey_dataset
from repro.scene.noise import add_gaussian_noise


@pytest.fixture(scope="module")
def ablation_data():
    # Deliberately compact: six retrains live in this file; at 320 px
    # and 240 images every ablated effect is still large and the whole
    # file runs in minutes.
    dataset = build_survey_dataset(n_images=240, size=320, seed=5)
    return dataset.split(seed=1)


def _train(splits, model_config, use_occupancy=True):
    tensors = build_training_tensors(
        splits.train,
        model_config.grid,
        use_occupancy=use_occupancy,
        feature_config=model_config.feature_config,
    )
    return train_detector(
        splits.train,
        model_config=model_config,
        train_config=TrainConfig(epochs=12, seed=0),
        precomputed=tensors,
    ).model


def test_ablation_occupancy_assignment(ablation_data, benchmark, results_dir):
    splits = ablation_data

    def run():
        full = _train(splits, ModelConfig(), use_occupancy=True)
        bbox_only = _train(splits, ModelConfig(), use_occupancy=False)
        return (
            evaluate_detector(full, splits.test),
            evaluate_detector(bbox_only, splits.test),
        )

    with_occ, without_occ = benchmark.pedantic(run, rounds=1, iterations=1)

    result = ExperimentResult(
        experiment_id="Abl. 1",
        title="Occupancy-aware vs bbox-footprint target assignment (F1)",
        columns=["label", "occupancy", "bbox_only"],
    )
    for indicator in (
        Indicator.SIDEWALK,
        Indicator.STREETLIGHT,
        Indicator.POWERLINE,
    ):
        result.add_row(
            label=indicator.display_name,
            occupancy=with_occ.per_class[indicator].f1,
            bbox_only=without_occ.per_class[indicator].f1,
        )
    result.add_row(
        label="Average (all classes)",
        occupancy=with_occ.mean_f1,
        bbox_only=without_occ.mean_f1,
    )
    publish(result, results_dir)

    # The design claim: occupancy assignment rescues the diagonal
    # sidewalk strip, and never hurts on average.
    assert (
        with_occ.per_class[Indicator.SIDEWALK].f1
        > without_occ.per_class[Indicator.SIDEWALK].f1 + 0.05
    )
    assert with_occ.mean_f1 > without_occ.mean_f1 - 0.02


def test_ablation_context_features(ablation_data, benchmark, results_dir):
    splits = ablation_data

    def run():
        with_context = _train(splits, ModelConfig(context_features=True))
        without_context = _train(splits, ModelConfig(context_features=False))
        return (
            evaluate_detector(with_context, splits.test),
            evaluate_detector(without_context, splits.test),
        )

    with_ctx, without_ctx = benchmark.pedantic(run, rounds=1, iterations=1)

    result = ExperimentResult(
        experiment_id="Abl. 2",
        title="3x3 neighborhood-context features vs local-only (F1)",
        columns=["label", "context", "local_only"],
    )
    for indicator in (
        Indicator.STREETLIGHT,
        Indicator.SINGLE_LANE_ROAD,
        Indicator.SIDEWALK,
    ):
        result.add_row(
            label=indicator.display_name,
            context=with_ctx.per_class[indicator].f1,
            local_only=without_ctx.per_class[indicator].f1,
        )
    result.add_row(
        label="Average (all classes)",
        context=with_ctx.mean_f1,
        local_only=without_ctx.mean_f1,
    )
    publish(result, results_dir)

    # Context features must not hurt on average (they exist to kill
    # pole/trunk confusions; the gain concentrates on hard classes).
    assert with_ctx.mean_f1 >= without_ctx.mean_f1 - 0.02


def test_ablation_feature_smoothing(ablation_data, benchmark, results_dir):
    splits = ablation_data

    def run():
        smooth = _train(splits, ModelConfig(smooth_features=True))
        sharp = _train(splits, ModelConfig(smooth_features=False))
        rng_a = np.random.default_rng(42)
        rng_b = np.random.default_rng(42)
        noisy_smooth = evaluate_detector(
            smooth,
            splits.test,
            image_transform=lambda px: add_gaussian_noise(px, 20, rng_a),
        )
        noisy_sharp = evaluate_detector(
            sharp,
            splits.test,
            image_transform=lambda px: add_gaussian_noise(px, 20, rng_b),
        )
        return (
            evaluate_detector(smooth, splits.test),
            noisy_smooth,
            evaluate_detector(sharp, splits.test),
            noisy_sharp,
        )

    clean_smooth, noisy_smooth, clean_sharp, noisy_sharp = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )

    result = ExperimentResult(
        experiment_id="Abl. 3",
        title="Feature pre-smoothing under noise (avg F1)",
        columns=["condition", "smooth", "sharp"],
    )
    result.add_row(
        condition="clean", smooth=clean_smooth.mean_f1, sharp=clean_sharp.mean_f1
    )
    result.add_row(
        condition="SNR 20 dB",
        smooth=noisy_smooth.mean_f1,
        sharp=noisy_sharp.mean_f1,
    )
    publish(result, results_dir)

    # The design claim: smoothing buys noise robustness at negligible
    # clean-image cost.
    assert noisy_smooth.mean_f1 > noisy_sharp.mean_f1
    assert clean_smooth.mean_f1 > clean_sharp.mean_f1 - 0.05
