"""Fig. 6 + §IV-C3: prompt-language sweep on Gemini 1.5 Pro.

Paper reference (average recall): English 0.897 > Bengali 0.86 >
Spanish 0.76 > Chinese 0.69, with two catastrophic term-association
failures — Chinese sidewalk recall ≈ 0.01, Spanish single-lane recall
≈ 0.18.
"""

from conftest import publish


def test_fig6_languages(suite, benchmark, results_dir):
    result = benchmark.pedantic(suite.run_fig6, rounds=1, iterations=1)
    publish(result, results_dir)

    recalls = {row["language"]: row["recall"] for row in result.rows}
    # Shape: the paper's strict language ordering.
    assert recalls["en"] > recalls["bn"] > recalls["es"] > recalls["zh"]
    # English tracks the paper's absolute level.
    assert abs(recalls["en"] - 0.897) < 0.05

    zh = result.row_by("language", "zh")
    es = result.row_by("language", "es")
    # The two catastrophic failures.
    assert zh["SW_recall"] < 0.10
    assert es["SR_recall"] < 0.30
