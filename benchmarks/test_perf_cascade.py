"""Perf benchmark: the cascade router's cost/accuracy frontier.

Realizes the frontier of DESIGN.md §13 on a held-out synthetic split
and freezes it as ``BENCH_cascade.json`` (compared across commits by
``repro bench --compare``).  The two headline metrics gate the PR's
acceptance bar:

* ``cascade.fee_reduction`` — the fee-per-location multiple the
  calibrated default threshold saves against the always-ensemble
  baseline (must stay ≥ 5×);
* ``cascade.f1_retention`` — default-threshold micro-F1 relative to
  the baseline's (an absolute drop beyond one point fails here).

Excluded from tier-1 (``perf`` marker); run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_cascade.py -m perf -q
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cascade import (
    DEFAULT_THRESHOLD,
    fit_cascade_calibration,
    recommend_threshold,
    render_frontier_table,
    sweep_frontier,
)
from repro.core.classifier import LLMIndicatorClassifier
from repro.core.voting import VotingEnsemble
from repro.detect.train import TrainConfig, train_detector
from repro.gsv.dataset import build_survey_dataset
from repro.llm.paper_targets import GPT_4O_MINI
from repro.llm.registry import build_clients
from repro.perf import Stopwatch, write_bench

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_cascade.json"
TABLE_PATH = REPO_ROOT / "benchmarks" / "results" / "frontier_cascade.txt"

#: The acceptance workload mirrors the CLI's cascade assembly:
#: detector trained and calibrated on disjoint synthetic splits, the
#: frontier realized on a third.
N_TRAIN, TRAIN_SEED = 160, 21
N_HOLDOUT, HOLDOUT_SEED = 120, 33
N_EVAL, EVAL_SEED = 96, 45

#: The PR's acceptance gates at the calibrated default threshold.
MIN_FEE_REDUCTION = 5.0
MAX_F1_DROP = 0.01


def test_cascade_frontier_trajectory():
    calibration_scenes = build_survey_dataset(n_images=60, size=256, seed=77)
    clients = build_clients([image.scene for image in calibration_scenes])
    scout = LLMIndicatorClassifier(clients[GPT_4O_MINI])
    ensemble = VotingEnsemble(
        classifiers={
            model_id: LLMIndicatorClassifier(client)
            for model_id, client in clients.items()
        }
    )

    with Stopwatch() as train_sw:
        train_images = build_survey_dataset(
            n_images=N_TRAIN, size=256, seed=TRAIN_SEED
        )
        detector = train_detector(
            train_images, train_config=TrainConfig(epochs=12, batch_size=16)
        ).model
    holdout = build_survey_dataset(
        n_images=N_HOLDOUT, size=256, seed=HOLDOUT_SEED
    )
    calibration = fit_cascade_calibration(detector, holdout)
    recommended = recommend_threshold(detector, calibration, holdout)

    eval_images = build_survey_dataset(n_images=N_EVAL, size=256, seed=EVAL_SEED)
    with Stopwatch() as sweep_sw:
        report = sweep_frontier(
            detector, calibration, scout, ensemble, eval_images
        )

    table = render_frontier_table(report)
    print("\n" + table)
    TABLE_PATH.parent.mkdir(parents=True, exist_ok=True)
    TABLE_PATH.write_text(table + "\n", encoding="utf-8")

    point = report.point_at(DEFAULT_THRESHOLD)
    fee_reduction = point.fee_reduction_vs(report.baseline_fee_usd)
    f1_retention = point.f1 / report.baseline_f1

    document = write_bench(
        BENCH_PATH,
        "cascade",
        {
            "config": {
                "n_train": N_TRAIN,
                "n_holdout": N_HOLDOUT,
                "n_eval": N_EVAL,
                "default_threshold": DEFAULT_THRESHOLD,
                "recommended_threshold": recommended,
                "train_s": round(train_sw.elapsed_s, 4),
                "sweep_s": round(sweep_sw.elapsed_s, 4),
            },
            "cascade": {
                "fee_reduction": round(fee_reduction, 3),
                "f1_retention": round(f1_retention, 6),
                "f1": round(point.f1, 6),
                "baseline_f1": round(report.baseline_f1, 6),
                "fee_per_location_usd": round(point.fee_per_location_usd, 9),
                "baseline_fee_per_location_usd": round(
                    report.baseline_fee_per_location_usd, 9
                ),
                "tier0_rate": round(point.tier0_rate, 6),
                "tier1_rate": round(point.tier1_rate, 6),
                "tier2_rate": round(point.tier2_rate, 6),
            },
            "frontier": report.payload(),
        },
        repo_root=REPO_ROOT,
    )

    assert BENCH_PATH.exists()
    assert document["cascade"]["fee_reduction"] >= MIN_FEE_REDUCTION, (
        f"default-threshold fee reduction {fee_reduction:.1f}x "
        f"below the {MIN_FEE_REDUCTION}x gate"
    )
    assert report.baseline_f1 - point.f1 <= MAX_F1_DROP, (
        f"default-threshold F1 {point.f1:.4f} dropped more than "
        f"{MAX_F1_DROP} below baseline {report.baseline_f1:.4f}"
    )
    # Threshold 0 is the ensemble itself: same F1, no fee saving.
    zero = report.point_at(0.0)
    assert zero.f1 == pytest.approx(report.baseline_f1)
    assert zero.fee_usd == pytest.approx(report.baseline_fee_usd, rel=1e-6)
