"""§IV-B3: comparison with prior GSV indicator models.

Paper reference: the trained detector's average F1 (≈0.96) beats the
published per-class scores of the ResNet-18 multitask model [11]
(streetlight F1 0.59) and the VGG-19 classifier [6].
"""

from conftest import publish


def test_prior_work(suite, benchmark, results_dir):
    result = benchmark.pedantic(suite.run_prior, rounds=1, iterations=1)
    publish(result, results_dir)

    ours = next(r for r in result.rows if "ours" in str(r["model"]))
    prior_scores = [
        r["score"] for r in result.rows if "ours" not in str(r["model"])
    ]
    # Shape: our average F1 beats most prior per-class scores and the
    # weakest prior classes by a wide margin.
    assert ours["score"] > 0.90
    assert ours["score"] > min(prior_scores) + 0.2
