"""Fig. 2: data-augmentation ablation.

Paper reference: rotations (90/180/270°) and 30%-area crops do not
improve the average (96.4% / 96% F1 vs 96.3% baseline) and make
streetlight and apartment detection *worse*, because rotated poles and
buildings are poses that never occur in street-level imagery.
"""

from conftest import publish


def test_fig2_augmentation(suite, benchmark, results_dir):
    result = benchmark.pedantic(suite.run_fig2, rounds=1, iterations=1)
    publish(result, results_dir)

    average = result.row_by("label", "Average")
    # Shape: augmentation buys no meaningful average improvement.
    assert average["rotations"] < average["baseline"] + 0.03
    assert average["rot_plus_crop"] < average["baseline"] + 0.03

    # Direction-bound classes do not benefit from rotation.
    for label in ("Streetlight", "Apartment"):
        row = result.row_by("label", label)
        assert row["rotations"] <= row["baseline"] + 0.02, label
