"""Perf benchmark: the survey daemon vs back-to-back standalone runs.

The service promises multiplexing without a tax: N jobs through one
:class:`~repro.service.SurveyService` (shared clients, one thread
bridge, durable manifest, per-job checkpoints, middleware, tracing)
should cost about what the same N surveys cost run back-to-back as
standalone ``survey_async`` scripts, each paying for its own stack.

Workload: 8 survey jobs across 2 tenants, every job on a distinct
``(county_seed, seed)`` pair so the shared response cache cannot
cross-subsidise the service session — the measured ratio is pure
orchestration overhead (manifest fsyncs, checkpoint writes, spans,
settlement), not cache luck.

Headline metrics (guarded by ``repro bench --only service --compare``):
``service.job_throughput`` (jobs/s through the daemon) and
``service.multiplex_overhead`` (service session wall over standalone
wall; lower is better, ~1.0 when multiplexing is free).

Excluded from tier-1 (``perf`` marker); run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_service.py -m perf -q
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

import pytest

from repro.gsv.dataset import build_survey_dataset
from repro.llm.paper_targets import GEMINI_15_PRO
from repro.llm.registry import build_clients
from repro.perf import Stopwatch, write_bench
from repro.service import JobSpec, ServiceStack, SurveyService

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_service.json"

#: 8 jobs, 2 tenants, disjoint (county_seed, seed) pairs — no
#: cross-job cache hits to flatter the service side.
SPECS = tuple(
    JobSpec(
        tenant="acme" if index % 2 == 0 else "beta",
        n_locations=3,
        county_seed=3 + index,
        seed=100 + index,
        priority=index % 3,
    )
    for index in range(8)
)


@pytest.fixture(scope="module")
def raw_clients():
    calibration = build_survey_dataset(n_images=60, size=256, seed=77)
    return build_clients(
        [image.scene for image in calibration], model_ids=(GEMINI_15_PRO,)
    )


async def _service_session(raw_clients, state_dir):
    """One daemon, all jobs; wall time covers submit through idle."""
    stack = ServiceStack(clients=raw_clients)
    async with SurveyService(
        stack, state_dir, max_queue_depth=len(SPECS)
    ) as service:
        with Stopwatch() as sw:
            job_ids = [await service.submit(spec) for spec in SPECS]
            await service.run_until_idle()
        reports = {
            job_id: service.store.read_report(job_id) for job_id in job_ids
        }
        counts = service.counts()
    return sw.elapsed_s, job_ids, reports, counts


async def _standalone_once(raw_clients, spec):
    """One spec as a standalone script: fresh stack, bare engine."""
    with ServiceStack(clients=raw_clients) as stack:
        decoder = stack.decoder(spec.kind, spec.county_seed)
        with Stopwatch() as sw:
            report = await decoder.survey_async(
                stack.county(spec.county_seed),
                spec.n_locations,
                seed=spec.seed,
            )
    return sw.elapsed_s, report


def test_service_daemon_perf_trajectory(raw_clients, tmp_path):
    session_s, job_ids, reports, counts = asyncio.run(
        _service_session(raw_clients, tmp_path / "state")
    )
    assert counts["done"] == len(SPECS)

    standalone_s = 0.0
    baselines = {}
    for spec, job_id in zip(SPECS, job_ids):
        elapsed, report = asyncio.run(_standalone_once(raw_clients, spec))
        standalone_s += elapsed
        baselines[job_id] = report

    # The race only counts if multiplexing changed nothing: every
    # served report must be byte-identical to its standalone twin.
    deterministic = all(
        json.dumps(reports[job_id], sort_keys=True)
        == baselines[job_id].to_json()
        for job_id in job_ids
    )
    assert deterministic

    job_throughput = len(SPECS) / session_s
    multiplex_overhead = session_s / standalone_s

    document = write_bench(
        BENCH_PATH,
        "service",
        {
            "config": {
                "n_jobs": len(SPECS),
                "n_tenants": 2,
                "locations_per_job": 3,
                "captures_per_location": 4,
            },
            "service": {
                "session_s": round(session_s, 4),
                "standalone_s": round(standalone_s, 4),
                "job_throughput": round(job_throughput, 3),
                "multiplex_overhead": round(multiplex_overhead, 3),
                "deterministic": deterministic,
            },
        },
        repo_root=REPO_ROOT,
    )

    assert BENCH_PATH.exists()
    assert document["service"]["deterministic"]
    assert job_throughput > 0
    # The acceptance bar: durable scheduling may not triple the cost
    # of the underlying surveys.
    assert multiplex_overhead < 3.0, (
        f"daemon overhead {multiplex_overhead:.2f}× over standalone"
    )
