"""Tables III–VI: per-class confusion statistics for each LLM.

Paper reference: Appendix A.  The simulators are calibrated against
these tables on a *separate* calibration dataset, so this bench is the
held-out check that the fitted operating points generalize: measured
per-class precision and recall should land near the published values.
"""

import numpy as np
from conftest import publish
from repro.core.indicators import ALL_INDICATORS, Indicator
from repro.llm import ALL_MODEL_IDS, PAPER_LLM_METRICS


def test_tables3to6_llms(suite, benchmark, results_dir):
    tables = benchmark.pedantic(
        suite.run_tables3to6, rounds=1, iterations=1
    )
    for model_id in ALL_MODEL_IDS:
        publish(tables[model_id], results_dir)

    for model_id in ALL_MODEL_IDS:
        table = tables[model_id]
        recall_errors = []
        for indicator in ALL_INDICATORS:
            row = table.row_by("label", indicator.display_name)
            target = PAPER_LLM_METRICS[model_id][indicator]
            recall_errors.append(abs(row["recall"] - min(target.recall, 0.985)))
        # Recall is fit directly; it must track closely on held-out data.
        assert float(np.mean(recall_errors)) < 0.07, model_id

        # Precision tracks through the prevalence-derived FPR; allow a
        # wider band but require the right ordering of hard classes.
        sr = table.row_by("label", Indicator.SINGLE_LANE_ROAD.display_name)
        assert sr["precision"] < 0.75, model_id  # SR precision is bad everywhere

    # Grok's signature trade-off: high SR recall, terrible MR recall.
    grok = tables["grok-2"]
    assert grok.row_by("label", "Multilane road")["recall"] < 0.75
