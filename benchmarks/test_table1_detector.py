"""Table I: detector per-class precision/recall/F1/mAP50.

Paper reference (YOLOv11 Nano, 1,200 images, 20 epochs):

    average F1 0.963, average mAP50 0.991; every class ≥ 0.90 F1;
    single-lane road the weakest class by F1 (0.903).
"""

from conftest import publish


def test_table1_detector(suite, benchmark, results_dir):
    result = benchmark.pedantic(suite.run_table1, rounds=1, iterations=1)
    publish(result, results_dir)

    average = result.row_by("label", "Average")
    # Shape: the supervised detector is near-ceiling.
    assert average["f1"] > 0.90
    assert average["map50"] > 0.88
    # Every class is detected usefully.
    for row in result.rows:
        if row["label"] == "Average":
            continue
        assert row["f1"] > 0.60, row["label"]
