"""Perf benchmark: the observability layer's overhead envelope.

The tracing/metrics instrumentation added to the survey hot paths is
permanently on — every fetch, classify, vote, and merge passes through
``get_tracer().span(...)`` and ``get_metrics().inc(...)``.  The design
contract (DESIGN.md §11) is that the *default* no-op tracer keeps
those call sites at effectively zero cost, and that even a recording
tracer costs a small fraction of the latency-bound survey it observes.

Two measurements enforce that, recorded in ``BENCH_obs.json``:

* **micro** — per-call cost of a ``NULL_TRACER`` span and a registry
  counter increment, in nanoseconds;
* **survey** — the same parallel survey run under the default no-op
  tracer and under a recording :class:`~repro.obs.trace.Tracer` +
  fresh :class:`~repro.obs.metrics.MetricsRegistry`; the headline is
  the traced/no-op throughput ratio (1.0 = tracing is free).

Excluded from tier-1 (``perf`` marker); run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_obs.py -m perf -q
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.core.classifier import LLMIndicatorClassifier
from repro.core.pipeline import NeighborhoodDecoder
from repro.geo.county import make_durham_like
from repro.gsv.api import StreetViewClient
from repro.gsv.dataset import build_survey_dataset
from repro.llm.paper_targets import GEMINI_15_PRO
from repro.llm.registry import build_clients
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.trace import NULL_TRACER, Tracer, use_tracer
from repro.perf import LatencyChatClient, Stopwatch, write_bench

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_obs.json"

N_LOCATIONS = 16
WORKERS = 4
FETCH_LATENCY_S = 0.010
LLM_LATENCY_S = 0.010

#: Per-call budget for the no-op span: it must stay cheap enough that
#: instrumenting a hot loop is a non-decision.
NULL_SPAN_BUDGET_NS = 5_000
#: The traced survey may cost at most this much more wall-clock than
#: the identical no-op one (the workload is latency-bound; recording
#: spans must stay in the noise).
TRACED_OVERHEAD_LIMIT = 1.25

MICRO_ITERATIONS = 100_000


def _per_call_ns(fn, iterations: int = MICRO_ITERATIONS) -> float:
    started = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - started) / iterations * 1e9


def _decoder(county, clients):
    street_view = StreetViewClient(
        counties=[county], api_key="bench-obs", latency_s=FETCH_LATENCY_S
    )
    client = LatencyChatClient(
        clients[GEMINI_15_PRO], latency_s=LLM_LATENCY_S
    )
    return NeighborhoodDecoder(
        street_view=street_view,
        classifier=LLMIndicatorClassifier(client),
    )


def test_obs_overhead_trajectory():
    county = make_durham_like(seed=3)
    calibration = build_survey_dataset(n_images=60, size=256, seed=77)
    clients = build_clients(
        [image.scene for image in calibration], model_ids=(GEMINI_15_PRO,)
    )

    # -- micro: the permanent cost of an instrumented call site --------
    def null_span():
        with NULL_TRACER.span("bench"):
            pass

    registry = MetricsRegistry()
    null_span_ns = _per_call_ns(null_span)
    counter_inc_ns = _per_call_ns(lambda: registry.inc("bench.counter"))

    recording = Tracer(trace_id="bench-micro")

    def live_span():
        with recording.span("bench"):
            pass

    live_span_ns = _per_call_ns(live_span, iterations=20_000)

    # -- macro: identical surveys, no-op vs recording ------------------
    with Stopwatch() as noop_sw:
        noop_report = _decoder(county, clients).survey(
            county, N_LOCATIONS, seed=0, workers=WORKERS
        )

    tracer = Tracer(trace_id="bench-survey")
    with use_tracer(tracer), use_metrics(MetricsRegistry()):
        with Stopwatch() as traced_sw:
            traced_report = _decoder(county, clients).survey(
                county, N_LOCATIONS, seed=0, workers=WORKERS
            )

    # Observability must be payload-invisible.
    assert traced_report.to_json() == noop_report.to_json()
    assert noop_report.coverage == 1.0

    traced_relative_throughput = traced_sw.elapsed_s and (
        noop_sw.elapsed_s / traced_sw.elapsed_s
    )

    document = write_bench(
        BENCH_PATH,
        "obs",
        {
            "config": {
                "n_locations": N_LOCATIONS,
                "workers": WORKERS,
                "fetch_latency_s": FETCH_LATENCY_S,
                "llm_latency_s": LLM_LATENCY_S,
                "micro_iterations": MICRO_ITERATIONS,
            },
            "micro": {
                "null_span_ns": round(null_span_ns, 1),
                "live_span_ns": round(live_span_ns, 1),
                "counter_inc_ns": round(counter_inc_ns, 1),
            },
            "tracing": {
                "noop_s": round(noop_sw.elapsed_s, 4),
                "traced_s": round(traced_sw.elapsed_s, 4),
                "noop_locations_per_s": round(
                    N_LOCATIONS / noop_sw.elapsed_s, 3
                ),
                "traced_relative_throughput": round(
                    traced_relative_throughput, 4
                ),
                "spans_recorded": len(tracer.spans),
                "payload_invisible": traced_report.to_json()
                == noop_report.to_json(),
            },
        },
        repo_root=REPO_ROOT,
    )

    assert BENCH_PATH.exists()
    assert document["tracing"]["payload_invisible"]
    assert null_span_ns < NULL_SPAN_BUDGET_NS, (
        f"no-op span costs {null_span_ns:.0f} ns/call, "
        f"budget is {NULL_SPAN_BUDGET_NS} ns"
    )
    overhead = traced_sw.elapsed_s / noop_sw.elapsed_s
    assert overhead < TRACED_OVERHEAD_LIMIT, (
        f"recording tracer made the survey {overhead:.2f}x slower, "
        f"limit is {TRACED_OVERHEAD_LIMIT}x"
    )
