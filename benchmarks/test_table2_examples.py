"""Table II: example per-question responses from the four models.

Reproduces the paper's qualitative prompt/response matrix: each model
answers the six standalone questions about one image.
"""

from conftest import publish
from repro.core.parsing import extract_decisions


def test_table2_examples(suite, benchmark, results_dir):
    result = benchmark.pedantic(
        suite.run_table2, rounds=1, iterations=1
    )
    publish(result, results_dir)

    assert len(result.rows) == 6
    for row in result.rows:
        for column, value in row.items():
            if column == "question":
                continue
            decisions = extract_decisions(str(value))
            assert len(decisions) == 1, (column, value)
