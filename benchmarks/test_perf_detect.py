"""Perf benchmark: process-parallel detector pipeline + artifact cache.

Measures the two optimizations `BENCH_detect.json` tracks (one
document per commit, at the repo root):

* **process backend** — training-tensor extraction, training, and
  batched evaluation at ``workers=4`` (process pool) vs strictly
  serial.  The work is pure-numpy CPU the GIL serializes, so the
  speedup tracks the machine's *usable* core count: on a single-core
  host the document records ``core_capped`` instead of a speedup bar
  (see DESIGN.md §9).
* **artifact cache** — a cold vs warm ``run_all`` of the detector
  experiments (Table I + the Fig. 2 augmentation sweep) against one
  content-addressed :class:`~repro.artifacts.ArtifactCache`: the warm
  pass replays feature tensors, trained weights, and per-image
  predictions from disk.

Either way the parallel/cached paths must be *byte-identical* to the
serial/cold ones — asserted here, not assumed.

Excluded from tier-1 (``perf`` marker); run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_detect.py -m perf -q

or ``python -m repro bench``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.artifacts import ArtifactCache, model_fingerprint
from repro.detect import (
    ModelConfig,
    TrainConfig,
    build_training_tensors,
    evaluate_detector,
    train_detector,
)
from repro.experiments import ExperimentSuite, smoke_config
from repro.gsv.dataset import build_survey_dataset
from repro.parallel import effective_cpu_count
from repro.perf import Stopwatch, write_bench

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_detect.json"

#: The CPU workload: enough images that pool startup amortizes.
N_IMAGES = 48
IMAGE_SIZE = 256
WORKERS = 4
EPOCHS = 6

#: Detector experiments exercised for the cold/warm cache measurement.
CACHED_EXPERIMENTS = ["table1", "fig2"]


def _train_and_eval(images, splits, workers, cache=None):
    """One serial-or-parallel pass: tensors → train → batched eval."""
    result = train_detector(
        splits[0],
        model_config=ModelConfig(hidden=64),
        train_config=TrainConfig(epochs=EPOCHS, seed=0),
        workers=workers,
        cache=cache,
    )
    report = evaluate_detector(
        result.model, splits[1], workers=workers, cache=cache
    )
    return result, report


def test_detect_perf_trajectory(tmp_path):
    dataset = build_survey_dataset(
        n_images=N_IMAGES, size=IMAGE_SIZE, seed=21
    )
    images = list(dataset)
    splits = (images[: N_IMAGES // 2], images[N_IMAGES // 2 :])

    cores = effective_cpu_count()
    core_capped = cores < 2

    # -- serial vs process-parallel ----------------------------------------
    with Stopwatch() as serial_sw:
        serial_result, serial_report = _train_and_eval(images, splits, 1)
    with Stopwatch() as parallel_sw:
        parallel_result, parallel_report = _train_and_eval(
            images, splits, WORKERS
        )
    speedup = serial_sw.elapsed_s / parallel_sw.elapsed_s

    # Determinism: process-parallel training and evaluation are
    # byte-identical to serial — same weights, same metrics.
    assert model_fingerprint(parallel_result.model) == model_fingerprint(
        serial_result.model
    )
    assert np.array_equal(
        np.asarray(parallel_result.loss_history),
        np.asarray(serial_result.loss_history),
    )
    deterministic = parallel_report.rows() == serial_report.rows()
    assert deterministic

    # -- chunking invariance under the process backend ---------------------
    serial_tensors = build_training_tensors(splits[0], 16, workers=1)
    parallel_tensors = build_training_tensors(
        splits[0], 16, workers=WORKERS, chunk_size=4
    )
    for got, want in zip(parallel_tensors, serial_tensors):
        assert np.array_equal(got, want)

    # -- cold vs warm artifact cache over the experiment suite -------------
    cache_root = tmp_path / "artifacts"
    cold_suite = ExperimentSuite(
        config=smoke_config(), artifacts=ArtifactCache(cache_root)
    )
    with Stopwatch() as cold_sw:
        cold_run = cold_suite.run_all(names=CACHED_EXPERIMENTS)
    warm_suite = ExperimentSuite(
        config=smoke_config(), artifacts=ArtifactCache(cache_root)
    )
    with Stopwatch() as warm_sw:
        warm_run = warm_suite.run_all(names=CACHED_EXPERIMENTS)
    warm_speedup = cold_sw.elapsed_s / warm_sw.elapsed_s

    # The warm pass replays from disk: all hits, and identical tables.
    assert warm_run.cache_stats["hits"] > 0
    assert warm_run.cache_stats["misses"] == 0
    cold_rows = [
        row
        for result in cold_run.all_results()
        for row in result.rows
    ]
    warm_rows = [
        row
        for result in warm_run.all_results()
        for row in result.rows
    ]
    assert warm_rows == cold_rows

    document = write_bench(
        BENCH_PATH,
        "detect",
        {
            "config": {
                "n_images": N_IMAGES,
                "image_size": IMAGE_SIZE,
                "workers": WORKERS,
                "epochs": EPOCHS,
                "cached_experiments": CACHED_EXPERIMENTS,
            },
            "process_parallel": {
                "serial_s": round(serial_sw.elapsed_s, 4),
                "parallel_s": round(parallel_sw.elapsed_s, 4),
                "speedup": round(speedup, 3),
                "effective_cpu_count": cores,
                "core_capped": core_capped,
                "deterministic": deterministic,
                "note": (
                    f"host exposes {cores} usable core(s); a process pool "
                    "cannot beat serial without a second core, so the "
                    "speedup bar is waived and determinism is the "
                    "acceptance criterion"
                )
                if core_capped
                else f"{cores} usable cores",
            },
            "artifact_cache": {
                "cold_s": round(cold_sw.elapsed_s, 4),
                "warm_s": round(warm_sw.elapsed_s, 4),
                "warm_speedup": round(warm_speedup, 3),
                "cold_stats": cold_run.cache_stats,
                "warm_stats": warm_run.cache_stats,
                "identical_tables": warm_rows == cold_rows,
            },
        },
        repo_root=REPO_ROOT,
    )

    assert BENCH_PATH.exists()
    # ≥1.8× at 4 workers — unless the host cannot physically deliver
    # it, in which case the document says so (`core_capped`).
    assert core_capped or speedup >= 1.8, (
        f"process speedup {speedup:.2f}× below 1.8× on {cores} cores"
    )
    assert warm_speedup >= 5.0, (
        f"warm artifact-cache rerun only {warm_speedup:.2f}× faster"
    )
    assert document["artifact_cache"]["identical_tables"]
