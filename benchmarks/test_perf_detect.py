"""Perf benchmark: detector pipeline — parallel, cached, fused, tiered.

Measures the optimizations `BENCH_detect.json` tracks (one
document per commit, at the repo root):

* **process backend** — training-tensor extraction, training, and
  batched evaluation at ``workers=4`` (process pool) vs strictly
  serial.  The work is pure-numpy CPU the GIL serializes, so the
  speedup tracks the machine's *usable* core count: on a single-core
  host the document records ``core_capped`` instead of a speedup bar
  (see DESIGN.md §9).
* **artifact cache** — a cold vs warm ``run_all`` of the detector
  experiments (Table I + the Fig. 2 augmentation sweep) against one
  content-addressed :class:`~repro.artifacts.ArtifactCache`: the warm
  pass replays feature tensors, trained weights, and per-image
  predictions from disk.
* **fused kernel + dtype tiers** (``detect.*`` headline metrics) —
  the single-pass feature kernel vs the legacy multi-pass extractor
  (float64 byte-identical, float32 >= 3x), and the float32/int8 MLP
  head vs float64 with presence-decision micro-F1 agreement.
* **incremental training** — full retrain vs cached-weights delta
  fine-tune on a ~10%-changed dataset.

Either way the parallel/cached paths must be *byte-identical* to the
serial/cold ones — asserted here, not assumed.

Excluded from tier-1 (``perf`` marker); run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_detect.py -m perf -q

or ``python -m repro bench``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.artifacts import ArtifactCache, model_fingerprint
from repro.core.indicators import ALL_INDICATORS
from repro.detect import (
    ModelConfig,
    NanoDetector,
    TrainConfig,
    build_training_tensors,
    evaluate_detector,
    extract_features_batch,
    extract_features_legacy,
    train_detector,
)
from repro.experiments import ExperimentSuite, smoke_config
from repro.gsv.dataset import build_survey_dataset
from repro.parallel import TensorArena, effective_cpu_count
from repro.perf import Stopwatch, write_bench

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_detect.json"

#: The CPU workload: enough images that pool startup amortizes.
N_IMAGES = 48
IMAGE_SIZE = 256
WORKERS = 4
EPOCHS = 6

#: Detector experiments exercised for the cold/warm cache measurement.
CACHED_EXPERIMENTS = ["table1", "fig2"]


def _train_and_eval(images, splits, workers, cache=None):
    """One serial-or-parallel pass: tensors → train → batched eval."""
    result = train_detector(
        splits[0],
        model_config=ModelConfig(hidden=64),
        train_config=TrainConfig(epochs=EPOCHS, seed=0),
        workers=workers,
        cache=cache,
    )
    report = evaluate_detector(
        result.model, splits[1], workers=workers, cache=cache
    )
    return result, report


#: Images timed by the fused-kernel and dtype-tier measurements.
N_KERNEL_IMAGES = 12
#: Best-of repetitions per timed section (absorbs scheduler noise).
TIMING_REPS = 3


def _best_of(reps, fn):
    """Minimum wall time of ``reps`` runs of ``fn`` (classic best-of)."""
    best = float("inf")
    for _ in range(reps):
        with Stopwatch() as sw:
            fn()
        best = min(best, sw.elapsed_s)
    return best


def _presence_micro_f1(peaks, images, threshold=0.5):
    """Micro-F1 of thresholded per-image indicator presence decisions."""
    predicted = peaks >= threshold
    truth = np.array(
        [
            [
                any(ind == indicator for ind, _ in image.annotations)
                for indicator in ALL_INDICATORS
            ]
            for image in images
        ]
    )
    tp = int((predicted & truth).sum())
    fp = int((predicted & ~truth).sum())
    fn = int((~predicted & truth).sum())
    denominator = 2 * tp + fp + fn
    return 2 * tp / denominator if denominator else 1.0


def _bench_kernel_tiers(model, images):
    """The fused-kernel / dtype-tier measurements (the ``detect`` section).

    Returns the section dict for BENCH_detect.json; the byte-identity
    and agreement checks are asserted here so a bench run that records
    a speedup from a *wrong* kernel fails instead of publishing it.
    """
    config = model.config.feature_config
    pixels = [image.render() for image in images]
    arena = TensorArena()

    # Warm the pooling-operator / position-channel memos and the arena
    # before timing, so one-time setup is not billed to either side.
    legacy = np.stack(
        [extract_features_legacy(pixels[0], config)]
        + [extract_features_legacy(p, config) for p in pixels[1:]]
    )
    fused64 = extract_features_batch(pixels, config, arena=arena)
    fused32 = extract_features_batch(
        pixels, config, precision="float32", arena=arena
    )

    # Fused float64 is byte-identical to the legacy extractor; float32
    # stays within documented tolerance of it.
    assert np.array_equal(fused64, legacy)
    assert float(np.abs(fused32 - legacy).max()) < 5e-2

    legacy_s = _best_of(
        TIMING_REPS,
        lambda: [extract_features_legacy(p, config) for p in pixels],
    )
    fused64_s = _best_of(
        TIMING_REPS,
        lambda: extract_features_batch(pixels, config, arena=arena),
    )
    fused32_s = _best_of(
        TIMING_REPS,
        lambda: extract_features_batch(
            pixels, config, precision="float32", arena=arena
        ),
    )
    extract_speedup = legacy_s / fused32_s

    # Dtype-tiered MLP head over the full stacked cell batch.
    flat64 = fused64.reshape(-1, fused64.shape[-1])
    flat32 = flat64.astype(np.float32)
    head64_s = _best_of(
        TIMING_REPS, lambda: model._infer_logits(flat64, "float64")
    )
    head32_s = _best_of(
        TIMING_REPS, lambda: model._infer_logits(flat32, "float32")
    )
    head8_s = _best_of(
        TIMING_REPS, lambda: model._infer_logits(flat32, "int8")
    )
    int8_speedup = head64_s / head8_s

    # Exactness across tiers: presence decisions (the cascade's tier-0
    # currency) must agree between int8 and float64 to |ΔF1| <= 0.01.
    scores64, _ = model.predict_cells_batch(pixels, arena=arena)
    scores32, _ = model.predict_cells_batch(
        pixels, precision="float32", arena=arena
    )
    scores8, _ = model.predict_cells_batch(
        pixels, precision="int8", arena=arena
    )
    peaks64 = NanoDetector.indicator_scores(scores64)
    peaks32 = NanoDetector.indicator_scores(scores32)
    peaks8 = NanoDetector.indicator_scores(scores8)
    f1_64 = _presence_micro_f1(peaks64, images)
    int8_f1_delta = abs(_presence_micro_f1(peaks8, images) - f1_64)
    float32_f1_delta = abs(_presence_micro_f1(peaks32, images) - f1_64)

    return {
        "n_images": len(images),
        "legacy_extract_s": round(legacy_s, 4),
        "fused64_extract_s": round(fused64_s, 4),
        "fused32_extract_s": round(fused32_s, 4),
        "extract_speedup": round(extract_speedup, 3),
        "extract_speedup_float64": round(legacy_s / fused64_s, 3),
        "fused64_byte_identical": True,
        "head_float64_s": round(head64_s, 5),
        "head_float32_s": round(head32_s, 5),
        "head_int8_s": round(head8_s, 5),
        "int8_speedup": round(int8_speedup, 3),
        "int8_f1_delta": round(int8_f1_delta, 5),
        "float32_f1_delta": round(float32_f1_delta, 5),
        "presence_f1_float64": round(f1_64, 4),
        "arena_buffers": len(arena),
        "arena_bytes": arena.nbytes,
    }


def _bench_incremental(images, changed_pool, cache_root):
    """Full-retrain vs delta fine-tune timings (the ``incremental`` section).

    No headline gate — wall-clock depends on the changed fraction —
    but the mode and reuse counts are asserted so the bench cannot
    silently measure two full retrains.
    """
    cache = ArtifactCache(cache_root)
    model_config = ModelConfig(hidden=64)
    train_config = TrainConfig(epochs=EPOCHS, seed=0)
    with Stopwatch() as full_sw:
        full = train_detector(
            images,
            model_config=model_config,
            train_config=train_config,
            cache=cache,
            incremental=True,
        )
    assert full.mode == "full"

    n_changed = max(1, len(images) // 10)
    modified = list(images[:-n_changed]) + list(changed_pool[:n_changed])
    with Stopwatch() as incr_sw:
        incremental = train_detector(
            modified,
            model_config=model_config,
            train_config=train_config,
            cache=cache,
            incremental=True,
        )
    assert incremental.mode == "incremental"
    assert incremental.reused_images == len(images) - n_changed

    return {
        "n_images": len(images),
        "n_changed": n_changed,
        "full_train_s": round(full_sw.elapsed_s, 4),
        "incremental_train_s": round(incr_sw.elapsed_s, 4),
        "incremental_speedup": round(
            full_sw.elapsed_s / incr_sw.elapsed_s, 3
        ),
        "mode": incremental.mode,
        "reused_images": incremental.reused_images,
        "trained_images": incremental.trained_images,
    }


def test_detect_perf_trajectory(tmp_path):
    dataset = build_survey_dataset(
        n_images=N_IMAGES, size=IMAGE_SIZE, seed=21
    )
    images = list(dataset)
    splits = (images[: N_IMAGES // 2], images[N_IMAGES // 2 :])

    cores = effective_cpu_count()
    core_capped = cores < 2

    # -- serial vs process-parallel ----------------------------------------
    with Stopwatch() as serial_sw:
        serial_result, serial_report = _train_and_eval(images, splits, 1)
    with Stopwatch() as parallel_sw:
        parallel_result, parallel_report = _train_and_eval(
            images, splits, WORKERS
        )
    speedup = serial_sw.elapsed_s / parallel_sw.elapsed_s

    # Determinism: process-parallel training and evaluation are
    # byte-identical to serial — same weights, same metrics.
    assert model_fingerprint(parallel_result.model) == model_fingerprint(
        serial_result.model
    )
    assert np.array_equal(
        np.asarray(parallel_result.loss_history),
        np.asarray(serial_result.loss_history),
    )
    deterministic = parallel_report.rows() == serial_report.rows()
    assert deterministic

    # -- chunking invariance under the process backend ---------------------
    serial_tensors = build_training_tensors(splits[0], 16, workers=1)
    parallel_tensors = build_training_tensors(
        splits[0], 16, workers=WORKERS, chunk_size=4
    )
    for got, want in zip(parallel_tensors, serial_tensors):
        assert np.array_equal(got, want)

    # -- cold vs warm artifact cache over the experiment suite -------------
    cache_root = tmp_path / "artifacts"
    cold_suite = ExperimentSuite(
        config=smoke_config(), artifacts=ArtifactCache(cache_root)
    )
    with Stopwatch() as cold_sw:
        cold_run = cold_suite.run_all(names=CACHED_EXPERIMENTS)
    warm_suite = ExperimentSuite(
        config=smoke_config(), artifacts=ArtifactCache(cache_root)
    )
    with Stopwatch() as warm_sw:
        warm_run = warm_suite.run_all(names=CACHED_EXPERIMENTS)
    warm_speedup = cold_sw.elapsed_s / warm_sw.elapsed_s

    # The warm pass replays from disk: all hits, and identical tables.
    assert warm_run.cache_stats["hits"] > 0
    assert warm_run.cache_stats["misses"] == 0
    cold_rows = [
        row
        for result in cold_run.all_results()
        for row in result.rows
    ]
    warm_rows = [
        row
        for result in warm_run.all_results()
        for row in result.rows
    ]
    assert warm_rows == cold_rows

    # -- fused kernel + dtype tiers + incremental training -----------------
    detect_section = _bench_kernel_tiers(
        serial_result.model, splits[1][:N_KERNEL_IMAGES]
    )
    incremental_section = _bench_incremental(
        splits[0], splits[1], tmp_path / "incremental"
    )

    document = write_bench(
        BENCH_PATH,
        "detect",
        {
            "config": {
                "n_images": N_IMAGES,
                "image_size": IMAGE_SIZE,
                "workers": WORKERS,
                "epochs": EPOCHS,
                "cached_experiments": CACHED_EXPERIMENTS,
            },
            "process_parallel": {
                "serial_s": round(serial_sw.elapsed_s, 4),
                "parallel_s": round(parallel_sw.elapsed_s, 4),
                "speedup": round(speedup, 3),
                "effective_cpu_count": cores,
                "core_capped": core_capped,
                "deterministic": deterministic,
                "note": (
                    f"host exposes {cores} usable core(s); a process pool "
                    "cannot beat serial without a second core, so the "
                    "speedup bar is waived and determinism is the "
                    "acceptance criterion"
                )
                if core_capped
                else f"{cores} usable cores",
            },
            "artifact_cache": {
                "cold_s": round(cold_sw.elapsed_s, 4),
                "warm_s": round(warm_sw.elapsed_s, 4),
                "warm_speedup": round(warm_speedup, 3),
                "cold_stats": cold_run.cache_stats,
                "warm_stats": warm_run.cache_stats,
                "identical_tables": warm_rows == cold_rows,
            },
            "detect": detect_section,
            "incremental": incremental_section,
        },
        repo_root=REPO_ROOT,
    )

    assert BENCH_PATH.exists()
    # ≥1.8× at 4 workers — unless the host cannot physically deliver
    # it, in which case the document says so (`core_capped`).
    assert core_capped or speedup >= 1.8, (
        f"process speedup {speedup:.2f}× below 1.8× on {cores} cores"
    )
    assert warm_speedup >= 5.0, (
        f"warm artifact-cache rerun only {warm_speedup:.2f}× faster"
    )
    assert document["artifact_cache"]["identical_tables"]
    # The ISSUE-8 acceptance gates: fused float32 extraction at least
    # 3x the legacy extractor, and int8 presence decisions within
    # |ΔF1| <= 0.01 of float64.
    assert detect_section["extract_speedup"] >= 3.0, (
        f"fused extraction only {detect_section['extract_speedup']:.2f}x "
        "the legacy extractor"
    )
    assert detect_section["int8_f1_delta"] <= 0.01, (
        f"int8 presence micro-F1 drifted {detect_section['int8_f1_delta']}"
    )
    assert detect_section["int8_speedup"] > 1.0, (
        f"int8 head not faster: {detect_section['int8_speedup']:.2f}x"
    )
