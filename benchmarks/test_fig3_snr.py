"""Fig. 3: detector robustness to Gaussian noise (SNR sweep).

Paper reference: accuracy above 0.90 at SNR 25–30 dB; performance
drops sharply at severe noise (≈0.60 at SNR 5 dB).
"""

from conftest import publish


def test_fig3_snr(suite, benchmark, results_dir):
    result = benchmark.pedantic(suite.run_fig3, rounds=1, iterations=1)
    publish(result, results_dir)

    f1_by_snr = {row["snr_db"]: row["f1"] for row in result.rows}
    # Shape: robust at mild noise, collapsing at severe noise.
    assert f1_by_snr[30] > 0.90
    assert f1_by_snr[25] > 0.88
    assert f1_by_snr[5] < 0.55
    # Monotone (allowing small sampling wobble between adjacent levels).
    levels = sorted(f1_by_snr)
    for low, high in zip(levels, levels[1:]):
        assert f1_by_snr[high] >= f1_by_snr[low] - 0.06
