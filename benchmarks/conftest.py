"""Shared benchmark fixtures.

The benches regenerate every table and figure of the paper.  Scale is
selected by the ``REPRO_BENCH_SCALE`` environment variable:

* ``paper`` — the full Section IV protocol (1,200 images at 640 px);
  the detector experiments take tens of minutes.
* ``bench`` (default) — 600 images at 640 px: every qualitative
  conclusion reproduces, detector experiments run in minutes.
* ``smoke`` — tiny inputs for CI wiring checks.

Rendered result tables are printed and also written to
``benchmarks/results/*.txt`` so they survive output capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.detect.train import TrainConfig
from repro.experiments import (
    ExperimentConfig,
    ExperimentSuite,
    paper_config,
    smoke_config,
)

RESULTS_DIR = Path(__file__).parent / "results"


def _bench_config() -> ExperimentConfig:
    scale = os.environ.get("REPRO_BENCH_SCALE", "bench")
    if scale == "paper":
        return paper_config()
    if scale == "smoke":
        return smoke_config()
    if scale == "bench":
        return ExperimentConfig(
            n_images=600,
            image_size=640,
            n_calibration_images=600,
            detector_train=TrainConfig(epochs=20, batch_size=16),
        )
    raise ValueError(f"unknown REPRO_BENCH_SCALE: {scale!r}")


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    return ExperimentSuite(config=_bench_config())


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(result, results_dir: Path) -> None:
    """Print a rendered result and persist it to disk."""
    text = result.render()
    print("\n" + text)
    slug = (
        result.experiment_id.lower()
        .replace(" ", "_")
        .replace(".", "")
        .replace("§", "sec")
    )
    (results_dir / f"{slug}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def once():
    """Run a heavy experiment exactly once under pytest-benchmark."""

    def runner(benchmark, fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
