"""Perf benchmark: shared-memory transport + streaming survey engine.

Measures the three optimizations ``BENCH_stream.json`` tracks (one
document per commit, at the repo root):

* **shm transport** — echoing 640×640 float image batches through a
  two-worker process pool with ``multiprocessing.shared_memory``
  transport vs plain pickle.  On a single-core host a process pool
  cannot demonstrate the win, so the document records ``core_capped``
  (the same honesty flag as ``BENCH_detect.json``) and byte-identity
  becomes the acceptance criterion.
* **streaming survey** — traced-peak memory of a 5,000-location
  synthetic survey through :meth:`NeighborhoodDecoder.survey_stream`:
  the aggregate (streaming) path must complete under a memory ceiling
  that the materializing (batch-retention) path over the *same* 5,000
  locations exceeds.  Point selection is excluded from the traced
  region — its road-network build is a one-time transient both paths
  share — so the peaks isolate the survey engine itself.
* **coalescing** — duplicate-request batches through
  :class:`~repro.llm.batch.BatchRunner` with ``coalesce=True``: the
  upstream call count, the hit rate, and outcome-identity with the
  uncoalesced run.

Everything perf-shaped here must be *byte-identical* to the slow
path — asserted, not assumed.  This is the slowest benchmark in the
suite (the two traced 5,000-location surveys dominate; tracemalloc
roughly quintuples allocation-heavy survey time).

Excluded from tier-1 (``perf`` marker); run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_stream.py -m perf -q

or ``python -m repro bench``.
"""

from __future__ import annotations

import dataclasses
import gc
import itertools
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.core import LLMIndicatorClassifier, NeighborhoodDecoder
from repro.geo import make_durham_like
from repro.gsv import StreetViewClient, build_survey_dataset
from repro.llm import build_clients
from repro.llm.base import ChatMessage, ChatRequest
from repro.llm.batch import BatchRunner
from repro.llm import ImageAttachment
from repro.parallel import (
    ParallelExecutor,
    SharedArrayArena,
    effective_cpu_count,
    shared_memory_support,
)
from repro.perf import Stopwatch, write_bench

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_stream.json"

#: Transport payloads: the detector's eval-resolution image shape.
IMAGE_SHAPE = (640, 640, 3)
N_TRANSPORT_IMAGES = 12
TRANSPORT_WORKERS = 2

#: Streaming survey scale (the county-scale claim).
STREAM_LOCATIONS = 5_000
SHARD_SIZE = 64
THROUGHPUT_LOCATIONS = 1_000

#: Coalescing batch: every unique request duplicated this many times.
COALESCE_UNIQUE = 12
COALESCE_COPIES = 5


def _normalize(image: np.ndarray) -> np.ndarray:
    """Module-level pool task: large array in, large array out."""
    return image * np.float64(1.0 / 255.0)


def _echo_through_pool(images: list[np.ndarray], shm: bool) -> list[np.ndarray]:
    executor = ParallelExecutor(
        workers=TRANSPORT_WORKERS, backend="process", shm=shm
    )
    return executor.map_results(_normalize, images)


def _point_stream(base_points, n):
    """``n`` *distinct* synthetic sample points, generated lazily.

    Cycles a small base pool while jittering each point's coordinates,
    so the stream behaves like a real county→state sweep: every yielded
    location is a fresh object that becomes garbage once its shard
    completes, and nothing upstream materializes.
    """
    for index, base in enumerate(itertools.islice(itertools.cycle(base_points), n)):
        jitter = (index // len(base_points)) * 1e-5
        yield dataclasses.replace(
            base,
            location=dataclasses.replace(
                base.location,
                lat=base.location.lat + jitter,
                lon=base.location.lon + jitter,
            ),
        )


def _traced_survey_peak(decoder, base_points, n, keep_locations):
    """Traced-peak bytes of one survey-engine run (selection excluded)."""
    stream = _point_stream(base_points, n)
    gc.collect()
    tracemalloc.start()
    tracemalloc.reset_peak()
    with Stopwatch() as sw:
        report = decoder.survey_stream(
            locations=stream,
            shard_size=SHARD_SIZE,
            keep_locations=keep_locations,
        )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert report.completed_locations == n
    return peak, sw.elapsed_s, report


def test_stream_perf_trajectory():
    cores = effective_cpu_count()
    core_capped = cores < 2
    shm_available = shared_memory_support()[0] is not None

    # -- shm vs pickle transport -------------------------------------------
    rng = np.random.default_rng(33)
    images = [
        rng.uniform(0.0, 255.0, size=IMAGE_SHAPE)
        for _ in range(N_TRANSPORT_IMAGES)
    ]
    payload_mb = images[0].nbytes * len(images) / 1e6

    with Stopwatch() as pickle_sw:
        via_pickle = _echo_through_pool(images, shm=False)
    with Stopwatch() as shm_sw:
        via_shm = _echo_through_pool(images, shm=True)
    shm_speedup = pickle_sw.elapsed_s / shm_sw.elapsed_s

    transport_deterministic = all(
        np.array_equal(a, b) for a, b in zip(via_pickle, via_shm)
    )
    assert transport_deterministic

    # Arena accounting for the same payload set, measured directly.
    arena_stats = None
    if shm_available:
        with SharedArrayArena() as arena:
            packed, handles = arena.pack(images)
            live_at_peak = arena.live_blocks
            for handle in handles:
                arena.release(handle)
            assert arena.live_blocks == 0  # every block released
            arena_stats = {**arena.stats.as_dict(), "live_at_peak": live_at_peak}

    # -- streaming survey: memory + throughput -----------------------------
    calibration = build_survey_dataset(n_images=60, size=256, seed=77)
    clients = build_clients([image.scene for image in calibration])
    county = make_durham_like(seed=3)
    street_view = StreetViewClient(counties=[county], api_key="bench")
    decoder = NeighborhoodDecoder(
        street_view=street_view,
        classifier=LLMIndicatorClassifier(clients["gemini-1.5-pro"]),
    )
    decoder.survey(county, 4, seed=9)  # warm every code path first
    base_points = NeighborhoodDecoder._select_points(county, 100, seed=0)

    # Throughput, untraced (tracemalloc would distort it).
    with Stopwatch() as throughput_sw:
        throughput_report = decoder.survey_stream(
            locations=_point_stream(base_points, THROUGHPUT_LOCATIONS),
            shard_size=SHARD_SIZE,
        )
    assert throughput_report.completed_locations == THROUGHPUT_LOCATIONS
    stream_locations_per_s = THROUGHPUT_LOCATIONS / throughput_sw.elapsed_s

    # Memory: the same 5,000 locations, streamed vs materialized.
    stream_peak, stream_s, _ = _traced_survey_peak(
        decoder, base_points, STREAM_LOCATIONS, keep_locations=False
    )
    batch_peak, batch_s, _ = _traced_survey_peak(
        decoder, base_points, STREAM_LOCATIONS, keep_locations=True
    )
    memory_ceiling = 2 * stream_peak
    bounded = stream_peak < memory_ceiling < batch_peak

    # Determinism: streamed aggregation reproduces the batch survey
    # byte-for-byte (county mode, same seed, JSON-level identity).
    batch_report = decoder.survey(county, 64, seed=5)
    stream_report = decoder.survey_stream(
        county, 64, seed=5, shard_size=16, keep_locations=True
    )
    byte_identical_report = stream_report.to_json() == batch_report.to_json()
    assert byte_identical_report
    aggregate_report = decoder.survey_stream(county, 64, seed=5, shard_size=16)
    identical_rates = (
        aggregate_report.indicator_rates() == batch_report.indicator_rates()
        and aggregate_report.rates_by_zone() == batch_report.rates_by_zone()
    )
    assert identical_rates

    # -- request coalescing -------------------------------------------------
    scenes = [image.scene for image in calibration[:COALESCE_UNIQUE]]
    requests = [
        ChatRequest(
            model="gpt-4o-mini",
            messages=(
                ChatMessage(
                    role="user",
                    text="Is there a sidewalk visible in the image?",
                    images=(ImageAttachment(scene=scene),),
                ),
            ),
        )
        for scene in scenes
        for _ in range(COALESCE_COPIES)
    ]
    client = clients["gpt-4o-mini"]

    before = client.stats.requests
    with Stopwatch() as plain_sw:
        plain_outcomes, plain_stats = BatchRunner(client).run(requests)
    plain_calls = client.stats.requests - before

    before = client.stats.requests
    with Stopwatch() as coalesced_sw:
        merged_outcomes, merged_stats = BatchRunner(client, coalesce=True).run(
            requests
        )
    coalesced_calls = client.stats.requests - before
    hit_rate = merged_stats.coalesced / len(requests)

    identical_outcomes = all(
        a.index == b.index and a.response.content == b.response.content
        for a, b in zip(plain_outcomes, merged_outcomes)
    )
    assert identical_outcomes

    document = write_bench(
        BENCH_PATH,
        "stream",
        {
            "config": {
                "image_shape": list(IMAGE_SHAPE),
                "n_transport_images": N_TRANSPORT_IMAGES,
                "transport_workers": TRANSPORT_WORKERS,
                "stream_locations": STREAM_LOCATIONS,
                "shard_size": SHARD_SIZE,
                "coalesce_requests": len(requests),
                "coalesce_unique": COALESCE_UNIQUE,
            },
            "transport": {
                "payload_mb": round(payload_mb, 2),
                "pickle_s": round(pickle_sw.elapsed_s, 4),
                "shm_s": round(shm_sw.elapsed_s, 4),
                "shm_speedup": round(shm_speedup, 3),
                "shm_available": shm_available,
                "effective_cpu_count": cores,
                "core_capped": core_capped,
                "deterministic": transport_deterministic,
                "arena_stats": arena_stats,
                "note": (
                    f"host exposes {cores} usable core(s); both transports "
                    "pay full process-pool serialization stalls, so the "
                    "speedup bar is waived and byte-identity is the "
                    "acceptance criterion"
                )
                if core_capped
                else f"{cores} usable cores",
            },
            "streaming": {
                "stream_locations_per_s": round(stream_locations_per_s, 2),
                "throughput_s": round(throughput_sw.elapsed_s, 2),
                "traced_stream_peak_bytes": stream_peak,
                "traced_batch_peak_bytes": batch_peak,
                "memory_ceiling_bytes": memory_ceiling,
                "bounded": bounded,
                "retained_bytes_per_location": round(
                    (batch_peak - stream_peak) / STREAM_LOCATIONS, 1
                ),
                "traced_stream_s": round(stream_s, 2),
                "traced_batch_s": round(batch_s, 2),
                "byte_identical_report": byte_identical_report,
                "identical_rates": identical_rates,
                "note": (
                    "peaks exclude point selection (a shared one-time "
                    "road-network transient) and carry tracemalloc "
                    "overhead; throughput is measured untraced"
                ),
            },
            "coalescing": {
                "requests": len(requests),
                "uncoalesced_upstream_calls": plain_calls,
                "coalesced_upstream_calls": coalesced_calls,
                "coalesced": merged_stats.coalesced,
                "hit_rate": round(hit_rate, 4),
                "uncoalesced_s": round(plain_sw.elapsed_s, 4),
                "coalesced_s": round(coalesced_sw.elapsed_s, 4),
                "identical_outcomes": identical_outcomes,
            },
        },
        repo_root=REPO_ROOT,
    )

    assert BENCH_PATH.exists()
    # Transport must win where the host can physically show it; a
    # single-core host records the honesty flag instead.
    assert core_capped or shm_speedup >= 1.2, (
        f"shm transport only {shm_speedup:.2f}× vs pickle on {cores} cores"
    )
    # The county-scale claim: 5,000 locations stream under a ceiling
    # the materializing run over the same locations exceeds.
    assert stream_peak < memory_ceiling, (
        f"stream peak {stream_peak} breached its own ceiling"
    )
    assert batch_peak > memory_ceiling, (
        f"batch peak {batch_peak} stayed under the ceiling "
        f"{memory_ceiling} — streaming saved no memory"
    )
    assert plain_calls == len(requests)
    assert coalesced_calls == COALESCE_UNIQUE
    assert hit_rate == pytest.approx(
        (COALESCE_COPIES - 1) / COALESCE_COPIES
    )
    assert document["streaming"]["bounded"]
