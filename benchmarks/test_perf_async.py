"""Perf benchmark: async pipelined survey engine vs serial and threads.

The acceptance workload mirrors ``test_perf_pipeline.py`` — a
32-location × 4-capture survey under 10 ms simulated fetch and LLM
round-trips — so the three engines are directly comparable:

* **serial** — the byte-identity reference;
* **thread-4** — the existing pool engine at ``workers=4``, the bar
  the async engine must clear;
* **async** — :meth:`~repro.core.pipeline.NeighborhoodDecoder.survey_async`
  at ``max_inflight=8`` with AIMD windowing and LLM micro-batching.

Headline metrics (guarded by ``repro bench --only async --compare``):
``pipeline.async_speedup`` (async vs serial wall clock, which must be
at least the thread-4 speedup — stage overlap plus micro-batching has
to beat whole-location fan-out) and ``pipeline.async_peak_inflight``
(the AIMD window actually opened under load).

Excluded from tier-1 (``perf`` marker); run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_async.py -m perf -q
"""

from __future__ import annotations

import asyncio
from pathlib import Path

import pytest

from repro.core.classifier import LLMIndicatorClassifier
from repro.core.pipeline import NeighborhoodDecoder
from repro.geo.county import make_durham_like
from repro.gsv.api import StreetViewClient
from repro.gsv.dataset import build_survey_dataset
from repro.llm.paper_targets import GEMINI_15_PRO
from repro.llm.registry import build_clients
from repro.perf import LatencyChatClient, Stopwatch, write_bench

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_async.json"

#: Same acceptance workload as the thread-pool bench, for a fair race.
N_LOCATIONS = 32
THREAD_WORKERS = 4
MAX_INFLIGHT = 8
FETCH_LATENCY_S = 0.010
LLM_LATENCY_S = 0.010


@pytest.fixture(scope="module")
def county():
    return make_durham_like(seed=3)


@pytest.fixture(scope="module")
def survey_clients():
    calibration = build_survey_dataset(n_images=60, size=256, seed=77)
    return build_clients(
        [image.scene for image in calibration], model_ids=(GEMINI_15_PRO,)
    )


def _decoder(county, clients):
    street_view = StreetViewClient(
        counties=[county], api_key="bench", latency_s=FETCH_LATENCY_S
    )
    client = LatencyChatClient(clients[GEMINI_15_PRO], latency_s=LLM_LATENCY_S)
    return NeighborhoodDecoder(
        street_view=street_view,
        classifier=LLMIndicatorClassifier(client),
    )


def test_async_engine_perf_trajectory(county, survey_clients):
    serial_decoder = _decoder(county, survey_clients)
    with Stopwatch() as serial_sw:
        serial_report = serial_decoder.survey(
            county, N_LOCATIONS, seed=0, workers=1
        )

    thread_decoder = _decoder(county, survey_clients)
    with Stopwatch() as thread_sw:
        thread_report = thread_decoder.survey(
            county, N_LOCATIONS, seed=0, workers=THREAD_WORKERS
        )

    async_decoder = _decoder(county, survey_clients)
    with Stopwatch() as async_sw:
        async_report = asyncio.run(
            async_decoder.survey_async(
                county, N_LOCATIONS, seed=0, max_inflight=MAX_INFLIGHT
            )
        )

    # Determinism first: the race only counts if all three engines
    # produce the same bytes.
    assert thread_report.to_json() == serial_report.to_json()
    assert async_report.to_json() == serial_report.to_json()
    assert serial_report.coverage == 1.0

    thread_speedup = serial_sw.elapsed_s / thread_sw.elapsed_s
    async_speedup = serial_sw.elapsed_s / async_sw.elapsed_s
    pipeline_stats = async_report.pipeline_stats
    batch_stats = async_report.batch_stats

    document = write_bench(
        BENCH_PATH,
        "async",
        {
            "config": {
                "n_locations": N_LOCATIONS,
                "captures_per_location": 4,
                "thread_workers": THREAD_WORKERS,
                "max_inflight": MAX_INFLIGHT,
                "fetch_latency_s": FETCH_LATENCY_S,
                "llm_latency_s": LLM_LATENCY_S,
            },
            "pipeline": {
                "serial_s": round(serial_sw.elapsed_s, 4),
                "thread_s": round(thread_sw.elapsed_s, 4),
                "async_s": round(async_sw.elapsed_s, 4),
                "thread_speedup": round(thread_speedup, 3),
                "async_speedup": round(async_speedup, 3),
                "async_locations_per_s": round(
                    N_LOCATIONS / async_sw.elapsed_s, 3
                ),
                "async_peak_inflight": pipeline_stats["peak_inflight"],
                "aimd": pipeline_stats,
                "microbatch": batch_stats,
                "deterministic": async_report.to_json()
                == serial_report.to_json(),
            },
        },
        repo_root=REPO_ROOT,
    )

    assert BENCH_PATH.exists()
    assert document["pipeline"]["deterministic"]
    # The acceptance bar: the pipelined engine must at least match the
    # thread pool on the same workload and latencies.
    assert async_speedup >= thread_speedup, (
        f"async {async_speedup:.2f}× below thread-{THREAD_WORKERS} "
        f"{thread_speedup:.2f}×"
    )
    assert pipeline_stats["peak_inflight"] >= THREAD_WORKERS
    assert batch_stats["batches"] >= 1
