"""Perf benchmark: what crash-safety costs (``BENCH_coord.json``).

The coordinator wraps every shard in durability machinery — an
fsynced manifest write per state transition, a per-location
checkpoint, heartbeats, an atomic result document, and a full
durable-record merge.  The contract is that a county-scale survey
buys all of that for a modest multiple of the raw serial engine, and
that forked shard workers claw the overhead back on multi-core hosts.

Three measurements:

* **serial** — the raw ``survey_stream`` engine over the frame, the
  baseline every coordinated run must byte-match;
* **coordinated** — the same frame through
  :class:`~repro.coordinator.SurveyCoordinator` (clean run, two
  workers); headline ``coordinator.locations_per_s`` and the
  coordinated/serial throughput ratio;
* **crash recovery** — the same plan under a seeded SIGKILL storm
  (half the shards die mid-flight), measuring what a storm adds on
  top of a clean coordinated run.

On a single-core host the process fan-out cannot show its win, so the
document records the ``core_capped`` honesty flag (the convention
shared with ``BENCH_detect.json`` / ``BENCH_stream.json``) and the
relative-throughput bar is waived; byte-identity is always enforced.

Excluded from tier-1 (``perf`` marker); run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_coordinator.py -m perf -q
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.coordinator import CrashSchedule, SurveyCoordinator
from repro.core.classifier import LLMIndicatorClassifier
from repro.core.pipeline import NeighborhoodDecoder
from repro.geo.county import make_durham_like
from repro.geo.sampling import plan_survey_points
from repro.gsv.api import StreetViewClient
from repro.gsv.dataset import build_survey_dataset
from repro.llm.paper_targets import GEMINI_15_PRO
from repro.llm.registry import build_clients
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.parallel import effective_cpu_count
from repro.perf import Stopwatch, write_bench

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_coord.json"

N_LOCATIONS = 192
SHARD_SIZE = 24  # 8 shards
MAX_WORKERS = 2
SEED = 5

#: A clean coordinated run may cost at most this multiple of the raw
#: serial engine's wall-clock on a core-capped host (fsyncs, forks,
#: polling, and the merge are all overhead there; parallelism cannot
#: pay any of it back).
COORD_OVERHEAD_LIMIT = 6.0


def _decoder(county, clients):
    return NeighborhoodDecoder(
        street_view=StreetViewClient(counties=[county], api_key="bench"),
        classifier=LLMIndicatorClassifier(clients[GEMINI_15_PRO]),
    )


def _coordinator(state_dir, county, clients, **overrides):
    kwargs = dict(
        state_dir=state_dir,
        counties=[county],
        n_locations=N_LOCATIONS,
        seed=SEED,
        decoder=_decoder(county, clients),
        shard_size=SHARD_SIZE,
        max_workers=MAX_WORKERS,
        lease_ttl_s=30.0,
        keep_locations=True,
    )
    kwargs.update(overrides)
    return SurveyCoordinator(**kwargs)


def test_coordinator_overhead_trajectory(tmp_path):
    county = make_durham_like(seed=3)
    calibration = build_survey_dataset(n_images=60, size=256, seed=77)
    clients = build_clients(
        [image.scene for image in calibration], model_ids=(GEMINI_15_PRO,)
    )
    cores = effective_cpu_count()
    core_capped = cores < 2

    points = plan_survey_points([county], N_LOCATIONS, seed=SEED)
    with Stopwatch() as serial_sw:
        serial = _decoder(county, clients).survey_stream(
            locations=points, workers=1, keep_locations=True
        )

    with use_metrics(MetricsRegistry()):
        with Stopwatch() as coord_sw:
            clean = _coordinator(tmp_path / "clean", county, clients).run()

    n_shards = -(-N_LOCATIONS // SHARD_SIZE)
    storm = CrashSchedule.seeded_kills(
        n_shards, seed=11, attempts=1, max_after=4, fraction=0.5
    )
    with use_metrics(MetricsRegistry()):
        with Stopwatch() as crash_sw:
            crashed = _coordinator(
                tmp_path / "crash", county, clients, crash_schedule=storm
            ).run()

    # Durability must be payload-invisible, storms included.
    byte_identical = (
        clean.report.to_json() == serial.to_json()
        and crashed.report.to_json() == serial.to_json()
    )

    locations_per_s = N_LOCATIONS / coord_sw.elapsed_s
    relative_throughput = serial_sw.elapsed_s / coord_sw.elapsed_s
    recovery_overhead = crash_sw.elapsed_s / coord_sw.elapsed_s

    document = write_bench(
        BENCH_PATH,
        "coord",
        {
            "config": {
                "n_locations": N_LOCATIONS,
                "shard_size": SHARD_SIZE,
                "shards": n_shards,
                "max_workers": MAX_WORKERS,
                "storm_kills": len(storm),
            },
            "coordinator": {
                "serial_s": round(serial_sw.elapsed_s, 4),
                "coordinated_s": round(coord_sw.elapsed_s, 4),
                "crashed_s": round(crash_sw.elapsed_s, 4),
                "locations_per_s": round(locations_per_s, 2),
                "relative_throughput": round(relative_throughput, 4),
                "recovery_overhead": round(recovery_overhead, 4),
                "requeues": crashed.requeues,
                "workers_spawned": crashed.workers_spawned,
                "byte_identical": byte_identical,
                "effective_cpu_count": cores,
                "core_capped": core_capped,
                "note": (
                    f"host exposes {cores} usable core(s); forked shard "
                    "workers cannot outrun the serial engine here, so "
                    "the throughput bar is waived and byte-identity is "
                    "the acceptance criterion"
                )
                if core_capped
                else f"{cores} usable cores",
            },
        },
        repo_root=REPO_ROOT,
    )

    assert BENCH_PATH.exists()
    assert document["coordinator"]["byte_identical"]
    assert crashed.requeues == len(storm)
    if core_capped:
        # Parallelism cannot pay the durability bill: bound the bill.
        assert (
            coord_sw.elapsed_s
            < serial_sw.elapsed_s * COORD_OVERHEAD_LIMIT
        ), (
            f"coordinated run cost {relative_throughput:.2f}x serial "
            f"throughput; even core-capped it must stay within "
            f"{COORD_OVERHEAD_LIMIT}x wall-clock"
        )
    else:
        # With real cores, sharded fan-out must at least break even
        # against the serial engine despite the durability machinery.
        assert relative_throughput >= 0.9, (
            f"coordinated throughput only {relative_throughput:.2f}x "
            f"serial on {cores} cores"
        )
