"""Health association study: the paper's motivating use case, measured.

Generates tract-level outcomes from literature-informed coefficients
(§I refs [4]–[6]), decodes exposures with Gemini, and fits the
standard binomial logistic regression with both exposure sources.
"""

import numpy as np
from conftest import publish
from repro.core import LLMIndicatorClassifier
from repro.core.indicators import ALL_INDICATORS
from repro.experiments.results import ExperimentResult
from repro.geo import make_durham_like
from repro.health import (
    TRUE_COEFFICIENTS,
    build_tract_survey,
    run_association_study,
)
from repro.llm import GEMINI_15_PRO


def test_health_association_study(suite, benchmark, results_dir):
    def run():
        survey = build_tract_survey(
            make_durham_like(seed=3),
            n_tracts=30,
            locations_per_tract=5,
            seed=0,
        )
        classifier = LLMIndicatorClassifier(suite.clients[GEMINI_15_PRO])
        decoded = survey.decoded_exposures(classifier)
        truth_study = run_association_study(
            survey, survey.true_exposures(), "ground truth"
        )
        llm_study = run_association_study(survey, decoded, "LLM-decoded")
        return survey, truth_study, llm_study

    survey, truth_study, llm_study = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    result = ExperimentResult(
        experiment_id="Ext. F",
        title="Obesity log-odds coefficients: truth vs LLM exposures",
        columns=["indicator", "true_beta", "truth_fit", "llm_fit"],
    )
    for indicator in ALL_INDICATORS:
        result.add_row(
            indicator=indicator.display_name,
            true_beta=TRUE_COEFFICIENTS["obesity"][indicator],
            truth_fit=truth_study.coefficient("obesity", indicator).estimate,
            llm_fit=llm_study.coefficient("obesity", indicator).estimate,
        )
    result.notes.append(
        f"sign agreement: truth={truth_study.sign_agreement(TRUE_COEFFICIENTS):.2f}, "
        f"LLM={llm_study.sign_agreement(TRUE_COEFFICIENTS):.2f}"
    )
    publish(result, results_dir)

    # The analysis run on ground-truth exposures recovers most signs;
    # the LLM-decoded run preserves a usable majority of them.
    assert truth_study.sign_agreement(TRUE_COEFFICIENTS) > 0.75
    assert llm_study.sign_agreement(TRUE_COEFFICIENTS) > 0.55
