"""Perf benchmark: parallel survey engine vs serial, with caching.

Measures the three optimizations this repo's perf trajectory tracks
(`BENCH_pipeline.json` at the repo root, one document per commit):

* **parallel fan-out** — a 32-location × 4-capture survey at
  ``workers=4`` vs strictly serial, under realistic simulated API
  latency (the real workload is network-bound; see DESIGN.md §8);
* **LLM response caching** — hit rate and wall-clock effect of the
  JSONL-journaled :class:`~repro.llm.cache.CachingChatClient` on a
  re-run survey;
* **render caching** — the content-addressed
  :class:`~repro.scene.render.RenderCache` on repeated captures.

Excluded from tier-1 (``perf`` marker); run with::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_pipeline.py -m perf -q
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.classifier import LLMIndicatorClassifier
from repro.core.pipeline import NeighborhoodDecoder
from repro.geo.county import ZoneKind, make_durham_like
from repro.geo.roadnet import RoadClass
from repro.gsv.api import StreetViewClient
from repro.gsv.dataset import build_survey_dataset
from repro.llm.cache import CachingChatClient
from repro.llm.paper_targets import GEMINI_15_PRO
from repro.llm.registry import build_clients
from repro.perf import LatencyChatClient, Stopwatch, write_bench
from repro.scene.generator import SceneGenerator
from repro.scene.render import RenderCache, render_scene

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_pipeline.json"

#: The acceptance workload: 32 locations × 4 headings, 4 workers.
N_LOCATIONS = 32
WORKERS = 4
#: Simulated API round-trip latency.  The real GSV Static API and the
#: commercial LLM endpoints answer in 100–1000 ms; 10 ms keeps the
#: bench fast while preserving the latency-bound regime the engine
#: is built for.
FETCH_LATENCY_S = 0.010
LLM_LATENCY_S = 0.010


@pytest.fixture(scope="module")
def county():
    return make_durham_like(seed=3)


@pytest.fixture(scope="module")
def survey_clients():
    calibration = build_survey_dataset(n_images=60, size=256, seed=77)
    return build_clients(
        [image.scene for image in calibration], model_ids=(GEMINI_15_PRO,)
    )


def _decoder(county, clients, cache_path=None):
    street_view = StreetViewClient(
        counties=[county], api_key="bench", latency_s=FETCH_LATENCY_S
    )
    client = LatencyChatClient(clients[GEMINI_15_PRO], latency_s=LLM_LATENCY_S)
    if cache_path is not None:
        client = CachingChatClient(client, cache_path=cache_path)
    return (
        NeighborhoodDecoder(
            street_view=street_view,
            classifier=LLMIndicatorClassifier(client),
        ),
        client,
    )


def test_pipeline_perf_trajectory(county, survey_clients, tmp_path):
    # -- serial vs parallel ------------------------------------------------
    serial_decoder, _ = _decoder(county, survey_clients)
    with Stopwatch() as serial_sw:
        serial_report = serial_decoder.survey(county, N_LOCATIONS, seed=0, workers=1)

    parallel_decoder, _ = _decoder(county, survey_clients)
    with Stopwatch() as parallel_sw:
        parallel_report = parallel_decoder.survey(
            county, N_LOCATIONS, seed=0, workers=WORKERS
        )

    # Determinism: the parallel report is byte-identical to serial.
    assert parallel_report.to_json() == serial_report.to_json()
    assert serial_report.coverage == 1.0

    speedup = serial_sw.elapsed_s / parallel_sw.elapsed_s

    # -- LLM response cache on a survey re-run -----------------------------
    cache_path = tmp_path / "survey_cache.jsonl"
    cached_decoder, caching_client = _decoder(
        county, survey_clients, cache_path=cache_path
    )
    with Stopwatch() as cold_sw:
        cold = cached_decoder.survey(county, N_LOCATIONS, seed=0, workers=WORKERS)
    caching_client.close()
    hits_before, misses_before = caching_client.hits, caching_client.misses
    with Stopwatch() as warm_sw:
        warm = cached_decoder.survey(county, N_LOCATIONS, seed=0, workers=WORKERS)
    assert warm.to_json() == cold.to_json() == parallel_report.to_json()
    warm_hits = caching_client.hits - hits_before
    warm_requests = warm_hits + (caching_client.misses - misses_before)
    warm_hit_rate = warm_hits / warm_requests

    # -- content-addressed render cache ------------------------------------
    generator = SceneGenerator(seed=0)
    scenes = [
        generator.generate(
            scene_id=f"bench_{i}",
            zone_kind=ZoneKind.URBAN,
            road_class=RoadClass.LOCAL,
            heading=0,
            road_bearing=0.0,
        )
        for i in range(8)
    ]
    render_cache = RenderCache(max_entries=32)
    with Stopwatch() as render_cold_sw:
        for scene in scenes:
            render_cache.get_or_render(scene, 320)
    with Stopwatch() as render_warm_sw:
        for scene in scenes:
            render_cache.get_or_render(scene, 320)
    uncached = Stopwatch()
    with uncached:
        for scene in scenes:
            render_scene(scene, 320)

    document = write_bench(
        BENCH_PATH,
        "pipeline",
        {
            "config": {
                "n_locations": N_LOCATIONS,
                "captures_per_location": 4,
                "workers": WORKERS,
                "fetch_latency_s": FETCH_LATENCY_S,
                "llm_latency_s": LLM_LATENCY_S,
            },
            "survey": {
                "serial_s": round(serial_sw.elapsed_s, 4),
                "parallel_s": round(parallel_sw.elapsed_s, 4),
                "speedup": round(speedup, 3),
                "serial_locations_per_s": round(
                    N_LOCATIONS / serial_sw.elapsed_s, 3
                ),
                "parallel_locations_per_s": round(
                    N_LOCATIONS / parallel_sw.elapsed_s, 3
                ),
                "deterministic": parallel_report.to_json()
                == serial_report.to_json(),
            },
            "llm_cache": {
                "cold_s": round(cold_sw.elapsed_s, 4),
                "warm_s": round(warm_sw.elapsed_s, 4),
                "warm_speedup": round(cold_sw.elapsed_s / warm_sw.elapsed_s, 3),
                "warm_hit_rate": round(warm_hit_rate, 4),
                "journal_entries": len(caching_client),
            },
            "render_cache": {
                "cold_s": round(render_cold_sw.elapsed_s, 4),
                "warm_s": round(render_warm_sw.elapsed_s, 4),
                "uncached_s": round(uncached.elapsed_s, 4),
                "hit_rate": round(render_cache.hit_rate, 4),
            },
        },
        repo_root=REPO_ROOT,
    )

    assert BENCH_PATH.exists()
    assert document["survey"]["deterministic"]
    # The acceptance bar: ≥ 2× at 4 workers on the 32-location survey.
    assert speedup >= 2.0, f"parallel speedup {speedup:.2f}× below 2×"
    assert render_cache.hit_rate == pytest.approx(0.5)
