"""Extension benches: the §V limitations quantified (DESIGN.md §4).

Not figures from the paper's evaluation — these implement the
discussion section's open questions: annotation-noise sensitivity,
few-shot cross-lingual mitigation, multi-frame fusion, voting vs
error correlation, and cost accounting.
"""

from conftest import publish
from repro.experiments.extensions import (
    run_correlation_ablation,
    run_cost_accounting,
    run_few_shot_languages,
    run_label_noise,
    run_multi_frame,
)


def test_ext_label_noise(suite, benchmark, results_dir):
    result = benchmark.pedantic(
        run_label_noise, args=(suite,), rounds=1, iterations=1
    )
    publish(result, results_dir)
    clean = result.rows[0]["f1"]
    noisy = result.rows[-1]["f1"]
    assert noisy <= clean + 0.02  # label noise never helps


def test_ext_few_shot_languages(suite, benchmark, results_dir):
    result = benchmark.pedantic(
        run_few_shot_languages, args=(suite,), rounds=1, iterations=1
    )
    publish(result, results_dir)
    zh = result.row_by("language", "zh")
    en = result.row_by("language", "en")
    # Few-shot partially closes the gap without beating English.
    assert zh["few_shot_recall"] > zh["zero_shot_recall"] + 0.05
    assert zh["few_shot_recall"] < en["zero_shot_recall"] + 0.03


def test_ext_multi_frame(suite, benchmark, results_dir):
    result = benchmark.pedantic(
        run_multi_frame, args=(suite,), rounds=1, iterations=1
    )
    publish(result, results_dir)
    for row in result.rows:
        single, union = row["single_frame"], row["four_frame_union"]
        if single == single and union == union:
            assert union >= single - 1e-9


def test_ext_correlation_ablation(suite, benchmark, results_dir):
    result = benchmark.pedantic(
        run_correlation_ablation, args=(suite,), rounds=1, iterations=1
    )
    publish(result, results_dir)
    shared = result.row_by(
        "error_structure", "shared perception (paper-like)"
    )
    independent = result.row_by("error_structure", "independent perception")
    # Independent errors let the vote recover at least as much.
    assert (
        independent["vote_accuracy"] >= shared["vote_accuracy"] - 0.02
    )


def test_ext_cost_accounting(suite, benchmark, results_dir):
    result = benchmark.pedantic(
        run_cost_accounting, args=(suite,), rounds=1, iterations=1
    )
    publish(result, results_dir)
    assert len(result.rows) == 3
