"""Tests for the response cache and survey exports."""

import json

import pytest

from repro.core import (
    LLMIndicatorClassifier,
    NeighborhoodDecoder,
    build_parallel_prompt,
)
from repro.geo import make_durham_like
from repro.gsv import StreetViewClient
from repro.llm import ImageAttachment
from repro.llm.cache import CachingChatClient, request_fingerprint
from repro.llm.base import ChatMessage, ChatRequest
from repro.reporting import (
    export_survey,
    survey_to_csv,
    survey_to_geojson,
    survey_to_markdown,
)


@pytest.fixture()
def attachment(urban_scene):
    return ImageAttachment(scene=urban_scene)


def _request(attachment, text="Is there a sidewalk visible in the image?"):
    return ChatRequest(
        model="gpt-4o-mini",
        messages=(
            ChatMessage(role="user", text=text, images=(attachment,)),
        ),
    )


class TestFingerprint:
    def test_identical_requests_same_key(self, attachment):
        assert request_fingerprint(_request(attachment)) == request_fingerprint(
            _request(attachment)
        )

    def test_different_text_different_key(self, attachment):
        a = request_fingerprint(_request(attachment, "sidewalk?"))
        b = request_fingerprint(_request(attachment, "powerline?"))
        assert a != b

    def test_different_temperature_different_key(self, attachment):
        base = _request(attachment)
        warm = ChatRequest(
            model=base.model, messages=base.messages, temperature=0.2
        )
        assert request_fingerprint(base) != request_fingerprint(warm)

    def test_different_image_different_key(self, urban_scene, rural_scene):
        a = _request(ImageAttachment(scene=urban_scene))
        b = _request(ImageAttachment(scene=rural_scene))
        assert request_fingerprint(a) != request_fingerprint(b)

    def test_different_model_different_key(self, attachment):
        """Ensemble members may share a cache path; the model name in
        the fingerprint keeps them from cross-serving responses."""
        base = _request(attachment)
        other = ChatRequest(model="gemini-1.5-pro", messages=base.messages)
        assert request_fingerprint(base) != request_fingerprint(other)


class TestCachingClient:
    def test_second_call_hits_cache(self, clients, attachment):
        caching = CachingChatClient(clients["gpt-4o-mini"])
        request = _request(attachment)
        first = caching.complete(request)
        inner_requests = clients["gpt-4o-mini"].stats.requests
        second = caching.complete(request)
        assert second.content == first.content
        assert caching.hits == 1 and caching.misses == 1
        # The inner client was not called again.
        assert clients["gpt-4o-mini"].stats.requests == inner_requests

    def test_persistence_round_trip(self, clients, attachment, tmp_path):
        path = tmp_path / "cache.json"
        request = _request(attachment)
        first = CachingChatClient(clients["gpt-4o-mini"], cache_path=path)
        original = first.complete(request)
        assert path.exists()

        reloaded = CachingChatClient(
            clients["gpt-4o-mini"], cache_path=path
        )
        cached = reloaded.complete(request)
        assert cached.content == original.content
        assert reloaded.hits == 1

    def test_clear(self, clients, attachment, tmp_path):
        path = tmp_path / "cache.json"
        caching = CachingChatClient(clients["gpt-4o-mini"], cache_path=path)
        caching.complete(_request(attachment))
        assert len(caching) == 1
        caching.clear()
        assert len(caching) == 0
        assert not path.exists()

    def test_works_under_classifier(self, clients, small_dataset):
        caching = CachingChatClient(clients["gemini-1.5-pro"])
        classifier = LLMIndicatorClassifier(caching)
        first = classifier.predictions(small_dataset.images[:8])
        second = classifier.predictions(small_dataset.images[:8])
        assert first == second
        assert caching.hits == 8

    def test_hit_rate(self, clients, attachment):
        caching = CachingChatClient(clients["claude-3.7"])
        prompt = build_parallel_prompt()
        request = ChatRequest(
            model="claude-3.7",
            messages=(
                ChatMessage(role="user", text=prompt, images=(attachment,)),
            ),
        )
        caching.complete(request)
        caching.complete(request)
        caching.complete(request)
        assert caching.hit_rate == pytest.approx(2 / 3)


class TestJournalPersistence:
    """The JSONL write-behind journal and its compaction."""

    def test_each_miss_appends_one_jsonl_line(
        self, clients, small_dataset, tmp_path
    ):
        path = tmp_path / "cache.jsonl"
        caching = CachingChatClient(clients["gpt-4o-mini"], cache_path=path)
        for image in small_dataset.images[:5]:
            caching.complete(_request(ImageAttachment(scene=image.scene)))
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 5
        for line in lines:
            record = json.loads(line)
            assert "key" in record and "content" in record

    def test_hits_do_not_touch_the_journal(self, clients, attachment, tmp_path):
        path = tmp_path / "cache.jsonl"
        caching = CachingChatClient(clients["gpt-4o-mini"], cache_path=path)
        request = _request(attachment)
        caching.complete(request)
        size_after_miss = path.stat().st_size
        caching.complete(request)
        assert caching.hits == 1
        assert path.stat().st_size == size_after_miss

    def test_compaction_dedups_newest_wins(self, clients, attachment, tmp_path):
        path = tmp_path / "cache.jsonl"
        key = request_fingerprint(_request(attachment))
        stale = {"key": key, "model": "gpt-4o-mini", "content": "stale",
                 "prompt_tokens": 1, "completion_tokens": 1}
        fresh = dict(stale, content="fresh")
        path.write_text(json.dumps(stale) + "\n" + json.dumps(fresh) + "\n")

        caching = CachingChatClient(clients["gpt-4o-mini"], cache_path=path)
        assert len(caching) == 1
        assert caching.complete(_request(attachment)).content == "fresh"
        caching.close()
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 1
        assert json.loads(lines[0])["content"] == "fresh"

    def test_legacy_map_format_loads_and_migrates(
        self, clients, attachment, tmp_path
    ):
        path = tmp_path / "cache.json"
        request = _request(attachment)
        legacy = {
            request_fingerprint(request): {
                "model": "gpt-4o-mini",
                "content": "NO.",
                "prompt_tokens": 2,
                "completion_tokens": 1,
            }
        }
        path.write_text(json.dumps(legacy))

        caching = CachingChatClient(clients["gpt-4o-mini"], cache_path=path)
        response = caching.complete(request)
        assert caching.hits == 1 and response.content == "NO."
        # Compaction migrates the legacy map to JSONL.
        caching.close()
        migrated = json.loads(path.read_text().strip())
        assert migrated["key"] == request_fingerprint(request)

    def test_legacy_map_with_appended_lines(self, clients, tmp_path, attachment):
        """An interrupted migration: old map first, journal lines after."""
        path = tmp_path / "cache.json"
        request = _request(attachment)
        legacy = {
            request_fingerprint(request): {
                "model": "gpt-4o-mini",
                "content": "legacy",
                "prompt_tokens": 1,
                "completion_tokens": 1,
            }
        }
        appended = {"key": "deadbeef", "model": "gpt-4o-mini",
                    "content": "appended", "prompt_tokens": 1,
                    "completion_tokens": 1}
        path.write_text(json.dumps(legacy) + "\n" + json.dumps(appended) + "\n")
        caching = CachingChatClient(clients["gpt-4o-mini"], cache_path=path)
        assert len(caching) == 2
        assert caching.complete(request).content == "legacy"

    def test_two_models_share_path_without_cross_serving(
        self, clients, attachment, tmp_path
    ):
        path = tmp_path / "shared.jsonl"
        request_a = _request(attachment)
        request_b = ChatRequest(
            model="gemini-1.5-pro", messages=request_a.messages
        )
        with CachingChatClient(
            clients["gpt-4o-mini"], cache_path=path
        ) as first:
            first.complete(request_a)
        with CachingChatClient(
            clients["gemini-1.5-pro"], cache_path=path
        ) as second:
            second.complete(request_b)
            assert second.misses == 1  # model differs → not served from A
            assert len(second) == 2  # but A's entry was loaded alongside

    def test_close_is_reusable(self, clients, attachment, tmp_path):
        path = tmp_path / "cache.jsonl"
        caching = CachingChatClient(clients["gpt-4o-mini"], cache_path=path)
        caching.complete(_request(attachment))
        caching.close()
        caching.complete(_request(attachment, "Any powerlines?"))
        caching.close()
        assert len(path.read_text().strip().split("\n")) == 2


@pytest.fixture(scope="module")
def survey_report(clients):
    county = make_durham_like(seed=3)
    decoder = NeighborhoodDecoder(
        street_view=StreetViewClient(counties=[county], api_key="x"),
        classifier=LLMIndicatorClassifier(clients["gemini-1.5-pro"]),
    )
    return decoder.survey(county, n_locations=6, seed=0)


class TestExports:
    def test_csv_shape(self, survey_report):
        text = survey_to_csv(survey_report)
        rows = text.strip().split("\n")
        assert len(rows) == 7  # header + 6 locations
        assert rows[0].startswith("latitude,longitude,county,zone")

    def test_geojson_valid(self, survey_report):
        geojson = survey_to_geojson(survey_report)
        assert geojson["type"] == "FeatureCollection"
        assert len(geojson["features"]) == 6
        feature = geojson["features"][0]
        lon, lat = feature["geometry"]["coordinates"]
        assert -180 <= lon <= 180 and -90 <= lat <= 90
        assert "sidewalk" in feature["properties"]

    def test_markdown_contains_rates(self, survey_report):
        text = survey_to_markdown(survey_report)
        assert "## Indicator rates" in text
        assert "Sidewalk" in text

    def test_export_writes_all_files(self, survey_report, tmp_path):
        paths = export_survey(survey_report, tmp_path)
        assert set(paths) == {"csv", "geojson", "markdown"}
        for path in paths.values():
            assert path.exists()
            assert path.stat().st_size > 0
        parsed = json.loads(paths["geojson"].read_text())
        assert parsed["type"] == "FeatureCollection"


class TestSingleFlight:
    """Concurrent identical misses must share one upstream call."""

    class _Gated:
        """Client whose first call blocks until the test releases it."""

        def __init__(self, inner):
            import threading

            self.inner = inner
            self.model_name = inner.model_name
            self.stats = inner.stats
            self.calls = 0
            self.entered = threading.Event()
            self.release = threading.Event()

        def complete(self, request):
            self.calls += 1
            self.entered.set()
            assert self.release.wait(10.0), "test never released the gate"
            return self.inner.complete(request)

    def test_identical_in_flight_requests_pay_once(self, clients, attachment):
        import threading

        gated = self._Gated(clients["gpt-4o-mini"])
        caching = CachingChatClient(gated)
        request = _request(attachment)
        responses = []

        def call():
            responses.append(caching.complete(request))

        leader = threading.Thread(target=call)
        leader.start()
        assert gated.entered.wait(10.0)
        followers = [threading.Thread(target=call) for _ in range(7)]
        for thread in followers:
            thread.start()
        import time

        time.sleep(0.2)  # let followers reach the flight wait
        gated.release.set()
        leader.join()
        for thread in followers:
            thread.join()

        assert gated.calls == 1  # one billable upstream call for 8 requests
        assert caching.misses == 1
        assert caching.coalesced + caching.hits == 7
        assert caching.coalesced >= 1
        assert len({response.content for response in responses}) == 1

    def test_leader_failure_propagates_and_clears_flight(self, attachment):
        import threading

        class _Failing:
            model_name = "gpt-4o-mini"
            calls = 0

            def complete(self, request):
                type(self).calls += 1
                raise RuntimeError("upstream down")

        caching = CachingChatClient(_Failing())
        request = _request(attachment)
        errors = []

        def call():
            try:
                caching.complete(request)
            except RuntimeError as err:
                errors.append(err)

        threads = [threading.Thread(target=call) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(errors) == 4  # nobody hangs, everybody sees the failure
        assert not caching._inflight  # flight cleared: next call can lead
        with pytest.raises(RuntimeError):
            caching.complete(request)

    def test_slow_leader_journal_failure_still_releases_followers(
        self, clients, attachment, tmp_path
    ):
        """Regression: journaling must never strand a waiting follower.

        The leader's miss bookkeeping (stats, journal append) used to
        run *before* the flight was resolved, so a journal write that
        raised left the follower parked on the flight event forever.
        Here the journal path is a directory — the append raises
        ``IsADirectoryError`` mid-resolution while a follower is
        already waiting — and everything must still come home: the
        follower gets the leader's response, the fee is paid once,
        and the broken journal only costs persistence.
        """
        import threading

        from repro.obs.metrics import MetricsRegistry, use_metrics

        journal_path = tmp_path / "cache.jsonl"
        gated = self._Gated(clients["gpt-4o-mini"])
        caching = CachingChatClient(gated, cache_path=journal_path)
        journal_path.mkdir()  # open("a") on a directory raises OSError
        request = _request(attachment)
        responses = []

        def call():
            responses.append(caching.complete(request))

        with use_metrics(MetricsRegistry()) as registry:
            leader = threading.Thread(target=call)
            leader.start()
            assert gated.entered.wait(10.0)
            follower = threading.Thread(target=call)
            follower.start()
            import time

            time.sleep(0.2)  # let the follower reach the flight wait
            gated.release.set()
            leader.join(10.0)
            follower.join(10.0)
            assert not leader.is_alive() and not follower.is_alive()

            assert gated.calls == 1  # one billable call despite the fault
            assert caching.misses == 1
            assert caching.coalesced + caching.hits == 1
            assert len({response.content for response in responses}) == 1
            assert not caching._inflight  # flight fully resolved
            assert caching._journal_broken
            assert registry.counter("llm.cache.journal_errors") == 1
            assert registry.counter("llm.cache.journal_writes") == 0

        # Persistence is gone but service continues: a fresh request
        # (cache miss) neither raises nor retries the dead journal.
        caching.complete(_request(attachment, text="Any streetlights?"))
        assert caching.misses == 2

    def test_clear_resets_coalesced_counter(self, clients, attachment):
        caching = CachingChatClient(clients["gpt-4o-mini"])
        caching.complete(_request(attachment))
        caching.coalesced = 3  # as if followers had shared flights
        caching.clear()
        assert caching.coalesced == 0
        assert caching.hits == caching.misses == 0
