"""Tests for the response cache and survey exports."""

import json

import pytest

from repro.core import (
    LLMIndicatorClassifier,
    NeighborhoodDecoder,
    build_parallel_prompt,
)
from repro.geo import make_durham_like
from repro.gsv import StreetViewClient
from repro.llm import ImageAttachment
from repro.llm.cache import CachingChatClient, request_fingerprint
from repro.llm.base import ChatMessage, ChatRequest
from repro.reporting import (
    export_survey,
    survey_to_csv,
    survey_to_geojson,
    survey_to_markdown,
)


@pytest.fixture()
def attachment(urban_scene):
    return ImageAttachment(scene=urban_scene)


def _request(attachment, text="Is there a sidewalk visible in the image?"):
    return ChatRequest(
        model="gpt-4o-mini",
        messages=(
            ChatMessage(role="user", text=text, images=(attachment,)),
        ),
    )


class TestFingerprint:
    def test_identical_requests_same_key(self, attachment):
        assert request_fingerprint(_request(attachment)) == request_fingerprint(
            _request(attachment)
        )

    def test_different_text_different_key(self, attachment):
        a = request_fingerprint(_request(attachment, "sidewalk?"))
        b = request_fingerprint(_request(attachment, "powerline?"))
        assert a != b

    def test_different_temperature_different_key(self, attachment):
        base = _request(attachment)
        warm = ChatRequest(
            model=base.model, messages=base.messages, temperature=0.2
        )
        assert request_fingerprint(base) != request_fingerprint(warm)

    def test_different_image_different_key(self, urban_scene, rural_scene):
        a = _request(ImageAttachment(scene=urban_scene))
        b = _request(ImageAttachment(scene=rural_scene))
        assert request_fingerprint(a) != request_fingerprint(b)


class TestCachingClient:
    def test_second_call_hits_cache(self, clients, attachment):
        caching = CachingChatClient(clients["gpt-4o-mini"])
        request = _request(attachment)
        first = caching.complete(request)
        inner_requests = clients["gpt-4o-mini"].stats.requests
        second = caching.complete(request)
        assert second.content == first.content
        assert caching.hits == 1 and caching.misses == 1
        # The inner client was not called again.
        assert clients["gpt-4o-mini"].stats.requests == inner_requests

    def test_persistence_round_trip(self, clients, attachment, tmp_path):
        path = tmp_path / "cache.json"
        request = _request(attachment)
        first = CachingChatClient(clients["gpt-4o-mini"], cache_path=path)
        original = first.complete(request)
        assert path.exists()

        reloaded = CachingChatClient(
            clients["gpt-4o-mini"], cache_path=path
        )
        cached = reloaded.complete(request)
        assert cached.content == original.content
        assert reloaded.hits == 1

    def test_clear(self, clients, attachment, tmp_path):
        path = tmp_path / "cache.json"
        caching = CachingChatClient(clients["gpt-4o-mini"], cache_path=path)
        caching.complete(_request(attachment))
        assert len(caching) == 1
        caching.clear()
        assert len(caching) == 0
        assert not path.exists()

    def test_works_under_classifier(self, clients, small_dataset):
        caching = CachingChatClient(clients["gemini-1.5-pro"])
        classifier = LLMIndicatorClassifier(caching)
        first = classifier.predictions(small_dataset.images[:8])
        second = classifier.predictions(small_dataset.images[:8])
        assert first == second
        assert caching.hits == 8

    def test_hit_rate(self, clients, attachment):
        caching = CachingChatClient(clients["claude-3.7"])
        prompt = build_parallel_prompt()
        request = ChatRequest(
            model="claude-3.7",
            messages=(
                ChatMessage(role="user", text=prompt, images=(attachment,)),
            ),
        )
        caching.complete(request)
        caching.complete(request)
        caching.complete(request)
        assert caching.hit_rate == pytest.approx(2 / 3)


@pytest.fixture(scope="module")
def survey_report(clients):
    county = make_durham_like(seed=3)
    decoder = NeighborhoodDecoder(
        street_view=StreetViewClient(counties=[county], api_key="x"),
        classifier=LLMIndicatorClassifier(clients["gemini-1.5-pro"]),
    )
    return decoder.survey(county, n_locations=6, seed=0)


class TestExports:
    def test_csv_shape(self, survey_report):
        text = survey_to_csv(survey_report)
        rows = text.strip().split("\n")
        assert len(rows) == 7  # header + 6 locations
        assert rows[0].startswith("latitude,longitude,county,zone")

    def test_geojson_valid(self, survey_report):
        geojson = survey_to_geojson(survey_report)
        assert geojson["type"] == "FeatureCollection"
        assert len(geojson["features"]) == 6
        feature = geojson["features"][0]
        lon, lat = feature["geometry"]["coordinates"]
        assert -180 <= lon <= 180 and -90 <= lat <= 90
        assert "sidewalk" in feature["properties"]

    def test_markdown_contains_rates(self, survey_report):
        text = survey_to_markdown(survey_report)
        assert "## Indicator rates" in text
        assert "Sidewalk" in text

    def test_export_writes_all_files(self, survey_report, tmp_path):
        paths = export_survey(survey_report, tmp_path)
        assert set(paths) == {"csv", "geojson", "markdown"}
        for path in paths.values():
            assert path.exists()
            assert path.stat().st_size > 0
        parsed = json.loads(paths["geojson"].read_text())
        assert parsed["type"] == "FeatureCollection"
