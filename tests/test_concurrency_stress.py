"""Concurrency stress tests: shared primitives under 16-thread load.

The rate limiter, the circuit breaker, and the metrics registry are
the three objects every worker thread in a parallel survey shares.
Each test hammers one of them from 16 threads and asserts *exact*
conserved quantities — not "roughly right under load" but the precise
counts a correct lock discipline guarantees:

* every :class:`~repro.llm.batch.TokenBucket` token is spent exactly
  once (no double-spends), and the total admission rate never exceeds
  the configured one;
* a failing :class:`~repro.resilience.breaker.CircuitBreaker` trips
  exactly once however many threads report failures concurrently;
* :class:`~repro.obs.metrics.MetricsRegistry` loses no increments and
  no histogram observations.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.llm.batch import TokenBucket
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.resilience.breaker import CircuitBreaker, CircuitState
from repro.resilience.clock import VirtualClock, WallClock

N_THREADS = 16


def _hammer(worker, n_threads: int = N_THREADS) -> None:
    """Run ``worker(thread_index)`` on ``n_threads`` threads, joined.

    A barrier lines every thread up first so the contended window is
    as wide as possible; worker exceptions propagate to the test.
    """
    barrier = threading.Barrier(n_threads)
    errors: list[BaseException] = []

    def run(index: int) -> None:
        barrier.wait()
        try:
            worker(index)
        except BaseException as err:  # pragma: no cover - failure path
            errors.append(err)

    threads = [
        threading.Thread(target=run, args=(index,))
        for index in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestTokenBucketStress:
    def test_no_token_is_double_spent(self):
        """400 acquires against rate=400/s: wall time bounds admission.

        If two threads ever double-spent a token the 400 admissions
        would finish faster than the refill rate physically allows.
        ``capacity`` starts 32 tokens in the burst budget; the other
        368 must be refilled at 400/s, so the run cannot complete in
        under (400 - 32) / 400 seconds.
        """
        rate, capacity, per_thread = 400.0, 32.0, 25
        total = N_THREADS * per_thread
        bucket = TokenBucket(rate=rate, capacity=capacity, clock=WallClock())
        registry = MetricsRegistry()
        waits: list[float] = [0.0] * N_THREADS

        def worker(index: int) -> None:
            for _ in range(per_thread):
                waits[index] += bucket.acquire()

        started = time.perf_counter()
        with use_metrics(registry):
            _hammer(worker)
        elapsed = time.perf_counter() - started

        floor = (total - capacity) / rate
        assert elapsed >= floor, (
            f"{total} admissions in {elapsed:.3f}s beats the physical "
            f"floor {floor:.3f}s — a token was double-spent"
        )
        assert all(wait >= 0 for wait in waits)
        # The bucket cannot hold more than it started with plus refill.
        bucket._refill()
        assert bucket._tokens <= capacity + 1e-9

    def test_wait_metrics_conserve_total_waited_time(self):
        """ratelimit.waited_s equals the sum every thread observed."""
        bucket = TokenBucket(rate=200.0, capacity=1.0, clock=WallClock())
        registry = MetricsRegistry()
        waited = [0.0] * N_THREADS
        counts = [0] * N_THREADS

        def worker(index: int) -> None:
            for _ in range(10):
                wait = bucket.acquire()
                waited[index] += wait
                if wait > 0:
                    counts[index] += 1

        with use_metrics(registry):
            _hammer(worker)

        assert registry.counter("ratelimit.waits") == sum(counts)
        assert registry.counter("ratelimit.waited_s") == pytest.approx(
            sum(waited)
        )


class TestCircuitBreakerStress:
    def test_concurrent_failures_trip_exactly_once(self):
        """160 racing failure reports produce one trip, not sixteen."""
        breaker = CircuitBreaker(
            name="stress",
            failure_threshold=5,
            recovery_time_s=1e9,  # stays open: no half-open re-trips
            clock=VirtualClock(),
        )
        registry = MetricsRegistry()

        def worker(index: int) -> None:
            for _ in range(10):
                breaker.allow()
                breaker.record_failure()

        with use_metrics(registry):
            _hammer(worker)

        assert breaker.state is CircuitState.OPEN
        assert breaker.opens == 1
        assert registry.counter("breaker.trips") == 1

    def test_successes_keep_the_circuit_closed_under_load(self):
        breaker = CircuitBreaker(
            name="healthy", failure_threshold=3, clock=VirtualClock()
        )

        def worker(index: int) -> None:
            for _ in range(50):
                assert breaker.allow()
                breaker.record_success()

        _hammer(worker)
        assert breaker.state is CircuitState.CLOSED
        assert breaker.opens == 0


class TestMetricsRegistryStress:
    def test_no_increment_or_observation_is_lost(self):
        registry = MetricsRegistry()
        per_thread = 1000

        def worker(index: int) -> None:
            for step in range(per_thread):
                registry.inc("stress.shared")
                registry.inc(f"stress.thread.{index}")
                registry.inc("stress.weighted", 0.5)
                registry.observe(
                    "stress.values", float(step % 7), edges=(2.0, 5.0)
                )

        _hammer(worker)

        total = N_THREADS * per_thread
        assert registry.counter("stress.shared") == total
        assert registry.counter("stress.weighted") == pytest.approx(
            0.5 * total
        )
        for index in range(N_THREADS):
            assert registry.counter(f"stress.thread.{index}") == per_thread
        hist = registry.snapshot()["histograms"]["stress.values"]
        assert hist["count"] == total
        # step % 7 cycles 0..6: 0,1,2 -> first bucket; 3,4,5 -> second;
        # 6 -> overflow.  per_thread is a multiple of 7 plus remainder;
        # compute the exact expectation instead of assuming.
        cycle = [0, 0, 0]
        for step in range(per_thread):
            value = step % 7
            cycle[0 if value <= 2 else 1 if value <= 5 else 2] += 1
        assert hist["counts"] == [bucket * N_THREADS for bucket in cycle]
        assert hist["sum"] == pytest.approx(
            N_THREADS * sum(step % 7 for step in range(per_thread))
        )

    def test_concurrent_merges_conserve_child_totals(self):
        """16 threads merging disjoint deltas into one parent registry."""
        parent = MetricsRegistry()

        def worker(index: int) -> None:
            for _ in range(100):
                child = MetricsRegistry()
                child.inc("merged.total")
                child.observe("merged.values", 1.0, edges=(2.0,))
                parent.merge(child.snapshot())

        _hammer(worker)
        assert parent.counter("merged.total") == N_THREADS * 100
        hist = parent.snapshot()["histograms"]["merged.values"]
        assert hist["count"] == N_THREADS * 100
        assert hist["counts"] == [N_THREADS * 100, 0]


class TestServiceDaemonUnderLoad:
    """16 tenant threads hammering one service daemon's admission API.

    The daemon's coroutine APIs all execute on its event loop, so the
    threads funnel through ``run_coroutine_threadsafe`` — exactly how
    an embedding host drives it.  The assertions are exact conserved
    quantities again: every admitted job is in the store (none lost),
    the fake engine never sees two jobs in flight (no double-starts),
    and the state census plus every tenant ledger reconcile when the
    dust settles.
    """

    def test_sixteen_tenants_submit_cancel_status(self, tmp_path):
        import asyncio

        from repro.service import (
            AdmissionError,
            JobSpec,
            JobState,
            SurveyService,
            TenantQuota,
        )
        from repro.service.store import canonical_fees_usd, checkpoint_key

        from .service_fakes import FakeStack

        loop = asyncio.new_event_loop()
        loop_thread = threading.Thread(target=loop.run_forever)
        loop_thread.start()

        def call(coro):
            return asyncio.run_coroutine_threadsafe(coro, loop).result(30)

        stack = FakeStack()
        service = SurveyService(
            stack,
            tmp_path / "state",
            default_quota=TenantQuota(max_active_jobs=64, budget_usd=5.0,
                                      on_budget_exhausted="pause"),
            max_queue_depth=10_000,
            close_stack=True,
        )
        call(service.start())

        admitted: list[list[str]] = [[] for _ in range(N_THREADS)]
        cancelled: list[list[str]] = [[] for _ in range(N_THREADS)]

        def worker(index: int) -> None:
            tenant = f"tenant-{index:02d}"
            for step in range(12):
                try:
                    job_id = call(
                        service.submit(
                            JobSpec(
                                tenant=tenant,
                                n_locations=1 + step % 2,
                                seed=index * 1000 + step,
                                priority=step % 3,
                            )
                        )
                    )
                    admitted[index].append(job_id)
                except AdmissionError:
                    continue
                if step % 4 == 3:
                    if call(service.cancel(job_id)):
                        cancelled[index].append(job_id)
                record = call(service.status(job_id))
                assert record.spec.tenant == tenant

        _hammer(worker)
        call(service.drain())
        call(service.close())
        loop.call_soon_threadsafe(loop.stop)
        loop_thread.join()
        loop.close()

        all_admitted = [job_id for per in admitted for job_id in per]
        # No lost jobs, no duplicate ids.
        assert len(set(all_admitted)) == len(all_admitted)
        for job_id in all_admitted:
            assert job_id in service.store.records

        # No double-starts: the fake engine saw strictly serial runs,
        # and nobody ran more often than the retry budget allows.
        assert stack.peak_concurrent == 1
        for record in service.store.records.values():
            assert record.attempts <= service.max_attempts

        # Census reconciles: every admitted job reached a terminal
        # state (budgets were sized to cover the whole schedule).
        counts = service.counts()
        assert counts["submitted"] == len(all_admitted)
        assert counts["queued"] == counts["running"] == 0
        assert (
            counts["done"] + counts["failed"] + counts["cancelled"]
            == len(all_admitted)
        )
        assert counts["done"] > 0
        assert counts["cancelled"] == sum(len(per) for per in cancelled)

        # Billing reconciles tenant by tenant, job by job.
        for index in range(N_THREADS):
            tenant = f"tenant-{index:02d}"
            books = service.ledger_snapshot(tenant)
            assert books["reserved_usd"] == 0.0
            expected = 0.0
            for job_id in admitted[index]:
                record = service.store.records[job_id]
                key = checkpoint_key(record.spec, "Durham")
                canonical = canonical_fees_usd(
                    service.store.checkpoint_path(job_id), key
                )
                assert record.fees_settled_usd == canonical
                expected += canonical
            assert books["settled_usd"] == pytest.approx(expected)
