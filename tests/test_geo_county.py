"""Tests for the synthetic county and zoning models."""

import pytest

from repro.core.indicators import ALL_INDICATORS
from repro.geo import (
    ZONE_PRIORS,
    County,
    LatLon,
    Zone,
    ZoneKind,
    make_durham_like,
    make_robeson_like,
    study_counties,
)


class TestZone:
    def test_rejects_inverted_extent(self):
        with pytest.raises(ValueError):
            Zone(ZoneKind.RURAL, south=35.0, west=-79.0, north=34.0, east=-78.0)
        with pytest.raises(ValueError):
            Zone(ZoneKind.RURAL, south=34.0, west=-78.0, north=35.0, east=-79.0)

    def test_contains_center(self):
        zone = Zone(ZoneKind.URBAN, 35.0, -79.0, 35.1, -78.9)
        assert zone.contains(zone.center)

    def test_does_not_contain_outside_point(self):
        zone = Zone(ZoneKind.URBAN, 35.0, -79.0, 35.1, -78.9)
        assert not zone.contains(LatLon(36.0, -79.0))


class TestCounty:
    def test_zone_at_falls_back_to_nearest(self):
        county = make_robeson_like()
        outside = LatLon(county.north + 0.01, county.west)
        zone = county.zone_at(outside)  # must not raise
        assert isinstance(zone, Zone)

    def test_zone_at_requires_zones(self):
        empty = County("Empty", 34.0, -79.0, 35.0, -78.0, [])
        with pytest.raises(ValueError):
            empty.zone_at(LatLon(34.5, -78.5))

    def test_every_interior_point_has_a_zone(self):
        county = make_durham_like()
        for frac in (0.1, 0.5, 0.9):
            point = LatLon(
                county.south + frac * (county.north - county.south),
                county.west + frac * (county.east - county.west),
            )
            assert county.zone_at(point).contains(point)


class TestStudyCounties:
    def test_two_counties(self):
        counties = study_counties()
        assert [c.name for c in counties] == ["Robeson", "Durham"]

    def test_robeson_is_predominantly_rural(self):
        mix = make_robeson_like().zone_mix()
        assert mix[ZoneKind.RURAL] > 0.5

    def test_durham_is_predominantly_urban(self):
        mix = make_durham_like().zone_mix()
        urbanized = mix.get(ZoneKind.URBAN, 0) + mix.get(
            ZoneKind.COMMERCIAL, 0
        )
        assert urbanized > mix.get(ZoneKind.RURAL, 0)

    def test_deterministic_in_seed(self):
        a = make_robeson_like(seed=3)
        b = make_robeson_like(seed=3)
        assert [z.kind for z in a.zones] == [z.kind for z in b.zones]

    def test_different_seeds_differ(self):
        a = make_robeson_like(seed=3)
        b = make_robeson_like(seed=4)
        assert [z.kind for z in a.zones] != [z.kind for z in b.zones]


class TestZonePriors:
    def test_all_zone_kinds_covered(self):
        assert set(ZONE_PRIORS) == set(ZoneKind)

    def test_all_indicators_covered(self):
        indicator_names = {ind.value for ind in ALL_INDICATORS}
        for priors in ZONE_PRIORS.values():
            assert set(priors) == indicator_names

    def test_priors_are_probabilities(self):
        for priors in ZONE_PRIORS.values():
            for value in priors.values():
                assert 0.0 <= value <= 1.0

    def test_urban_has_more_sidewalks_than_rural(self):
        assert (
            ZONE_PRIORS[ZoneKind.URBAN]["sidewalk"]
            > ZONE_PRIORS[ZoneKind.RURAL]["sidewalk"]
        )

    def test_rural_has_more_powerlines_than_commercial(self):
        assert (
            ZONE_PRIORS[ZoneKind.RURAL]["powerline"]
            > ZONE_PRIORS[ZoneKind.COMMERCIAL]["powerline"]
        )
