"""Tests for few-shot prompting and the §V extension experiments."""

import pytest

from repro.core import ClassifierConfig, LLMIndicatorClassifier, PromptStyle
from repro.core.fewshot import (
    build_few_shot_messages,
    build_few_shot_request,
    count_exemplars,
)
from repro.core.indicators import Indicator
from repro.core.metrics import ClassificationReport
from repro.llm import GEMINI_15_PRO, Language


class TestFewShotBuilding:
    def test_messages_carry_images_and_answers(self, small_dataset):
        exemplars = small_dataset.images[:2]
        messages = build_few_shot_messages(exemplars)
        assert len(messages) == 2
        for message, exemplar in zip(messages, exemplars):
            assert message.images[0].scene == exemplar.scene
            assert message.text.startswith("Example:")

    def test_requires_exemplars(self):
        with pytest.raises(ValueError):
            build_few_shot_messages([])

    def test_request_final_image_is_target(self, small_dataset):
        request = build_few_shot_request(
            model=GEMINI_15_PRO,
            image=small_dataset[5],
            exemplars=small_dataset.images[:3],
        )
        assert request.images[-1].scene == small_dataset[5].scene
        assert len(request.images) == 4

    def test_count_exemplars(self, small_dataset):
        request = build_few_shot_request(
            model=GEMINI_15_PRO,
            image=small_dataset[5],
            exemplars=small_dataset.images[:3],
            language=Language.CHINESE,
        )
        assert count_exemplars(request.user_text) == 3

    def test_config_rejects_fewshot_with_sequential(self, small_dataset):
        with pytest.raises(ValueError):
            ClassifierConfig(
                style=PromptStyle.SEQUENTIAL,
                few_shot_exemplars=tuple(small_dataset.images[:1]),
            )


class TestFewShotEffect:
    def test_improves_chinese_sidewalk_recall(
        self, clients, small_dataset, calibration_dataset
    ):
        truths = [image.presence for image in small_dataset]
        zero = LLMIndicatorClassifier(
            clients[GEMINI_15_PRO],
            ClassifierConfig(language=Language.CHINESE),
        ).predictions(small_dataset.images)
        few = LLMIndicatorClassifier(
            clients[GEMINI_15_PRO],
            ClassifierConfig(
                language=Language.CHINESE,
                few_shot_exemplars=tuple(calibration_dataset.images[:3]),
            ),
        ).predictions(small_dataset.images)
        zero_recall = ClassificationReport.from_predictions(
            truths, zero
        ).mean_recall
        few_recall = ClassificationReport.from_predictions(
            truths, few
        ).mean_recall
        assert few_recall > zero_recall

    def test_no_effect_on_english(
        self, clients, small_dataset, calibration_dataset
    ):
        """English has no language penalty to mitigate."""
        truths = [image.presence for image in small_dataset]
        zero = LLMIndicatorClassifier(
            clients[GEMINI_15_PRO], ClassifierConfig()
        ).predictions(small_dataset.images)
        few = LLMIndicatorClassifier(
            clients[GEMINI_15_PRO],
            ClassifierConfig(
                few_shot_exemplars=tuple(calibration_dataset.images[:2])
            ),
        ).predictions(small_dataset.images)
        zero_recall = ClassificationReport.from_predictions(
            truths, zero
        ).mean_recall
        few_recall = ClassificationReport.from_predictions(
            truths, few
        ).mean_recall
        assert abs(few_recall - zero_recall) < 0.06


class TestExtensionExperiments:
    @pytest.fixture(scope="class")
    def tiny_suite(self):
        from repro.detect.train import TrainConfig
        from repro.experiments import ExperimentConfig, ExperimentSuite

        return ExperimentSuite(
            config=ExperimentConfig(
                n_images=96,
                image_size=256,
                n_calibration_images=160,
                detector_train=TrainConfig(epochs=4, batch_size=16),
            )
        )

    def test_label_noise_rows(self, tiny_suite):
        from repro.experiments.extensions import run_label_noise

        result = run_label_noise(tiny_suite, jitters=(0.0, 0.03))
        assert len(result.rows) == 2
        assert result.rows[0]["condition"] == "clean labels"

    def test_multi_frame_union_no_worse(self, tiny_suite):
        from repro.experiments.extensions import run_multi_frame

        result = run_multi_frame(tiny_suite)
        for row in result.rows:
            single = row["single_frame"]
            union = row["four_frame_union"]
            if single == single and union == union:  # both non-NaN
                assert union >= single - 1e-9

    def test_few_shot_language_experiment(self, tiny_suite):
        from repro.experiments.extensions import run_few_shot_languages

        result = run_few_shot_languages(tiny_suite, n_exemplars=2)
        zh = result.row_by("language", "zh")
        assert zh["few_shot_recall"] >= zh["zero_shot_recall"]

    def test_cost_accounting_rows(self, tiny_suite):
        from repro.experiments.extensions import run_cost_accounting

        tiny_suite.model_predictions(GEMINI_15_PRO)
        result = run_cost_accounting(tiny_suite)
        approaches = [row["approach"] for row in result.rows]
        assert "trained detector" in approaches
        vote = next(r for r in result.rows if "vote" in r["approach"])
        single = next(r for r in result.rows if "single" in r["approach"])
        assert vote["tokens"] == 3 * single["tokens"]


class TestCLI:
    def test_list_command(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "fig6" in out

    def test_unknown_scale_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["table1", "--scale", "galactic"])

    def test_runs_param_experiment_smoke(self, capsys):
        from repro.cli import main

        assert main(["fig4", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out
