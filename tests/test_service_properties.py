"""Seeded property tests for the service scheduler's invariants.

Each case drives a :class:`~repro.service.SurveyService` (real
scheduler, ledgers, manifest, checkpoints — fake engine, see
``service_fakes``) through a seeded random schedule of submits,
cancels, budget grants, drains, injected engine faults, and simulated
daemon restarts, then asserts the invariants that must hold under
*any* interleaving:

* conservation — ``queued + running + done + failed + cancelled ==
  submitted`` at every observation point;
* budgets never negative — ``settled + reserved <= budget`` for every
  tenant with a budget, and nothing is ever reserved at idle;
* quota — no tenant ever holds more active jobs than its quota allows;
* exactly-once billing — every terminal job's settlement equals the
  canonical fee rebuilt from its durable checkpoint, and each tenant's
  ledger equals the sum of its jobs' settlements.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.service import (
    AdmissionError,
    JobSpec,
    JobState,
    SurveyService,
    TenantQuota,
    canonical_fees_usd,
    checkpoint_key,
)

from .service_fakes import FakeStack

TENANTS = ("acme", "beta", "gamma", "delta")

QUOTAS = {
    "acme": TenantQuota(max_active_jobs=3, budget_usd=1.0,
                        on_budget_exhausted="pause"),
    "beta": TenantQuota(max_active_jobs=2, budget_usd=0.3,
                        on_budget_exhausted="reject"),
    "gamma": TenantQuota(max_active_jobs=4),  # unmetered
    "delta": TenantQuota(max_active_jobs=1, budget_usd=0.1,
                         on_budget_exhausted="pause"),
}


def assert_invariants(service: SurveyService, *, idle: bool) -> None:
    counts = service.counts()
    states = sum(
        counts[state.value] for state in JobState
    )
    assert states == counts["submitted"], "conservation law broken"

    for tenant in TENANTS:
        quota = service.quota_for(tenant)
        books = service.ledger_snapshot(tenant)
        active = sum(
            1
            for r in service.store.records.values()
            if r.spec.tenant == tenant and not r.terminal
        )
        assert active <= quota.max_active_jobs
        if books["budget_usd"] is not None:
            assert books["remaining_usd"] >= 0.0, (
                f"{tenant} overdrawn: {books}"
            )
            assert books["settled_usd"] + books["reserved_usd"] <= (
                books["budget_usd"] + 1e-9
            )
        assert books["settled_usd"] >= 0.0
        assert books["reserved_usd"] >= 0.0
        if idle:
            assert books["reserved_usd"] == 0.0

    settled_by_tenant = {tenant: 0.0 for tenant in TENANTS}
    for record in service.store.records.values():
        if not record.terminal:
            assert record.fees_settled_usd is None
            continue
        key = checkpoint_key(
            record.spec, service.stack.county(record.spec.county_seed).name
        )
        canonical = canonical_fees_usd(
            service.store.checkpoint_path(record.job_id), key
        )
        assert record.fees_settled_usd == canonical, (
            f"{record.job_id}: settled {record.fees_settled_usd} != "
            f"canonical {canonical}"
        )
        settled_by_tenant[record.spec.tenant] += record.fees_settled_usd
    for tenant in TENANTS:
        assert service.ledger_snapshot(tenant)["settled_usd"] == (
            pytest.approx(settled_by_tenant[tenant])
        )


@pytest.mark.parametrize("schedule_seed", [0, 1, 2, 3, 4])
def test_random_interleavings_preserve_invariants(schedule_seed, tmp_path):
    rng = random.Random(1000 + schedule_seed)

    async def drill():
        stack = FakeStack()
        service = SurveyService(
            stack,
            tmp_path / "state",
            quotas=dict(QUOTAS),
            max_queue_depth=6,
            max_attempts=2,
            close_stack=True,
        )
        submitted: list[str] = []
        next_seed = 0
        for step in range(60):
            op = rng.random()
            if op < 0.45:
                spec = JobSpec(
                    tenant=rng.choice(TENANTS),
                    kind=rng.choice(("survey", "classify")),
                    n_locations=rng.randint(1, 3),
                    seed=next_seed,
                    priority=rng.randint(0, 3),
                )
                next_seed += 1
                if rng.random() < 0.15:
                    # Schedule an engine fault partway through this job;
                    # the retry attempt resumes past the checkpoint.
                    stack.fail_plan[spec.seed] = rng.randint(
                        0, spec.n_locations - 1
                    )
                try:
                    submitted.append(await service.submit(spec))
                except AdmissionError:
                    pass  # rejection is a legal outcome, not a failure
            elif op < 0.60 and submitted:
                await service.cancel(rng.choice(submitted))
            elif op < 0.70:
                await service.grant_budget(
                    rng.choice(TENANTS), rng.uniform(0.0, 0.2)
                )
            elif op < 0.85:
                await service.run_until_idle()
                assert_invariants(service, idle=True)
            else:
                # Simulated daemon restart: abandon the instance
                # without settling and recover from the manifest.
                service = SurveyService(
                    stack,
                    tmp_path / "state",
                    quotas=dict(QUOTAS),
                    max_queue_depth=6,
                    max_attempts=2,
                    close_stack=True,
                )
            assert_invariants(service, idle=False)
        await service.run_until_idle()
        assert_invariants(service, idle=True)
        # Every submitted job is still known (none lost) ...
        for job_id in submitted:
            assert job_id in service.store.records
        # ... and nothing dispatchable remains except budget-paused work.
        for record in service.store.records.values():
            if record.terminal:
                continue
            assert record.state is JobState.QUEUED
            quota = service.quota_for(record.spec.tenant)
            assert quota.on_budget_exhausted == "pause"
        await service.close()

    asyncio.run(drill())


def test_restart_mid_running_job_never_double_settles(tmp_path):
    """The sharpest billing case: kill with a RUNNING record and a
    partial checkpoint, restart twice, and watch each location get
    settled exactly once."""

    async def drill():
        stack = FakeStack()
        service = SurveyService(
            stack, tmp_path / "state", max_attempts=3, close_stack=True
        )
        job_id = await service.submit(
            JobSpec(tenant="acme", n_locations=3, seed=0)
        )
        # Crash mid-job: RUNNING in the manifest, one location durable.
        record = service.store.records[job_id]
        record.transition(JobState.RUNNING)
        record.attempts = 1
        service.store.flush()
        from repro.resilience.checkpoint import SurveyCheckpoint

        key = checkpoint_key(record.spec, "Durham")
        partial = SurveyCheckpoint(
            service.store.checkpoint_path(job_id), key
        )
        partial.record(0, {"images": 4})

        for _ in range(2):  # two successive restarts
            service = SurveyService(
                stack, tmp_path / "state", max_attempts=3, close_stack=True
            )
            assert_invariants(service, idle=False)
        assert await service.run_until_idle() == 1
        record = service.store.records[job_id]
        assert record.state is JobState.DONE
        assert record.resumed
        assert record.fees_settled_usd == pytest.approx(3 * 4 * 0.007)
        assert service.ledger_snapshot("acme")["settled_usd"] == (
            pytest.approx(3 * 4 * 0.007)
        )
        await service.close()

    asyncio.run(drill())


def test_jobs_never_run_concurrently(tmp_path):
    """The single-runner execution model: however many jobs queue up,
    the fake engine never observes two runs in flight."""

    async def drill():
        stack = FakeStack()
        service = SurveyService(
            stack, tmp_path / "state", max_queue_depth=32, close_stack=True
        )
        for index in range(12):
            await service.submit(
                JobSpec(tenant=TENANTS[index % 4], n_locations=2, seed=index)
            )
        await service.start()
        await asyncio.sleep(0)
        await service.drain()
        await service.close()
        assert stack.started == 12
        assert stack.peak_concurrent == 1

    asyncio.run(drill())
