"""Consistency checks on the transcribed paper constants.

These tests pin the calibration targets to the paper's own arithmetic:
if a transcription typo slipped into ``paper_targets``, the averages
would stop matching the numbers the paper reports in its prose.
"""

import numpy as np
import pytest

from repro.core.indicators import ALL_INDICATORS, Indicator
from repro.llm import (
    ALL_MODEL_IDS,
    DISPLAY_NAMES,
    PAPER_LANGUAGE_CLASS_OVERRIDES,
    PAPER_LANGUAGE_RECALL,
    PAPER_LLM_METRICS,
    PAPER_MODEL_ACCURACY,
    PAPER_TEMPERATURE_F1,
    PAPER_TOP_P_F1,
    PAPER_VOTING_ACCURACY,
    VOTING_MODEL_IDS,
    Language,
)
from repro.experiments.runner import PAPER_TABLE1


class TestTableTargets:
    def test_all_models_all_classes(self):
        for model_id in ALL_MODEL_IDS:
            assert set(PAPER_LLM_METRICS[model_id]) == set(ALL_INDICATORS)

    def test_rates_are_probabilities(self):
        for metrics in PAPER_LLM_METRICS.values():
            for target in metrics.values():
                assert 0.0 < target.precision <= 1.0
                assert 0.0 < target.recall <= 1.0

    def test_gemini_average_recall_matches_table4(self):
        # Table IV reports an average recall of 0.90.
        values = [
            PAPER_LLM_METRICS["gemini-1.5-pro"][ind].recall
            for ind in ALL_INDICATORS
        ]
        assert float(np.mean(values)) == pytest.approx(0.897, abs=0.01)

    def test_chatgpt_average_precision_matches_table3(self):
        # Table III reports an average precision of 0.66.
        values = [
            PAPER_LLM_METRICS["gpt-4o-mini"][ind].precision
            for ind in ALL_INDICATORS
        ]
        assert float(np.mean(values)) == pytest.approx(0.66, abs=0.01)

    def test_single_lane_precision_bad_everywhere(self):
        """The paper's headline error structure.

        SR precision is in each model's bottom two (ChatGPT's single
        worst class is apartment at 0.32; SR is its second-worst).
        """
        for model_id in ALL_MODEL_IDS:
            metrics = PAPER_LLM_METRICS[model_id]
            sr = metrics[Indicator.SINGLE_LANE_ROAD].precision
            worse_than_sr = sum(
                1 for m in metrics.values() if m.precision < sr
            )
            assert worse_than_sr <= 1, model_id
            assert sr <= 0.55

    def test_display_names_cover_models(self):
        assert set(DISPLAY_NAMES) >= set(ALL_MODEL_IDS)


class TestFigureTargets:
    def test_voting_average_matches_prose(self):
        # §IV-C2 reports "overall average accuracy of 88.5%"; the
        # paper's own per-class numbers average to 88.9% — we pin the
        # transcription to the per-class values within that slack.
        values = list(PAPER_VOTING_ACCURACY.values())
        assert float(np.mean(values)) == pytest.approx(0.885, abs=0.006)

    def test_voting_models_are_top_three(self):
        assert set(VOTING_MODEL_IDS) == {
            "gemini-1.5-pro",
            "claude-3.7",
            "grok-2",
        }
        # ChatGPT (lowest average accuracy, tied with Grok but with
        # the weaker precision trade-off) is excluded.
        assert "gpt-4o-mini" not in VOTING_MODEL_IDS

    def test_language_ordering(self):
        recalls = PAPER_LANGUAGE_RECALL
        assert (
            recalls[Language.ENGLISH]
            > recalls[Language.BENGALI]
            > recalls[Language.SPANISH]
            > recalls[Language.CHINESE]
        )

    def test_language_overrides_reference_known_failures(self):
        assert PAPER_LANGUAGE_CLASS_OVERRIDES[
            (Language.CHINESE, Indicator.SIDEWALK)
        ] == pytest.approx(0.01)
        assert PAPER_LANGUAGE_CLASS_OVERRIDES[
            (Language.SPANISH, Indicator.SINGLE_LANE_ROAD)
        ] == pytest.approx(0.18)

    def test_default_sampling_settings_best_in_paper(self):
        assert PAPER_TEMPERATURE_F1[1.0] == max(PAPER_TEMPERATURE_F1.values())
        assert PAPER_TOP_P_F1[0.95] == max(PAPER_TOP_P_F1.values())

    def test_model_accuracy_ranking(self):
        # Fig. 5: Gemini best, then Claude, then ChatGPT/Grok tied.
        assert PAPER_MODEL_ACCURACY["gemini-1.5-pro"] == max(
            PAPER_MODEL_ACCURACY.values()
        )


class TestTable1Targets:
    def test_all_classes(self):
        assert set(PAPER_TABLE1) == set(ALL_INDICATORS)

    def test_average_f1_matches_prose(self):
        # §IV-B1: "average F1 score of 96.3%" (computed over classes
        # the table's own "Average" row is partially inconsistent, as
        # published papers sometimes are; we pin to the per-class F1s).
        f1s = [values[2] for values in PAPER_TABLE1.values()]
        assert float(np.mean(f1s)) == pytest.approx(0.963, abs=0.01)

    def test_map_near_ceiling(self):
        for values in PAPER_TABLE1.values():
            assert values[3] > 0.97

    def test_single_lane_weakest_f1(self):
        f1s = {ind: values[2] for ind, values in PAPER_TABLE1.items()}
        assert min(f1s, key=f1s.get) is Indicator.SINGLE_LANE_ROAD

    def test_streetlight_strongest_f1(self):
        f1s = {ind: values[2] for ind, values in PAPER_TABLE1.items()}
        assert max(f1s, key=f1s.get) is Indicator.STREETLIGHT
