"""Tests for the evidence model and profile calibration."""

import numpy as np
import pytest

from repro.core.indicators import ALL_INDICATORS, Indicator
from repro.geo import RoadClass, ZoneKind
from repro.llm import (
    ALL_MODEL_IDS,
    EvidenceModel,
    PAPER_LLM_METRICS,
    calibrate_profiles,
)
from repro.llm.language import Language
from repro.scene import SceneGenerator


@pytest.fixture(scope="module")
def scenes():
    gen = SceneGenerator(seed=21)
    out = []
    for i in range(400):
        zone = list(ZoneKind)[i % 4]
        road = RoadClass.ARTERIAL if i % 3 == 0 else RoadClass.LOCAL
        out.append(
            gen.generate(
                f"cal{i}",
                zone,
                road_class=road,
                heading=(i % 4) * 90,
                road_bearing=float((i * 37) % 180),
            )
        )
    return out


class TestEvidenceModel:
    def test_deterministic(self, urban_scene):
        model = EvidenceModel(seed=4)
        assert model.evidence(urban_scene) == model.evidence(urban_scene)

    def test_covers_all_indicators(self, urban_scene):
        evidence = EvidenceModel().evidence(urban_scene)
        assert set(evidence) == set(ALL_INDICATORS)
        for value in evidence.values():
            assert 0.0 < value < 1.0

    def test_present_evidence_exceeds_absent(self, scenes):
        model = EvidenceModel(seed=0)
        samples = model.evidence_samples(scenes)
        for indicator in ALL_INDICATORS:
            present, absent = samples[indicator]
            assert present.mean() > absent.mean() + 0.2, indicator

    def test_road_confusion_single_lane(self, scenes):
        """Multilane-road scenes yield elevated single-lane evidence."""
        model = EvidenceModel(seed=0)
        with_mr = []
        without_road = []
        for scene in scenes:
            if scene.presence[Indicator.SINGLE_LANE_ROAD]:
                continue
            ev = model.evidence(scene)[Indicator.SINGLE_LANE_ROAD]
            if scene.presence[Indicator.MULTILANE_ROAD]:
                with_mr.append(ev)
            else:
                without_road.append(ev)
        assert np.mean(with_mr) > np.mean(without_road) + 0.25

    def test_bare_pole_raises_streetlight_evidence(self, scenes):
        model = EvidenceModel(seed=0)
        pole, clean = [], []
        for scene in scenes:
            if scene.presence[Indicator.STREETLIGHT]:
                continue
            if scene.presence[Indicator.POWERLINE]:
                continue
            ev = model.evidence(scene)[Indicator.STREETLIGHT]
            kinds = {d.kind for d in scene.distractors}
            (pole if "bare_pole" in kinds else clean).append(ev)
        assert pole and clean
        assert np.mean(pole) > np.mean(clean)

    def test_shared_across_consumers(self, urban_scene):
        a = EvidenceModel(seed=9)
        b = EvidenceModel(seed=9)
        assert a.evidence(urban_scene) == b.evidence(urban_scene)


class TestCalibration:
    @pytest.fixture(scope="class")
    def profiles(self, scenes):
        return calibrate_profiles(scenes)

    def test_all_models_calibrated(self, profiles):
        assert set(profiles) == set(ALL_MODEL_IDS)

    def test_policies_cover_all_indicators(self, profiles):
        for profile in profiles.values():
            assert set(profile.policies) == set(ALL_INDICATORS)

    def test_fits_achieve_tpr_targets(self, profiles):
        for model_id, profile in profiles.items():
            for indicator, fit in profile.fits.items():
                target = min(
                    PAPER_LLM_METRICS[model_id][indicator].recall, 0.985
                )
                assert fit.achieved_tpr == pytest.approx(
                    target, abs=0.04
                ), (model_id, indicator)

    def test_sequential_shifts_nonnegative(self, profiles):
        for profile in profiles.values():
            for shift in profile.sequential_shifts.values():
                assert shift >= 0.0

    def test_language_shifts_exist_for_non_english(self, profiles):
        profile = profiles["gemini-1.5-pro"]
        languages = {lang for lang, _ in profile.language_shifts}
        assert languages == {
            Language.SPANISH,
            Language.CHINESE,
            Language.BENGALI,
        }

    def test_chinese_sidewalk_shift_is_catastrophic(self, profiles):
        profile = profiles["gemini-1.5-pro"]
        shift = profile.language_shifts[
            (Language.CHINESE, Indicator.SIDEWALK)
        ]
        ordinary = profile.language_shifts[
            (Language.CHINESE, Indicator.POWERLINE)
        ]
        assert shift > ordinary + 0.1

    def test_calibration_requires_scenes(self):
        with pytest.raises(ValueError):
            calibrate_profiles([])

    def test_idio_evidence_bounded_and_deterministic(self, profiles, urban_scene):
        profile = profiles["grok-2"]
        a = profile.idio_evidence(urban_scene.scene_id, Indicator.SIDEWALK, 0.5)
        b = profile.idio_evidence(urban_scene.scene_id, Indicator.SIDEWALK, 0.5)
        assert a == b
        assert 0.0 < a < 1.0

    def test_effective_policy_applies_shifts(self, profiles):
        profile = profiles["gemini-1.5-pro"]
        base = profile.effective_policy(Indicator.SIDEWALK)
        complex_ = profile.effective_policy(
            Indicator.SIDEWALK, complex_structure=True
        )
        chinese = profile.effective_policy(
            Indicator.SIDEWALK, language=Language.CHINESE
        )
        assert complex_.threshold >= base.threshold
        assert chinese.threshold > base.threshold
