"""Tests for the NanoDetector model, target assignment, and training."""

import numpy as np
import pytest

from repro.core.indicators import ALL_INDICATORS, Indicator
from repro.detect import (
    CELL_COVER_THRESHOLD,
    ModelConfig,
    NanoDetector,
    TrainConfig,
    assign_targets,
    build_training_tensors,
    evaluate_detector,
    sigmoid,
    train_detector,
)
from repro.detect.model import _label_components
from repro.scene import BoundingBox


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_extremes_stable(self):
        values = sigmoid(np.array([-1000.0, 1000.0]))
        assert values[0] == pytest.approx(0.0)
        assert values[1] == pytest.approx(1.0)
        assert not np.isnan(values).any()

    def test_monotone(self):
        xs = np.linspace(-5, 5, 101)
        assert np.all(np.diff(sigmoid(xs)) > 0)


class TestComponentLabeling:
    def test_single_blob(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[1:3, 1:3] = True
        labels, n = _label_components(mask)
        assert n == 1
        assert (labels >= 0).sum() == 4

    def test_two_blobs(self):
        mask = np.zeros((6, 6), dtype=bool)
        mask[0, 0] = True
        mask[5, 5] = True
        labels, n = _label_components(mask)
        assert n == 2

    def test_diagonal_connectivity(self):
        mask = np.zeros((3, 3), dtype=bool)
        mask[0, 0] = mask[1, 1] = mask[2, 2] = True
        _, n = _label_components(mask)
        assert n == 1  # 8-connectivity joins diagonals

    def test_empty(self):
        _, n = _label_components(np.zeros((3, 3), dtype=bool))
        assert n == 0


class TestAssignTargets:
    def test_empty_annotations(self):
        obj, box = assign_targets([], grid=8)
        assert obj.sum() == 0
        assert box.sum() == 0

    def test_large_box_covers_many_cells(self):
        annotations = [
            (Indicator.MULTILANE_ROAD, BoundingBox(0.0, 0.5, 1.0, 1.0))
        ]
        obj, _ = assign_targets(annotations, grid=8)
        class_index = list(ALL_INDICATORS).index(Indicator.MULTILANE_ROAD)
        assert obj[:, class_index].sum() == 32  # bottom half of 64 cells

    def test_tiny_box_claims_one_cell(self):
        annotations = [
            (Indicator.STREETLIGHT, BoundingBox(0.50, 0.50, 0.52, 0.52))
        ]
        obj, _ = assign_targets(annotations, grid=8)
        class_index = list(ALL_INDICATORS).index(Indicator.STREETLIGHT)
        assert obj[:, class_index].sum() == 1

    def test_box_target_is_full_bbox(self):
        bbox = BoundingBox(0.2, 0.4, 0.8, 0.9)
        annotations = [(Indicator.SIDEWALK, bbox)]
        obj, box = assign_targets(annotations, grid=8)
        class_index = list(ALL_INDICATORS).index(Indicator.SIDEWALK)
        positives = obj[:, class_index] > 0.5
        targets = box[positives, class_index, :]
        assert np.allclose(targets[:, 0], 0.5)  # cx
        assert np.allclose(targets[:, 2], 0.6)  # w

    def test_occupancy_restricts_positives(self):
        bbox = BoundingBox(0.0, 0.0, 1.0, 1.0)
        sliver = BoundingBox(0.0, 0.0, 0.126, 1.0)  # leftmost column
        with_occ = [(Indicator.SIDEWALK, bbox, [sliver])]
        without = [(Indicator.SIDEWALK, bbox)]
        class_index = list(ALL_INDICATORS).index(Indicator.SIDEWALK)
        obj_occ, _ = assign_targets(with_occ, grid=8)
        obj_box, _ = assign_targets(without, grid=8)
        assert obj_occ[:, class_index].sum() < obj_box[:, class_index].sum()
        assert obj_occ[:, class_index].sum() == 8

    def test_overlapping_objects_larger_cover_wins(self):
        big = BoundingBox(0.0, 0.0, 0.5, 0.5)
        small = BoundingBox(0.0, 0.0, 0.13, 0.13)
        annotations = [
            (Indicator.APARTMENT, big),
            (Indicator.APARTMENT, small),
        ]
        obj, box = assign_targets(annotations, grid=8)
        class_index = list(ALL_INDICATORS).index(Indicator.APARTMENT)
        # Cell (0,0) fully covered by both; both cover it 100%, big
        # assigned first wins ties (strictly-greater comparison).
        target_w = box[0, class_index, 2]
        assert target_w == pytest.approx(0.5)


class TestTraining:
    @pytest.fixture(scope="class")
    def trained(self, small_dataset):
        splits = small_dataset.split(seed=0)
        result = train_detector(
            splits.train,
            model_config=ModelConfig(hidden=64),
            train_config=TrainConfig(epochs=6, seed=0),
        )
        return result, splits

    def test_loss_decreases(self, trained):
        result, _ = trained
        assert result.loss_history[-1] < result.loss_history[0] * 0.8

    def test_detects_roads_after_training(self, trained):
        result, splits = trained
        report = evaluate_detector(result.model, splits.test)
        road_f1 = report.per_class[Indicator.MULTILANE_ROAD].f1
        assert road_f1 > 0.5

    def test_rejects_empty_training_set(self):
        with pytest.raises(ValueError):
            train_detector([])

    def test_precomputed_tensors_reused(self, small_dataset):
        splits = small_dataset.split(seed=0)
        tensors = build_training_tensors(splits.train[:20], 16)
        result = train_detector(
            splits.train[:20],
            train_config=TrainConfig(epochs=2, seed=0),
            precomputed=tensors,
        )
        assert result.model.is_initialized

    def test_training_deterministic(self, small_dataset):
        splits = small_dataset.split(seed=0)
        tensors = build_training_tensors(splits.train[:16], 16)
        a = train_detector(
            splits.train[:16],
            train_config=TrainConfig(epochs=2, seed=3),
            precomputed=tensors,
        )
        b = train_detector(
            splits.train[:16],
            train_config=TrainConfig(epochs=2, seed=3),
            precomputed=tensors,
        )
        assert np.array_equal(a.model.w1, b.model.w1)


class TestBatchedInference:
    @pytest.fixture(scope="class")
    def model_and_frames(self, small_dataset):
        splits = small_dataset.split(seed=0)
        result = train_detector(
            splits.train[:32],
            model_config=ModelConfig(hidden=32),
            train_config=TrainConfig(epochs=3, seed=1),
        )
        frames = [image.render() for image in splits.test[:8]]
        return result.model, frames

    def test_predict_cells_batch_matches_per_image(self, model_and_frames):
        model, frames = model_and_frames
        batch_scores, batch_boxes = model.predict_cells_batch(frames)
        assert batch_scores.shape[0] == len(frames)
        for index, frame in enumerate(frames):
            scores, boxes = model.predict_cells(frame)
            assert np.array_equal(batch_scores[index], scores)
            assert np.array_equal(batch_boxes[index], boxes)

    def test_detect_batch_matches_per_image(self, model_and_frames):
        model, frames = model_and_frames
        batched = model.detect_batch(frames, conf_threshold=0.3)
        assert len(batched) == len(frames)
        for frame, detections in zip(frames, batched):
            expected = model.detect(frame, conf_threshold=0.3)
            assert len(detections) == len(expected)
            for got, want in zip(detections, expected):
                assert got.indicator == want.indicator
                assert got.score == want.score
                assert np.array_equal(got.box, want.box)

    def test_empty_batch_has_batched_shape(self, model_and_frames):
        model, _ = model_and_frames
        scores, boxes = model.predict_cells_batch([])
        assert scores.shape[0] == 0 and boxes.shape[0] == 0
        assert model.detect_batch([]) == []


class TestChunkingInvariance:
    """Training tensors must not depend on how extraction was split up."""

    def test_tensors_identical_across_chunk_sizes(self, small_dataset):
        images = small_dataset.split(seed=0).train[:10]
        reference = build_training_tensors(images, 16, chunk_size=len(images))
        for chunk_size in (1, 3, 4):
            chunked = build_training_tensors(images, 16, chunk_size=chunk_size)
            for got, want in zip(chunked, reference):
                assert np.array_equal(got, want)

    def test_tensors_identical_with_process_workers(self, small_dataset):
        images = small_dataset.split(seed=0).train[:8]
        serial = build_training_tensors(images, 16, workers=1)
        parallel = build_training_tensors(images, 16, workers=2, chunk_size=2)
        for got, want in zip(parallel, serial):
            assert np.array_equal(got, want)

    def test_training_invariant_to_chunking(self, small_dataset):
        images = small_dataset.split(seed=0).train[:16]
        config = TrainConfig(epochs=2, seed=3)
        fine = train_detector(
            images,
            train_config=config,
            precomputed=build_training_tensors(images, 16, chunk_size=2),
        )
        coarse = train_detector(
            images,
            train_config=config,
            precomputed=build_training_tensors(images, 16, chunk_size=16),
        )
        assert np.array_equal(fine.model.w1, coarse.model.w1)
        assert np.array_equal(fine.model.w2, coarse.model.w2)
        assert np.array_equal(fine.model.b1, coarse.model.b1)
        assert np.array_equal(fine.model.b2, coarse.model.b2)


class TestPersistence:
    def test_save_load_round_trip(self, small_dataset, tmp_path):
        splits = small_dataset.split(seed=0)
        result = train_detector(
            splits.train[:16],
            model_config=ModelConfig(hidden=32),
            train_config=TrainConfig(epochs=1, seed=0),
        )
        path = tmp_path / "model.json"
        result.model.save(path)
        loaded = NanoDetector.load(path)
        image = splits.test[0].render()
        original = result.model.detect(image)
        recovered = loaded.detect(image)
        assert len(original) == len(recovered)
        for a, b in zip(original, recovered):
            assert a.indicator == b.indicator
            assert a.score == pytest.approx(b.score)

    def test_untrained_model_raises(self):
        model = NanoDetector()
        with pytest.raises(RuntimeError):
            model.detect(np.zeros((64, 64, 3), dtype=np.uint8))
