"""Tests for the experiment harness (configs, results, suite wiring)."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    ExperimentResult,
    ExperimentSuite,
    paper_config,
    ratio,
    smoke_config,
)


class TestConfig:
    def test_paper_scale(self):
        config = paper_config()
        assert config.n_images == 1200
        assert config.image_size == 640
        assert config.detector_train.epochs == 20
        assert config.detector_train.batch_size == 16

    def test_smoke_is_smaller(self):
        assert smoke_config().n_images < paper_config().n_images

    def test_rejects_shared_seeds(self):
        with pytest.raises(ValueError):
            ExperimentConfig(dataset_seed=5, calibration_seed=5)

    def test_rejects_bad_image_count(self):
        with pytest.raises(ValueError):
            ExperimentConfig(n_images=13)


class TestExperimentResult:
    def test_add_row_validates_columns(self):
        result = ExperimentResult("X", "t", columns=["a", "b"])
        with pytest.raises(ValueError):
            result.add_row(a=1)

    def test_render_contains_values(self):
        result = ExperimentResult("Fig. 9", "demo", columns=["name", "value"])
        result.add_row(name="x", value=0.5)
        text = result.render()
        assert "Fig. 9" in text
        assert "0.500" in text

    def test_row_lookup(self):
        result = ExperimentResult("X", "t", columns=["name", "value"])
        result.add_row(name="a", value=1)
        assert result.row_by("name", "a")["value"] == 1
        with pytest.raises(KeyError):
            result.row_by("name", "zzz")

    def test_ratio(self):
        assert ratio(0.5, 1.0) == 0.5
        assert np.isnan(ratio(0.5, 0.0))


@pytest.fixture(scope="module")
def suite():
    """A tiny suite: enough to exercise every runner end to end."""
    from repro.detect.train import TrainConfig

    return ExperimentSuite(
        config=ExperimentConfig(
            n_images=96,
            image_size=256,
            n_calibration_images=160,
            detector_train=TrainConfig(epochs=4, batch_size=16),
        )
    )


class TestSuiteLLMExperiments:
    def test_table2_rows(self, suite):
        result = suite.run_table2()
        assert len(result.rows) == 6
        for row in result.rows:
            assert row["Gemini 1.5 Pro"] in (
                "Yes", "No", "Yes.", "No.",
            ) or isinstance(row["Gemini 1.5 Pro"], str)

    def test_fig4_shape(self, suite):
        result = suite.run_fig4()
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["parallel"] >= row["sequential"] - 0.05

    def test_fig5_has_vote_row(self, suite):
        result = suite.run_fig5()
        assert result.rows[-1]["model"] == "Majority vote (top 3)"
        assert len(result.rows) == 5

    def test_tables3to6_all_models(self, suite):
        tables = suite.run_tables3to6()
        assert len(tables) == 4
        for table in tables.values():
            assert len(table.rows) == 7

    def test_fig6_language_ordering(self, suite):
        result = suite.run_fig6()
        recalls = {row["language"]: row["recall"] for row in result.rows}
        assert recalls["en"] > recalls["zh"]

    def test_param_is_flat(self, suite):
        result = suite.run_param()
        f1s = [row["f1"] for row in result.rows]
        assert max(f1s) - min(f1s) < 0.12

    def test_predictions_cached(self, suite):
        first = suite.model_predictions("gemini-1.5-pro")
        second = suite.model_predictions("gemini-1.5-pro")
        assert first is second


class TestSuiteDetectorExperiments:
    def test_table1_rows(self, suite):
        result = suite.run_table1()
        assert len(result.rows) == 7
        average = result.row_by("label", "Average")
        assert 0.0 <= average["f1"] <= 1.0

    def test_fig3_degrades_with_noise(self, suite):
        result = suite.run_fig3()
        f1_by_snr = {row["snr_db"]: row["f1"] for row in result.rows}
        assert f1_by_snr[30] > f1_by_snr[5]

    def test_prior_work_table(self, suite):
        result = suite.run_prior()
        ours = [r for r in result.rows if "ours" in str(r["model"])]
        assert len(ours) == 1
