"""Tests for response parsing."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    ResponseParseError,
    answers_to_presence,
    extract_decisions,
    parse_answers,
    presence_to_answer_text,
)
from repro.core.indicators import ALL_INDICATORS, Indicator, IndicatorPresence
from repro.llm import Language


class TestExtractDecisions:
    def test_plain_english(self):
        assert extract_decisions("Yes, No, No, Yes, No, Yes") == [
            True, False, False, True, False, True,
        ]

    def test_case_insensitive(self):
        assert extract_decisions("YES, no") == [True, False]

    def test_trailing_punctuation(self):
        assert extract_decisions("Yes, No.") == [True, False]

    def test_quoted_answers(self):
        assert extract_decisions("'Yes', 'No'") == [True, False]

    def test_spanish_accents(self):
        assert extract_decisions("Sí, No, sí") == [True, False, True]

    def test_chinese_separated(self):
        assert extract_decisions("是, 否, 是") == [True, False, True]

    def test_chinese_fullwidth_commas(self):
        assert extract_decisions("是，否，否") == [True, False, False]

    def test_bengali(self):
        assert extract_decisions("হ্যাঁ, না") == [True, False]

    def test_ignores_noise_words(self):
        assert extract_decisions("Answers: Yes and also No") == [True, False]

    def test_empty(self):
        assert extract_decisions("") == []

    def test_newline_separated(self):
        assert extract_decisions("Yes\nNo\nYes") == [True, False, True]


class TestParseAnswers:
    def test_exact_count(self):
        parsed = parse_answers("Yes, No, Yes", expected=3)
        assert parsed.answers == (True, False, True)

    def test_count_mismatch_raises(self):
        with pytest.raises(ResponseParseError):
            parse_answers("Yes, No", expected=3)

    def test_rejects_nonpositive_expected(self):
        with pytest.raises(ValueError):
            parse_answers("Yes", expected=0)

    def test_raw_preserved(self):
        parsed = parse_answers("Yes.", expected=1)
        assert parsed.raw == "Yes."


class TestAnswersToPresence:
    def test_maps_in_order(self):
        indicators = (Indicator.SIDEWALK, Indicator.POWERLINE)
        presence = answers_to_presence((True, False), indicators)
        assert presence[Indicator.SIDEWALK]
        assert not presence[Indicator.POWERLINE]

    def test_unasked_indicators_absent(self):
        presence = answers_to_presence((True,), (Indicator.APARTMENT,))
        assert not presence[Indicator.SIDEWALK]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            answers_to_presence((True, False), (Indicator.SIDEWALK,))

    @given(flags=st.lists(st.booleans(), min_size=6, max_size=6))
    def test_round_trip_through_text(self, flags):
        presence = IndicatorPresence.from_vector(flags)
        text = presence_to_answer_text(presence)
        parsed = parse_answers(text, expected=6)
        recovered = answers_to_presence(parsed, ALL_INDICATORS)
        assert recovered == presence

    @given(
        flags=st.lists(st.booleans(), min_size=6, max_size=6),
        language=st.sampled_from(list(Language)),
    )
    def test_round_trip_all_languages(self, flags, language):
        presence = IndicatorPresence.from_vector(flags)
        text = presence_to_answer_text(presence, language=language)
        parsed = parse_answers(text, expected=6, language=language)
        assert answers_to_presence(parsed, ALL_INDICATORS) == presence
