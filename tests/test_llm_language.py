"""Tests for prompt parsing: language detection, question extraction."""

import pytest

from repro.core import (
    PromptStyle,
    build_parallel_prompt,
    build_sequential_prompt,
    build_single_prompt,
    prompt_for_style,
)
from repro.core.indicators import Indicator
from repro.core.languages import PAPER_QUESTION_ORDER
from repro.llm import (
    Language,
    detect_language,
    format_answers,
    identify_indicators,
    parse_prompt,
)

ALL_LANGUAGES = list(Language)


class TestLanguageDetection:
    @pytest.mark.parametrize("language", ALL_LANGUAGES)
    def test_detects_parallel_prompt_language(self, language):
        prompt = build_parallel_prompt(language)
        assert detect_language(prompt) is language

    @pytest.mark.parametrize("language", ALL_LANGUAGES)
    def test_detects_sequential_prompt_language(self, language):
        prompt = build_sequential_prompt(language)
        assert detect_language(prompt) is language

    def test_plain_english_default(self):
        assert detect_language("hello there") is Language.ENGLISH


class TestIndicatorIdentification:
    @pytest.mark.parametrize("language", ALL_LANGUAGES)
    @pytest.mark.parametrize("indicator", list(Indicator))
    def test_single_question_identified(self, language, indicator):
        question = build_single_prompt(indicator, language)
        found = identify_indicators(question, language)
        assert found == [indicator]

    def test_multilane_question_does_not_match_single_lane(self):
        question = build_single_prompt(Indicator.MULTILANE_ROAD)
        found = identify_indicators(question, Language.ENGLISH)
        assert Indicator.SINGLE_LANE_ROAD not in found

    def test_unknown_text_matches_nothing(self):
        assert identify_indicators("is there a dog", Language.ENGLISH) == []


class TestParsePrompt:
    @pytest.mark.parametrize("language", ALL_LANGUAGES)
    def test_parallel_prompt_six_questions_in_order(self, language):
        parsed = parse_prompt(build_parallel_prompt(language))
        assert parsed.indicators == PAPER_QUESTION_ORDER
        assert not parsed.complex_structure

    @pytest.mark.parametrize("language", ALL_LANGUAGES)
    def test_sequential_prompt_is_complex(self, language):
        parsed = parse_prompt(build_sequential_prompt(language))
        assert parsed.complex_structure
        assert set(parsed.indicators) == set(PAPER_QUESTION_ORDER)

    def test_subset_prompt(self):
        prompt = build_parallel_prompt(
            indicators=[Indicator.SIDEWALK, Indicator.POWERLINE]
        )
        parsed = parse_prompt(prompt)
        assert parsed.indicators == (
            Indicator.SIDEWALK,
            Indicator.POWERLINE,
        )

    def test_empty_prompt_no_questions(self):
        parsed = parse_prompt("describe the weather")
        assert parsed.questions == ()


class TestPromptBuilders:
    def test_parallel_contains_format_header(self):
        prompt = build_parallel_prompt()
        assert "Respond exactly in this format" in prompt

    def test_parallel_without_header(self):
        prompt = build_parallel_prompt(include_format_header=False)
        assert "Respond exactly in this format" not in prompt

    def test_duplicate_indicators_rejected(self):
        with pytest.raises(ValueError):
            build_parallel_prompt(
                indicators=[Indicator.SIDEWALK, Indicator.SIDEWALK]
            )

    def test_empty_indicators_rejected(self):
        with pytest.raises(ValueError):
            build_sequential_prompt(indicators=[])

    def test_prompt_for_style_dispatch(self):
        assert prompt_for_style(PromptStyle.PARALLEL) == build_parallel_prompt()
        assert (
            prompt_for_style(PromptStyle.SEQUENTIAL)
            == build_sequential_prompt()
        )

    def test_sequential_single_sentence(self):
        prompt = build_sequential_prompt()
        # No question marks until the end: a run-on construction.
        assert prompt.count("?") == 0


class TestFormatAnswers:
    def test_english(self):
        assert format_answers([True, False], Language.ENGLISH) == "Yes, No"

    def test_spanish(self):
        assert format_answers([True, False], Language.SPANISH) == "Sí, No"

    def test_chinese(self):
        assert format_answers([True, False], Language.CHINESE) == "是, 否"

    def test_bengali(self):
        out = format_answers([True, False], Language.BENGALI)
        assert out.split(", ")[0] == "হ্যাঁ"
