"""Crash-safe sharded coordination: manifest durability, leases,
chaos scheduling, and coordinated-run determinism."""

from __future__ import annotations

import json
import multiprocessing
import time

import pytest

from repro.coordinator import (
    CoordinatorError,
    CrashAction,
    CrashSchedule,
    LeaseError,
    LeaseTable,
    ManifestCorruptError,
    ManifestMismatchError,
    ShardManifest,
    ShardState,
    SurveyCoordinator,
    checkpoint_path,
    plan_fingerprint,
    points_digest,
    result_path,
)
from repro.core import LLMIndicatorClassifier, NeighborhoodDecoder
from repro.geo import make_durham_like, plan_survey_points
from repro.gsv import StreetViewClient
from repro.obs.audit import COORDINATOR_STAGES, audit_trace, reconcile_survey
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.trace import Tracer, use_tracer
from repro.resilience import VirtualClock


@pytest.fixture(scope="module")
def county():
    return make_durham_like(seed=3)


@pytest.fixture(scope="module")
def points(county):
    return plan_survey_points([county], 10, seed=0)


def _decoder(county, clients):
    return NeighborhoodDecoder(
        street_view=StreetViewClient(counties=[county], api_key="x"),
        classifier=LLMIndicatorClassifier(clients["gemini-1.5-pro"]),
    )


def _coordinator(tmp_path, county, clients, **overrides):
    kwargs = dict(
        state_dir=tmp_path / "state",
        counties=[county],
        n_locations=10,
        seed=0,
        decoder=_decoder(county, clients),
        shard_size=3,
        max_workers=2,
        lease_ttl_s=30.0,
        max_attempts=3,
        keep_locations=True,
    )
    kwargs.update(overrides)
    return SurveyCoordinator(**kwargs)


class TestManifest:
    def test_plan_shards_slices_and_digests(self, tmp_path, points):
        manifest = ShardManifest.plan_shards(
            tmp_path / "m.json", points, 3, "fp"
        )
        assert [(r.start, r.stop) for r in manifest.shards] == [
            (0, 3), (3, 6), (6, 9), (9, 10),
        ]
        for record in manifest.shards:
            assert record.digest == points_digest(
                points[record.start : record.stop]
            )
            assert record.state is ShardState.PENDING
        assert not manifest.finished

    def test_save_load_round_trip(self, tmp_path, points):
        manifest = ShardManifest.plan_shards(
            tmp_path / "m.json", points, 4, "fp", plan={"seed": 0}
        )
        manifest.shards[1].state = ShardState.COMPLETED
        manifest.shards[2].attempts = 2
        manifest.save()
        loaded = ShardManifest.load(tmp_path / "m.json")
        assert loaded.fingerprint == "fp"
        assert loaded.plan == {"seed": 0}
        assert [r.as_dict() for r in loaded.shards] == [
            r.as_dict() for r in manifest.shards
        ]

    def test_corrupt_manifest_raises(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{not json")
        with pytest.raises(ManifestCorruptError):
            ShardManifest.load(path)
        path.write_text(json.dumps({"format_version": 99, "shards": []}))
        with pytest.raises(ManifestCorruptError):
            ShardManifest.load(path)

    def test_missing_manifest_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ShardManifest.load(tmp_path / "nope.json")

    def test_fingerprint_sensitive_to_config_and_frame(self, points):
        base = dict(
            counties=["Durham"],
            n_locations=10,
            seed=0,
            shard_size=3,
            frame_digest=points_digest(points),
        )
        fp = plan_fingerprint(**base)
        assert fp == plan_fingerprint(**base)
        assert fp != plan_fingerprint(**{**base, "seed": 1})
        assert fp != plan_fingerprint(**{**base, "shard_size": 4})
        assert fp != plan_fingerprint(
            **{**base, "frame_digest": points_digest(points[:5])}
        )

    def test_points_digest_orders_and_contents(self, points):
        assert points_digest(points) != points_digest(points[::-1])
        assert points_digest(points[:3]) != points_digest(points[:4])


class TestLeaseTable:
    def test_claim_renew_release_cycle(self):
        clock = VirtualClock()
        table = LeaseTable(ttl_s=10.0, clock=clock)
        lease = table.claim(0, "w1")
        assert lease.expires_s == 10.0
        clock.sleep(6.0)
        assert table.expired() == []
        table.renew(0)
        clock.sleep(6.0)  # t=12 < 16: renewal pushed expiry out
        assert table.expired() == []
        table.release(0)
        assert table.active(0) is None

    def test_double_claim_raises_until_expiry_then_steals(self):
        clock = VirtualClock()
        table = LeaseTable(ttl_s=5.0, clock=clock)
        table.claim(0, "w1")
        with pytest.raises(LeaseError):
            table.claim(0, "w2")
        clock.sleep(5.1)
        assert [lease.shard_id for lease in table.expired()] == [0]
        stolen = table.claim(0, "w2")
        assert stolen.worker == "w2"
        assert table.steals == 1
        assert table.claims == 2

    def test_renew_without_lease_raises(self):
        table = LeaseTable(ttl_s=1.0, clock=VirtualClock())
        with pytest.raises(LeaseError):
            table.renew(7)

    def test_ttl_must_be_positive(self):
        with pytest.raises(ValueError):
            LeaseTable(ttl_s=0.0, clock=VirtualClock())


class TestCrashSchedule:
    def test_builders_and_lookup(self):
        schedule = (
            CrashSchedule()
            .kill(1, 1, after_locations=2)
            .freeze(0, 2, after_locations=1)
        )
        assert len(schedule) == 2
        assert schedule.action_for(1, 1) == CrashAction("sigkill", 2)
        assert schedule.action_for(0, 2) == CrashAction("freeze", 1)
        assert schedule.action_for(1, 2) is None

    def test_seeded_kills_deterministic(self):
        a = CrashSchedule.seeded_kills(8, seed=42, fraction=0.5)
        b = CrashSchedule.seeded_kills(8, seed=42, fraction=0.5)
        assert a._plan == b._plan
        assert a._plan != CrashSchedule.seeded_kills(8, seed=43)._plan

    def test_action_validation(self):
        with pytest.raises(ValueError):
            CrashAction("explode")
        with pytest.raises(ValueError):
            CrashAction("sigkill", after_locations=-1)


class TestCoordinatedRun:
    def test_byte_identical_to_serial_and_audited(
        self, tmp_path, county, clients
    ):
        serial = _decoder(county, clients).survey_stream(
            locations=plan_survey_points([county], 10, seed=0),
            workers=1,
            keep_locations=True,
        )
        tracer = Tracer()
        with use_metrics(MetricsRegistry()), use_tracer(tracer):
            result = _coordinator(tmp_path, county, clients).run()
            report = result.report
            assert report.to_json() == serial.to_json()
            assert report.payload() == serial.payload()
            assert report.fees_usd == serial.fees_usd
            assert reconcile_survey(report) == []
        assert audit_trace(tracer, required_names=COORDINATOR_STAGES) == []
        assert result.workers_spawned == 4  # ceil(10 / 3) shards
        assert result.requeues == 0
        assert result.shard_counts["completed"] == 4

    def test_resume_of_finished_run_spawns_nothing(
        self, tmp_path, county, clients
    ):
        with use_metrics(MetricsRegistry()):
            first = _coordinator(tmp_path, county, clients).run()
            again = _coordinator(tmp_path, county, clients).run(resume=True)
        assert first.workers_spawned == 4
        assert again.workers_spawned == 0  # nothing re-dispatched, no re-bill
        assert again.report.to_json() == first.report.to_json()

    def test_fresh_run_wipes_prior_state(self, tmp_path, county, clients):
        with use_metrics(MetricsRegistry()):
            first = _coordinator(tmp_path, county, clients).run()
            second = _coordinator(tmp_path, county, clients).run()
        assert first.workers_spawned == second.workers_spawned == 4
        assert second.report.to_json() == first.report.to_json()

    def test_resume_with_changed_plan_refuses(
        self, tmp_path, county, clients
    ):
        with use_metrics(MetricsRegistry()):
            _coordinator(tmp_path, county, clients).run()
            with pytest.raises(ManifestMismatchError):
                _coordinator(
                    tmp_path, county, clients, n_locations=12
                ).plan(resume=True)

    def test_crashing_shard_requeued_then_completes(
        self, tmp_path, county, clients
    ):
        serial = _decoder(county, clients).survey_stream(
            locations=plan_survey_points([county], 10, seed=0),
            workers=1,
            keep_locations=True,
        )
        schedule = CrashSchedule().kill(1, 1, after_locations=1)
        with use_metrics(MetricsRegistry()):
            result = _coordinator(
                tmp_path, county, clients, crash_schedule=schedule
            ).run()
        assert result.requeues == 1
        assert result.workers_spawned == 5
        assert result.report.to_json() == serial.to_json()
        assert reconcile_survey(result.report) == []

    def test_poison_shard_quarantined_and_salvaged(
        self, tmp_path, county, clients
    ):
        schedule = (
            CrashSchedule()
            .kill(0, 1, after_locations=1)
            .kill(0, 2, after_locations=1)
        )
        with use_metrics(MetricsRegistry()):
            result = _coordinator(
                tmp_path,
                county,
                clients,
                crash_schedule=schedule,
                max_attempts=2,
            ).run()
        report = result.report
        assert result.quarantined == (0,)
        assert result.shard_counts["quarantined"] == 1
        # Attempt 1 checkpointed 1 location, attempt 2 one more: both
        # salvaged; the third degrades to a failed row.
        assert report.completed_locations == 9
        assert len(report.failed_locations) == 1
        assert "quarantined after 2 attempts" in (
            report.failed_locations[0].reason
        )
        assert report.coverage == pytest.approx(0.9)
        assert reconcile_survey(report) == []

    def test_quarantined_shard_resumes_with_fresh_budget(
        self, tmp_path, county, clients
    ):
        serial = _decoder(county, clients).survey_stream(
            locations=plan_survey_points([county], 10, seed=0),
            workers=1,
            keep_locations=True,
        )
        schedule = CrashSchedule().kill(0, 1).kill(0, 2)
        with use_metrics(MetricsRegistry()):
            crashed = _coordinator(
                tmp_path,
                county,
                clients,
                crash_schedule=schedule,
                max_attempts=2,
            ).run()
            assert crashed.quarantined == (0,)
            resumed = _coordinator(tmp_path, county, clients).run(
                resume=True
            )
        assert resumed.report.to_json() == serial.to_json()
        # Only the quarantined shard was re-dispatched.
        assert resumed.workers_spawned == 1

    def test_empty_frame_refused(self, tmp_path, county, clients):
        coordinator = _coordinator(tmp_path, county, clients)
        coordinator.n_locations = 0
        with pytest.raises((CoordinatorError, ValueError)):
            coordinator.plan()

    def test_requires_decoder(self, tmp_path, county):
        with pytest.raises(ValueError):
            SurveyCoordinator(
                state_dir=tmp_path,
                counties=[county],
                n_locations=4,
            )


class TestWorkerArtifacts:
    def test_shard_files_survive_and_validate(
        self, tmp_path, county, clients
    ):
        with use_metrics(MetricsRegistry()):
            coordinator = _coordinator(tmp_path, county, clients)
            coordinator.run()
        manifest = coordinator.manifest
        for record in manifest.shards:
            ckpt = checkpoint_path(coordinator.state_dir, record.shard_id)
            res = result_path(coordinator.state_dir, record.shard_id)
            assert ckpt.exists() and res.exists()
            payload = json.loads(res.read_text())
            assert payload["fingerprint"] == manifest.fingerprint
            assert payload["shard_id"] == record.shard_id
            assert payload["completed"] == record.size

    def test_tampered_result_demotes_on_resume(
        self, tmp_path, county, clients
    ):
        with use_metrics(MetricsRegistry()):
            coordinator = _coordinator(tmp_path, county, clients)
            coordinator.run()
            result_path(coordinator.state_dir, 2).write_text("garbage")
            resumed = _coordinator(tmp_path, county, clients).run(
                resume=True
            )
        # The demoted shard re-ran (from its intact checkpoint: no
        # re-billing) and the merged report is whole again.
        assert resumed.workers_spawned == 1
        assert resumed.report.completed_locations == 10


class TestFencing:
    def test_expired_lease_fences_the_worker(self, tmp_path, county, clients):
        """A frozen worker (beats stopped) is SIGKILLed, not waited on."""
        schedule = CrashSchedule().freeze(0, 1, after_locations=1)
        started = time.monotonic()
        with use_metrics(MetricsRegistry()):
            result = _coordinator(
                tmp_path,
                county,
                clients,
                crash_schedule=schedule,
                lease_ttl_s=1.5,
                heartbeat_interval_s=0.2,
            ).run()
        assert result.lease_expiries == 1
        assert result.requeues == 1
        assert result.report.completed_locations == 10
        # Fencing must not have waited for the frozen worker to finish
        # (it never would); generous bound to absorb slow CI hosts.
        assert time.monotonic() - started < 60.0
        assert not _any_orphan_children()


def _any_orphan_children() -> bool:
    """True if this process still has live multiprocessing children."""
    return any(
        child.is_alive() for child in multiprocessing.active_children()
    )


class TestCoordinateCLI:
    def test_noop_resume_of_finished_run_exits_clean(
        self, tmp_path, capsys
    ):
        """Resuming a finished run spawns no workers — the trace then
        has no ``coordinate.shard`` span, which must read as a clean
        no-op, not a missing-stage audit failure."""
        from repro.cli import main

        argv = [
            "coordinate",
            "--locations",
            "6",
            "--shards",
            "2",
            "--state-dir",
            str(tmp_path / "state"),
            "--trace-out",
            str(tmp_path / "trace.jsonl"),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "workers spawned 0" in out
        assert "coordination audit ok" in out
