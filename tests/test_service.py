"""Service daemon tests: scheduler, quotas, billing, golden session.

Everything here is deterministic: stacks run on a
:class:`~repro.resilience.VirtualClock`, jobs drain through
``run_until_idle`` (the serial dispatch path the background scheduler
also uses), and mid-stream cancellation is injected through the
middleware chain rather than racing a wall clock.

The centerpiece is the golden multi-tenant session: three jobs from
two tenants through one shared stack, every DONE report byte-identical
to a standalone ``survey_async`` run with the same parameters against
a fresh stack — the multiplexing-changes-nothing contract of
DESIGN.md §16.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs.audit import SERVICE_STAGES
from repro.resilience import VirtualClock
from repro.service import (
    BudgetExhaustedError,
    CallbackSink,
    DEFAULT_MIDDLEWARE,
    JobSpec,
    JobState,
    JsonlSink,
    QueueFullError,
    ReportDirSink,
    ServiceError,
    ServiceStack,
    SurveyService,
    TenantQuota,
    TenantQuotaError,
    UnknownJobError,
    canonical_fees_usd,
    checkpoint_key,
    estimated_fee_usd,
)
from repro.service.jobs import JobRecord


def make_stack(clients, **kwargs):
    kwargs.setdefault("clients", clients)
    kwargs.setdefault("clock", VirtualClock())
    return ServiceStack(**kwargs)


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# job model


def test_job_spec_validation():
    with pytest.raises(ValueError):
        JobSpec(tenant="").validate()
    with pytest.raises(ValueError):
        JobSpec(tenant="a", kind="mystery").validate()
    with pytest.raises(ValueError):
        JobSpec(tenant="a", n_locations=0).validate()
    with pytest.raises(ValueError):
        JobSpec(tenant="a", max_inflight=0).validate()
    JobSpec(tenant="a").validate()


def test_estimated_fee_is_worst_case():
    spec = JobSpec(tenant="a", n_locations=5)
    assert estimated_fee_usd(spec) == pytest.approx(5 * 4 * 0.007)


def test_state_machine_rejects_illegal_transitions():
    record = JobRecord(job_id="job-0000", spec=JobSpec(tenant="a"), seq=0)
    with pytest.raises(ServiceError):
        record.transition(JobState.DONE)  # QUEUED cannot finish directly
    record.transition(JobState.RUNNING)
    record.transition(JobState.DONE)
    assert record.terminal
    with pytest.raises(ServiceError):
        record.transition(JobState.QUEUED)  # terminal states are frozen


def test_job_record_roundtrips_through_json():
    record = JobRecord(
        job_id="job-0003",
        spec=JobSpec(tenant="acme", priority=2),
        seq=3,
        submitted_at=1.5,
    )
    record.transition(JobState.RUNNING)
    record.audit.append("note")
    clone = JobRecord.from_dict(json.loads(json.dumps(record.to_dict())))
    assert clone.to_dict() == record.to_dict()


# ---------------------------------------------------------------------------
# admission: quotas, backpressure, budgets


def test_quota_caps_active_jobs_and_job_size(clients, tmp_path):
    async def drill():
        quota = TenantQuota(max_active_jobs=1, max_locations_per_job=3)
        async with SurveyService(
            make_stack(clients), tmp_path, default_quota=quota
        ) as service:
            await service.submit(JobSpec(tenant="acme", n_locations=2))
            with pytest.raises(TenantQuotaError):
                await service.submit(JobSpec(tenant="acme", n_locations=2))
            with pytest.raises(TenantQuotaError):
                await service.submit(JobSpec(tenant="beta", n_locations=9))
            # Other tenants are unaffected by acme's cap.
            await service.submit(JobSpec(tenant="beta", n_locations=2))

    run(drill())


def test_backpressure_rejects_when_queue_is_full(clients, tmp_path):
    async def drill():
        async with SurveyService(
            make_stack(clients), tmp_path, max_queue_depth=2
        ) as service:
            await service.submit(JobSpec(tenant="t1", n_locations=1))
            await service.submit(JobSpec(tenant="t2", n_locations=1))
            with pytest.raises(QueueFullError):
                await service.submit(JobSpec(tenant="t3", n_locations=1))

    run(drill())


def test_budget_reject_policy_refuses_submit(clients, tmp_path):
    async def drill():
        quota = TenantQuota(budget_usd=0.01, on_budget_exhausted="reject")
        async with SurveyService(
            make_stack(clients), tmp_path, default_quota=quota
        ) as service:
            with pytest.raises(BudgetExhaustedError):
                await service.submit(JobSpec(tenant="poor", n_locations=2))
            assert service.counts()["submitted"] == 0

    run(drill())


def test_budget_pause_policy_waits_for_grant(clients, tmp_path):
    async def drill():
        quota = TenantQuota(budget_usd=0.01, on_budget_exhausted="pause")
        async with SurveyService(
            make_stack(clients), tmp_path, default_quota=quota
        ) as service:
            job_id = await service.submit(
                JobSpec(tenant="poor", n_locations=2, seed=5)
            )
            assert await service.run_until_idle() == 0
            record = await service.status(job_id)
            assert record.state is JobState.QUEUED  # paused, not failed
            books = await service.grant_budget("poor", 1.0)
            assert books["remaining_usd"] > 0
            assert await service.run_until_idle() == 1
            record = await service.status(job_id)
            assert record.state is JobState.DONE
            ledger = service.ledger_snapshot("poor")
            assert ledger["settled_usd"] == record.fees_settled_usd
            assert ledger["reserved_usd"] == 0.0
            assert ledger["remaining_usd"] >= 0.0

    run(drill())


def test_unknown_job_raises(clients, tmp_path):
    async def drill():
        async with SurveyService(make_stack(clients), tmp_path) as service:
            with pytest.raises(UnknownJobError):
                await service.status("job-9999")

    run(drill())


# ---------------------------------------------------------------------------
# scheduling


def test_priority_ordering_with_fifo_ties(clients, tmp_path):
    finished: list[str] = []

    async def drill():
        sink = CallbackSink(lambda record, _: finished.append(record.job_id))
        async with SurveyService(
            make_stack(clients), tmp_path, sinks=[sink]
        ) as service:
            low = await service.submit(
                JobSpec(tenant="a", n_locations=1, priority=0, seed=1)
            )
            high = await service.submit(
                JobSpec(tenant="b", n_locations=1, priority=5, seed=2)
            )
            mid = await service.submit(
                JobSpec(tenant="c", n_locations=1, priority=1, seed=3)
            )
            mid2 = await service.submit(
                JobSpec(tenant="d", n_locations=1, priority=1, seed=4)
            )
            assert await service.run_until_idle() == 4
            return high, mid, mid2, low

    expected = run(drill())
    assert tuple(finished) == expected


def test_cancel_queued_job_is_immediate_and_free(clients, tmp_path):
    async def drill():
        async with SurveyService(make_stack(clients), tmp_path) as service:
            job_id = await service.submit(JobSpec(tenant="a", n_locations=2))
            assert await service.cancel(job_id) is True
            record = await service.status(job_id)
            assert record.state is JobState.CANCELLED
            assert record.fees_settled_usd == 0.0
            assert await service.run_until_idle() == 0
            assert await service.cancel(job_id) is False  # already terminal

    run(drill())


def test_cancellation_mid_stream_keeps_checkpointed_work(clients, tmp_path):
    """Cancel after the first completed location: the job lands
    CANCELLED with exactly that location checkpointed and billed."""

    async def cancel_at_dispatch(ctx, call_next):
        ctx.record.cancel_requested = True
        return await call_next()

    async def drill():
        stack = make_stack(clients)
        async with SurveyService(
            stack,
            tmp_path,
            middleware=DEFAULT_MIDDLEWARE + (cancel_at_dispatch,),
        ) as service:
            job_id = await service.submit(
                JobSpec(tenant="a", n_locations=4, seed=9)
            )
            assert await service.run_until_idle() == 1
            record = await service.status(job_id)
            assert record.state is JobState.CANCELLED
            assert record.progress == 1
            key = checkpoint_key(
                record.spec, stack.county(record.spec.county_seed).name
            )
            canonical = canonical_fees_usd(
                service.store.checkpoint_path(job_id), key
            )
            assert record.fees_settled_usd == canonical > 0.0
            assert await service.result(job_id) is None
            ledger = service.ledger_snapshot("a")
            assert ledger["settled_usd"] == canonical
            assert ledger["reserved_usd"] == 0.0

    run(drill())


def test_watch_streams_progress_then_terminal(clients, tmp_path):
    async def drill():
        async with SurveyService(make_stack(clients), tmp_path) as service:
            job_id = await service.submit(
                JobSpec(tenant="a", n_locations=2, seed=3)
            )
            await service.start()
            events = []
            async for event in service.watch(job_id):
                events.append(event)
            await service.stop()
            assert events[-1]["terminal"]
            assert events[-1]["state"] == "done"
            progress = [e for e in events if e["event"] == "progress"]
            assert len(progress) == 2
            assert [e["progress"] for e in progress] == [1, 2]

    run(drill())


# ---------------------------------------------------------------------------
# golden multi-tenant session


GOLDEN_SPECS = (
    JobSpec(tenant="acme", kind="survey", county_seed=3, n_locations=3,
            seed=11, priority=2),
    JobSpec(tenant="beta", kind="survey", county_seed=5, n_locations=2,
            seed=7),
    JobSpec(tenant="acme", kind="classify", county_seed=7, n_locations=3,
            seed=19),
)


def test_golden_multitenant_session(clients, tmp_path):
    """Three jobs, two tenants, one stack — reports byte-identical to
    standalone engine runs, books reconciled, fees settled exactly."""
    jsonl_path = tmp_path / "session.jsonl"
    report_dir = tmp_path / "delivered"

    async def session():
        stack = make_stack(clients)
        async with SurveyService(
            stack,
            tmp_path / "state",
            sinks=[JsonlSink(jsonl_path), ReportDirSink(report_dir)],
        ) as service:
            ids = [await service.submit(spec) for spec in GOLDEN_SPECS]
            assert await service.run_until_idle() == len(GOLDEN_SPECS)
            out = []
            for spec, job_id in zip(GOLDEN_SPECS, ids):
                record = await service.status(job_id)
                assert record.state is JobState.DONE
                books = service.observability[job_id]
                assert books["reconcile"] == []
                assert books["audit_trace"] == []
                assert {
                    s.name for s in books["tracer"].spans
                } >= set(SERVICE_STAGES)
                key = checkpoint_key(
                    spec, stack.county(spec.county_seed).name
                )
                canonical = canonical_fees_usd(
                    service.store.checkpoint_path(job_id), key
                )
                assert record.fees_settled_usd == canonical
                out.append((record, await service.result(job_id)))
            for tenant in ("acme", "beta"):
                ledger = service.ledger_snapshot(tenant)
                assert ledger["reserved_usd"] == 0.0
                assert ledger["settled_usd"] == pytest.approx(
                    sum(
                        record.fees_settled_usd
                        for record, _ in out
                        if record.spec.tenant == tenant
                    )
                )
            return out

    async def standalone(spec):
        with make_stack(clients) as fresh:
            decoder = fresh.decoder(spec.kind, spec.county_seed)
            county = fresh.county(spec.county_seed)
            if spec.kind == "classify":
                return await decoder.survey_stream_async(
                    county,
                    spec.n_locations,
                    seed=spec.seed,
                    max_inflight=spec.max_inflight,
                )
            return await decoder.survey_async(
                county,
                spec.n_locations,
                seed=spec.seed,
                max_inflight=spec.max_inflight,
            )

    results = run(session())
    for spec, (record, served) in zip(GOLDEN_SPECS, results):
        baseline = run(standalone(spec))
        assert json.dumps(served, sort_keys=True) == baseline.to_json(), (
            f"{record.job_id} ({spec.kind}) diverged from standalone"
        )

    # Sink deliveries: one journal line per job, one report per DONE job.
    lines = [
        json.loads(line)
        for line in jsonl_path.read_text().splitlines()
    ]
    assert [line["state"] for line in lines] == ["done"] * 3
    assert sorted(p.name for p in report_dir.glob("*.json")) == [
        f"{record.job_id}.json" for record, _ in results
    ]


def test_session_is_deterministic_across_fresh_daemons(clients, tmp_path):
    async def one_pass(root):
        async with SurveyService(
            make_stack(clients), root
        ) as service:
            job_id = await service.submit(
                JobSpec(tenant="acme", n_locations=2, seed=13)
            )
            await service.run_until_idle()
            return json.dumps(
                await service.result(job_id), sort_keys=True
            )

    first = run(one_pass(tmp_path / "a"))
    second = run(one_pass(tmp_path / "b"))
    assert first == second


# ---------------------------------------------------------------------------
# restart recovery (in-process)


def test_restart_requeues_interrupted_job_without_double_billing(
    clients, tmp_path
):
    state = tmp_path / "state"

    async def first_daemon():
        async with SurveyService(
            make_stack(clients), state, close_stack=True
        ) as service:
            job_id = await service.submit(
                JobSpec(tenant="acme", n_locations=3, seed=11)
            )
            # Simulate a crash mid-job: durably RUNNING, one location
            # checkpointed, then the process "dies" (no settlement).
            record = service.store.records[job_id]
            record.transition(JobState.RUNNING)
            record.attempts = 1
            service.store.flush()
            stack = service.stack
            county = stack.county(record.spec.county_seed)
            checkpoint = stack.decoder(
                "survey", record.spec.county_seed
            )
            report = await checkpoint.survey_async(
                county,
                record.spec.n_locations,
                seed=record.spec.seed,
                checkpoint=str(service.store.checkpoint_path(job_id)),
                max_inflight=1,
            )
            # Keep only the first location in the checkpoint to model
            # an interrupt: rewrite with a partial record set.
            from repro.resilience.checkpoint import SurveyCheckpoint

            key = checkpoint_key(record.spec, county.name)
            full = SurveyCheckpoint(
                service.store.checkpoint_path(job_id), key
            )
            partial_payload = full.get(0)
            service.store.checkpoint_path(job_id).unlink()
            partial = SurveyCheckpoint(
                service.store.checkpoint_path(job_id), key
            )
            partial.record(0, partial_payload)
            return job_id, report.to_json()

    async def second_daemon(job_id):
        async with SurveyService(
            make_stack(clients), state
        ) as service:
            assert service.recovered  # the RUNNING record was noticed
            record = await service.status(job_id)
            assert record.state is JobState.QUEUED
            assert record.resumed
            assert record.progress == 1
            assert await service.run_until_idle() == 1
            record = await service.status(job_id)
            assert record.state is JobState.DONE
            ledger = service.ledger_snapshot("acme")
            # Every location settled exactly once, however many
            # daemons touched the job.
            assert ledger["settled_usd"] == record.fees_settled_usd
            assert record.fees_settled_usd == pytest.approx(
                record.spec.n_locations * 4 * 0.007
            )
            return await service.result(job_id)

    job_id, _ = run(first_daemon())
    served = run(second_daemon(job_id))
    assert len(served["locations"]) == 3


def test_restart_fails_clean_when_attempts_exhausted(clients, tmp_path):
    state = tmp_path / "state"

    async def first_daemon():
        async with SurveyService(
            make_stack(clients), state, max_attempts=1
        ) as service:
            job_id = await service.submit(
                JobSpec(tenant="acme", n_locations=2, seed=3)
            )
            record = service.store.records[job_id]
            record.transition(JobState.RUNNING)
            record.attempts = 1
            service.store.flush()
            return job_id

    async def second_daemon(job_id):
        async with SurveyService(
            make_stack(clients), state, max_attempts=1
        ) as service:
            record = await service.status(job_id)
            assert record.state is JobState.FAILED
            assert "restart" in record.error
            assert record.fees_settled_usd == 0.0  # nothing checkpointed
            assert await service.run_until_idle() == 0

    job_id = run(first_daemon())
    run(second_daemon(job_id))


# ---------------------------------------------------------------------------
# shared stack lifecycle (satellite 4)


def test_stack_close_releases_cache_journal_and_bridge(clients, tmp_path):
    async def drill():
        stack = make_stack(clients, cache_path=tmp_path / "cache.jsonl")
        async with SurveyService(stack, tmp_path / "state") as service:
            await service.submit(JobSpec(tenant="a", n_locations=1, seed=2))
            await service.run_until_idle()
            chat = stack.chat_client()
            assert chat.journaling  # journal opened by the cache miss
            bridge = stack.bridge
        # Service close closed the stack: journal released, bridge shut.
        assert stack.closed
        assert not chat.journaling
        assert bridge.closed
        with pytest.raises(ServiceError):
            stack.chat_client()

    run(drill())


def test_stack_close_is_idempotent_and_reentrant(clients, tmp_path):
    stack = make_stack(clients)
    stack.close()
    stack.close()
    assert stack.closed


# ---------------------------------------------------------------------------
# middleware


def test_middleware_chain_wraps_inside_out(clients, tmp_path):
    order: list[str] = []

    def tag(name):
        async def mw(ctx, call_next):
            order.append(f"{name}:before")
            result = await call_next()
            order.append(f"{name}:after")
            return result

        return mw

    async def drill():
        async with SurveyService(
            make_stack(clients),
            tmp_path,
            middleware=(tag("outer"), tag("inner")),
        ) as service:
            await service.submit(JobSpec(tenant="a", n_locations=1, seed=6))
            await service.run_until_idle()

    run(drill())
    assert order == [
        "outer:before", "inner:before", "inner:after", "outer:after"
    ]


def test_default_middleware_annotates_durable_audit(clients, tmp_path):
    async def drill():
        async with SurveyService(
            make_stack(clients), tmp_path
        ) as service:
            job_id = await service.submit(
                JobSpec(tenant="acme", n_locations=1, seed=8)
            )
            await service.run_until_idle()
            record = await service.status(job_id)
            audit = "\n".join(record.audit)
            assert "trace.root=service.job" in audit
            assert "budget.reserved_usd=" in audit
            assert "metrics.tenant=acme" in audit
            books = service.observability[job_id]
            delta = books["metrics_delta"]["counters"]
            assert delta["service.jobs.dispatched"] == 1
            assert delta["service.jobs.finished"] == 1

    run(drill())


def test_budget_guard_fails_overspending_job(clients, tmp_path):
    class Overspend:
        fees_usd = 10.0
        metrics: dict = {}

        def to_json(self):
            return "{}"

    async def lie_about_fees(ctx, call_next):
        await call_next()
        return Overspend()

    async def drill():
        async with SurveyService(
            make_stack(clients),
            tmp_path,
            max_attempts=1,
            middleware=DEFAULT_MIDDLEWARE + (lie_about_fees,),
        ) as service:
            job_id = await service.submit(
                JobSpec(tenant="a", n_locations=1, seed=4)
            )
            await service.run_until_idle()
            record = await service.status(job_id)
            assert record.state is JobState.FAILED
            assert "reservation" in record.error

    run(drill())


# ---------------------------------------------------------------------------
# sinks


def test_sink_failure_is_contained(clients, tmp_path):
    class BrokenSink:
        def deliver(self, record, report):
            raise RuntimeError("downstream on fire")

    delivered: list[str] = []

    async def drill():
        async with SurveyService(
            make_stack(clients),
            tmp_path,
            sinks=[
                BrokenSink(),
                CallbackSink(lambda r, _: delivered.append(r.job_id)),
            ],
        ) as service:
            job_id = await service.submit(
                JobSpec(tenant="a", n_locations=1, seed=5)
            )
            await service.run_until_idle()
            record = await service.status(job_id)
            assert record.state is JobState.DONE
            assert any("BrokenSink failed" in line for line in record.audit)
            assert delivered == [job_id]

    run(drill())
