"""Cross-module integration tests: the paper's pipelines end to end."""

import numpy as np
import pytest

from repro import (
    ClassificationReport,
    LLMIndicatorClassifier,
    build_survey_dataset,
)
from repro.core import ClassifierConfig, PromptStyle
from repro.core.indicators import ALL_INDICATORS, Indicator
from repro.core.voting import vote_predictions
from repro.detect import (
    ModelConfig,
    TrainConfig,
    evaluate_detector,
    train_detector,
)
from repro.llm import GEMINI_15_PRO, VOTING_MODEL_IDS, Language
from repro.scene.noise import add_gaussian_noise


@pytest.fixture(scope="module")
def eval_images(small_dataset):
    return small_dataset.images


@pytest.fixture(scope="module")
def truths(eval_images):
    return [image.presence for image in eval_images]


class TestLLMPipelineIntegration:
    """RQ1: LLMs vs ground truth over the survey dataset."""

    @pytest.fixture(scope="class")
    def gemini_report(self, clients, eval_images, truths):
        classifier = LLMIndicatorClassifier(clients[GEMINI_15_PRO])
        predictions = classifier.predictions(eval_images)
        return ClassificationReport.from_predictions(truths, predictions)

    def test_llm_beats_chance(self, gemini_report):
        assert gemini_report.mean_accuracy > 0.7

    def test_single_lane_road_is_weakest_accuracy(self, gemini_report):
        accuracies = {
            ind: gemini_report.counts[ind].accuracy
            for ind in ALL_INDICATORS
        }
        worst = min(accuracies, key=accuracies.get)
        assert worst is Indicator.SINGLE_LANE_ROAD

    def test_majority_vote_beats_weakest_member(
        self, clients, eval_images, truths
    ):
        per_model = {
            model_id: LLMIndicatorClassifier(
                clients[model_id]
            ).predictions(eval_images)
            for model_id in VOTING_MODEL_IDS
        }
        voted = vote_predictions(per_model)
        voted_accuracy = ClassificationReport.from_predictions(
            truths, voted
        ).mean_accuracy
        member_accuracies = [
            ClassificationReport.from_predictions(
                truths, preds
            ).mean_accuracy
            for preds in per_model.values()
        ]
        assert voted_accuracy >= min(member_accuracies)

    def test_sequential_prompting_lowers_recall(
        self, clients, eval_images, truths
    ):
        parallel = LLMIndicatorClassifier(
            clients[GEMINI_15_PRO],
            ClassifierConfig(style=PromptStyle.PARALLEL),
        ).predictions(eval_images)
        sequential = LLMIndicatorClassifier(
            clients[GEMINI_15_PRO],
            ClassifierConfig(style=PromptStyle.SEQUENTIAL),
        ).predictions(eval_images)
        recall_parallel = ClassificationReport.from_predictions(
            truths, parallel
        ).mean_recall
        recall_sequential = ClassificationReport.from_predictions(
            truths, sequential
        ).mean_recall
        assert recall_parallel > recall_sequential

    def test_chinese_prompt_kills_sidewalk_recall(
        self, clients, eval_images, truths
    ):
        chinese = LLMIndicatorClassifier(
            clients[GEMINI_15_PRO],
            ClassifierConfig(language=Language.CHINESE),
        ).predictions(eval_images)
        report = ClassificationReport.from_predictions(truths, chinese)
        assert report.counts[Indicator.SIDEWALK].recall < 0.15


class TestDetectorPipelineIntegration:
    """The supervised baseline trained and evaluated end to end."""

    @pytest.fixture(scope="class")
    def trained(self, small_dataset):
        splits = small_dataset.split(seed=3)
        result = train_detector(
            splits.train,
            model_config=ModelConfig(hidden=96),
            train_config=TrainConfig(epochs=10, seed=0),
        )
        return result.model, splits

    def test_detector_learns(self, trained):
        model, splits = trained
        report = evaluate_detector(model, splits.test)
        assert report.mean_f1 > 0.55

    def test_noise_degrades_detector(self, trained):
        model, splits = trained
        clean = evaluate_detector(model, splits.test)
        rng = np.random.default_rng(0)
        noisy = evaluate_detector(
            model,
            splits.test,
            image_transform=lambda px: add_gaussian_noise(px, 5, rng),
        )
        assert noisy.mean_f1 < clean.mean_f1

    def test_detector_and_llm_both_functional(
        self, trained, clients, truths, eval_images
    ):
        """RQ1 wiring: both baselines produce usable accuracy.

        The paper's headline ordering (supervised ≫ zero-shot LLM)
        emerges at full scale (1,200 images at 640 px, 20 epochs); this
        smoke-scale check only asserts both pipelines work end to end.
        The full-scale comparison lives in the Table I / Fig. 5
        benches.
        """
        model, splits = trained
        detector_report = evaluate_detector(model, splits.test)
        llm_predictions = LLMIndicatorClassifier(
            clients[GEMINI_15_PRO]
        ).predictions(eval_images)
        llm_report = ClassificationReport.from_predictions(
            truths, llm_predictions
        )
        assert detector_report.mean_f1 > 0.5
        assert llm_report.mean_f1 > 0.6


class TestDatasetDeterminism:
    def test_full_rebuild_identical(self):
        a = build_survey_dataset(n_images=32, size=256, seed=9)
        b = build_survey_dataset(n_images=32, size=256, seed=9)
        for image_a, image_b in zip(a, b):
            assert image_a.scene == image_b.scene
            assert np.array_equal(image_a.render(128), image_b.render(128))
