"""Tests for the LLM classifier driver and majority voting."""

import pytest

from repro.core import (
    ClassifierConfig,
    LLMIndicatorClassifier,
    PromptStyle,
    agreement_rate,
    majority_vote,
    vote_predictions,
)
from repro.core.indicators import ALL_INDICATORS, Indicator, IndicatorPresence
from repro.core.voting import VotingEnsemble
from repro.llm import ImageAttachment, Language, RateLimitError, build_clients
from repro.llm.base import ChatClient, ChatResponse, Usage


def _presence(*indicators):
    return IndicatorPresence(indicators)


class TestMajorityVote:
    def test_two_of_three(self):
        votes = [
            _presence(Indicator.SIDEWALK),
            _presence(Indicator.SIDEWALK, Indicator.POWERLINE),
            _presence(),
        ]
        result = majority_vote(votes)
        assert result[Indicator.SIDEWALK]
        assert not result[Indicator.POWERLINE]

    def test_quorum_override(self):
        votes = [
            _presence(Indicator.APARTMENT),
            _presence(),
            _presence(),
        ]
        assert majority_vote(votes, quorum=1)[Indicator.APARTMENT]
        assert not majority_vote(votes, quorum=2)[Indicator.APARTMENT]

    def test_empty_votes_rejected(self):
        with pytest.raises(ValueError):
            majority_vote([])

    def test_bad_quorum_rejected(self):
        with pytest.raises(ValueError):
            majority_vote([_presence()], quorum=5)

    def test_vote_predictions_alignment(self):
        per_model = {
            "a": [_presence(Indicator.SIDEWALK), _presence()],
            "b": [_presence(Indicator.SIDEWALK), _presence()],
            "c": [_presence(), _presence(Indicator.SIDEWALK)],
        }
        voted = vote_predictions(per_model)
        assert voted[0][Indicator.SIDEWALK]
        assert not voted[1][Indicator.SIDEWALK]

    def test_vote_predictions_length_mismatch(self):
        with pytest.raises(ValueError):
            vote_predictions({"a": [_presence()], "b": []})

    def test_agreement_rate(self):
        per_model = {
            "a": [_presence(Indicator.SIDEWALK), _presence()],
            "b": [_presence(Indicator.SIDEWALK), _presence(Indicator.SIDEWALK)],
        }
        assert agreement_rate(per_model, Indicator.SIDEWALK) == 0.5


class TestClassifier:
    def test_classifies_dataset(self, clients, small_dataset):
        classifier = LLMIndicatorClassifier(clients["gemini-1.5-pro"])
        outcomes = classifier.classify(small_dataset.images[:10])
        assert len(outcomes) == 10
        for outcome in outcomes:
            assert outcome.attempts == 1
            assert isinstance(outcome.presence, IndicatorPresence)

    def test_subset_indicators(self, clients, small_dataset):
        config = ClassifierConfig(
            indicators=(Indicator.SIDEWALK, Indicator.POWERLINE)
        )
        classifier = LLMIndicatorClassifier(
            clients["gpt-4o-mini"], config
        )
        outcome = classifier.classify_image(small_dataset[0])
        assert not outcome.presence[Indicator.APARTMENT]

    def test_language_config_changes_prompt(self, clients):
        classifier = LLMIndicatorClassifier(
            clients["gemini-1.5-pro"],
            ClassifierConfig(language=Language.CHINESE),
        )
        assert "人行道" in classifier.prompt

    def test_retries_rate_limits(self, calibration_dataset, small_dataset):
        limited = build_clients(
            [im.scene for im in calibration_dataset.images[:40]],
            model_ids=("gpt-4o-mini",),
            rate_limit_every=2,
        )["gpt-4o-mini"]
        classifier = LLMIndicatorClassifier(
            limited, ClassifierConfig(max_attempts=3)
        )
        outcomes = classifier.classify(small_dataset.images[:6])
        assert any(o.attempts > 1 for o in outcomes)

    def test_gives_up_after_max_attempts(self, small_dataset):
        class AlwaysLimited(ChatClient):
            def complete(self, request):
                raise RateLimitError("nope")

        classifier = LLMIndicatorClassifier(
            AlwaysLimited("gpt-4o-mini"),
            ClassifierConfig(max_attempts=2),
        )
        with pytest.raises(RuntimeError):
            classifier.classify_image(small_dataset[0])

    def test_recovers_from_garbage_responses(self, small_dataset):
        class FlakyFormat(ChatClient):
            def __init__(self):
                super().__init__("gpt-4o-mini")
                self.calls = 0

            def complete(self, request):
                self.calls += 1
                content = (
                    "I think maybe?"
                    if self.calls == 1
                    else "Yes, No, No, Yes, No, Yes"
                )
                return ChatResponse(
                    model=self.model_name,
                    content=content,
                    usage=Usage(1, 1),
                )

        classifier = LLMIndicatorClassifier(FlakyFormat())
        outcome = classifier.classify_image(small_dataset[0])
        assert outcome.attempts == 2

    def test_config_validates_attempts(self):
        with pytest.raises(ValueError):
            ClassifierConfig(max_attempts=0)


class TestVotingEnsemble:
    def test_needs_two_members(self, clients):
        with pytest.raises(ValueError):
            VotingEnsemble(
                {"solo": LLMIndicatorClassifier(clients["grok-2"])}
            )

    def test_ensemble_predictions(self, clients, small_dataset):
        ensemble = VotingEnsemble(
            {
                name: LLMIndicatorClassifier(clients[name])
                for name in ("gemini-1.5-pro", "claude-3.7", "grok-2")
            }
        )
        voted, members = ensemble.predictions_with_members(
            small_dataset.images[:15]
        )
        assert len(voted) == 15
        assert set(members) == {"gemini-1.5-pro", "claude-3.7", "grok-2"}
        # The vote must equal recomputing it from the member outputs.
        assert voted == vote_predictions(members)
