"""Tests for the scene graph types (BoundingBox, SceneObject, Scene)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.indicators import Indicator, IndicatorPresence
from repro.scene import BoundingBox, RoadView, Scene, SceneObject

BOX_COORD = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def boxes(draw):
    x0 = draw(st.floats(0.0, 0.9))
    y0 = draw(st.floats(0.0, 0.9))
    x1 = draw(st.floats(x0 + 0.01, 1.0))
    y1 = draw(st.floats(y0 + 0.01, 1.0))
    return BoundingBox(x0, y0, x1, y1)


class TestBoundingBox:
    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            BoundingBox(0.5, 0.1, 0.4, 0.9)

    def test_rejects_out_of_canvas(self):
        with pytest.raises(ValueError):
            BoundingBox(-0.1, 0.0, 0.5, 0.5)
        with pytest.raises(ValueError):
            BoundingBox(0.0, 0.0, 1.2, 0.5)

    def test_area_and_center(self):
        box = BoundingBox(0.2, 0.2, 0.6, 0.7)
        assert box.area == pytest.approx(0.2)
        assert box.center == (pytest.approx(0.4), pytest.approx(0.45))

    def test_iou_identical_is_one(self):
        box = BoundingBox(0.1, 0.1, 0.5, 0.5)
        assert box.iou(box) == pytest.approx(1.0)

    def test_iou_disjoint_is_zero(self):
        a = BoundingBox(0.0, 0.0, 0.2, 0.2)
        b = BoundingBox(0.8, 0.8, 1.0, 1.0)
        assert a.iou(b) == 0.0

    def test_iou_half_overlap(self):
        a = BoundingBox(0.0, 0.0, 0.4, 0.4)
        b = BoundingBox(0.2, 0.0, 0.6, 0.4)
        # intersection 0.08, union 0.24
        assert a.iou(b) == pytest.approx(1.0 / 3.0)

    def test_to_pixels(self):
        box = BoundingBox(0.25, 0.5, 0.75, 1.0)
        assert box.to_pixels(640, 640) == (160, 320, 480, 640)

    def test_to_pixels_rejects_bad_size(self):
        with pytest.raises(ValueError):
            BoundingBox(0.1, 0.1, 0.5, 0.5).to_pixels(0, 640)

    def test_from_pixels_clamps(self):
        box = BoundingBox.from_pixels(-10, 0, 650, 320, 640, 640)
        assert box.x_min == 0.0
        assert box.x_max == 1.0

    @given(a=boxes(), b=boxes())
    def test_iou_symmetric(self, a, b):
        assert a.iou(b) == pytest.approx(b.iou(a))

    @given(a=boxes(), b=boxes())
    def test_iou_in_unit_interval(self, a, b):
        assert 0.0 <= a.iou(b) <= 1.0

    @given(box=boxes())
    def test_shift_stays_on_canvas(self, box):
        shifted = box.clamped_shift(0.5, -0.5)
        assert 0.0 <= shifted.x_min < shifted.x_max <= 1.0
        assert 0.0 <= shifted.y_min < shifted.y_max <= 1.0


class TestSceneObject:
    def test_rejects_bad_occlusion(self):
        with pytest.raises(ValueError):
            SceneObject(
                indicator=Indicator.SIDEWALK,
                box=BoundingBox(0.1, 0.1, 0.5, 0.5),
                occlusion=1.5,
            )

    def test_rejects_zero_contrast(self):
        with pytest.raises(ValueError):
            SceneObject(
                indicator=Indicator.SIDEWALK,
                box=BoundingBox(0.1, 0.1, 0.5, 0.5),
                contrast=0.0,
            )


class TestScene:
    def _scene(self, objects):
        return Scene(scene_id="s", objects=tuple(objects))

    def test_presence_from_objects(self):
        scene = self._scene(
            [
                SceneObject(
                    Indicator.SIDEWALK, BoundingBox(0.1, 0.1, 0.5, 0.5)
                ),
                SceneObject(
                    Indicator.POWERLINE, BoundingBox(0.0, 0.1, 1.0, 0.4)
                ),
            ]
        )
        assert scene.presence == IndicatorPresence(
            [Indicator.SIDEWALK, Indicator.POWERLINE]
        )

    def test_count_of(self):
        scene = self._scene(
            [
                SceneObject(
                    Indicator.STREETLIGHT, BoundingBox(0.1, 0.1, 0.2, 0.8)
                ),
                SceneObject(
                    Indicator.STREETLIGHT, BoundingBox(0.7, 0.1, 0.8, 0.8)
                ),
            ]
        )
        assert scene.count_of(Indicator.STREETLIGHT) == 2
        assert scene.count_of(Indicator.SIDEWALK) == 0

    def test_rejects_bad_daylight(self):
        with pytest.raises(ValueError):
            Scene(scene_id="s", objects=(), daylight=0.0)

    def test_with_objects_replaces(self):
        scene = self._scene([])
        updated = scene.with_objects(
            (
                SceneObject(
                    Indicator.APARTMENT, BoundingBox(0.1, 0.1, 0.5, 0.6)
                ),
            )
        )
        assert updated.presence[Indicator.APARTMENT]
        assert not scene.presence[Indicator.APARTMENT]
        assert updated.scene_id == scene.scene_id

    def test_default_road_view(self):
        assert self._scene([]).road_view is RoadView.NONE
