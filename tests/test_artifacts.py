"""Tests for the content-addressed artifact cache and its key scheme."""

from __future__ import annotations

import numpy as np
import pytest

from repro.artifacts import (
    ArtifactCache,
    fingerprint,
    image_fingerprint,
    model_fingerprint,
    tensors_fingerprint,
)
from repro.detect.model import ModelConfig, NanoDetector
from repro.detect.train import TrainConfig, build_training_tensors, train_detector
from repro.gsv.dataset import build_survey_dataset


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(tmp_path / "artifacts")


@pytest.fixture(scope="module")
def images():
    return build_survey_dataset(n_images=8, size=128, seed=11)


class TestFingerprints:
    def test_fingerprint_is_order_insensitive(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_fingerprint_handles_numpy_scalars_and_arrays(self):
        assert fingerprint({"x": np.float64(0.5)}) == fingerprint({"x": 0.5})
        assert fingerprint({"x": np.array([1, 2])}) == fingerprint({"x": [1, 2]})

    def test_fingerprint_rejects_opaque_objects(self):
        with pytest.raises(TypeError):
            fingerprint({"x": object()})

    def test_image_fingerprint_stable_and_distinct(self, images):
        assert image_fingerprint(images[0]) == image_fingerprint(images[0])
        distinct = {image_fingerprint(image) for image in images}
        assert len(distinct) == len(images)

    def test_tensors_fingerprint_sensitive_to_bytes(self):
        features = np.zeros((2, 4, 3))
        obj = np.zeros((2, 4, 6))
        box = np.zeros((2, 4, 6, 4))
        base = tensors_fingerprint(features, obj, box)
        assert base == tensors_fingerprint(features, obj, box)
        bumped = features.copy()
        bumped[0, 0, 0] = 1e-12
        assert tensors_fingerprint(bumped, obj, box) != base

    def test_model_fingerprint_tracks_weights(self, images):
        result = train_detector(
            images,
            model_config=ModelConfig(grid=4, hidden=8),
            train_config=TrainConfig(epochs=1, seed=5),
        )
        model = result.model
        base = model_fingerprint(model)
        assert base == model_fingerprint(model)
        model.w1[0, 0] += 1.0
        assert model_fingerprint(model) != base

    def test_model_fingerprint_rejects_untrained(self):
        with pytest.raises(ValueError):
            model_fingerprint(NanoDetector(ModelConfig(grid=4, hidden=8)))


class TestArtifactCacheStorage:
    def test_arrays_round_trip_bitwise(self, cache):
        key = fingerprint({"probe": "arrays"})
        stored = np.linspace(0.0, 1.0, 31).reshape(1, 31)
        cache.put_arrays("tensors", key, features=stored)
        loaded = cache.get_arrays("tensors", key)
        assert loaded is not None
        assert loaded["features"].dtype == stored.dtype
        assert np.array_equal(loaded["features"], stored)

    def test_json_round_trip(self, cache):
        key = fingerprint({"probe": "json"})
        payload = {"loss": [0.5, 0.25], "note": "warm"}
        cache.put_json("models", key, payload)
        assert cache.get_json("models", key) == payload

    def test_miss_then_hit_accounting(self, cache):
        key = fingerprint({"probe": "stats"})
        assert cache.get_json("predictions", key) is None
        cache.put_json("predictions", key, [1, 2])
        assert cache.get_json("predictions", key) == [1, 2]
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["by_kind"]["predictions"] == {"hits": 1, "misses": 1}
        assert cache.hits == 1 and cache.misses == 1

    def test_corrupt_entry_is_dropped_and_counts_as_miss(self, cache):
        key = fingerprint({"probe": "corrupt"})
        cache.put_arrays("tensors", key, data=np.ones(3))
        path = cache._path("tensors", key, ".npz")
        path.write_bytes(b"not an npz archive")
        assert cache.get_arrays("tensors", key) is None
        assert not path.exists()
        cache.put_json("models", key, {"ok": True})
        cache._path("models", key, ".json").write_text("{truncated")
        assert cache.get_json("models", key) is None

    def test_rejects_non_hex_keys(self, cache):
        with pytest.raises(ValueError):
            cache.put_json("models", "../escape", {})

    def test_len_and_clear(self, cache):
        for index in range(3):
            cache.put_json("models", fingerprint({"i": index}), {"i": index})
        assert len(cache) == 3
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0


class TestCachedPipeline:
    def test_training_tensor_cache_replays_bitwise(self, cache, images):
        first = build_training_tensors(images, grid=4, cache=cache)
        assert cache.misses == len(images) and cache.hits == 0
        second = build_training_tensors(images, grid=4, cache=cache)
        assert cache.hits == len(images)
        for got, want in zip(second, first):
            assert np.array_equal(got, want)

    def test_trained_weights_cache_replays_bitwise(self, cache, images):
        kwargs = dict(
            model_config=ModelConfig(grid=4, hidden=8),
            train_config=TrainConfig(epochs=2, seed=5),
            cache=cache,
        )
        cold = train_detector(images, **kwargs)
        warm = train_detector(images, **kwargs)
        assert cache.stats()["by_kind"]["models"]["hits"] == 1
        assert model_fingerprint(cold.model) == model_fingerprint(warm.model)
        assert warm.loss_history == pytest.approx(cold.loss_history)
