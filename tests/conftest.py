"""Shared fixtures: small deterministic datasets, scenes, and clients.

Session-scoped so the expensive builds (dataset assembly, LLM
calibration) run once per pytest invocation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geo import RoadClass, ZoneKind
from repro.gsv import build_survey_dataset
from repro.llm import EvidenceModel, build_clients
from repro.scene import GeneratorConfig, SceneGenerator


@pytest.fixture(scope="session")
def small_dataset():
    """120 images at 256px: fast but statistically meaningful."""
    return build_survey_dataset(n_images=120, size=256, seed=11)


@pytest.fixture(scope="session")
def calibration_dataset():
    """Separate dataset used only for client calibration."""
    return build_survey_dataset(n_images=240, size=256, seed=77)


@pytest.fixture(scope="session")
def clients(calibration_dataset):
    """The four calibrated simulated VLM clients."""
    return build_clients([image.scene for image in calibration_dataset])


@pytest.fixture(scope="session")
def evidence_model():
    return EvidenceModel(seed=0)


@pytest.fixture()
def generator():
    return SceneGenerator(config=GeneratorConfig(), seed=5)


@pytest.fixture()
def urban_scene(generator):
    """A deterministic urban scene with a road view along the camera."""
    return generator.generate(
        scene_id="test-urban",
        zone_kind=ZoneKind.URBAN,
        road_class=RoadClass.ARTERIAL,
        heading=0,
        road_bearing=5.0,
    )


@pytest.fixture()
def rural_scene(generator):
    return generator.generate(
        scene_id="test-rural",
        zone_kind=ZoneKind.RURAL,
        road_class=RoadClass.LOCAL,
        heading=90,
        road_bearing=85.0,
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(123)
