"""Tests for label-efficiency, weather robustness, and the ASCII map."""

import pytest

from repro.core import LLMIndicatorClassifier, NeighborhoodDecoder
from repro.core.indicators import Indicator
from repro.detect.train import TrainConfig
from repro.experiments import ExperimentConfig, ExperimentSuite
from repro.experiments.extensions import (
    run_label_efficiency,
    run_weather_robustness,
)
from repro.geo import make_durham_like
from repro.gsv import StreetViewClient
from repro.reporting import survey_to_ascii_map


@pytest.fixture(scope="module")
def tiny_suite():
    return ExperimentSuite(
        config=ExperimentConfig(
            n_images=96,
            image_size=256,
            n_calibration_images=160,
            detector_train=TrainConfig(epochs=4, batch_size=16),
        )
    )


class TestLabelEfficiency:
    def test_learning_curve_shape(self, tiny_suite):
        result = run_label_efficiency(tiny_suite, fractions=(0.25, 1.0))
        assert len(result.rows) == 2
        budgets = result.column("labeled_images")
        assert budgets[0] < budgets[1]
        # More labels never hurt by a large margin.
        f1s = result.column("detector_f1")
        assert f1s[1] >= f1s[0] - 0.10

    def test_llm_reference_constant(self, tiny_suite):
        result = run_label_efficiency(tiny_suite, fractions=(0.25, 1.0))
        references = set(result.column("llm_f1_zero_labels"))
        assert len(references) == 1

    def test_rejects_bad_fractions(self, tiny_suite):
        with pytest.raises(ValueError):
            run_label_efficiency(tiny_suite, fractions=(0.0, 1.5))


class TestWeatherRobustness:
    def test_severe_fog_and_dusk_hurt(self, tiny_suite):
        """At full severity the global-appearance shifts must cost F1.

        (Rain is excluded here: at this tiny training scale the weak
        detector's F1 is noisy enough that local streak overlays can
        swing either way; the full-scale behaviour is covered by the
        `python -m repro weather` experiment.)
        """
        result = run_weather_robustness(tiny_suite, severity=1.0)
        clear = result.row_by("condition", "clear")["f1"]
        assert result.row_by("condition", "fog")["f1"] < clear
        assert result.row_by("condition", "dusk")["f1"] < clear

    def test_f1_values_valid(self, tiny_suite):
        result = run_weather_robustness(tiny_suite, severity=0.75)
        for row in result.rows:
            assert 0.0 <= row["f1"] <= 1.0

    def test_all_conditions_present(self, tiny_suite):
        result = run_weather_robustness(tiny_suite)
        conditions = set(result.column("condition"))
        assert conditions == {"clear", "fog", "rain", "dusk"}


class TestAsciiMap:
    @pytest.fixture(scope="class")
    def report(self, clients):
        county = make_durham_like(seed=3)
        decoder = NeighborhoodDecoder(
            street_view=StreetViewClient(counties=[county], api_key="x"),
            classifier=LLMIndicatorClassifier(clients["gemini-1.5-pro"]),
        )
        return decoder.survey(county, n_locations=20, seed=4)

    def test_map_dimensions(self, report):
        text = survey_to_ascii_map(
            report, Indicator.SIDEWALK, columns=30, rows=10
        )
        lines = text.split("\n")
        assert len(lines) == 12  # title + 10 rows + legend
        assert all(len(line) == 30 for line in lines[1:-1])

    def test_map_marks_surveyed_cells(self, report):
        text = survey_to_ascii_map(report, Indicator.SINGLE_LANE_ROAD)
        body = "\n".join(text.split("\n")[1:-1])
        marked = sum(1 for ch in body if ch not in " \n")
        assert marked >= 5

    def test_empty_report(self):
        from repro.core.pipeline import SurveyReport

        text = survey_to_ascii_map(SurveyReport(), Indicator.SIDEWALK)
        assert "no surveyed locations" in text

    def test_validates_grid(self, report):
        with pytest.raises(ValueError):
            survey_to_ascii_map(report, Indicator.SIDEWALK, columns=2)
