"""Unit and property tests for box algebra (IoU, NMS, conversions)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.detect import (
    as_boxes,
    box_area,
    clip_boxes,
    cxcywh_to_xyxy,
    iou_matrix,
    nms,
    xyxy_to_cxcywh,
)


@st.composite
def box_arrays(draw, max_boxes=8):
    n = draw(st.integers(1, max_boxes))
    out = []
    for _ in range(n):
        x0 = draw(st.floats(0.0, 0.8))
        y0 = draw(st.floats(0.0, 0.8))
        w = draw(st.floats(0.05, 0.2))
        h = draw(st.floats(0.05, 0.2))
        out.append([x0, y0, min(1.0, x0 + w), min(1.0, y0 + h)])
    return np.asarray(out)


class TestBoxBasics:
    def test_as_boxes_validates(self):
        with pytest.raises(ValueError):
            as_boxes([[0.5, 0.1, 0.4, 0.9]])

    def test_as_boxes_empty(self):
        assert as_boxes([]).shape == (0, 4)

    def test_area(self):
        boxes = np.array([[0.0, 0.0, 0.5, 0.5], [0.1, 0.1, 0.2, 0.3]])
        assert box_area(boxes) == pytest.approx([0.25, 0.02])

    def test_iou_matrix_shape(self):
        a = np.zeros((3, 4)) + [0.1, 0.1, 0.2, 0.2]
        b = np.zeros((5, 4)) + [0.1, 0.1, 0.2, 0.2]
        assert iou_matrix(a, b).shape == (3, 5)

    def test_iou_matrix_empty(self):
        assert iou_matrix(np.zeros((0, 4)), np.zeros((2, 4))).shape == (0, 2)

    def test_round_trip_xyxy_cxcywh(self):
        boxes = np.array([[0.1, 0.2, 0.5, 0.8], [0.0, 0.0, 1.0, 1.0]])
        assert np.allclose(cxcywh_to_xyxy(xyxy_to_cxcywh(boxes)), boxes)

    def test_clip_boxes_bounds(self):
        boxes = np.array([[-0.2, 0.5, 1.4, 1.2]])
        clipped = clip_boxes(boxes)
        assert clipped[0, 0] >= 0.0
        assert clipped[0, 2] <= 1.0
        assert clipped[0, 2] > clipped[0, 0]

    @given(boxes=box_arrays())
    @settings(max_examples=60)
    def test_iou_diagonal_is_one(self, boxes):
        ious = iou_matrix(boxes, boxes)
        assert np.allclose(np.diag(ious), 1.0)

    @given(boxes=box_arrays())
    @settings(max_examples=60)
    def test_iou_matrix_symmetric(self, boxes):
        ious = iou_matrix(boxes, boxes)
        assert np.allclose(ious, ious.T)


class TestNMS:
    def test_suppresses_duplicates(self):
        boxes = np.array(
            [[0.1, 0.1, 0.3, 0.3], [0.11, 0.11, 0.31, 0.31], [0.7, 0.7, 0.9, 0.9]]
        )
        scores = np.array([0.9, 0.8, 0.7])
        kept, kept_scores = nms(boxes, scores, iou_threshold=0.5)
        assert len(kept) == 2
        assert kept_scores[0] == 0.9

    def test_keeps_disjoint(self):
        boxes = np.array([[0.0, 0.0, 0.2, 0.2], [0.5, 0.5, 0.7, 0.7]])
        scores = np.array([0.6, 0.9])
        kept, kept_scores = nms(boxes, scores)
        assert len(kept) == 2
        assert kept_scores[0] == 0.9  # sorted by score

    def test_merge_averages_cluster(self):
        boxes = np.array([[0.1, 0.1, 0.3, 0.3], [0.2, 0.1, 0.4, 0.3]])
        scores = np.array([0.5, 0.5])
        kept, _ = nms(boxes, scores, iou_threshold=0.2, merge=True)
        assert len(kept) == 1
        assert kept[0][0] == pytest.approx(0.15)

    def test_empty_input(self):
        kept, scores = nms(np.zeros((0, 4)), np.zeros(0))
        assert len(kept) == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            nms(np.zeros((2, 4)) + [0, 0, 1, 1], np.zeros(3))

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            nms(np.zeros((1, 4)) + [0, 0, 1, 1], np.ones(1), iou_threshold=0.0)

    @given(boxes=box_arrays())
    @settings(max_examples=60)
    def test_nms_output_no_high_overlap(self, boxes):
        scores = np.linspace(1.0, 0.5, len(boxes))
        kept, _ = nms(boxes, scores, iou_threshold=0.5)
        ious = iou_matrix(kept, kept)
        np.fill_diagonal(ious, 0.0)
        assert ious.max(initial=0.0) < 0.5 + 1e-9

    @given(boxes=box_arrays())
    @settings(max_examples=60)
    def test_nms_scores_descending(self, boxes):
        scores = np.linspace(0.5, 1.0, len(boxes))
        _, kept_scores = nms(boxes, scores)
        assert np.all(np.diff(kept_scores) <= 0)


def _nms_reference(boxes, scores, iou_threshold, merge):
    """Pre-vectorization NMS: one Python-loop pass per candidate."""
    order = np.argsort(-scores)
    ious = iou_matrix(boxes, boxes)
    suppressed = np.zeros(len(boxes), dtype=bool)
    kept_boxes = []
    kept_scores = []
    for index in order:
        if suppressed[index]:
            continue
        cluster = ~suppressed & (ious[index] >= iou_threshold)
        suppressed |= cluster
        if merge:
            members = np.nonzero(cluster)[0]
            merged = np.average(boxes[members], axis=0, weights=scores[members])
            kept_boxes.append(merged)
        else:
            kept_boxes.append(boxes[index])
        kept_scores.append(scores[index])
    return np.asarray(kept_boxes), np.asarray(kept_scores)


class TestNMSMatchesLoop:
    """The vectorized suppression must be indistinguishable from the loop."""

    @given(
        boxes=box_arrays(max_boxes=12),
        threshold=st.sampled_from([0.2, 0.5, 0.8]),
        merge=st.booleans(),
    )
    @settings(max_examples=120)
    def test_random_boxes_match(self, boxes, threshold, merge):
        scores = np.linspace(1.0, 0.4, len(boxes))
        got_boxes, got_scores = nms(
            boxes, scores, iou_threshold=threshold, merge=merge
        )
        ref_boxes, ref_scores = _nms_reference(boxes, scores, threshold, merge)
        assert np.array_equal(got_scores, ref_scores)
        assert np.array_equal(got_boxes, ref_boxes)

    @given(boxes=box_arrays(max_boxes=12))
    @settings(max_examples=60)
    def test_tied_scores_match(self, boxes):
        # Ties exercise argsort stability — both paths must break them
        # the same way.
        scores = np.full(len(boxes), 0.7)
        got_boxes, got_scores = nms(boxes, scores, iou_threshold=0.4)
        ref_boxes, ref_scores = _nms_reference(boxes, scores, 0.4, False)
        assert np.array_equal(got_scores, ref_scores)
        assert np.array_equal(got_boxes, ref_boxes)
