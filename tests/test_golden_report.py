"""Golden end-to-end regression test for the survey pipeline.

One small survey is frozen as ``tests/data/golden_survey_report.json``
— the exact ``SurveyReport.to_json()`` bytes.  Every execution path
that promises byte-identity (DESIGN.md §8) must reproduce those bytes:
the serial batch survey, the thread-pool survey, and the streaming
engine in both serial and parallel form.  A behavioral change anywhere
in sampling, fetching, classification, voting, or serialization shows
up here as a diff against the frozen document.

Regenerate the fixture after an *intentional* behavior change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_golden_report.py -q

Set ``REPRO_TRACE_EXPORT=/path/to/trace.jsonl`` to also export a full
recorded trace of the golden survey (CI uploads it as a build
artifact, so every green build ships an inspectable span tree).
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path

import pytest

from repro.cascade import CascadeClassifier, fit_cascade_calibration
from repro.core import (
    ClassifierConfig,
    LLMIndicatorClassifier,
    NeighborhoodDecoder,
)
from repro.core.voting import VotingEnsemble
from repro.detect.train import TrainConfig, train_detector
from repro.geo import make_durham_like
from repro.gsv import StreetViewClient, build_survey_dataset
from repro.llm.errors import RateLimitError
from repro.llm.paper_targets import ALL_MODEL_IDS, GPT_4O_MINI
from repro.obs.audit import audit_trace
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.trace import Tracer, use_tracer
from repro.resilience import FaultSchedule, FaultyChatClient, VirtualClock

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_survey_report.json"
ENSEMBLE_GOLDEN_PATH = (
    Path(__file__).parent / "data" / "golden_ensemble_report.json"
)

#: Frozen survey configuration.  Changing any of these invalidates the
#: fixture — regenerate it in the same commit.
COUNTY_SEED = 3
N_LOCATIONS = 6
SURVEY_SEED = 4
MODEL_ID = "gemini-1.5-pro"

PATHS = (
    "serial",
    "thread-4",
    "stream-serial",
    "stream-4",
    "async-serial",
    "async-8",
)


@pytest.fixture(scope="module")
def county():
    return make_durham_like(seed=COUNTY_SEED)


@pytest.fixture(scope="module")
def decoder(county, clients):
    street_view = StreetViewClient(counties=[county], api_key="golden")
    return NeighborhoodDecoder(
        street_view=street_view,
        classifier=LLMIndicatorClassifier(clients[MODEL_ID]),
    )


def _run_path(decoder, county, path_name: str) -> str:
    if path_name == "serial":
        report = decoder.survey(county, N_LOCATIONS, seed=SURVEY_SEED)
    elif path_name == "thread-4":
        report = decoder.survey(
            county, N_LOCATIONS, seed=SURVEY_SEED, workers=4
        )
    elif path_name == "stream-serial":
        report = decoder.survey_stream(
            county, N_LOCATIONS, seed=SURVEY_SEED, keep_locations=True
        )
    elif path_name == "stream-4":
        report = decoder.survey_stream(
            county,
            N_LOCATIONS,
            seed=SURVEY_SEED,
            workers=4,
            keep_locations=True,
        )
    elif path_name == "async-serial":
        report = asyncio.run(
            decoder.survey_async(
                county, N_LOCATIONS, seed=SURVEY_SEED, max_inflight=1
            )
        )
    elif path_name == "async-8":
        report = asyncio.run(
            decoder.survey_async(
                county, N_LOCATIONS, seed=SURVEY_SEED, max_inflight=8
            )
        )
    else:  # pragma: no cover - parametrize guards the names
        raise ValueError(path_name)
    return report.to_json()


@pytest.fixture(scope="module")
def golden_json(decoder, county) -> str:
    """The frozen bytes, regenerating when explicitly asked to."""
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        text = _run_path(decoder, county, "serial")
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(text, encoding="utf-8")
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"golden fixture missing: {GOLDEN_PATH} "
            "(regenerate with REPRO_REGEN_GOLDEN=1)"
        )
    return GOLDEN_PATH.read_text(encoding="utf-8")


def _ensemble(clients) -> VotingEnsemble:
    return VotingEnsemble(
        classifiers={
            model_id: LLMIndicatorClassifier(clients[model_id])
            for model_id in ALL_MODEL_IDS
        }
    )


@pytest.fixture(scope="module")
def ensemble_decoder(county, clients):
    street_view = StreetViewClient(counties=[county], api_key="golden-ens")
    return NeighborhoodDecoder(
        street_view=street_view, ensemble=_ensemble(clients)
    )


@pytest.fixture(scope="module")
def cascade_decoder(county, clients):
    """A threshold-0 cascade over the same four models.

    The detector and calibration are deliberately tiny: at threshold 0
    every doubt lands in the deep band, so their quality is irrelevant
    — every indicator must route to the full ensemble regardless.
    """
    images = build_survey_dataset(n_images=16, size=256, seed=91)
    detector = train_detector(
        images, train_config=TrainConfig(epochs=2, batch_size=8)
    ).model
    cascade = CascadeClassifier(
        detector=detector,
        calibration=fit_cascade_calibration(detector, images),
        scout=LLMIndicatorClassifier(clients[GPT_4O_MINI]),
        ensemble=_ensemble(clients),
        threshold=0.0,
    )
    street_view = StreetViewClient(counties=[county], api_key="golden-ens")
    return NeighborhoodDecoder(street_view=street_view, cascade=cascade)


@pytest.fixture(scope="module")
def ensemble_golden_json(ensemble_decoder, county) -> str:
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        text = _run_path(ensemble_decoder, county, "serial")
        ENSEMBLE_GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        ENSEMBLE_GOLDEN_PATH.write_text(text, encoding="utf-8")
    if not ENSEMBLE_GOLDEN_PATH.exists():
        pytest.fail(
            f"golden fixture missing: {ENSEMBLE_GOLDEN_PATH} "
            "(regenerate with REPRO_REGEN_GOLDEN=1)"
        )
    return ENSEMBLE_GOLDEN_PATH.read_text(encoding="utf-8")


class TestGoldenReport:
    def test_fixture_is_valid_json_with_expected_shape(self, golden_json):
        document = json.loads(golden_json)
        assert document["requested_locations"] == N_LOCATIONS
        assert len(document["locations"]) == N_LOCATIONS
        assert document["coverage"] == 1.0

    @pytest.mark.parametrize("path_name", PATHS)
    def test_every_execution_path_matches_the_frozen_bytes(
        self, decoder, county, golden_json, path_name
    ):
        assert _run_path(decoder, county, path_name) == golden_json

    def test_traced_run_still_matches_and_audits_clean(
        self, decoder, county, golden_json, tmp_path
    ):
        """Tracing the golden survey changes nothing and exports cleanly."""
        tracer = Tracer(trace_id="golden")
        with use_tracer(tracer), use_metrics(MetricsRegistry()):
            text = _run_path(decoder, county, "thread-4")
        assert text == golden_json
        required = ("survey", "survey.location", "survey.classify",
                    "survey.merge")
        assert audit_trace(tracer, required_names=required) == []

        export = os.environ.get("REPRO_TRACE_EXPORT")
        trace_path = Path(export) if export else tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(trace_path) == len(tracer.spans)
        for line in trace_path.read_text(encoding="utf-8").splitlines():
            json.loads(line)


class TestGoldenEnsembleCascadeIdentity:
    """The cascade at threshold 0 IS the plain ensemble, byte for byte.

    DESIGN.md §13's escape-hatch guarantee: with a zero doubt
    tolerance every indicator of every image escalates straight to the
    full four-model vote, so the survey report must serialize to
    exactly the always-ensemble bytes on every execution path.
    """

    def test_fixture_shape(self, ensemble_golden_json):
        document = json.loads(ensemble_golden_json)
        assert document["requested_locations"] == N_LOCATIONS
        assert document["coverage"] == 1.0
        assert "cascade_stats" not in document
        assert "skipped_votes" not in document

    @pytest.mark.parametrize("path_name", PATHS)
    def test_ensemble_paths_match_the_frozen_bytes(
        self, ensemble_decoder, county, ensemble_golden_json, path_name
    ):
        assert (
            _run_path(ensemble_decoder, county, path_name)
            == ensemble_golden_json
        )

    @pytest.mark.parametrize("path_name", PATHS)
    def test_threshold_zero_cascade_is_byte_identical(
        self, cascade_decoder, county, ensemble_golden_json, path_name
    ):
        assert (
            _run_path(cascade_decoder, county, path_name)
            == ensemble_golden_json
        )

    def test_cascade_run_still_counts_its_routing(
        self, cascade_decoder, county
    ):
        """Identity bytes do not mean the cascade went unmeasured."""
        with use_metrics(MetricsRegistry()):
            report = cascade_decoder.survey(county, N_LOCATIONS, seed=SURVEY_SEED)
        stats = report.cascade_stats
        assert stats["images"] == report.images_classified
        assert stats["tier0_indicators"] == 0
        assert stats["tier1_indicators"] == 0
        assert stats["tier2_indicators"] > 0


@pytest.mark.faults
class TestAIMDStormDrill:
    """Injected 429 storms shrink the AIMD window without losing coverage.

    Two three-call bursts of rate-limit errors hit the async engine at
    full width (``max_inflight=8``).  Six scheduled faults against a
    classifier allowed eight attempts makes full coverage an arithmetic
    guarantee, not luck: distinct failed dispatches consume distinct
    scheduled faults, so even with micro-batching fanning one 429 out
    to every seat in its window, no single image can accumulate eight
    failed attempts.  What the drill actually checks is the control
    loop — the 429s must be *observed* (``retry.rate_limited``), the
    AIMD window must shrink in response, and the survey must still
    finish complete.
    """

    def test_storms_shrink_the_window_and_keep_full_coverage(
        self, county, clients, tmp_path
    ):
        storm_429 = lambda: RateLimitError("429 storm", retry_after_s=2.0)  # noqa: E731
        storm = (
            FaultSchedule()
            .burst(storm_429, start=1, length=3)
            .burst(storm_429, start=18, length=3)
        )
        classifier = LLMIndicatorClassifier(
            FaultyChatClient(clients[MODEL_ID], storm),
            ClassifierConfig(max_attempts=8, backoff_s=0.001),
            clock=VirtualClock(),
        )
        decoder = NeighborhoodDecoder(
            street_view=StreetViewClient(
                counties=[county], api_key="golden-drill"
            ),
            classifier=classifier,
        )
        with use_metrics(MetricsRegistry()):
            report = asyncio.run(
                decoder.survey_async(
                    county, N_LOCATIONS, seed=SURVEY_SEED, max_inflight=8
                )
            )

        assert report.coverage == 1.0
        assert not report.failed_locations

        stats = report.pipeline_stats
        assert stats["initial_limit"] == 8
        assert stats["throttle_events"] >= 1
        assert stats["decreases"] >= 1
        assert stats["final_limit"] < stats["initial_limit"]
        counters = report.metrics["counters"]
        assert counters.get("retry.rate_limited", 0) >= 1

        # CI uploads this snapshot as a chaos-job artifact; locally it
        # lands in tmp_path and is simply discarded.
        export = os.environ.get("REPRO_AIMD_METRICS_EXPORT")
        snapshot_path = Path(export) if export else tmp_path / "aimd_drill.json"
        snapshot_path.parent.mkdir(parents=True, exist_ok=True)
        snapshot_path.write_text(
            json.dumps(
                {
                    "drill": "aimd-429-storm",
                    "pipeline_stats": stats,
                    "batch_stats": report.batch_stats,
                    "metrics": report.metrics,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )
