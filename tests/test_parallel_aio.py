"""Unit tests for the asyncio pipeline primitives (``repro.parallel.aio``).

These cover the building blocks in isolation — ordering and windowing
of :func:`imap_async`, the AIMD congestion window, micro-batch window
mechanics, the sync/async thread bridge, and the token bucket's async
acquire — while ``tests/test_golden_report.py`` proves the assembled
engine is byte-identical to the serial survey.
"""

import asyncio
import threading

import pytest

from repro.llm.batch import TokenBucket
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.parallel import (
    AIMDController,
    MicroBatcher,
    ThreadBridge,
    imap_async,
)
from repro.resilience import VirtualClock


class TestImapAsync:
    def test_rejects_non_positive_window(self):
        async def main():
            async for _ in imap_async(asyncio.sleep, [0], max_inflight=0):
                pass

        with pytest.raises(ValueError, match="max_inflight"):
            asyncio.run(main())

    def test_results_arrive_in_submission_order(self):
        """Later-submitted items finish first; yields stay ordered."""
        n = 6

        async def work(i):
            await asyncio.sleep((n - i) * 0.002)  # reverse completion order
            return i * 10

        async def main():
            return [
                outcome
                async for outcome in imap_async(
                    work, range(n), max_inflight=n
                )
            ]

        outcomes = asyncio.run(main())
        assert [o.index for o in outcomes] == list(range(n))
        assert [o.value for o in outcomes] == [i * 10 for i in range(n)]

    def test_inflight_never_exceeds_the_window(self):
        running = 0
        peak = 0

        async def work(i):
            nonlocal running, peak
            running += 1
            peak = max(peak, running)
            await asyncio.sleep(0.001)
            running -= 1
            return i

        async def main():
            return [o async for o in imap_async(work, range(12), max_inflight=3)]

        outcomes = asyncio.run(main())
        assert len(outcomes) == 12
        assert peak <= 3

    def test_errors_are_captured_not_raised(self):
        async def work(i):
            if i == 2:
                raise RuntimeError("boom")
            return i

        async def main():
            return [o async for o in imap_async(work, range(4), max_inflight=2)]

        with use_metrics(MetricsRegistry()) as registry:
            outcomes = asyncio.run(main())
            assert registry.counter("parallel.tasks.errors") == 1
            assert registry.counter("parallel.tasks.completed") == 3
        assert [o.value for o in outcomes if o.error is None] == [0, 1, 3]
        failed = outcomes[2]
        assert isinstance(failed.error, RuntimeError)

    def test_abandoned_iteration_cancels_inflight_work(self):
        started = []
        release = asyncio.Event()

        async def work(i):
            started.append(i)
            if i == 0:
                return i
            await release.wait()  # parks forever unless cancelled
            return i

        async def main():
            agen = imap_async(work, range(10), max_inflight=4)
            first = await agen.__anext__()
            await agen.aclose()  # must cancel and drain, not hang
            return first

        first = asyncio.run(main())  # asyncio.run fails on leaked tasks
        assert first.value == 0
        assert len(started) <= 5  # the stream was drawn lazily


class TestThreadBridge:
    def test_rejects_non_positive_cap(self):
        with pytest.raises(ValueError, match="max_threads"):
            ThreadBridge(0)

    def test_runs_sync_functions_off_loop(self):
        def add(a, b):
            assert threading.current_thread().name.startswith("repro-aio")
            return a + b

        async def main():
            with ThreadBridge(2) as bridge:
                return await bridge.run(add, 2, 3)

        assert asyncio.run(main()) == 5

    def test_cap_bounds_concurrent_sync_calls(self):
        running = 0
        peak = 0
        lock = threading.Lock()

        def blocking():
            nonlocal running, peak
            with lock:
                running += 1
                peak = max(peak, running)
            import time

            time.sleep(0.005)
            with lock:
                running -= 1

        async def main():
            with ThreadBridge(2) as bridge:
                await asyncio.gather(*(bridge.run(blocking) for _ in range(8)))

        asyncio.run(main())
        assert peak <= 2


class TestAIMDController:
    def test_validates_limits(self):
        with pytest.raises(ValueError, match="min_limit"):
            AIMDController(4, min_limit=5)
        with pytest.raises(ValueError, match="decrease_factor"):
            AIMDController(4, decrease_factor=1.0)
        with pytest.raises(ValueError, match="increase_step"):
            AIMDController(4, increase_step=0)

    def test_slot_blocks_at_the_window_and_wakes_on_release(self):
        async def main():
            ctrl = AIMDController(2, max_limit=4)
            await ctrl.acquire()
            await ctrl.acquire()
            third = asyncio.ensure_future(ctrl.acquire())
            await asyncio.sleep(0)
            assert not third.done()  # window full: third caller parks
            ctrl.release()
            await third  # release hands the freed slot over
            assert ctrl.inflight == 2
            assert ctrl.peak_inflight == 2
            ctrl.release()
            ctrl.release()

        asyncio.run(main())

    def test_additive_increase_after_a_clean_window(self):
        ctrl = AIMDController(2, max_limit=4, increase_window=3)
        for _ in range(2):
            ctrl.on_success()
        assert ctrl.limit == 2  # streak not complete yet
        ctrl.on_success()
        assert ctrl.limit == 3
        assert ctrl.increases == 1

    def test_multiplicative_decrease_floors_at_min_limit(self):
        ctrl = AIMDController(8, min_limit=2, increase_window=3)
        ctrl.on_success()  # a part-built streak ...
        ctrl.on_throttle()
        assert ctrl.limit == 4
        for _ in range(3):  # ... was reset by the throttle
            ctrl.on_success()
        assert ctrl.limit == 5
        for _ in range(10):
            ctrl.on_throttle()
        assert ctrl.limit == 2  # never below the floor
        assert ctrl.throttle_events == 11

    def test_stats_summarize_the_run(self):
        ctrl = AIMDController(4, increase_window=1)
        ctrl.on_success()
        ctrl.on_throttle()
        assert ctrl.stats() == {
            "initial_limit": 4,
            "final_limit": 2,
            "peak_inflight": 0,
            "throttle_events": 1,
            "increases": 1,
            "decreases": 1,
        }


class _ScriptedBatchClient:
    """Counts batched dispatches; answers ``ans:<request>`` per seat."""

    def __init__(self, error: Exception | None = None):
        self.batch_calls = []
        self.error = error

    def complete_batch(self, requests):
        self.batch_calls.append(list(requests))
        if self.error is not None:
            raise self.error
        return [f"ans:{request}" for request in requests]


class TestMicroBatcher:
    def test_validates_parameters(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(max_batch=0)
        with pytest.raises(ValueError, match="max_wait_s"):
            MicroBatcher(max_wait_s=-0.1)

    def test_concurrent_submits_share_one_dispatch(self):
        client = _ScriptedBatchClient()
        batcher = MicroBatcher(max_batch=4, max_wait_s=5.0)
        results = {}

        def call(i):
            results[i] = batcher.submit(client, f"q{i}")

        threads = [
            threading.Thread(target=call, args=(i,)) for i in range(4)
        ]
        with use_metrics(MetricsRegistry()) as registry:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(10.0)
            assert registry.counter("llm.microbatch.batches") == 1
            assert registry.counter("llm.microbatch.requests") == 4

        # One upstream dispatch served all four seats, each getting
        # exactly its own answer back.  The window filled to max_batch,
        # so the leader returned long before the 5 s wait ceiling.
        assert len(client.batch_calls) == 1
        assert sorted(client.batch_calls[0]) == [f"q{i}" for i in range(4)]
        assert results == {i: f"ans:q{i}" for i in range(4)}
        assert batcher.stats() == {
            "batches": 1,
            "batched_requests": 4,
            "max_batch_size": 4,
        }

    def test_lone_request_pays_only_the_window_wait(self):
        client = _ScriptedBatchClient()
        batcher = MicroBatcher(max_batch=8, max_wait_s=0.001)
        assert batcher.submit(client, "solo") == "ans:solo"
        assert client.batch_calls == [["solo"]]

    def test_leader_failure_fans_out_to_every_seat(self):
        client = _ScriptedBatchClient(error=RuntimeError("window down"))
        batcher = MicroBatcher(max_batch=2, max_wait_s=5.0)
        errors = []

        def call(i):
            try:
                batcher.submit(client, f"q{i}")
            except RuntimeError as err:
                errors.append(err)

        threads = [
            threading.Thread(target=call, args=(i,)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert len(errors) == 2  # nobody hangs, everybody sees the error
        assert not batcher._windows  # window cleared for the next round

    def test_different_clients_never_share_a_window(self):
        first, second = _ScriptedBatchClient(), _ScriptedBatchClient()
        batcher = MicroBatcher(max_batch=8, max_wait_s=0.001)
        batcher.submit(first, "a")
        batcher.submit(second, "b")
        assert first.batch_calls == [["a"]]
        assert second.batch_calls == [["b"]]

    def test_install_swaps_and_restores_classifier_clients(self):
        class _Clf:
            def __init__(self, client):
                self.client = client

        client = _ScriptedBatchClient()
        clf = _Clf(client)
        batcher = MicroBatcher(max_batch=8, max_wait_s=0.001)
        with batcher.install([clf]):
            assert clf.client is not client
            assert clf.client.complete("q") == "ans:q"
            assert clf.client.batch_calls is client.batch_calls  # delegation
        assert clf.client is client  # restored on exit


class TestTokenBucketAsyncAcquire:
    def test_burst_is_free_then_waits_accrue(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=2.0, capacity=1.0, clock=clock)

        async def main():
            first = await bucket.acquire_async()
            second = await bucket.acquire_async()
            return first, second

        with use_metrics(MetricsRegistry()) as registry:
            first, second = asyncio.run(main())
            # The burst token is free; the next caller owes exactly one
            # refill interval — identical accounting to the sync path.
            assert first == 0.0
            assert second == pytest.approx(0.5)
            assert clock.sleeps == [pytest.approx(0.5)]
            assert registry.counter("ratelimit.waits") == 1
            assert registry.counter("llm.throttle_wait_seconds") == (
                pytest.approx(0.5)
            )
