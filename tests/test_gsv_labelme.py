"""Tests for LabelMe annotation I/O and the label-noise model."""

import numpy as np
import pytest

from repro.core.indicators import Indicator
from repro.gsv import (
    LabelMeShape,
    labelme_to_annotations,
    load_labelme,
    perturb_annotations,
    save_labelme,
    scene_to_labelme,
)
from repro.scene import BoundingBox


class TestLabelMeRoundTrip:
    def test_scene_export_shape_count(self, urban_scene):
        doc = scene_to_labelme(urban_scene, "img.png", 640, 640)
        assert len(doc["shapes"]) == len(urban_scene.objects)
        assert doc["imageWidth"] == 640
        assert doc["version"]

    def test_round_trip_preserves_labels(self, urban_scene):
        doc = scene_to_labelme(urban_scene, "img.png", 640, 640)
        annotations = labelme_to_annotations(doc)
        original = sorted(obj.indicator.value for obj in urban_scene.objects)
        recovered = sorted(ind.value for ind, _ in annotations)
        assert original == recovered

    def test_round_trip_box_accuracy(self, urban_scene):
        doc = scene_to_labelme(urban_scene, "img.png", 640, 640)
        annotations = labelme_to_annotations(doc)
        for obj, (_, box) in zip(urban_scene.objects, annotations):
            assert obj.box.iou(box) > 0.95

    def test_file_round_trip(self, urban_scene, tmp_path):
        doc = scene_to_labelme(urban_scene, "img.png", 640, 640)
        path = tmp_path / "anno.json"
        save_labelme(doc, path)
        assert load_labelme(path) == doc

    def test_rejects_non_rectangle(self):
        with pytest.raises(ValueError):
            LabelMeShape.from_json(
                {"shape_type": "polygon", "points": [[0, 0], [1, 1]]}
            )

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            labelme_to_annotations(
                {"imageWidth": 0, "imageHeight": 640, "shapes": []}
            )

    def test_shape_point_order_normalized(self):
        shape = LabelMeShape.from_json(
            {
                "shape_type": "rectangle",
                "label": "sidewalk",
                "points": [[100, 200], [50, 150]],
            }
        )
        assert shape.x0 == 50 and shape.y0 == 150
        assert shape.x1 == 100 and shape.y1 == 200


class TestPerturbAnnotations:
    @pytest.fixture()
    def annotations(self):
        return [
            (Indicator.SIDEWALK, BoundingBox(0.2, 0.5, 0.8, 0.9)),
            (Indicator.POWERLINE, BoundingBox(0.0, 0.1, 1.0, 0.4)),
            (Indicator.APARTMENT, BoundingBox(0.1, 0.2, 0.4, 0.6)),
        ] * 30

    def test_no_noise_is_identity(self, annotations, rng):
        out = perturb_annotations(
            annotations, rng, jitter=0.0, miss_rate=0.0, mislabel_rate=0.0
        )
        assert out == annotations

    def test_miss_rate_drops_objects(self, annotations, rng):
        out = perturb_annotations(
            annotations, rng, jitter=0.0, miss_rate=0.5, mislabel_rate=0.0
        )
        assert len(out) < len(annotations)

    def test_mislabel_changes_class_only(self, annotations, rng):
        out = perturb_annotations(
            annotations, rng, jitter=0.0, miss_rate=0.0, mislabel_rate=1.0
        )
        assert len(out) == len(annotations)
        changed = sum(
            1
            for (ind_a, _), (ind_b, _) in zip(annotations, out)
            if ind_a != ind_b
        )
        assert changed == len(annotations)

    def test_jitter_keeps_boxes_valid(self, annotations, rng):
        out = perturb_annotations(annotations, rng, jitter=0.05)
        for _, box in out:
            assert 0.0 <= box.x_min < box.x_max <= 1.0
            assert 0.0 <= box.y_min < box.y_max <= 1.0

    def test_rejects_negative_rates(self, annotations, rng):
        with pytest.raises(ValueError):
            perturb_annotations(annotations, rng, jitter=-0.1)
