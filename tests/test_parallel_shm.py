"""Unit tests for the shared-memory array transport.

Covers the arena's ref-counting and release discipline, zero-length
arrays, the degraded (no-shm) fallback with its recorded reason, the
envelope-level transparency of handle resolution, and — the invariant
the module docstring promises — that a drained executor leaves zero
live blocks behind in ``/dev/shm``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.parallel import (
    DEFAULT_MIN_SHARE_BYTES,
    ParallelExecutor,
    SharedArrayArena,
    SharedArrayHandle,
    TaskEnvelope,
    shared_memory_support,
)
from repro.parallel.shm import discard_result, pack_result, resolve_item

SHM_DIR = Path("/dev/shm")

needs_shm = pytest.mark.skipif(
    shared_memory_support()[0] is None,
    reason="multiprocessing.shared_memory unavailable on this host",
)


def _shm_block_names() -> set[str]:
    """Names of live repro-owned blocks the OS currently holds."""
    if not SHM_DIR.is_dir():  # pragma: no cover - non-tmpfs hosts
        return set()
    return {
        p.name
        for p in SHM_DIR.iterdir()
        if p.name.startswith(("repro_arena_", "repro_result_"))
    }


def _scale(item):
    """Module-level so it pickles into child processes."""
    factor, array = item
    return array * factor


class _KillOnPickle:
    """SIGKILLs its own process when pickled.

    Returned inside a worker's result tuple, it dies *after*
    ``pack_result`` has created the result's shared block (and recorded
    the intent) but *before* the owning handle ships to the parent —
    the precise window where an abrupt worker death used to orphan
    ``/dev/shm`` blocks until interpreter exit.
    """

    def __reduce__(self):  # pragma: no cover - executes in the worker
        import os
        import signal

        os.kill(os.getpid(), signal.SIGKILL)
        raise AssertionError("unreachable")


def _big_result_then_die(item):  # pragma: no cover - runs in workers
    index, array = item
    result = array * 2.0
    if index == 2:
        return (result, _KillOnPickle())
    return (result, None)


def _first_row(array):
    return array[0].copy()


@needs_shm
class TestSharedArrayArena:
    def test_share_resolve_round_trip(self):
        rng = np.random.default_rng(7)
        array = rng.standard_normal((64, 64))
        with SharedArrayArena(min_bytes=0) as arena:
            handle = arena.share(array)
            view = handle.resolve()
            assert np.array_equal(view, array)
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0, 0] = 1.0

    def test_same_array_reuses_one_block(self):
        array = np.ones((32, 32))
        with SharedArrayArena(min_bytes=0) as arena:
            first = arena.share(array)
            second = arena.share(array)
            assert first.name == second.name
            assert arena.live_blocks == 1
            assert arena.stats.blocks_created == 1
            assert arena.stats.block_reuses == 1
            # One release per handle; only the last unlinks.
            arena.release(first)
            assert arena.live_blocks == 1
            arena.release(second)
            assert arena.live_blocks == 0

    def test_release_is_idempotent_for_unknown_handles(self):
        with SharedArrayArena(min_bytes=0) as arena:
            arena.release(
                SharedArrayHandle(name="repro_arena_missing", shape=(1,), dtype="<f8")
            )
            assert arena.live_blocks == 0

    def test_zero_length_array_round_trips(self):
        array = np.empty((0, 5), dtype=np.float32)
        with SharedArrayArena(min_bytes=0) as arena:
            handle = arena.share(array)
            view = handle.resolve()
            assert view.shape == (0, 5)
            assert view.dtype == np.float32
            arena.release(handle)

    def test_small_arrays_pass_through_pack(self):
        small = np.ones(4)
        big = np.ones(DEFAULT_MIN_SHARE_BYTES // 8 + 1)
        with SharedArrayArena() as arena:
            packed, handles = arena.pack((small, big))
            assert packed[0] is small
            assert isinstance(packed[1], SharedArrayHandle)
            assert len(handles) == 1
            assert arena.stats.arrays_passthrough == 1
            assert arena.stats.arrays_shared == 1

    def test_pack_traverses_nested_containers(self):
        array = np.ones((16, 16))
        item = {"images": [array, array], "meta": ("x", 3)}
        with SharedArrayArena(min_bytes=0) as arena:
            packed, handles = arena.pack(item)
            assert len(handles) == 2  # two references, one block
            assert arena.live_blocks == 1
            assert packed["meta"] == ("x", 3)
            restored = resolve_item(packed)
            assert np.array_equal(restored["images"][0], array)
            for handle in handles:
                arena.release(handle)
            assert arena.live_blocks == 0

    def test_close_reclaims_everything(self):
        before = _shm_block_names()
        arena = SharedArrayArena(min_bytes=0)
        for _ in range(3):
            arena.share(np.ones((8, 8)) * np.random.default_rng(0).random())
        assert arena.live_blocks >= 1
        arena.close()
        assert arena.live_blocks == 0
        assert _shm_block_names() == before


class TestDegradedFallback:
    def test_arena_degrades_with_recorded_reason(self, monkeypatch):
        monkeypatch.setattr(
            "repro.parallel.shm.shared_memory_support",
            lambda: (None, "test-forced fallback"),
        )
        arena = SharedArrayArena()
        assert not arena.enabled
        assert arena.fallback_reason == "test-forced fallback"
        assert arena.transport() is None
        array = np.ones((256, 256))
        packed, handles = arena.pack(array)
        assert packed is array  # plain pickle transport
        assert handles == []
        with pytest.raises(RuntimeError, match="test-forced fallback"):
            arena.share(array)

    def test_machine_info_surfaces_fallback_reason(self, monkeypatch):
        from repro import perf

        monkeypatch.setattr(
            perf, "shared_memory_support", lambda: (None, "no tmpfs here")
        )
        status = perf.machine_info()["shared_memory"]
        assert status == {"available": False, "fallback_reason": "no tmpfs here"}

    def test_machine_info_reports_available(self):
        from repro.perf import machine_info

        status = machine_info()["shared_memory"]
        assert status["available"] is (shared_memory_support()[0] is not None)

    def test_executor_still_works_degraded(self, monkeypatch):
        monkeypatch.setattr(
            "repro.parallel.shm.shared_memory_support",
            lambda: (None, "test-forced fallback"),
        )
        rng = np.random.default_rng(3)
        items = [(2.0, rng.standard_normal((64, 64))) for _ in range(4)]
        executor = ParallelExecutor(workers=2, backend="process")
        values = executor.map_results(_scale, items)
        for (factor, array), value in zip(items, values):
            assert np.array_equal(value, array * factor)


@needs_shm
class TestEnvelopeTransparency:
    def test_worker_sees_plain_readonly_array(self):
        array = np.arange(64.0).reshape(8, 8)
        with SharedArrayArena(min_bytes=0) as arena:
            packed, handles = arena.pack((3.0, array))
            envelope = TaskEnvelope(_scale, 0, packed, arena.transport())
            outcome = envelope.run()
            assert outcome.ok
            value = arena.unpack_result(outcome.value)
            assert np.array_equal(value, array * 3.0)
            for handle in handles:
                arena.release(handle)

    def test_result_blocks_are_owning_and_self_unlinking(self):
        before = _shm_block_names()
        big = np.ones((256, 256))
        from repro.parallel import ShmTransport

        packed = pack_result(big, ShmTransport(min_bytes=0))
        assert isinstance(packed, SharedArrayHandle)
        assert packed.owns_block
        view = resolve_item(packed)  # resolving unlinks the block
        assert np.array_equal(view, big)
        del view
        assert _shm_block_names() == before

    def test_discard_result_reclaims_unconsumed_blocks(self):
        before = _shm_block_names()
        from repro.parallel import ShmTransport

        packed = pack_result(np.ones((128, 128)), ShmTransport(min_bytes=0))
        assert isinstance(packed, SharedArrayHandle)
        discard_result(packed)
        assert _shm_block_names() == before
        discard_result(packed)  # second discard is a no-op


@needs_shm
class TestExecutorLeakFreedom:
    def test_process_pool_matches_shm_off_and_leaks_nothing(self):
        before = _shm_block_names()
        rng = np.random.default_rng(11)
        items = [(float(i), rng.standard_normal((128, 128))) for i in range(6)]

        with_shm = ParallelExecutor(
            workers=2, backend="process", shm=True, shm_min_bytes=0
        ).map_results(_scale, items)
        without = ParallelExecutor(
            workers=2, backend="process", shm=False
        ).map_results(_scale, items)

        for a, b in zip(with_shm, without):
            assert np.array_equal(a, b)
        assert _shm_block_names() == before

    def test_early_abandon_leaks_nothing(self):
        before = _shm_block_names()
        rng = np.random.default_rng(13)
        items = [(1.0, rng.standard_normal((128, 128))) for _ in range(8)]
        executor = ParallelExecutor(
            workers=2, backend="process", shm=True, shm_min_bytes=0
        )
        iterator = executor.imap(_scale, items)
        next(iterator)
        next(iterator)
        iterator.close()  # consumer bails mid-sweep
        assert _shm_block_names() == before

    def test_killed_worker_orphans_are_swept(self):
        """A worker SIGKILLed mid-result must not leak its shm block.

        The intent ledger (written before block creation, flushed, and
        swept by the arena after the pool joins) is what makes this
        hold even though the dying worker never shipped its handle.
        """
        from repro.obs.metrics import MetricsRegistry, use_metrics

        before = _shm_block_names()
        rng = np.random.default_rng(19)
        items = [(i, rng.standard_normal((128, 128))) for i in range(6)]
        executor = ParallelExecutor(
            workers=2, backend="process", shm=True, shm_min_bytes=0
        )
        registry = MetricsRegistry()
        with use_metrics(registry):
            outcomes = list(executor.imap(_big_result_then_die, items))
        # The killed task (and any pool casualties) surface as error
        # outcomes, not silent gaps — and at least one task died.
        assert len(outcomes) == len(items)
        assert any(not outcome.ok for outcome in outcomes)
        for outcome, (_, array) in zip(outcomes, items):
            if outcome.ok:
                value, marker = outcome.value
                assert marker is None
                assert np.array_equal(value, array * 2.0)
        # The dead worker's block(s) were reclaimed from the ledger:
        # /dev/shm is back to baseline.
        assert _shm_block_names() == before
        assert registry.counter("shm.orphans.reclaimed") >= 1.0

    def test_large_result_arrays_come_back_intact(self):
        rng = np.random.default_rng(17)
        items = [rng.standard_normal((64, 64)) for _ in range(4)]
        executor = ParallelExecutor(
            workers=2, backend="process", shm=True, shm_min_bytes=0
        )
        rows = executor.map_results(_first_row, items)
        for array, row in zip(items, rows):
            assert np.array_equal(row, array[0])
