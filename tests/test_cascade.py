"""Tests for the cost-aware cascade router (DESIGN.md §13).

Covers the router's tier partitioning and threshold-0 ensemble
equivalence, the escalation-monotonicity property (raising the doubt
tolerance never escalates more indicators), the calibration round-trip
through the artifact cache, the early-exit voting oracle, and — under
the ``faults`` marker — a seeded mid-survey LLM outage that must
degrade to detector-only answers without losing coverage.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.artifacts import ArtifactCache
from repro.cascade import (
    DEFAULT_THRESHOLD,
    TIER_DETECTOR,
    TIER_ENSEMBLE,
    TIER_SCOUT,
    CascadeClassifier,
    CascadeStats,
    cascade_calibration_key,
    fit_cascade_calibration,
    load_or_fit_calibration,
    recommend_threshold,
    token_fee_usd,
)
from repro.cascade.calibrate import THRESHOLD_GRID, extract_peaks
from repro.cascade.frontier import micro_f1
from repro.core.classifier import (
    ClassificationError,
    ClassifierConfig,
    LLMIndicatorClassifier,
)
from repro.core.indicators import ALL_INDICATORS, IndicatorPresence
from repro.core.pipeline import NeighborhoodDecoder
from repro.core.voting import VotingEnsemble, decided_presence
from repro.detect.train import TrainConfig, train_detector
from repro.geo import make_durham_like
from repro.gsv import StreetViewClient, build_survey_dataset
from repro.llm.base import ChatClient, Usage
from repro.llm.errors import ServerError
from repro.llm.paper_targets import GPT_4O_MINI
from repro.obs.audit import reconcile_survey
from repro.obs.metrics import MetricsRegistry, use_metrics

N_INDICATORS = len(ALL_INDICATORS)


@pytest.fixture(scope="module")
def detector():
    images = build_survey_dataset(n_images=48, size=256, seed=21)
    return train_detector(
        images, train_config=TrainConfig(epochs=6, batch_size=16)
    ).model


@pytest.fixture(scope="module")
def holdout():
    return build_survey_dataset(n_images=32, size=256, seed=33)


@pytest.fixture(scope="module")
def calibration(detector, holdout):
    return fit_cascade_calibration(detector, holdout)


@pytest.fixture(scope="module")
def eval_images():
    return build_survey_dataset(n_images=12, size=256, seed=45)


def _ensemble(clients, **kwargs) -> VotingEnsemble:
    return VotingEnsemble(
        classifiers={
            model_id: LLMIndicatorClassifier(client)
            for model_id, client in clients.items()
        },
        **kwargs,
    )


def _cascade(clients, detector, calibration, **kwargs) -> CascadeClassifier:
    return CascadeClassifier(
        detector=detector,
        calibration=calibration,
        scout=LLMIndicatorClassifier(clients[GPT_4O_MINI]),
        ensemble=_ensemble(clients),
        **kwargs,
    )


# ----------------------------------------------------------------------
# The early-exit oracle.


def _brute_force_decided(yes, cast, remaining, quorum):
    """Enumerate every completion; each member votes yes, no, or fails."""
    outcomes = set()
    for pattern in itertools.product(("yes", "no", "fail"), repeat=remaining):
        extra_votes = sum(1 for p in pattern if p != "fail")
        survivors = cast + extra_votes
        if survivors == 0:
            continue  # no vote happens at all
        threshold = survivors // 2 + 1
        if quorum is not None and quorum <= survivors:
            threshold = quorum
        total_yes = yes + sum(1 for p in pattern if p == "yes")
        outcomes.add(total_yes >= threshold)
    if outcomes == {True}:
        return True
    if outcomes == {False}:
        return False
    return None


class TestDecidedPresence:
    def test_matches_brute_force_enumeration(self):
        checked = 0
        for cast in range(5):
            for yes in range(cast + 1):
                for remaining in range(4):
                    for quorum in (None, 1, 2, 3):
                        expected = _brute_force_decided(
                            yes, cast, remaining, quorum
                        )
                        got = decided_presence(yes, cast, remaining, quorum)
                        assert got is expected, (
                            yes, cast, remaining, quorum, got, expected
                        )
                        checked += 1
        assert checked == 240

    def test_no_votes_left_is_always_decided(self):
        assert decided_presence(2, 3, 0) is True
        assert decided_presence(1, 3, 0) is False

    def test_unanimous_three_of_four_is_decided(self):
        assert decided_presence(3, 3, 1) is True
        assert decided_presence(0, 3, 1) is False

    def test_split_two_one_stays_open(self):
        assert decided_presence(2, 3, 1) is None

    def test_quorum_two_decides_after_two_yes(self):
        assert decided_presence(2, 2, 1, quorum=2) is True

    def test_inconsistent_tally_rejected(self):
        with pytest.raises(ValueError):
            decided_presence(3, 2, 1)
        with pytest.raises(ValueError):
            decided_presence(-1, 2, 1)
        with pytest.raises(ValueError):
            decided_presence(0, 0, -1)


class _FixedClassifier:
    """Stub member returning a fixed presence (or failing)."""

    def __init__(self, presence=None, fail=False):
        self._presence = presence
        self._fail = fail
        self.calls = 0

    def classify_image(self, image, indicators=None):
        self.calls += 1
        if self._fail:
            raise ClassificationError("stub failure")

        class _Outcome:
            presence = self._presence
            usage = Usage(prompt_tokens=10, completion_tokens=2)

        return _Outcome()


class TestEarlyExitVoting:
    def test_unanimous_members_skip_the_last_one(self, small_dataset):
        image = small_dataset[0]
        everything = IndicatorPresence(ALL_INDICATORS)
        members = {
            name: _FixedClassifier(everything) for name in "abcd"
        }
        ensemble = VotingEnsemble(classifiers=members, early_exit=True)
        record = ensemble.vote_image(image)
        assert record.members_skipped == ("d",)
        assert record.members_voted == ("a", "b", "c")
        assert members["d"].calls == 0
        assert record.presence == everything
        assert record.prompt_tokens == 30

    def test_disabled_early_exit_asks_everyone(self, small_dataset):
        image = small_dataset[0]
        everything = IndicatorPresence(ALL_INDICATORS)
        members = {name: _FixedClassifier(everything) for name in "abcd"}
        ensemble = VotingEnsemble(classifiers=members)
        record = ensemble.vote_image(image)
        assert record.members_skipped == ()
        assert all(member.calls == 1 for member in members.values())

    def test_quorum_decides_after_two_agreeing_members(self, small_dataset):
        image = small_dataset[0]
        everything = IndicatorPresence(ALL_INDICATORS)
        members = {name: _FixedClassifier(everything) for name in "abc"}
        ensemble = VotingEnsemble(
            classifiers=members, quorum=2, early_exit=True
        )
        record = ensemble.vote_image(image)
        assert record.members_skipped == ("c",)
        assert record.presence == everything

    def test_early_exit_matches_full_vote_on_real_models(
        self, clients, small_dataset
    ):
        images = small_dataset[:8]
        plain = _ensemble(clients)
        eager = _ensemble(clients, early_exit=True)
        skipped_total = 0
        for image in images:
            full = plain.vote_image(image)
            quick = eager.vote_image(image)
            assert quick.presence == full.presence, image.image_id
            skipped_total += len(quick.members_skipped)
            assert quick.prompt_tokens <= full.prompt_tokens
        # The four calibrated models mostly agree; unanimity among the
        # first three members decides the vote and skips the fourth.
        assert skipped_total > 0


# ----------------------------------------------------------------------
# Partial-indicator prompting.


class TestPartialIndicators:
    def test_subset_answers_are_bit_equal_to_full_prompt(
        self, clients, small_dataset
    ):
        classifier = LLMIndicatorClassifier(clients[GPT_4O_MINI])
        image = small_dataset[3]
        full = classifier.classify_image(image)
        subset = classifier.config.indicators[1:4]
        partial = classifier.classify_image(image, indicators=subset)
        assert partial.indicators == tuple(subset)
        for indicator in subset:
            assert partial.presence[indicator] == full.presence[indicator]

    def test_ensemble_subset_vote_matches_full_vote(
        self, clients, small_dataset
    ):
        image = small_dataset[5]
        ensemble = _ensemble(clients)
        full = ensemble.vote_image(image)
        subset = tuple(ALL_INDICATORS[:3])
        partial = ensemble.vote_image(image, indicators=subset)
        for indicator in subset:
            assert partial.presence[indicator] == full.presence[indicator]
        for indicator in ALL_INDICATORS[3:]:
            assert not partial.presence[indicator]


# ----------------------------------------------------------------------
# Calibration fitting and the artifact-cache round trip.


class TestCalibration:
    def test_round_trip_through_artifact_cache(
        self, tmp_path, detector, holdout
    ):
        cache = ArtifactCache(tmp_path)
        fitted = load_or_fit_calibration(cache, detector, holdout)
        loaded = load_or_fit_calibration(cache, detector, holdout)
        assert len(loaded.curves) == len(fitted.curves) == N_INDICATORS
        for before, after in zip(fitted.curves, loaded.curves):
            assert np.array_equal(before.positions, after.positions)
            assert np.array_equal(before.values, after.values)
        peaks = extract_peaks(detector, holdout)
        assert np.array_equal(
            fitted.probabilities(peaks), loaded.probabilities(peaks)
        )

    def test_second_call_loads_without_refitting(
        self, tmp_path, detector, holdout, monkeypatch
    ):
        cache = ArtifactCache(tmp_path)
        load_or_fit_calibration(cache, detector, holdout)

        def _explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("refit on a warm cache")

        monkeypatch.setattr(
            "repro.cascade.calibrate.fit_cascade_calibration", _explode
        )
        load_or_fit_calibration(cache, detector, holdout)

    def test_cache_key_tracks_the_split(self, detector, holdout, eval_images):
        key = cascade_calibration_key(detector, holdout)
        assert key == cascade_calibration_key(detector, holdout)
        assert key != cascade_calibration_key(detector, eval_images)

    def test_curves_are_monotone_probabilities(self, calibration):
        grid = np.linspace(-0.5, 1.5, 64)
        for curve in calibration.curves:
            values = curve.probability(grid)
            assert np.all(np.diff(values) >= 0)
            assert np.all(values > 0)
            assert np.all(values < 1)

    def test_recommend_threshold_on_grid_and_relaxes_with_budget(
        self, detector, calibration, holdout
    ):
        strict = recommend_threshold(
            detector, calibration, holdout, max_tier0_error=0.01
        )
        lax = recommend_threshold(
            detector, calibration, holdout, max_tier0_error=1.0
        )
        assert strict in THRESHOLD_GRID
        assert lax == max(THRESHOLD_GRID)
        assert strict <= lax

    def test_empty_split_rejected(self, detector, calibration):
        with pytest.raises(ValueError):
            fit_cascade_calibration(detector, [])
        with pytest.raises(ValueError):
            recommend_threshold(detector, calibration, [])


# ----------------------------------------------------------------------
# The router itself.


class TestCascadeRouter:
    def test_configuration_validated(self, clients, detector, calibration):
        for bad in (-0.1, 0.6):
            with pytest.raises(ValueError, match="threshold"):
                _cascade(clients, detector, calibration, threshold=bad)
        with pytest.raises(ValueError, match="deep_factor"):
            _cascade(clients, detector, calibration, deep_factor=0.5)

    def test_stats_reject_unknown_counters(self):
        with pytest.raises(ValueError, match="unknown cascade counter"):
            CascadeStats().add(tier9_indicators=1)

    def test_empty_location_short_circuits(
        self, clients, detector, calibration
    ):
        cascade = _cascade(clients, detector, calibration)
        assert cascade.predict_location([]) == ([], 0, 0)
        assert cascade.stats.snapshot()["images"] == 0

    def test_threshold_zero_routes_everything_to_the_ensemble(
        self, clients, detector, calibration, eval_images
    ):
        images = eval_images[:4]
        cascade = _cascade(clients, detector, calibration, threshold=0.0)
        presences, degraded, skipped = cascade.predict_location(images)
        stats = cascade.stats.snapshot()
        assert stats["tier0_indicators"] == 0
        assert stats["tier1_indicators"] == 0
        assert stats["scout_calls"] == 0
        assert stats["tier2_indicators"] == len(images) * N_INDICATORS
        assert stats["deep_escalations"] == len(images) * N_INDICATORS
        assert stats["ensemble_calls"] == len(images)
        assert degraded == 0 and skipped == 0
        expected = [
            _ensemble(clients).vote_image(image).presence for image in images
        ]
        assert presences == expected

    def test_tier_counts_partition_every_indicator(
        self, clients, detector, calibration, eval_images
    ):
        cascade = _cascade(clients, detector, calibration)
        cascade.predict_location(eval_images)
        stats = cascade.stats.snapshot()
        assert stats["images"] == len(eval_images)
        assert (
            stats["tier0_indicators"]
            + stats["tier1_indicators"]
            + stats["tier2_indicators"]
            == len(eval_images) * N_INDICATORS
        )

    def test_stage_meter_books_fees_from_tokens(
        self, clients, detector, calibration, eval_images
    ):
        cascade = _cascade(clients, detector, calibration, threshold=0.0)
        cascade.predict_location(eval_images[:3])
        stages = cascade.meter.stage_totals()
        assert stages[TIER_DETECTOR]["images"] == 3
        assert stages[TIER_DETECTOR]["fees_usd"] == 0.0
        ensemble_stage = stages[TIER_ENSEMBLE]
        assert ensemble_stage["requests"] == 3
        assert ensemble_stage["fees_usd"] == pytest.approx(
            token_fee_usd(
                Usage(
                    prompt_tokens=ensemble_stage["prompt_tokens"],
                    completion_tokens=ensemble_stage["completion_tokens"],
                )
            )
        )
        assert TIER_SCOUT not in stages

    def test_escalations_shrink_as_the_threshold_rises(
        self, clients, detector, calibration, eval_images
    ):
        """The monotonicity property: a larger doubt tolerance never
        escalates more indicators out of tier 0."""
        escalated = []
        accepted = []
        for threshold in sorted(THRESHOLD_GRID):
            cascade = _cascade(
                clients, detector, calibration, threshold=threshold
            )
            cascade.predict_location(eval_images)
            stats = cascade.stats.snapshot()
            total = len(eval_images) * N_INDICATORS
            escalated.append(total - stats["tier0_indicators"])
            accepted.append(stats["tier0_indicators"])
        assert all(a >= b for a, b in zip(escalated, escalated[1:]))
        assert all(a <= b for a, b in zip(accepted, accepted[1:]))
        assert escalated[0] == len(eval_images) * N_INDICATORS

    def test_default_threshold_beats_ensemble_fee_on_f1_parity(
        self, clients, detector, calibration, eval_images
    ):
        truths = [image.presence for image in eval_images]
        ensemble = _ensemble(clients)
        baseline_fee = 0.0
        baseline_predictions = []
        for image in eval_images:
            record = ensemble.vote_image(image)
            baseline_predictions.append(record.presence)
            baseline_fee += token_fee_usd(
                Usage(
                    prompt_tokens=record.prompt_tokens,
                    completion_tokens=record.completion_tokens,
                )
            )
        cascade = _cascade(
            clients, detector, calibration, threshold=DEFAULT_THRESHOLD
        )
        predictions, _, _ = cascade.predict_location(eval_images)
        stages = cascade.meter.stage_totals()
        cascade_fee = sum(
            stages.get(tier, {}).get("fees_usd", 0.0)
            for tier in (TIER_SCOUT, TIER_ENSEMBLE)
        )
        assert cascade_fee < baseline_fee
        baseline_f1 = micro_f1(baseline_predictions, truths)
        cascade_f1 = micro_f1(predictions, truths)
        assert cascade_f1 >= baseline_f1 - 0.01


# ----------------------------------------------------------------------
# Survey integration: the two sets of books must reconcile.


class TestCascadeSurvey:
    @pytest.fixture(scope="class")
    def county(self):
        return make_durham_like(seed=3)

    def test_decoder_requires_exactly_one_backend(
        self, clients, detector, calibration, county
    ):
        street_view = StreetViewClient(counties=[county], api_key="cascade")
        cascade = _cascade(clients, detector, calibration)
        with pytest.raises(ValueError, match="exactly one"):
            NeighborhoodDecoder(
                street_view=street_view,
                classifier=LLMIndicatorClassifier(clients[GPT_4O_MINI]),
                cascade=cascade,
            )
        with pytest.raises(ValueError, match="exactly one"):
            NeighborhoodDecoder(street_view=street_view)

    def test_survey_reconciles_and_reports_cascade_stats(
        self, clients, detector, calibration, county
    ):
        cascade = _cascade(clients, detector, calibration)
        decoder = NeighborhoodDecoder(
            street_view=StreetViewClient(counties=[county], api_key="cascade"),
            cascade=cascade,
        )
        with use_metrics(MetricsRegistry()):
            report = decoder.survey(county, 4, seed=9)
        assert report.coverage == 1.0
        stats = report.cascade_stats
        assert stats["images"] == report.images_classified
        assert (
            stats["tier0_indicators"]
            + stats["tier1_indicators"]
            + stats["tier2_indicators"]
            == report.images_classified * N_INDICATORS
        )
        assert reconcile_survey(report) == []

    def test_thread_survey_matches_serial_bytes(
        self, clients, detector, calibration, county
    ):
        serial = NeighborhoodDecoder(
            street_view=StreetViewClient(counties=[county], api_key="cascade"),
            cascade=_cascade(clients, detector, calibration),
        )
        threaded = NeighborhoodDecoder(
            street_view=StreetViewClient(counties=[county], api_key="cascade"),
            cascade=_cascade(clients, detector, calibration),
        )
        with use_metrics(MetricsRegistry()):
            serial_report = serial.survey(county, 4, seed=9)
        with use_metrics(MetricsRegistry()):
            threaded_report = threaded.survey(county, 4, seed=9, workers=4)
        assert serial_report.to_json() == threaded_report.to_json()


# ----------------------------------------------------------------------
# Seeded outage drill (faults marker, excluded from tier-1).


class _OutageClient(ChatClient):
    """Answer normally for the first ``fail_after`` calls, then die."""

    def __init__(self, inner: ChatClient, fail_after: int) -> None:
        super().__init__(model_name=inner.model_name)
        self.inner = inner
        self.fail_after = fail_after
        self.calls = 0

    def complete(self, request):
        self.calls += 1
        if self.calls > self.fail_after:
            raise ServerError("injected mid-survey outage")
        response = self.inner.complete(request)
        self.stats.record(response.usage)
        return response


@pytest.mark.faults
class TestCascadeOutageDrill:
    def test_mid_survey_llm_outage_degrades_to_detector_answers(
        self, clients, detector, calibration
    ):
        """Every LLM dies mid-survey; the cascade must finish the
        survey on detector leans with the fallbacks accounted for."""
        county = make_durham_like(seed=3)
        # Stagger the cut so one vote straddles the outage boundary:
        # the first model dies two images before the other three, which
        # degrades that vote before the full blackout forces fallbacks.
        outage_clients = {
            model_id: _OutageClient(
                client, fail_after=4 if position == 0 else 6
            )
            for position, (model_id, client) in enumerate(
                sorted(clients.items())
            )
        }
        config = ClassifierConfig(max_attempts=1)
        ensemble = VotingEnsemble(
            classifiers={
                model_id: LLMIndicatorClassifier(client, config=config)
                for model_id, client in outage_clients.items()
            }
        )
        cascade = CascadeClassifier(
            detector=detector,
            calibration=calibration,
            scout=LLMIndicatorClassifier(
                outage_clients[GPT_4O_MINI], config=config
            ),
            ensemble=ensemble,
            threshold=0.0,  # everything escalates: maximum LLM exposure
        )
        decoder = NeighborhoodDecoder(
            street_view=StreetViewClient(counties=[county], api_key="drill"),
            cascade=cascade,
        )
        with use_metrics(MetricsRegistry()):
            report = decoder.survey(county, 3, seed=9)
        # The outage cost answer *quality*, never coverage.
        assert report.coverage == 1.0
        assert report.failed_locations == []
        stats = report.cascade_stats
        assert stats["detector_fallbacks"] > 0
        assert stats["tier2_indicators"] == (
            report.images_classified * N_INDICATORS
        )
        # Some vote straddled the outage boundary: members that
        # answered before the cut voted, the rest degraded the vote.
        assert report.degraded_votes > 0
        assert reconcile_survey(report) == []
