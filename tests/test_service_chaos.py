"""Chaos drill: SIGKILL the service daemon mid-job, restart, reconcile.

The in-process restart tests in ``test_service.py`` simulate a crash
by hand-editing the manifest; this drill does it for real — a child
daemon process is SIGKILLed (no cleanup, no atexit, no flush) while a
job's per-location checkpoint is actively growing, then a second
process recovers from whatever bytes survived.  The acceptance
criteria from DESIGN.md §16:

* every job ends terminal after restart — resumed to DONE when the
  attempt budget allows, failed **clean** (durable error, settled
  books) when it does not;
* zero double-billing — each terminal job's settlement equals the
  canonical fee rebuilt from its checkpoint, each tenant ledger equals
  the sum of its jobs' settlements, and a *third* run over the same
  state changes nothing.

Marked ``faults`` (excluded from tier-1): real processes, real clock,
real kill windows.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import JobState
from repro.service.jobs import JobRecord
from repro.service.store import canonical_fees_usd, checkpoint_key

pytestmark = pytest.mark.faults

DRIVER = Path(__file__).parent / "data" / "service_chaos_driver.py"
REPO_SRC = Path(__file__).resolve().parents[1] / "src"


def _spawn(state_dir: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC)
    return subprocess.Popen(
        [sys.executable, str(DRIVER), str(state_dir)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _load_manifest(state_dir: Path) -> dict[str, JobRecord]:
    payload = json.loads((state_dir / "service.json").read_text())
    return {
        entry["job_id"]: JobRecord.from_dict(entry)
        for entry in payload["jobs"]
    }


def _assert_books_reconcile(state_dir: Path) -> None:
    payload = json.loads((state_dir / "service.json").read_text())
    settled_by_tenant: dict[str, float] = {}
    for entry in payload["jobs"]:
        record = JobRecord.from_dict(entry)
        assert record.terminal, f"{record.job_id} not terminal after restart"
        key = checkpoint_key(record.spec, "Durham")
        canonical = canonical_fees_usd(
            state_dir / "checkpoints" / f"{record.job_id}.json", key
        )
        assert record.fees_settled_usd == canonical, (
            f"{record.job_id}: settled {record.fees_settled_usd}, "
            f"checkpoint says {canonical}"
        )
        tenant = record.spec.tenant
        settled_by_tenant[tenant] = round(
            settled_by_tenant.get(tenant, 0.0) + canonical, 9
        )
    for tenant, ledger in payload["ledger"].items():
        assert ledger["settled_usd"] == pytest.approx(
            settled_by_tenant.get(tenant, 0.0)
        ), f"{tenant} ledger disagrees with its jobs"


def test_sigkill_mid_job_restart_resumes_without_double_billing(tmp_path):
    state_dir = tmp_path / "state"
    checkpoint = state_dir / "checkpoints" / "job-0000.json"

    # Phase 1: run until the wide job has durably completed at least
    # two locations, then SIGKILL — no flush, no goodbye.
    with _spawn(state_dir) as victim:
        try:
            deadline = time.time() + 120
            while time.time() < deadline:
                if victim.poll() is not None:
                    out, err = victim.communicate()
                    pytest.fail(
                        f"daemon exited before the kill window: {out}\n{err}"
                    )
                if checkpoint.exists():
                    try:
                        locations = json.loads(checkpoint.read_text())[
                            "locations"
                        ]
                    except (ValueError, KeyError):
                        locations = {}
                    if len(locations) >= 2:
                        break
                time.sleep(0.05)
            else:
                pytest.fail("checkpoint never grew; kill window not reached")
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:  # pragma: no cover - cleanup path
                victim.kill()
                victim.wait()

    # The kill left a RUNNING record (attempt 1) and a partial
    # checkpoint; nothing was settled.
    records = _load_manifest(state_dir)
    assert records["job-0000"].state is JobState.RUNNING
    assert records["job-0000"].fees_settled_usd is None
    survivors = len(
        json.loads(checkpoint.read_text())["locations"]
    )
    assert survivors >= 2

    # Phase 2: restart over the same state; recovery re-queues the
    # interrupted job (attempt 1 of 2) and the daemon drains everything.
    with _spawn(state_dir) as second:
        out, err = second.communicate(timeout=300)
    assert second.returncode == 0, f"restart failed: {out}\n{err}"
    summary = json.loads(out.strip().splitlines()[-1])
    assert any("re-queued" in note for note in summary["recovered"])
    assert summary["counts"]["done"] == 2
    assert summary["counts"]["queued"] == summary["counts"]["running"] == 0

    records = _load_manifest(state_dir)
    killed = records["job-0000"]
    assert killed.state is JobState.DONE
    assert killed.resumed
    assert killed.attempts == 2
    # Resumption, not redo: the post-kill run kept the survivors.
    final_locations = json.loads(checkpoint.read_text())["locations"]
    assert len(final_locations) == 8
    assert records["job-0001"].state is JobState.DONE
    _assert_books_reconcile(state_dir)

    # Phase 3: a third run over settled state is a no-op — terminal
    # records are frozen and nothing gets re-billed.
    before = (state_dir / "service.json").read_text()
    with _spawn(state_dir) as third:
        out, err = third.communicate(timeout=120)
    assert third.returncode == 0, f"idle rerun failed: {out}\n{err}"
    summary = json.loads(out.strip().splitlines()[-1])
    assert summary["recovered"] == []
    assert json.loads(before)["ledger"] == json.loads(
        (state_dir / "service.json").read_text()
    )["ledger"]
    _assert_books_reconcile(state_dir)


def test_sigkill_with_exhausted_attempts_fails_clean(tmp_path):
    """Kill the same job twice: the second recovery has no attempts
    left and must fail it clean — durable error, salvage settlement
    for exactly the checkpointed locations."""
    state_dir = tmp_path / "state"
    checkpoint = state_dir / "checkpoints" / "job-0000.json"

    def dispatched(kill_round: int) -> bool:
        # Round 0 waits for the first durable location; round 1 must
        # wait for the *second* dispatch (RUNNING, attempts == 2) —
        # the checkpoint already exists, so its mere presence would
        # let the kill land before the job is even re-dispatched.
        if kill_round == 0:
            if not checkpoint.exists():
                return False
            try:
                payload = json.loads(checkpoint.read_text())
            except ValueError:
                return False
            return len(payload.get("locations", {})) >= 1
        try:
            record = _load_manifest(state_dir)["job-0000"]
        except (OSError, ValueError, KeyError):
            return False
        return record.state is JobState.RUNNING and record.attempts == 2

    for kill_round in range(2):
        with _spawn(state_dir) as victim:
            try:
                deadline = time.time() + 120
                while time.time() < deadline:
                    if victim.poll() is not None:
                        out, err = victim.communicate()
                        pytest.fail(
                            f"round {kill_round}: daemon exited early: "
                            f"{out}\n{err}"
                        )
                    if dispatched(kill_round):
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail(f"round {kill_round}: no kill window")
                victim.send_signal(signal.SIGKILL)
                victim.wait(timeout=30)
            finally:
                if victim.poll() is None:  # pragma: no cover - cleanup
                    victim.kill()
                    victim.wait()

    with _spawn(state_dir) as final:
        out, err = final.communicate(timeout=300)
    assert final.returncode == 0, f"final run failed: {out}\n{err}"
    summary = json.loads(out.strip().splitlines()[-1])
    assert any("failed clean" in note for note in summary["recovered"])

    records = _load_manifest(state_dir)
    killed = records["job-0000"]
    assert killed.state is JobState.FAILED
    assert killed.attempts == 2  # the budget, fully burned
    assert "restart" in killed.error
    # Salvage settlement covers exactly what survived on disk.
    key = checkpoint_key(killed.spec, "Durham")
    assert killed.fees_settled_usd == canonical_fees_usd(checkpoint, key)
    assert killed.fees_settled_usd > 0.0
    # The small job was never dispatched mid-kill; it drains to DONE.
    assert records["job-0001"].state is JobState.DONE
    _assert_books_reconcile(state_dir)
