"""Tests for the simulated VLM clients."""

import pytest

from repro.core import build_parallel_prompt
from repro.core.languages import PAPER_QUESTION_ORDER
from repro.core.parsing import extract_decisions
from repro.llm import (
    ALL_MODEL_IDS,
    ChatMessage,
    ChatRequest,
    ImageAttachment,
    InvalidRequestError,
    Language,
    ModelNotFoundError,
    RateLimitError,
    ServerError,
    build_clients,
)


@pytest.fixture()
def attachment(urban_scene):
    return ImageAttachment(scene=urban_scene)


class TestRequestValidation:
    def test_missing_image_rejected(self, clients):
        client = clients["gpt-4o-mini"]
        request = ChatRequest(
            model="gpt-4o-mini",
            messages=(ChatMessage(role="user", text="is there a sidewalk?"),),
        )
        with pytest.raises(InvalidRequestError):
            client.complete(request)

    def test_empty_prompt_rejected(self, clients, attachment):
        client = clients["gpt-4o-mini"]
        request = ChatRequest(
            model="gpt-4o-mini",
            messages=(
                ChatMessage(role="user", text="  ", images=(attachment,)),
            ),
        )
        with pytest.raises(InvalidRequestError):
            client.complete(request)

    def test_model_mismatch_rejected(self, clients, attachment):
        client = clients["gpt-4o-mini"]
        request = ChatRequest(
            model="grok-2",
            messages=(
                ChatMessage(role="user", text="hello?", images=(attachment,)),
            ),
        )
        with pytest.raises(InvalidRequestError):
            client.complete(request)

    def test_unknown_model_in_registry(self, calibration_dataset):
        with pytest.raises(ModelNotFoundError):
            build_clients(
                [calibration_dataset[0].scene], model_ids=("gpt-99",)
            )


class TestResponses:
    @pytest.mark.parametrize("model_id", ALL_MODEL_IDS)
    def test_six_answers_for_parallel_prompt(
        self, clients, attachment, model_id
    ):
        text = clients[model_id].ask(build_parallel_prompt(), attachment)
        assert len(extract_decisions(text)) == len(PAPER_QUESTION_ORDER)

    @pytest.mark.parametrize("language", list(Language))
    def test_answers_in_prompt_language(self, clients, attachment, language):
        text = clients["gemini-1.5-pro"].ask(
            build_parallel_prompt(language), attachment
        )
        decisions = extract_decisions(text)
        assert len(decisions) == 6

    def test_deterministic_per_request(self, clients, attachment):
        client = clients["claude-3.7"]
        prompt = build_parallel_prompt()
        assert client.ask(prompt, attachment) == client.ask(
            prompt, attachment
        )

    def test_models_disagree_somewhere(self, clients, small_dataset):
        prompt = build_parallel_prompt()
        differs = False
        for image in small_dataset.images[:30]:
            attachment = ImageAttachment(scene=image.scene)
            answers = {
                model_id: extract_decisions(
                    clients[model_id].ask(prompt, attachment)
                )
                for model_id in ALL_MODEL_IDS
            }
            if len({tuple(a) for a in answers.values()}) > 1:
                differs = True
                break
        assert differs

    def test_non_question_prompt_gets_fallback(self, clients, attachment):
        text = clients["grok-2"].ask("Describe the scenery.", attachment)
        assert extract_decisions(text) == []
        assert len(text) > 10

    def test_usage_accounted(self, clients, attachment):
        client = clients["gpt-4o-mini"]
        before = client.stats.requests
        client.ask(build_parallel_prompt(), attachment)
        assert client.stats.requests == before + 1
        assert client.stats.prompt_tokens > 0

    def test_claude_quirk_trailing_period(self, clients, attachment):
        text = clients["claude-3.7"].ask(build_parallel_prompt(), attachment)
        assert text.endswith(".")


class TestFailureInjection:
    def test_rate_limit_every_n(self, calibration_dataset, urban_scene):
        clients = build_clients(
            [im.scene for im in calibration_dataset.images[:60]],
            model_ids=("gpt-4o-mini",),
            rate_limit_every=3,
        )
        client = clients["gpt-4o-mini"]
        attachment = ImageAttachment(scene=urban_scene)
        prompt = build_parallel_prompt()
        outcomes = []
        for _ in range(6):
            try:
                client.ask(prompt, attachment)
                outcomes.append("ok")
            except RateLimitError:
                outcomes.append("limited")
        assert outcomes.count("limited") == 2

    def test_server_error_every_n(self, calibration_dataset, urban_scene):
        from repro.llm import EvidenceModel, SimulatedVLM, calibrate_profiles

        profiles = calibrate_profiles(
            [im.scene for im in calibration_dataset.images[:60]],
            model_ids=("grok-2",),
        )
        client = SimulatedVLM(
            profiles["grok-2"], EvidenceModel(), server_error_every=2
        )
        attachment = ImageAttachment(scene=urban_scene)
        with pytest.raises(ServerError):
            for _ in range(2):
                client.ask(build_parallel_prompt(), attachment)
