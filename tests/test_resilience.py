"""Tests for the unified resilience layer.

Deterministic (``VirtualClock``) coverage of the retry policy, the
circuit breaker, quorum-degraded voting, checkpoint/resume, and the
scripted acceptance scenario: a survey that survives a GSV transient
burst, one hard-down LLM member, and a quota cliff at 80% of its
locations — then resumes to full coverage without re-billing.
"""

import pytest

from repro.core import (
    ClassificationError,
    ClassifierConfig,
    LLMIndicatorClassifier,
    NeighborhoodDecoder,
    VotingEnsemble,
    majority_vote,
)
from repro.geo import make_robeson_like
from repro.gsv.api import (
    FEE_PER_IMAGE_USD,
    StreetViewClient,
    TransientNetworkError,
)
from repro.llm.batch import BatchRunner
from repro.llm.errors import InvalidRequestError, RateLimitError, ServerError
from repro.resilience import (
    CheckpointMismatchError,
    CircuitBreaker,
    CircuitOpenError,
    CircuitState,
    FaultSchedule,
    FaultyChatClient,
    RetryPolicy,
    SurveyCheckpoint,
    VirtualClock,
)


def _always(error):
    """A schedule that injects ``error`` on every call."""
    return FaultSchedule().after(error, start=1)


def _hard_down(client, error=None):
    return FaultyChatClient(
        client, _always(error or ServerError("model offline"))
    )


class TestRetryPolicy:
    def test_jittered_delays_within_backoff_cap(self):
        policy = RetryPolicy(max_attempts=6, base_delay_s=1.0, max_delay_s=8.0)
        for attempt in range(1, 6):
            cap = min(8.0, 1.0 * 2 ** (attempt - 1))
            delays = [policy.delay_for(attempt) for _ in range(200)]
            assert all(0.0 <= d <= cap for d in delays)
            # Full jitter actually spreads over the interval.
            assert max(delays) > 0.5 * cap
            assert min(delays) < 0.5 * cap

    def test_jitter_deterministic_under_seed(self):
        a = RetryPolicy(seed=42)
        b = RetryPolicy(seed=42)
        assert [a.delay_for(3) for _ in range(10)] == [
            b.delay_for(3) for _ in range(10)
        ]

    def test_retry_after_is_a_floor(self):
        policy = RetryPolicy(base_delay_s=0.01, max_delay_s=0.01)
        err = RateLimitError("429", retry_after_s=4.5)
        assert policy.delay_for(1, err) == pytest.approx(4.5)

    def test_no_sleep_after_final_attempt(self):
        clock = VirtualClock()
        policy = RetryPolicy(max_attempts=3, base_delay_s=1.0)
        outcome = policy.execute(
            lambda: (_ for _ in ()).throw(ServerError("boom")),
            retryable=(ServerError,),
            clock=clock,
        )
        assert not outcome.ok
        assert outcome.attempts == 3
        assert outcome.retries == 2
        assert len(clock.sleeps) == 2  # never sleeps into the RuntimeError

    def test_giveup_captured_without_retry(self):
        clock = VirtualClock()
        outcome = RetryPolicy(max_attempts=4).execute(
            lambda: (_ for _ in ()).throw(InvalidRequestError("bad")),
            retryable=(ServerError,),
            giveup=(InvalidRequestError,),
            clock=clock,
        )
        assert isinstance(outcome.error, InvalidRequestError)
        assert outcome.attempts == 1
        assert clock.sleeps == []

    def test_retryable_wins_over_giveup_base_class(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise RateLimitError("429", retry_after_s=0.0)
            return "ok"

        outcome = RetryPolicy(max_attempts=3, base_delay_s=0.0).execute(
            flaky,
            retryable=(RateLimitError, ServerError),
            giveup=(Exception,),
            clock=VirtualClock(),
        )
        assert outcome.ok and outcome.value == "ok"
        assert outcome.attempts == 2

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)


class TestCircuitBreaker:
    def _breaker(self, clock, threshold=3, recovery=10.0):
        return CircuitBreaker(
            name="test",
            failure_threshold=threshold,
            recovery_time_s=recovery,
            clock=clock,
        )

    def test_opens_at_threshold(self):
        clock = VirtualClock()
        breaker = self._breaker(clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state is CircuitState.CLOSED
        breaker.record_failure()
        assert breaker.state is CircuitState.OPEN
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_success_resets_consecutive_count(self):
        breaker = self._breaker(VirtualClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is CircuitState.CLOSED

    def test_half_open_probe_recovers(self):
        clock = VirtualClock()
        breaker = self._breaker(clock, threshold=1, recovery=5.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.sleep(5.0)
        assert breaker.state is CircuitState.HALF_OPEN
        assert breaker.allow()  # the probe
        breaker.record_success()
        assert breaker.state is CircuitState.CLOSED

    def test_failed_probe_reopens(self):
        clock = VirtualClock()
        breaker = self._breaker(clock, threshold=1, recovery=5.0)
        breaker.record_failure()
        clock.sleep(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is CircuitState.OPEN
        assert breaker.opens == 2
        assert breaker.remaining_open_s() == pytest.approx(5.0)

    def test_retry_policy_short_circuits_when_open(self):
        clock = VirtualClock()
        breaker = self._breaker(clock, threshold=1, recovery=100.0)
        breaker.record_failure()
        outcome = RetryPolicy(max_attempts=4).execute(
            lambda: "never runs",
            retryable=(ServerError,),
            clock=clock,
            breaker=breaker,
        )
        assert outcome.breaker_blocked
        assert outcome.attempts == 0
        assert isinstance(outcome.error, CircuitOpenError)


class TestClassifierRetryDelegation:
    def test_terminal_failure_does_not_sleep_final_backoff(self, small_dataset):
        clock = VirtualClock()
        classifier = LLMIndicatorClassifier(
            _hard_down_client(),
            ClassifierConfig(max_attempts=3, backoff_s=1.0),
            clock=clock,
        )
        with pytest.raises(ClassificationError):
            classifier.classify_image(small_dataset[0])
        # Two backoffs between three attempts; none after the last.
        assert len(clock.sleeps) == 2
        assert classifier.retry_stats.failures == 1

    def test_retry_after_floor_respected(self, small_dataset):
        clock = VirtualClock()
        classifier = LLMIndicatorClassifier(
            _hard_down_client(RateLimitError("429", retry_after_s=7.0)),
            ClassifierConfig(max_attempts=2, backoff_s=0.001),
            clock=clock,
        )
        with pytest.raises(ClassificationError):
            classifier.classify_image(small_dataset[0])
        assert clock.sleeps == [pytest.approx(7.0)]


def _hard_down_client(error=None):
    from repro.llm.base import ChatClient

    class Down(ChatClient):
        def complete(self, request):
            raise error or ServerError("offline")

    return Down("gpt-4o-mini")


class TestBatchRunnerRetryTally:
    def _request(self, scene):
        from repro.core import build_parallel_prompt
        from repro.llm.base import ChatMessage, ChatRequest, ImageAttachment

        return ChatRequest(
            model="gpt-4o-mini",
            messages=(
                ChatMessage(
                    role="user",
                    text=build_parallel_prompt(),
                    images=(ImageAttachment(scene=scene),),
                ),
            ),
        )

    def test_exhausted_request_counts_only_real_retries(self, urban_scene):
        clock = VirtualClock()
        runner = BatchRunner(
            _hard_down_client(), max_attempts=3, clock=clock
        )
        outcomes, stats = runner.run([self._request(urban_scene)])
        assert stats.failed == 1
        assert outcomes[0].attempts == 3
        assert stats.retries == 2  # not 3: the terminal failure isn't a retry

    def test_non_retryable_counts_zero_retries(self, clients, urban_scene):
        request = self._request(urban_scene)
        # Wrong client for the model → InvalidRequestError, never retried.
        bad = request.__class__(model="grok-2", messages=request.messages)
        runner = BatchRunner(clients["gpt-4o-mini"])
        outcomes, stats = runner.run([bad])
        assert stats.failed == 1
        assert stats.retries == 0
        assert outcomes[0].attempts == 1

    def test_breaker_stops_burning_attempts(self, urban_scene):
        clock = VirtualClock()
        breaker = CircuitBreaker(
            name="llm", failure_threshold=3, recovery_time_s=1e9, clock=clock
        )
        runner = BatchRunner(
            _hard_down_client(), max_attempts=3, clock=clock, breaker=breaker
        )
        requests = [self._request(urban_scene) for _ in range(4)]
        outcomes, stats = runner.run(requests)
        assert stats.failed == 4
        # First request trips the breaker; the rest are rejected instantly.
        assert outcomes[0].attempts == 3
        assert all(o.attempts == 0 for o in outcomes[1:])
        assert all(
            isinstance(o.error, CircuitOpenError) for o in outcomes[1:]
        )


class TestQuorumDegradation:
    def _members(self, clients, names, down=()):
        members = {}
        for name in names:
            client = clients[name]
            if name in down:
                client = _hard_down(client)
            members[name] = LLMIndicatorClassifier(
                client, ClassifierConfig(max_attempts=2)
            )
        return members

    def test_one_of_three_down(self, clients, small_dataset):
        names = ("gemini-1.5-pro", "claude-3.7", "grok-2")
        images = small_dataset.images[:4]
        degraded = VotingEnsemble(
            self._members(clients, names, down=("grok-2",))
        )
        records = degraded.resilient_predictions(images)
        assert all(r.degraded for r in records)
        assert all(r.members_failed == ("grok-2",) for r in records)
        # The degraded vote equals a 2-member majority of the survivors.
        healthy = VotingEnsemble(self._members(clients, names[:2]))
        for record, image in zip(records, images):
            survivors = [
                healthy.classifiers[name].classify_image(image).presence
                for name in sorted(names[:2])
            ]
            assert record.presence == majority_vote(survivors, quorum=2)

    def test_two_of_four_down(self, clients, small_dataset):
        names = ("gemini-1.5-pro", "claude-3.7", "grok-2", "gpt-4o-mini")
        ensemble = VotingEnsemble(
            self._members(clients, names, down=("grok-2", "gpt-4o-mini"))
        )
        records = ensemble.resilient_predictions(small_dataset.images[:3])
        for record in records:
            assert set(record.members_failed) == {"grok-2", "gpt-4o-mini"}
            assert set(record.members_voted) == {"gemini-1.5-pro", "claude-3.7"}

    def test_all_members_down_raises(self, clients, small_dataset):
        ensemble = VotingEnsemble(
            self._members(
                clients,
                ("gemini-1.5-pro", "claude-3.7"),
                down=("gemini-1.5-pro", "claude-3.7"),
            )
        )
        with pytest.raises(ClassificationError):
            ensemble.vote_image(small_dataset[0])

    def test_member_breaker_stops_burning_attempts(self, clients, small_dataset):
        schedule = _always(ServerError("offline"))
        down = FaultyChatClient(clients["grok-2"], schedule)
        members = self._members(clients, ("gemini-1.5-pro", "claude-3.7"))
        members["grok-2"] = LLMIndicatorClassifier(
            down, ClassifierConfig(max_attempts=2)
        )
        ensemble = VotingEnsemble(
            members,
            breakers={
                "grok-2": CircuitBreaker(
                    name="grok-2",
                    failure_threshold=1,
                    recovery_time_s=1e9,
                    clock=VirtualClock(),
                )
            },
        )
        ensemble.resilient_predictions(small_dataset.images[:5])
        # Only the first image reaches the dead client (2 attempts);
        # the open circuit absorbs the remaining four images.
        assert schedule.calls == 2

    def test_breakers_validate_member_names(self, clients):
        with pytest.raises(ValueError):
            VotingEnsemble(
                self._members(clients, ("gemini-1.5-pro", "claude-3.7")),
                breakers={"nope": CircuitBreaker()},
            )


class TestSurveyGuards:
    def test_zero_locations(self, clients):
        county = make_robeson_like(seed=2)
        decoder = NeighborhoodDecoder(
            street_view=StreetViewClient(counties=[county], api_key="k"),
            classifier=LLMIndicatorClassifier(clients["gemini-1.5-pro"]),
        )
        report = decoder.survey(county, n_locations=0)
        assert report.coverage == 0.0
        assert report.locations == []
        assert report.images_classified == 0

    def test_negative_locations(self, clients):
        county = make_robeson_like(seed=2)
        decoder = NeighborhoodDecoder(
            street_view=StreetViewClient(counties=[county], api_key="k"),
            classifier=LLMIndicatorClassifier(clients["gemini-1.5-pro"]),
        )
        report = decoder.survey(county, n_locations=-3)
        assert report.coverage == 0.0
        assert report.requested_locations == 0

    def test_empty_sampling_frame(self, clients, monkeypatch):
        county = make_robeson_like(seed=2)
        monkeypatch.setattr(
            "repro.geo.sampling.build_sampling_frame",
            lambda county, graph: [],
        )
        decoder = NeighborhoodDecoder(
            street_view=StreetViewClient(counties=[county], api_key="k"),
            classifier=LLMIndicatorClassifier(clients["gemini-1.5-pro"]),
        )
        report = decoder.survey(county, n_locations=5)
        assert report.coverage == 0.0
        assert report.locations == []


class TestSurveyCheckpoint:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "ckpt.json"
        key = {"county": "Robeson", "n_locations": 5, "seed": 0}
        store = SurveyCheckpoint(path, key)
        store.record(0, {"present": ["sidewalk"], "images": 4})
        store.record(2, {"present": [], "images": 4})
        reloaded = SurveyCheckpoint(path, key)
        assert reloaded.completed_indices == (0, 2)
        assert reloaded.get(0)["present"] == ["sidewalk"]
        assert not reloaded.has(1)

    def test_key_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        SurveyCheckpoint(path, {"seed": 0}).record(0, {})
        with pytest.raises(CheckpointMismatchError):
            SurveyCheckpoint(path, {"seed": 1})


class TestCheckpointCorruption:
    """A damaged checkpoint must cost a re-fetch, never wedge the survey."""

    KEY = {"county": "Durham", "n_locations": 3, "seed": 0}

    def _intact(self, tmp_path):
        path = tmp_path / "ckpt.json"
        store = SurveyCheckpoint(path, self.KEY)
        store.record(0, {"present": ["sidewalk"], "images": 4})
        store.record(1, {"present": [], "images": 4})
        return path

    def test_truncation_at_every_byte_offset_cold_starts(self, tmp_path):
        """No prefix of a checkpoint may crash loading or leak records.

        This replays the exact failure a torn write would produce if
        the atomic rename were ever lost: the file cut at *every*
        possible byte offset.  Each prefix must either load fully (the
        empty case never existed on disk) or quarantine and cold-start.
        """
        from repro.obs.metrics import MetricsRegistry, use_metrics

        intact = self._intact(tmp_path).read_bytes()
        reloaded = SurveyCheckpoint(tmp_path / "ckpt.json", self.KEY)
        assert reloaded.completed_indices == (0, 1)

        for cut in range(len(intact)):
            path = tmp_path / f"cut_{cut}.json"
            path.write_bytes(intact[:cut])
            registry = MetricsRegistry()
            with use_metrics(registry):
                store = SurveyCheckpoint(path, self.KEY)
                # Never partially loaded: a truncated document yields
                # nothing, and the event is counted and quarantined.
                assert len(store) == 0, f"cut at byte {cut} leaked records"
                assert registry.counter("checkpoint.corrupt") == 1.0
            assert not path.exists()
            assert path.with_suffix(".json.corrupt").exists()
            # The store stays usable: recording resumes from cold.
            store.record(0, {"present": [], "images": 4})
            assert SurveyCheckpoint(path, self.KEY).completed_indices == (0,)

    def test_checksum_mismatch_quarantines(self, tmp_path):
        import json as _json

        from repro.obs.metrics import MetricsRegistry, use_metrics

        path = self._intact(tmp_path)
        doc = _json.loads(path.read_text())
        doc["locations"]["0"]["images"] = 400  # bit-rot the body
        path.write_text(_json.dumps(doc))
        registry = MetricsRegistry()
        with use_metrics(registry):
            store = SurveyCheckpoint(path, self.KEY)
        assert len(store) == 0
        assert registry.counter("checkpoint.corrupt") == 1.0
        assert path.with_suffix(".json.corrupt").exists()

    def test_unknown_format_version_still_raises(self, tmp_path):
        """A future format is a config bug, not corruption: fail loudly."""
        import json as _json

        path = tmp_path / "ckpt.json"
        path.write_text(_json.dumps({"format_version": 99}))
        with pytest.raises(ValueError, match="unsupported checkpoint"):
            SurveyCheckpoint(path, self.KEY)

    def test_version_1_document_without_checksum_loads(self, tmp_path):
        """Pre-hardening checkpoints keep their value (and their billing)."""
        import json as _json

        path = tmp_path / "ckpt.json"
        path.write_text(
            _json.dumps(
                {
                    "format_version": 1,
                    "key": {k: self.KEY[k] for k in sorted(self.KEY)},
                    "locations": {"0": {"present": [], "images": 4}},
                }
            )
        )
        store = SurveyCheckpoint(path, self.KEY)
        assert store.completed_indices == (0,)


class TestScriptedOutageScenario:
    """The acceptance scenario: GSV burst + one LLM hard-down + quota
    cliff at 80% of locations, then checkpoint resume at full coverage
    with no double billing."""

    N_LOCATIONS = 5  # 20 images; quota cliff at 16 = 80%

    def _ensemble(self, clients, clock):
        names = ("gemini-1.5-pro", "claude-3.7", "grok-2")
        members = {
            name: LLMIndicatorClassifier(
                clients[name], ClassifierConfig(max_attempts=2)
            )
            for name in names[:2]
        }
        members["grok-2"] = LLMIndicatorClassifier(
            _hard_down(clients["grok-2"]),
            ClassifierConfig(max_attempts=2),
        )
        return VotingEnsemble(
            members,
            breakers={
                "grok-2": CircuitBreaker(
                    name="grok-2",
                    failure_threshold=2,
                    recovery_time_s=1e9,
                    clock=clock,
                )
            },
        )

    def test_survives_and_resumes_without_rebilling(self, clients, tmp_path):
        county = make_robeson_like(seed=2)
        checkpoint = tmp_path / "survey.json"
        clock = VirtualClock()
        outage = StreetViewClient(
            counties=[county],
            api_key="scenario",
            daily_quota=int(0.8 * self.N_LOCATIONS) * 4,
            fault_schedule=FaultSchedule().burst(
                TransientNetworkError("transient burst"), start=3, length=2
            ),
        )
        decoder = NeighborhoodDecoder(
            street_view=outage,
            ensemble=self._ensemble(clients, clock),
            retry_policy=RetryPolicy(max_attempts=4, base_delay_s=0.2),
            clock=clock,
        )
        report = decoder.survey(
            county, self.N_LOCATIONS, seed=0, checkpoint=checkpoint
        )

        assert report.coverage >= 0.8
        assert len(report.failed_locations) == 1
        assert "QuotaExceededError" in report.failed_locations[0].reason
        assert report.degraded_votes == report.images_classified  # grok down
        assert report.retry_stats.retries >= 2  # the transient burst
        assert clock.sleeps  # backoff actually waited (on the virtual clock)
        fees_first = outage.usage().fees_usd
        assert fees_first == pytest.approx(16 * FEE_PER_IMAGE_USD)

        # Resume next day: fresh quota, no faults, same checkpoint.
        recovered = StreetViewClient(counties=[county], api_key="scenario")
        resumed = NeighborhoodDecoder(
            street_view=recovered,
            ensemble=self._ensemble(clients, clock),
            retry_policy=RetryPolicy(max_attempts=4, base_delay_s=0.2),
            clock=clock,
        )
        report2 = resumed.survey(
            county, self.N_LOCATIONS, seed=0, checkpoint=checkpoint
        )
        assert report2.coverage == 1.0
        assert not report2.failed_locations
        assert len(report2.locations) == self.N_LOCATIONS
        # Only the one missing location was fetched and billed.
        assert recovered.usage().fees_usd == pytest.approx(
            4 * FEE_PER_IMAGE_USD
        )
        assert report2.fees_usd == pytest.approx(4 * FEE_PER_IMAGE_USD)
        assert fees_first + recovered.usage().fees_usd == pytest.approx(
            self.N_LOCATIONS * 4 * FEE_PER_IMAGE_USD
        )
