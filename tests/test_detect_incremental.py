"""Incremental training and the empty-input guards.

Covers the delta fine-tuning protocol (DESIGN.md §14): a cached base
run plus a mostly-unchanged dataset fine-tunes the cached weights on
the changed images instead of retraining from scratch, and the result
must stay within the documented eval tolerance (mean F1 and mAP50
within 0.05) of a full retrain on the same data.
"""

import numpy as np
import pytest

from repro.artifacts import ArtifactCache
from repro.detect import (
    IncrementalConfig,
    ModelConfig,
    TrainConfig,
    build_training_tensors,
    evaluate_detector,
    train_detector,
)

#: The documented incremental-vs-full eval equivalence tolerance.
EQUIVALENCE_TOLERANCE = 0.05

MODEL_CONFIG = ModelConfig(hidden=32)
TRAIN_CONFIG = TrainConfig(epochs=3, seed=1)


class TestEmptyInputGuards:
    """Satellite: empty image lists fail fast with a clear message,
    not an opaque ``np.stack([])`` ValueError."""

    def test_build_training_tensors_rejects_empty_list(self):
        with pytest.raises(ValueError, match="empty image list"):
            build_training_tensors([], 16)

    @pytest.mark.parametrize("chunk_size", [1, 4, 8])
    def test_empty_list_rejected_at_any_chunk_size(self, chunk_size):
        # The empty check must not depend on how chunking would have
        # split the (nonexistent) work.
        with pytest.raises(ValueError, match="empty image list"):
            build_training_tensors([], 16, chunk_size=chunk_size)

    def test_invalid_chunk_size_reported_first(self):
        # Both inputs are bad: the chunk_size diagnostic wins so the
        # caller fixes the config error before the data error.
        with pytest.raises(ValueError, match="chunk_size"):
            build_training_tensors([], 16, chunk_size=0)

    def test_train_detector_rejects_no_images(self):
        with pytest.raises(ValueError, match="no training images"):
            train_detector([])

    def test_train_detector_rejects_empty_precomputed(self):
        empty = (
            np.zeros((0, 256, 34)),
            np.zeros((0, 256, 5)),
            np.zeros((0, 256, 5, 4)),
        )
        with pytest.raises(ValueError, match="no images"):
            train_detector([], precomputed=empty)


@pytest.fixture(scope="module")
def splits(small_dataset):
    return small_dataset.split(seed=0)


def _seed_base(splits, tmp_path, name="artifacts"):
    """A fresh cache seeded with one full base run on 20 images.

    Every incremental run *rewrites* the base entry, so tests that
    invoke the incremental path each seed their own cache instead of
    sharing one and coupling through execution order.
    """
    base_images = splits.train[:20]
    cache = ArtifactCache(tmp_path / name)
    base = train_detector(
        base_images,
        model_config=MODEL_CONFIG,
        train_config=TRAIN_CONFIG,
        cache=cache,
        incremental=True,
    )
    changed_images = list(base_images[:-2]) + list(splits.train[20:22])
    return base_images, changed_images, cache, base


class TestIncrementalTraining:
    def test_first_run_is_full_and_seeds_the_base(self, splits, tmp_path):
        _, _, _, base = _seed_base(splits, tmp_path)
        assert base.mode == "full"
        assert base.trained_images == 20

    def test_identical_rerun_hits_the_exact_weights_cache(
        self, splits, tmp_path
    ):
        base_images, _, cache, base = _seed_base(splits, tmp_path)
        rerun = train_detector(
            base_images,
            model_config=MODEL_CONFIG,
            train_config=TRAIN_CONFIG,
            cache=cache,
            incremental=True,
        )
        assert rerun.mode == "cached"
        assert np.array_equal(rerun.model.w1, base.model.w1)

    def test_ten_percent_change_fine_tunes_cached_weights(
        self, splits, tmp_path
    ):
        _, changed_images, cache, _ = _seed_base(splits, tmp_path)
        hits_before = cache.hits
        result = train_detector(
            changed_images,
            model_config=MODEL_CONFIG,
            train_config=TRAIN_CONFIG,
            cache=cache,
            incremental=True,
        )
        assert result.mode == "incremental"
        assert result.reused_images == 18
        # 2 changed + replay_ratio * 2 replay images.
        assert result.trained_images == 6
        # The 18 unchanged images' tensors replay from the cache: only
        # the 2 new images pay feature extraction.
        assert cache.hits - hits_before >= 18

    def test_matches_full_retrain_within_documented_tolerance(
        self, splits, tmp_path
    ):
        _, changed_images, cache, _ = _seed_base(splits, tmp_path)
        incremental = train_detector(
            changed_images,
            model_config=MODEL_CONFIG,
            train_config=TRAIN_CONFIG,
            cache=cache,
            incremental=True,
        )
        assert incremental.mode == "incremental"
        full = train_detector(
            changed_images,
            model_config=MODEL_CONFIG,
            train_config=TRAIN_CONFIG,
        )
        eval_images = splits.test[:24]
        report_incremental = evaluate_detector(
            incremental.model, eval_images
        )
        report_full = evaluate_detector(full.model, eval_images)
        assert abs(
            report_incremental.mean_f1 - report_full.mean_f1
        ) <= EQUIVALENCE_TOLERANCE
        assert abs(
            report_incremental.map50 - report_full.map50
        ) <= EQUIVALENCE_TOLERANCE

    def test_large_change_falls_back_to_full_retrain(
        self, splits, tmp_path
    ):
        base_images, _, cache, _ = _seed_base(splits, tmp_path)
        mostly_new = list(base_images[:4]) + list(splits.train[22:38])
        result = train_detector(
            mostly_new,
            model_config=MODEL_CONFIG,
            train_config=TRAIN_CONFIG,
            cache=cache,
            incremental=True,
        )
        assert result.mode == "full"

    def test_tighter_config_rejects_the_same_delta(self, splits, tmp_path):
        _, changed_images, cache, _ = _seed_base(splits, tmp_path)
        result = train_detector(
            changed_images,
            model_config=MODEL_CONFIG,
            train_config=TRAIN_CONFIG,
            cache=cache,
            incremental=True,
            incremental_config=IncrementalConfig(max_changed_fraction=0.05),
        )
        assert result.mode == "full"

    def test_without_flag_no_base_entry_is_consulted(
        self, splits, tmp_path
    ):
        images = splits.train[:12]
        cache = ArtifactCache(tmp_path / "plain")
        first = train_detector(
            images,
            model_config=MODEL_CONFIG,
            train_config=TRAIN_CONFIG,
            cache=cache,
        )
        changed = list(images[:-1]) + [splits.train[30]]
        second = train_detector(
            changed,
            model_config=MODEL_CONFIG,
            train_config=TRAIN_CONFIG,
            cache=cache,
        )
        assert first.mode == "full"
        assert second.mode == "full"

    def test_incremental_weights_never_pollute_the_exact_cache(
        self, splits, tmp_path
    ):
        # A full retrain of the changed dataset after an incremental
        # run must compute fresh weights, not replay the fine-tuned
        # ones from the exact-weights cache.
        _, changed_images, cache, _ = _seed_base(splits, tmp_path)
        incremental = train_detector(
            changed_images,
            model_config=MODEL_CONFIG,
            train_config=TRAIN_CONFIG,
            cache=cache,
            incremental=True,
        )
        assert incremental.mode == "incremental"
        full = train_detector(
            changed_images,
            model_config=MODEL_CONFIG,
            train_config=TRAIN_CONFIG,
            cache=cache,
            incremental=False,
        )
        assert full.mode == "full"
        assert not np.array_equal(full.model.w1, incremental.model.w1)
