"""Tests for detection evaluation (matching, AP, operating points)."""

import numpy as np
import pytest

from repro.detect import (
    average_precision,
    best_f1_operating_point,
    match_detections,
)


def _boxes(*rows):
    return np.asarray(rows, dtype=np.float64).reshape(-1, 4)


class TestMatching:
    def test_perfect_match(self):
        gt = [_boxes([0.1, 0.1, 0.5, 0.5])]
        det = [_boxes([0.1, 0.1, 0.5, 0.5])]
        scores = [np.array([0.9])]
        pooled_scores, tp, n_gt = match_detections(det, scores, gt)
        assert n_gt == 1
        assert tp.tolist() == [True]

    def test_low_iou_not_matched(self):
        gt = [_boxes([0.1, 0.1, 0.3, 0.3])]
        det = [_boxes([0.6, 0.6, 0.9, 0.9])]
        scores = [np.array([0.9])]
        _, tp, _ = match_detections(det, scores, gt)
        assert tp.tolist() == [False]

    def test_duplicate_detection_counts_one_tp(self):
        gt = [_boxes([0.1, 0.1, 0.5, 0.5])]
        det = [_boxes([0.1, 0.1, 0.5, 0.5], [0.12, 0.1, 0.52, 0.5])]
        scores = [np.array([0.9, 0.8])]
        _, tp, _ = match_detections(det, scores, gt)
        assert tp.sum() == 1

    def test_higher_score_matched_first(self):
        gt = [_boxes([0.1, 0.1, 0.5, 0.5])]
        det = [_boxes([0.1, 0.1, 0.5, 0.5], [0.1, 0.1, 0.5, 0.5])]
        scores = [np.array([0.5, 0.95])]
        pooled_scores, tp, _ = match_detections(det, scores, gt)
        assert pooled_scores[0] == 0.95
        assert tp.tolist() == [True, False]

    def test_multi_image_pooling(self):
        gt = [_boxes([0.1, 0.1, 0.5, 0.5]), _boxes([0.2, 0.2, 0.6, 0.6])]
        det = [_boxes([0.1, 0.1, 0.5, 0.5]), np.zeros((0, 4))]
        scores = [np.array([0.9]), np.zeros(0)]
        _, tp, n_gt = match_detections(det, scores, gt)
        assert n_gt == 2
        assert tp.sum() == 1


class TestAveragePrecision:
    def test_perfect_detector(self):
        tp = np.array([True, True, True])
        assert average_precision(tp, 3) == pytest.approx(1.0, abs=0.01)

    def test_all_false_positives(self):
        tp = np.array([False, False])
        assert average_precision(tp, 2) == 0.0

    def test_no_detections(self):
        assert average_precision(np.zeros(0, dtype=bool), 3) == 0.0

    def test_no_ground_truth_is_nan(self):
        assert np.isnan(average_precision(np.array([True]), 0))

    def test_half_recall(self):
        # One TP then nothing: AP ≈ recall achieved × precision 1.
        tp = np.array([True])
        ap = average_precision(tp, 2)
        assert 0.4 < ap < 0.6


class TestOperatingPoint:
    def test_best_f1_selects_knee(self):
        scores = np.array([0.9, 0.8, 0.7, 0.6])
        tp = np.array([True, True, False, False])
        precision, recall, f1 = best_f1_operating_point(scores, tp, 2)
        assert precision == pytest.approx(1.0)
        assert recall == pytest.approx(1.0)
        assert f1 == pytest.approx(1.0)

    def test_zero_when_no_detections(self):
        precision, recall, f1 = best_f1_operating_point(
            np.zeros(0), np.zeros(0, dtype=bool), 5
        )
        assert (precision, recall, f1) == (0.0, 0.0, 0.0)

    def test_nan_when_no_ground_truth(self):
        _, _, f1 = best_f1_operating_point(
            np.array([0.9]), np.array([False]), 0
        )
        assert np.isnan(f1)

    def test_tradeoff_resolved_by_f1(self):
        # 3 GT; detections: TP, FP, TP, TP — best F1 takes all.
        scores = np.array([0.9, 0.85, 0.8, 0.75])
        tp = np.array([True, False, True, True])
        precision, recall, f1 = best_f1_operating_point(scores, tp, 3)
        assert recall == pytest.approx(1.0)
        assert precision == pytest.approx(0.75)


class TestStreamingEvaluation:
    """Sharded/streamed prediction must be byte-identical to batch."""

    @pytest.fixture(scope="class")
    def trained(self, small_dataset):
        from repro.detect import ModelConfig, TrainConfig, train_detector

        splits = small_dataset.split(seed=0)
        result = train_detector(
            splits.train[:40],
            model_config=ModelConfig(hidden=32),
            train_config=TrainConfig(epochs=2, seed=0),
        )
        return result.model, splits.test[:24]

    def test_predict_images_generator_matches_list(self, trained):
        from repro.detect import predict_images

        model, images = trained
        batch = predict_images(model, images, conf_threshold=0.05)
        stream = predict_images(
            model, iter(images), conf_threshold=0.05, shard_size=7
        )
        assert len(batch) == len(stream) == len(images)
        for batch_dets, stream_dets in zip(batch, stream):
            assert len(batch_dets) == len(stream_dets)
            for a, b in zip(batch_dets, stream_dets):
                assert a.indicator == b.indicator
                assert a.score == b.score  # exact, not approx
                assert np.array_equal(a.box, b.box)

    @pytest.mark.parametrize("shard_size", [5, 16, 100])
    def test_evaluate_detector_streaming_report_identical(
        self, trained, shard_size
    ):
        from repro.detect import evaluate_detector

        model, images = trained
        batch = evaluate_detector(model, images)
        stream = evaluate_detector(
            model, iter(images), shard_size=shard_size
        )
        assert stream == batch  # dataclass equality: every float exact

    def test_accumulator_merge_equals_sequential(self, trained):
        from repro.detect import DetectionAccumulator, iter_predictions

        model, images = trained
        pairs = list(iter_predictions(model, images, conf_threshold=0.05))
        whole = DetectionAccumulator()
        for image, detections in pairs:
            whole.update(image, detections)
        left, right = DetectionAccumulator(), DetectionAccumulator()
        for image, detections in pairs[:10]:
            left.update(image, detections)
        for image, detections in pairs[10:]:
            right.update(image, detections)
        merged = left.merge(right)
        assert merged.images_seen == whole.images_seen == len(images)
        assert merged.report() == whole.report()

    def test_merge_rejects_threshold_mismatch(self):
        from repro.detect import DetectionAccumulator

        with pytest.raises(ValueError):
            DetectionAccumulator(0.5).merge(DetectionAccumulator(0.75))

    def test_invalid_shard_and_batch_sizes_rejected(self, trained):
        from repro.detect import predict_images

        model, images = trained
        with pytest.raises(ValueError):
            predict_images(model, images, 0.05, shard_size=0)
        with pytest.raises(ValueError):
            predict_images(model, images, 0.05, batch_size=0)
