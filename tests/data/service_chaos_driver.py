"""Subprocess driver for the service chaos drill.

Usage: ``python service_chaos_driver.py <state_dir>``

First run (empty state): submits two jobs — a wide survey the parent
test SIGKILLs mid-flight, then a small one — and drains.  A rerun over
the same state directory recovers the manifest the kill left behind
(re-queue or fail-clean) and drains whatever is runnable.  Prints one
JSON line with the final census so the parent can assert without
parsing the manifest twice.

The street-view latency is real wall time so the parent has a wide,
honest window to land the SIGKILL in — this drill is about what the
*disk* looks like mid-write, so a virtual clock would defeat it.
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path

from repro.service import JobSpec, ServiceStack, SurveyService


async def main(state_dir: Path) -> int:
    stack = ServiceStack(gsv_latency_s=0.25)
    async with SurveyService(
        stack, state_dir, max_attempts=2
    ) as service:
        if not service.store.records:
            await service.submit(
                JobSpec(tenant="acme", n_locations=8, seed=11)
            )
            await service.submit(
                JobSpec(tenant="beta", n_locations=2, seed=7)
            )
        await service.run_until_idle()
        print(
            json.dumps(
                {
                    "counts": service.counts(),
                    "recovered": service.recovered,
                    "ledgers": {
                        tenant: service.ledger_snapshot(tenant)
                        for tenant in ("acme", "beta")
                    },
                },
                sort_keys=True,
            ),
            flush=True,
        )
    return 0


if __name__ == "__main__":
    sys.exit(asyncio.run(main(Path(sys.argv[1]))))
