"""Tests for the indicator taxonomy."""

import pytest
from hypothesis import given, strategies as st

from repro.core.indicators import (
    ALL_INDICATORS,
    Indicator,
    IndicatorPresence,
    PAPER_OBJECT_COUNTS,
)


class TestIndicator:
    def test_six_indicators(self):
        assert len(ALL_INDICATORS) == 6
        assert len(set(ALL_INDICATORS)) == 6

    def test_abbreviations_match_paper(self):
        assert Indicator.STREETLIGHT.abbreviation == "SL"
        assert Indicator.SIDEWALK.abbreviation == "SW"
        assert Indicator.SINGLE_LANE_ROAD.abbreviation == "SR"
        assert Indicator.MULTILANE_ROAD.abbreviation == "MR"
        assert Indicator.POWERLINE.abbreviation == "PL"
        assert Indicator.APARTMENT.abbreviation == "AP"

    @pytest.mark.parametrize("indicator", list(Indicator))
    def test_from_string_round_trips_value(self, indicator):
        assert Indicator.from_string(indicator.value) is indicator

    @pytest.mark.parametrize("indicator", list(Indicator))
    def test_from_string_accepts_abbreviation(self, indicator):
        assert Indicator.from_string(indicator.abbreviation) is indicator

    @pytest.mark.parametrize("indicator", list(Indicator))
    def test_from_string_accepts_display_name(self, indicator):
        assert Indicator.from_string(indicator.display_name) is indicator

    def test_from_string_rejects_unknown(self):
        with pytest.raises(ValueError):
            Indicator.from_string("swimming pool")

    def test_paper_counts_total(self):
        # Section IV-A: 1,927 labeled indicator objects.
        assert sum(PAPER_OBJECT_COUNTS.values()) == 1927


class TestIndicatorPresence:
    def test_defaults_absent(self):
        presence = IndicatorPresence()
        assert not any(presence.values())
        assert len(presence) == 6

    def test_mapping_interface(self):
        presence = IndicatorPresence([Indicator.SIDEWALK])
        assert presence[Indicator.SIDEWALK] is True
        assert presence[Indicator.POWERLINE] is False
        assert Indicator.SIDEWALK in list(presence)

    def test_rejects_non_indicator(self):
        with pytest.raises(TypeError):
            IndicatorPresence(["sidewalk"])

    def test_bad_key_raises(self):
        with pytest.raises(KeyError):
            IndicatorPresence()["sidewalk"]

    def test_vector_round_trip(self):
        presence = IndicatorPresence(
            [Indicator.STREETLIGHT, Indicator.APARTMENT]
        )
        assert IndicatorPresence.from_vector(presence.as_vector()) == presence

    def test_from_vector_validates_length(self):
        with pytest.raises(ValueError):
            IndicatorPresence.from_vector([True, False])

    def test_from_mapping(self):
        presence = IndicatorPresence.from_mapping(
            {Indicator.SIDEWALK: True, Indicator.POWERLINE: False}
        )
        assert presence.present == frozenset([Indicator.SIDEWALK])

    def test_hashable_and_equal(self):
        a = IndicatorPresence([Indicator.SIDEWALK])
        b = IndicatorPresence([Indicator.SIDEWALK])
        assert a == b
        assert hash(a) == hash(b)

    @given(
        flags=st.lists(st.booleans(), min_size=6, max_size=6)
    )
    def test_vector_round_trip_property(self, flags):
        presence = IndicatorPresence.from_vector(flags)
        assert list(presence.as_vector()) == flags
