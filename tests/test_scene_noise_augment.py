"""Tests for SNR noise injection and augmentation transforms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.indicators import Indicator
from repro.scene import (
    BoundingBox,
    add_gaussian_noise,
    measured_snr_db,
    noise_sigma_for_snr,
    random_crop,
    render_scene,
    resize_nearest,
    rotate_box,
    rotate_image,
    signal_power,
)


@pytest.fixture(scope="module")
def image(request):
    rng = np.random.default_rng(0)
    return (rng.uniform(0.2, 0.8, size=(128, 128, 3)) * 255).astype(np.uint8)


class TestNoise:
    def test_measured_snr_close_to_nominal(self, image):
        for snr in (10, 20, 30):
            noisy = add_gaussian_noise(image, snr, np.random.default_rng(1))
            measured = measured_snr_db(image, noisy)
            assert measured == pytest.approx(snr, abs=2.0)

    def test_lower_snr_more_noise(self, image):
        n5 = add_gaussian_noise(image, 5, np.random.default_rng(1))
        n30 = add_gaussian_noise(image, 30, np.random.default_rng(1))
        err5 = np.abs(n5.astype(float) - image.astype(float)).mean()
        err30 = np.abs(n30.astype(float) - image.astype(float)).mean()
        assert err5 > err30 * 3

    def test_preserves_dtype_uint8(self, image):
        noisy = add_gaussian_noise(image, 20)
        assert noisy.dtype == np.uint8

    def test_preserves_dtype_float(self):
        float_image = np.full((16, 16, 3), 0.5)
        noisy = add_gaussian_noise(float_image, 20)
        assert noisy.dtype == float_image.dtype
        assert noisy.min() >= 0.0 and noisy.max() <= 1.0

    def test_black_image_gets_no_noise(self):
        black = np.zeros((16, 16, 3), dtype=np.uint8)
        assert noise_sigma_for_snr(black, 10) == 0.0

    def test_identical_images_infinite_snr(self, image):
        assert measured_snr_db(image, image) == float("inf")

    def test_signal_power_unit_white(self):
        white = np.full((8, 8, 3), 255, dtype=np.uint8)
        assert signal_power(white) == pytest.approx(1.0)


class TestRotation:
    def test_rotate_image_90_shape(self):
        image = np.arange(2 * 3 * 3).reshape(2, 3, 3)
        rotated = rotate_image(image, 90)
        assert rotated.shape == (3, 2, 3)

    def test_rotate_360_identity(self, image):
        out = image
        for _ in range(4):
            out = rotate_image(out, 90)
        assert np.array_equal(out, image)

    def test_rotate_rejects_non_multiple(self, image):
        with pytest.raises(ValueError):
            rotate_image(image, 45)

    def test_rotate_box_90_clockwise(self):
        box = BoundingBox(0.0, 0.0, 0.5, 0.25)  # top-left wide box
        rotated = rotate_box(box, 90)
        # Top-left corner moves to top-right under clockwise rotation.
        assert rotated.x_min == pytest.approx(0.75)
        assert rotated.y_min == pytest.approx(0.0)
        assert rotated.x_max == pytest.approx(1.0)
        assert rotated.y_max == pytest.approx(0.5)

    def test_rotate_box_180_flips(self):
        box = BoundingBox(0.1, 0.2, 0.3, 0.4)
        rotated = rotate_box(box, 180)
        assert rotated.x_min == pytest.approx(0.7)
        assert rotated.y_max == pytest.approx(0.8)

    @given(
        x0=st.floats(0.0, 0.8),
        y0=st.floats(0.0, 0.8),
        w=st.floats(0.05, 0.2),
        h=st.floats(0.05, 0.2),
    )
    @settings(max_examples=50)
    def test_rotate_box_area_preserved(self, x0, y0, w, h):
        box = BoundingBox(x0, y0, min(1.0, x0 + w), min(1.0, y0 + h))
        rotated = rotate_box(box, 90)
        assert rotated.area == pytest.approx(box.area, rel=1e-6)

    @given(degrees=st.sampled_from([90, 180, 270]))
    def test_image_and_box_rotation_agree(self, degrees):
        # Paint a marker rectangle, rotate both, and check the marker
        # lands inside the rotated box.
        image = np.zeros((40, 40, 3), dtype=np.uint8)
        box = BoundingBox(0.1, 0.2, 0.3, 0.5)
        x0, y0, x1, y1 = box.to_pixels(40, 40)
        image[y0:y1, x0:x1] = 255
        rotated_image_ = rotate_image(image, degrees)
        rotated_box = rotate_box(box, degrees)
        rx0, ry0, rx1, ry1 = rotated_box.to_pixels(40, 40)
        patch = rotated_image_[ry0:ry1, rx0:rx1]
        assert patch.mean() > 250  # marker fully inside rotated box


class TestCropAndResize:
    def test_resize_shape(self, image):
        resized = resize_nearest(image, 64, 32)
        assert resized.shape == (64, 32, 3)

    def test_resize_rejects_bad_target(self, image):
        with pytest.raises(ValueError):
            resize_nearest(image, 0, 10)

    def test_random_crop_returns_original_size(self, image):
        out, kept = random_crop(image, [], rng=np.random.default_rng(0))
        assert out.shape == image.shape

    def test_random_crop_drops_invisible_objects(self, image):
        annotations = [
            (Indicator.APARTMENT, BoundingBox(0.0, 0.0, 0.05, 0.05)),
            (Indicator.SIDEWALK, BoundingBox(0.3, 0.3, 0.7, 0.7)),
        ]
        rng = np.random.default_rng(5)
        _, kept = random_crop(image, annotations, rng=rng)
        kept_indicators = [ind for ind, _ in kept]
        assert Indicator.SIDEWALK in kept_indicators

    def test_random_crop_boxes_stay_normalized(self, image):
        annotations = [
            (Indicator.SIDEWALK, BoundingBox(0.2, 0.2, 0.8, 0.8))
        ]
        for seed in range(10):
            _, kept = random_crop(
                image, annotations, rng=np.random.default_rng(seed)
            )
            for _, box in kept:
                assert 0.0 <= box.x_min < box.x_max <= 1.0
                assert 0.0 <= box.y_min < box.y_max <= 1.0

    def test_crop_fraction_validated(self, image):
        with pytest.raises(ValueError):
            random_crop(image, [], crop_fraction=1.5)
