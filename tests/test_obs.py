"""Tests for the observability layer: metrics, tracing, and the audit.

Covers the :mod:`repro.obs` package in isolation (registry semantics,
span lifecycle, JSONL export) and integrated with the pipeline: the
process-backend delta merge, the determinism audit on a traced survey,
and the payload-invisibility guarantee (tracing on vs off yields
byte-identical reports).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core import (
    LLMIndicatorClassifier,
    NeighborhoodDecoder,
    VotingEnsemble,
)
from repro.geo import make_durham_like
from repro.gsv import StreetViewClient
from repro.obs.audit import SURVEY_STAGES, audit_trace, reconcile_survey
from repro.obs.metrics import (
    MetricsRegistry,
    get_metrics,
    nonempty_delta,
    use_metrics,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    use_tracer,
)
from repro.parallel import ParallelExecutor


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("a.b")
        registry.inc("a.b", 2.5)
        assert registry.counter("a.b") == 3.5
        assert registry.counter("never.touched") == 0.0

    def test_counters_reject_negative_increments(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="only increase"):
            registry.inc("a.b", -1)

    def test_gauges_keep_last_value(self):
        registry = MetricsRegistry()
        registry.set_gauge("queue.depth", 4)
        registry.set_gauge("queue.depth", 2)
        assert registry.snapshot()["gauges"] == {"queue.depth": 2.0}

    def test_histogram_buckets_values_by_edge(self):
        registry = MetricsRegistry()
        edges = (1.0, 10.0)
        for value in (0.5, 5.0, 50.0, 0.1):
            registry.observe("latency", value, edges=edges)
        hist = registry.snapshot()["histograms"]["latency"]
        assert hist["edges"] == [1.0, 10.0]
        assert hist["counts"] == [2, 1, 1]  # <=1, <=10, overflow
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(55.6)

    def test_histogram_edges_fixed_by_first_observation(self):
        registry = MetricsRegistry()
        registry.observe("latency", 0.5, edges=(1.0, 10.0))
        with pytest.raises(ValueError, match="already registered"):
            registry.observe("latency", 0.5, edges=(2.0, 20.0))

    def test_snapshot_is_json_ready_and_sorted(self):
        registry = MetricsRegistry()
        registry.inc("z.last")
        registry.inc("a.first")
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a.first", "z.last"]
        json.dumps(snapshot)  # must not raise

    def test_delta_since_omits_unmoved_metrics(self):
        registry = MetricsRegistry()
        registry.inc("stable")
        registry.set_gauge("level", 7)
        before = registry.snapshot()
        registry.inc("moved", 3)
        delta = registry.delta_since(before)
        assert delta["counters"] == {"moved": 3.0}
        assert delta["gauges"] == {}
        assert nonempty_delta(delta)
        assert not nonempty_delta(registry.delta_since(registry.snapshot()))

    def test_merge_adds_counters_and_histograms_overwrites_gauges(self):
        parent = MetricsRegistry()
        parent.inc("shared", 1)
        parent.set_gauge("level", 1)
        parent.observe("lat", 0.5, edges=(1.0,))
        child = MetricsRegistry()
        child.inc("shared", 2)
        child.inc("child.only", 5)
        child.set_gauge("level", 9)
        child.observe("lat", 2.0, edges=(1.0,))
        parent.merge(child.snapshot())
        snapshot = parent.snapshot()
        assert snapshot["counters"] == {"shared": 3.0, "child.only": 5.0}
        assert snapshot["gauges"] == {"level": 9.0}
        assert snapshot["histograms"]["lat"]["counts"] == [1, 1]
        assert snapshot["histograms"]["lat"]["count"] == 2

    def test_merge_rejects_histogram_edge_mismatch(self):
        parent = MetricsRegistry()
        parent.observe("lat", 0.5, edges=(1.0,))
        child = MetricsRegistry()
        child.observe("lat", 0.5, edges=(2.0,))
        with pytest.raises(ValueError, match="edge mismatch"):
            parent.merge(child.snapshot())

    def test_reset_and_is_empty(self):
        registry = MetricsRegistry()
        assert registry.is_empty()
        registry.inc("a")
        assert not registry.is_empty()
        registry.reset()
        assert registry.is_empty()

    def test_use_metrics_swaps_the_active_registry(self):
        default = get_metrics()
        scoped = MetricsRegistry()
        with use_metrics(scoped):
            assert get_metrics() is scoped
            get_metrics().inc("scoped.only")
        assert get_metrics() is default
        assert scoped.counter("scoped.only") == 1.0
        assert default.counter("scoped.only") == 0.0


class TestTracer:
    def test_spans_nest_implicitly_within_a_thread(self):
        tracer = Tracer(trace_id="t")
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Recorded in finish order: inner closes first.
        assert [span.name for span in tracer.spans] == ["inner", "outer"]

    def test_explicit_parent_crosses_threads(self):
        tracer = Tracer(trace_id="t")
        seen: dict[str, str | None] = {}

        with tracer.span("root") as root:

            def worker():
                # contextvars do not flow into pool threads; the
                # explicit parent= is the only correct edge here.
                with tracer.span("child", parent=root) as child:
                    seen["parent"] = child.parent_id
                with tracer.span("orphan") as orphan:
                    seen["orphan_parent"] = orphan.parent_id

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()

        assert seen["parent"] == root.span_id
        assert seen["orphan_parent"] is None

    def test_exception_marks_span_errored_and_propagates(self):
        tracer = Tracer(trace_id="t")
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.status == "error"
        assert span.error == "RuntimeError: boom"
        assert span.end_s is not None

    def test_span_ids_are_unique_and_durations_nonnegative(self):
        tracer = Tracer(trace_id="t")
        for index in range(5):
            with tracer.span("op", index=index):
                pass
        ids = [span.span_id for span in tracer.spans]
        assert len(set(ids)) == 5
        assert all(span.duration_s >= 0 for span in tracer.spans)

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer(trace_id="roundtrip")
        with tracer.span("a", detail=1):
            with tracer.span("b"):
                pass
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 2
        lines = path.read_text(encoding="utf-8").splitlines()
        records = [json.loads(line) for line in lines]
        assert {record["name"] for record in records} == {"a", "b"}
        assert all(record["trace_id"] == "roundtrip" for record in records)
        by_name = {record["name"]: record for record in records}
        assert by_name["b"]["parent_id"] == by_name["a"]["span_id"]
        assert by_name["a"]["attributes"] == {"detail": 1}

    def test_span_tree_groups_by_parent(self):
        tracer = Tracer(trace_id="t")
        with tracer.span("root") as root:
            with tracer.span("leaf"):
                pass
        tree = tracer.span_tree()
        assert [span.name for span in tree[None]] == ["root"]
        assert [span.name for span in tree[root.span_id]] == ["leaf"]

    def test_null_tracer_records_nothing(self, tmp_path):
        with NULL_TRACER.span("anything", key="value") as span:
            span.set(more="attributes")
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.to_jsonl() == ""
        assert not NULL_TRACER.enabled
        path = tmp_path / "empty.jsonl"
        assert NULL_TRACER.export_jsonl(path) == 0
        assert path.read_text(encoding="utf-8") == ""

    def test_null_span_is_shared_not_allocated(self):
        with NULL_TRACER.span("a") as first:
            pass
        with NULL_TRACER.span("b") as second:
            pass
        assert first is second

    def test_use_tracer_swaps_the_active_tracer(self):
        assert isinstance(get_tracer(), NullTracer)
        tracer = Tracer(trace_id="scoped")
        with use_tracer(tracer):
            assert get_tracer() is tracer
            with get_tracer().span("inside"):
                pass
        assert isinstance(get_tracer(), NullTracer)
        assert [span.name for span in tracer.spans] == ["inside"]


# -- process-backend delta merge ---------------------------------------


def _count_in_child(value: int) -> int:
    """Module-level so it pickles; writes the child's own registry."""
    metrics = get_metrics()
    metrics.inc("child.work")
    metrics.inc("child.value_total", value)
    metrics.observe("child.values", value, edges=(2.0, 5.0))
    return value * 2


class TestProcessDeltaMerge:
    def test_child_process_metrics_merge_into_parent(self):
        items = list(range(6))
        registry = MetricsRegistry()
        with use_metrics(registry):
            executor = ParallelExecutor(workers=2, backend="process")
            results = [
                outcome.result() for outcome in executor.run(_count_in_child, items)
            ]
        assert results == [item * 2 for item in items]
        assert registry.counter("child.work") == len(items)
        assert registry.counter("child.value_total") == sum(items)
        assert registry.counter("parallel.tasks.completed") == len(items)
        hist = registry.snapshot()["histograms"]["child.values"]
        assert hist["count"] == len(items)
        assert hist["sum"] == pytest.approx(sum(items))
        # values 0,1,2 | 3,4,5 -> buckets <=2, <=5, overflow
        assert hist["counts"] == [3, 3, 0]

    def test_thread_backend_writes_parent_registry_directly(self):
        """No delta shipping in-process — and crucially no double count."""
        registry = MetricsRegistry()
        with use_metrics(registry):
            executor = ParallelExecutor(workers=4, backend="thread")
            outcomes = executor.run(_count_in_child, list(range(6)))
        assert all(outcome.ok for outcome in outcomes)
        assert all(outcome.metrics is None for outcome in outcomes)
        assert registry.counter("child.work") == 6
        assert registry.counter("parallel.tasks.completed") == 6


# -- traced surveys -----------------------------------------------------


@pytest.fixture(scope="module")
def street_view():
    return StreetViewClient(
        counties=[make_durham_like(seed=3)], api_key="obs-tests"
    )


def _single_decoder(street_view, clients, render_pixels=False):
    return NeighborhoodDecoder(
        street_view=street_view,
        classifier=LLMIndicatorClassifier(clients["gemini-1.5-pro"]),
        render_pixels=render_pixels,
    )


class TestTracedSurvey:
    def test_report_is_byte_identical_with_tracing_on(
        self, street_view, clients
    ):
        county = make_durham_like(seed=3)
        plain = _single_decoder(street_view, clients).survey(
            county, n_locations=6, seed=4, workers=4
        )
        with use_tracer(Tracer(trace_id="t")), use_metrics(MetricsRegistry()):
            traced = _single_decoder(street_view, clients).survey(
                county, n_locations=6, seed=4, workers=4
            )
        assert traced.to_json() == plain.to_json()

    def test_metrics_reconcile_with_report_counters(
        self, street_view, clients
    ):
        county = make_durham_like(seed=3)
        with use_metrics(MetricsRegistry()):
            report = _single_decoder(street_view, clients).survey(
                county, n_locations=6, seed=4, workers=4
            )
        assert nonempty_delta(report.metrics)
        assert reconcile_survey(report) == []

    def test_reconcile_flags_missing_delta_and_mismatches(
        self, street_view, clients
    ):
        county = make_durham_like(seed=3)
        with use_metrics(MetricsRegistry()):
            report = _single_decoder(street_view, clients).survey(
                county, n_locations=4, seed=4
            )
        assert reconcile_survey(report, delta={}) == [
            "no metrics delta recorded on the report"
        ]
        cooked = json.loads(json.dumps(report.metrics))
        cooked["counters"]["survey.images.classified"] += 1
        mismatches = reconcile_survey(report, delta=cooked)
        assert len(mismatches) == 1
        assert "images classified" in mismatches[0]

    def test_traced_ensemble_survey_passes_the_full_audit(
        self, street_view, clients
    ):
        county = make_durham_like(seed=3)
        ensemble = VotingEnsemble(
            {
                name: LLMIndicatorClassifier(clients[name])
                for name in ("gemini-1.5-pro", "claude-3.7", "grok-2")
            }
        )
        decoder = NeighborhoodDecoder(
            street_view=street_view, ensemble=ensemble, render_pixels=True
        )
        tracer = Tracer(trace_id="audit")
        with use_tracer(tracer), use_metrics(MetricsRegistry()):
            report = decoder.survey(county, n_locations=4, seed=9, workers=2)
        assert report.coverage == 1.0
        assert reconcile_survey(report) == []
        assert audit_trace(tracer) == []
        names = {span.name for span in tracer.spans}
        assert set(SURVEY_STAGES) <= names
        assert {"gsv.fetch", "gsv.render"} <= names
        # Every survey.location span hangs off the single survey root.
        (root,) = [
            span
            for span in tracer.spans
            if span.name == "survey" and span.parent_id is None
        ]
        locations = [
            span for span in tracer.spans if span.name == "survey.location"
        ]
        assert len(locations) == 4
        assert all(span.parent_id == root.span_id for span in locations)

    def test_audit_trace_reports_structural_problems(self):
        tracer = Tracer(trace_id="broken")
        with tracer.span("survey.location"):
            pass
        problems = audit_trace(tracer)
        assert any("missing stage span: survey" == p for p in problems)
        assert any("exactly one 'survey' root" in p for p in problems)
