"""Tests for grid feature extraction."""

import numpy as np
import pytest

from repro.detect import (
    FEATURE_DIM,
    FeatureConfig,
    cell_bounds,
    cell_centers,
    extract_features,
    extract_features_batch,
    extract_features_legacy,
)
from repro.parallel import TensorArena


def _random_image(rng, as_uint8=True):
    height = int(rng.integers(48, 180))
    width = int(rng.integers(48, 180))
    pixels = rng.uniform(size=(height, width, 3))
    if as_uint8:
        return (pixels * 255).astype(np.uint8)
    return pixels


@pytest.fixture()
def gray_image():
    return np.full((128, 128, 3), 128, dtype=np.uint8)


class TestGridGeometry:
    def test_cell_centers_count_and_range(self):
        centers = cell_centers(8)
        assert centers.shape == (64, 2)
        assert centers.min() > 0.0 and centers.max() < 1.0

    def test_cell_centers_row_major(self):
        centers = cell_centers(4)
        # First cell is top-left; second moves right (x grows).
        assert centers[1][0] > centers[0][0]
        assert centers[1][1] == centers[0][1]

    def test_cell_bounds_tile_canvas(self):
        bounds = cell_bounds(4)
        areas = (bounds[:, 2] - bounds[:, 0]) * (bounds[:, 3] - bounds[:, 1])
        assert areas.sum() == pytest.approx(1.0)


class TestExtractFeatures:
    def test_shape(self, gray_image):
        features = extract_features(gray_image, FeatureConfig(grid=16))
        assert features.shape == (256, FEATURE_DIM)

    def test_accepts_float_images(self):
        image = np.random.default_rng(0).uniform(size=(64, 64, 3))
        features = extract_features(image, FeatureConfig(grid=8))
        assert features.shape == (64, FEATURE_DIM)

    def test_rejects_grayscale(self):
        with pytest.raises(ValueError):
            extract_features(np.zeros((64, 64)), FeatureConfig(grid=8))

    def test_rejects_image_smaller_than_grid(self):
        with pytest.raises(ValueError):
            extract_features(np.zeros((8, 8, 3)), FeatureConfig(grid=16))

    def test_uniform_image_has_zero_gradients(self, gray_image):
        features = extract_features(gray_image, FeatureConfig(grid=8))
        # Gradient-energy channels (indices 6..10) are all zero on a
        # flat image, except possibly boundary padding effects.
        assert features[:, 6:8].max() == pytest.approx(0.0, abs=1e-9)

    def test_color_means_reflect_image(self):
        image = np.zeros((64, 64, 3), dtype=np.uint8)
        image[:, :, 0] = 255  # pure red
        features = extract_features(image, FeatureConfig(grid=8))
        assert features[:, 0].mean() == pytest.approx(1.0)
        assert features[:, 1].mean() == pytest.approx(0.0)

    def test_position_channels_last(self):
        image = np.zeros((64, 64, 3), dtype=np.uint8)
        features = extract_features(image, FeatureConfig(grid=8))
        rows = features[:, -2].reshape(8, 8)
        cols = features[:, -1].reshape(8, 8)
        assert rows[0, 0] == 0.0 and rows[-1, 0] == 1.0
        assert cols[0, 0] == 0.0 and cols[0, -1] == 1.0

    def test_vertical_edge_activates_gx(self):
        image = np.zeros((64, 64, 3), dtype=np.uint8)
        image[:, 32:] = 255  # vertical boundary
        features = extract_features(image, FeatureConfig(grid=8))
        cells = features.reshape(8, 8, FEATURE_DIM)
        # |gx| mean (channel 6) on the boundary column far exceeds others.
        assert cells[4, 4, 6] > cells[4, 1, 6] + 0.1

    def test_subcell_centroid_tracks_edge_position(self):
        config = FeatureConfig(grid=4)
        left = np.zeros((64, 64, 3), dtype=np.uint8)
        left[:, 2:4] = 255  # thin vertical line near cell's left edge
        right = np.zeros((64, 64, 3), dtype=np.uint8)
        right[:, 12:14] = 255  # near the cell's right edge
        f_left = extract_features(left, config).reshape(4, 4, FEATURE_DIM)
        f_right = extract_features(right, config).reshape(4, 4, FEATURE_DIM)
        # Channel -6 is the vertical-edge x centroid.
        assert f_left[2, 0, -6] < f_right[2, 0, -6]

    def test_context_channels_mix_neighbors(self):
        image = np.zeros((64, 64, 3), dtype=np.uint8)
        image[0:8, 0:8] = 255  # bright top-left cell only
        # smooth=False keeps the block crisp so locality is testable.
        features = extract_features(
            image, FeatureConfig(grid=8, smooth=False)
        )
        cells = features.reshape(8, 8, FEATURE_DIM)
        local_dim = (FEATURE_DIM - 2) // 2
        # Neighbor of the bright cell sees it through context channels
        # (red-mean context at offset local_dim + 0).
        assert cells[0, 1, local_dim] > 0.05
        # But its own local red mean stays zero.
        assert cells[0, 1, 0] == pytest.approx(0.0)

    def test_smoothing_reduces_noise_response(self):
        rng = np.random.default_rng(0)
        noisy = (rng.uniform(size=(64, 64, 3)) * 255).astype(np.uint8)
        sharp = extract_features(noisy, FeatureConfig(grid=8, smooth=False))
        smooth = extract_features(noisy, FeatureConfig(grid=8, smooth=True))
        # Gradient-energy channels shrink under pre-smoothing.
        assert smooth[:, 6].mean() < sharp[:, 6].mean()

    def test_deterministic(self, gray_image):
        a = extract_features(gray_image)
        b = extract_features(gray_image)
        assert np.array_equal(a, b)


class TestCellReduceStack:
    """The vectorized stack reduction must be *bit*-identical to the
    per-channel loop it replaced — not approximately equal."""

    @pytest.mark.parametrize(
        "shape,grid",
        [
            ((3, 64, 64), 8),
            ((6, 67, 53), 8),  # non-divisible dims exercise trimming
            ((1, 16, 16), 4),
            ((9, 128, 96), 16),
        ],
    )
    def test_matches_per_channel_loop_exactly(self, shape, grid):
        from repro.detect.features import _cell_reduce, _cell_reduce_stack

        rng = np.random.default_rng(sum(shape) + grid)
        channels = rng.standard_normal(shape)
        stacked = _cell_reduce_stack(channels, grid)
        assert stacked.shape == (grid, grid, shape[0])
        for index in range(shape[0]):
            looped = _cell_reduce(channels[index], grid, "mean")
            assert np.array_equal(stacked[:, :, index], looped)

    def test_extract_features_unchanged_by_vectorization(self):
        # Reference implementation: the pre-vectorization per-bin loop,
        # inlined here so any drift in the fast path is caught exactly.
        from repro.detect.features import (
            _N_ORIENT,
            _cell_reduce,
            _cell_reduce_stack,
        )

        rng = np.random.default_rng(42)
        mag = rng.uniform(size=(96, 96))
        angle = rng.uniform(0, np.pi, size=(96, 96))
        bin_index = np.minimum(
            (angle / np.pi * _N_ORIENT).astype(int), _N_ORIENT - 1
        )
        weighted = np.where(
            bin_index[None, :, :] == np.arange(_N_ORIENT)[:, None, None],
            mag[None, :, :],
            0.0,
        )
        fast = _cell_reduce_stack(weighted, grid=8)
        for b in range(_N_ORIENT):
            reference = _cell_reduce(
                np.where(bin_index == b, mag, 0.0), 8, "mean"
            )
            assert np.array_equal(fast[:, :, b], reference)


class TestBlockedView:
    """The one trim/reshape helper behind every cell reduction."""

    @pytest.mark.parametrize(
        "shape,grid",
        [
            ((64, 64), 8),
            ((67, 53), 8),  # trimming on both axes
            ((5, 67, 53), 8),  # leading stack axis
            ((2, 3, 40, 24), 4),  # two leading axes
        ],
    )
    def test_blocked_reduction_matches_manual_trim(self, shape, grid):
        from repro.detect.features import _blocked_view

        rng = np.random.default_rng(sum(shape))
        array = rng.standard_normal(shape)
        height, width = shape[-2], shape[-1]
        ch, cw = height // grid, width // grid
        trimmed = array[..., : ch * grid, : cw * grid]
        blocked = _blocked_view(array, grid)
        assert blocked.shape == (*shape[:-2], grid, ch, grid, cw)
        manual = trimmed.reshape(*shape[:-2], grid, ch, grid, cw)
        assert np.array_equal(
            blocked.mean(axis=(-3, -1)), manual.mean(axis=(-3, -1))
        )
        assert np.array_equal(
            blocked.max(axis=(-3, -1)), manual.max(axis=(-3, -1))
        )

    def test_rejects_grid_larger_than_image(self):
        from repro.detect.features import _blocked_view

        with pytest.raises(ValueError):
            _blocked_view(np.zeros((4, 4)), 8)


class TestFusedKernelExactEquality:
    """The fused float64 kernel is *bit*-identical to the legacy
    multi-pass extractor — every channel, every config, boundary
    pixels and all.  This is what lets the golden survey fixtures pin
    the fused path without regeneration."""

    @pytest.mark.parametrize("as_uint8", [True, False])
    @pytest.mark.parametrize("smooth", [True, False])
    @pytest.mark.parametrize("context", [True, False])
    def test_fused_matches_legacy_exactly(self, as_uint8, smooth, context):
        config = FeatureConfig(grid=8, smooth=smooth, context=context)
        rng = np.random.default_rng(
            1000 * as_uint8 + 100 * smooth + 10 * context
        )
        for _ in range(3):
            image = _random_image(rng, as_uint8=as_uint8)
            fused = extract_features(image, config)
            legacy = extract_features_legacy(image, config)
            assert np.array_equal(fused, legacy)

    def test_fused_matches_legacy_on_structured_images(self):
        # Edges, flat regions, saturated colors: the cases where an
        # op-reordering bug would show up as a one-ulp drift.
        config = FeatureConfig(grid=8)
        flat = np.full((96, 96, 3), 128, dtype=np.uint8)
        edge = np.zeros((96, 96, 3), dtype=np.uint8)
        edge[:, 48:] = 255
        stripes = np.zeros((96, 96, 3), dtype=np.uint8)
        stripes[::4, :, 0] = 255
        for image in (flat, edge, stripes):
            assert np.array_equal(
                extract_features(image, config),
                extract_features_legacy(image, config),
            )

    def test_batch_rows_match_per_image_calls(self):
        rng = np.random.default_rng(7)
        config = FeatureConfig(grid=8)
        images = [_random_image(rng) for _ in range(4)]
        batch = extract_features_batch(images, config)
        assert batch.shape == (4, config.n_cells, FEATURE_DIM)
        for index, image in enumerate(images):
            assert np.array_equal(
                batch[index], extract_features(image, config)
            )

    def test_arena_reuse_does_not_leak_between_images(self):
        # Same arena, different images back to back: the second result
        # must not inherit anything from the first's scratch buffers.
        rng = np.random.default_rng(13)
        config = FeatureConfig(grid=8)
        arena = TensorArena()
        first = (rng.uniform(size=(80, 80, 3)) * 255).astype(np.uint8)
        second = (rng.uniform(size=(80, 80, 3)) * 255).astype(np.uint8)
        extract_features(first, config, arena=arena)
        reused = extract_features(second, config, arena=arena)
        assert np.array_equal(reused, extract_features(second, config))

    def test_empty_batch_returns_empty_tensor(self):
        config = FeatureConfig(grid=8)
        batch = extract_features_batch([], config)
        assert batch.shape == (0, config.n_cells, FEATURE_DIM)

    def test_float32_precision_within_tolerance(self):
        rng = np.random.default_rng(29)
        config = FeatureConfig(grid=8)
        for _ in range(3):
            image = _random_image(rng)
            exact = extract_features(image, config)
            fast = extract_features(image, config, precision="float32")
            assert fast.dtype == np.float32
            assert float(np.abs(fast - exact).max()) < 5e-2

    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            extract_features(
                np.zeros((64, 64, 3)), FeatureConfig(grid=8), precision="f16"
            )


class TestGridMemoization:
    """cell_centers/cell_bounds are memoized per grid and immutable."""

    def test_same_array_returned_for_same_grid(self):
        assert cell_centers(8) is cell_centers(8)
        assert cell_bounds(8) is cell_bounds(8)

    def test_different_grids_do_not_collide(self):
        assert cell_centers(4).shape == (16, 2)
        assert cell_centers(8).shape == (64, 2)

    def test_memoized_arrays_are_readonly(self):
        centers = cell_centers(8)
        bounds = cell_bounds(8)
        with pytest.raises((ValueError, RuntimeError)):
            centers[0, 0] = 99.0
        with pytest.raises((ValueError, RuntimeError)):
            bounds[0, 0] = 99.0
