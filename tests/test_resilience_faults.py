"""Longer fault-injection drills, gated behind ``-m faults``.

These push the resilience layer harder than tier-1 needs: sustained
rate limiting with Retry-After floors, a GSV endpoint that stays hard
down behind its breaker, breaker recovery over virtual time, and a
larger quota-cliff survey resumed to full coverage.  Run with::

    PYTHONPATH=src python -m pytest -m faults
"""

import pytest

from repro.core import (
    ClassifierConfig,
    LLMIndicatorClassifier,
    NeighborhoodDecoder,
)
from repro.geo import make_durham_like
from repro.gsv.api import (
    FEE_PER_IMAGE_USD,
    StreetViewClient,
    TransientNetworkError,
)
from repro.llm.errors import RateLimitError, ServerError
from repro.resilience import (
    CircuitBreaker,
    CircuitState,
    FaultSchedule,
    FaultyChatClient,
    RetryPolicy,
    VirtualClock,
)

pytestmark = pytest.mark.faults


class TestSustainedRateLimiting:
    def test_retry_after_floor_dominates_backoff(self, clients, small_dataset):
        # Every other call is rate limited with a 3 s Retry-After; the
        # configured base backoff (1 ms) must never undercut it.
        flaky = FaultyChatClient(
            clients["gemini-1.5-pro"],
            FaultSchedule().every_nth(
                lambda: RateLimitError("429", retry_after_s=3.0), n=2
            ),
        )
        clock = VirtualClock()
        classifier = LLMIndicatorClassifier(
            flaky,
            ClassifierConfig(max_attempts=3, backoff_s=0.001),
            clock=clock,
        )
        outcomes = classifier.classify(small_dataset.images[:6])
        assert len(outcomes) == 6
        assert classifier.retry_stats.retries >= 3
        assert clock.sleeps  # backoff happened
        assert all(s >= 3.0 for s in clock.sleeps)

    def test_sustained_limiting_still_converges(self, clients, small_dataset):
        flaky = FaultyChatClient(
            clients["claude-3.7"],
            FaultSchedule().every_nth(ServerError("503"), n=3),
        )
        clock = VirtualClock()
        classifier = LLMIndicatorClassifier(
            flaky,
            ClassifierConfig(max_attempts=4, backoff_s=0.01),
            clock=clock,
        )
        outcomes = classifier.classify(small_dataset.images[:9])
        assert len(outcomes) == 9
        assert classifier.retry_stats.failures == 0


class TestGsvHardDownBehindBreaker:
    def test_breaker_caps_wasted_calls(self, clients):
        county = make_durham_like(seed=3)
        schedule = FaultSchedule().after(
            TransientNetworkError("regional outage"), start=1
        )
        clock = VirtualClock()
        breaker = CircuitBreaker(
            name="gsv", failure_threshold=4, recovery_time_s=1e9, clock=clock
        )
        decoder = NeighborhoodDecoder(
            street_view=StreetViewClient(
                counties=[county], api_key="down", fault_schedule=schedule
            ),
            classifier=LLMIndicatorClassifier(clients["gemini-1.5-pro"]),
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.1),
            gsv_breaker=breaker,
            clock=clock,
        )
        report = decoder.survey(county, n_locations=10, seed=0)
        assert report.coverage == 0.0
        assert len(report.failed_locations) == 10
        assert breaker.state is CircuitState.OPEN
        # Once open, no further network calls leak through: the total
        # attempts stay bounded by the trip threshold, not 10 locations
        # x 4 captures x 3 attempts = 120.
        assert schedule.calls <= breaker.failure_threshold
        assert report.retry_stats.breaker_blocks > 0

    def test_breaker_recovers_after_outage_window(self, clients):
        county = make_durham_like(seed=3)
        clock = VirtualClock()
        breaker = CircuitBreaker(
            name="gsv", failure_threshold=2, recovery_time_s=30.0, clock=clock
        )
        outage = StreetViewClient(
            counties=[county],
            api_key="flappy",
            fault_schedule=FaultSchedule().burst(
                TransientNetworkError("blip"), start=1, length=2
            ),
        )
        decoder = NeighborhoodDecoder(
            street_view=outage,
            classifier=LLMIndicatorClassifier(clients["gemini-1.5-pro"]),
            # max_attempts=1 so the two blips trip the breaker outright.
            retry_policy=RetryPolicy(max_attempts=1),
            gsv_breaker=breaker,
            clock=clock,
        )
        report = decoder.survey(county, n_locations=2, seed=0)
        assert report.coverage < 1.0
        assert breaker.state is CircuitState.OPEN
        # The outage window passes; a half-open probe succeeds and the
        # same decoder finishes a fresh survey cleanly.
        clock.sleep(30.0)
        assert breaker.state is CircuitState.HALF_OPEN
        report2 = decoder.survey(county, n_locations=2, seed=1)
        assert report2.coverage == 1.0
        assert breaker.state is CircuitState.CLOSED


class TestLargeQuotaCliffResume:
    N_LOCATIONS = 20

    def _decoder(self, clients, street_view, clock):
        return NeighborhoodDecoder(
            street_view=street_view,
            classifier=LLMIndicatorClassifier(
                clients["gemini-1.5-pro"], ClassifierConfig(max_attempts=2)
            ),
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.05),
            clock=clock,
        )

    def test_resume_after_quota_cliff(self, clients, tmp_path):
        county = make_durham_like(seed=3)
        checkpoint = tmp_path / "big-survey.json"
        clock = VirtualClock()
        quota_images = int(0.6 * self.N_LOCATIONS) * 4
        capped = StreetViewClient(
            counties=[county], api_key="cliff", daily_quota=quota_images
        )
        report = self._decoder(clients, capped, clock).survey(
            county, self.N_LOCATIONS, seed=0, checkpoint=checkpoint
        )
        assert report.coverage == pytest.approx(0.6)
        assert len(report.failed_locations) == 8
        assert capped.usage().fees_usd == pytest.approx(
            quota_images * FEE_PER_IMAGE_USD
        )

        fresh = StreetViewClient(counties=[county], api_key="cliff")
        report2 = self._decoder(clients, fresh, clock).survey(
            county, self.N_LOCATIONS, seed=0, checkpoint=checkpoint
        )
        assert report2.coverage == 1.0
        assert len(report2.locations) == self.N_LOCATIONS
        # Only the 8 missing locations were re-fetched and billed.
        assert fresh.usage().fees_usd == pytest.approx(
            8 * 4 * FEE_PER_IMAGE_USD
        )
        # Restored locations count their original imagery, so the
        # resumed report accounts for all 20 locations' captures.
        assert report2.images_classified == self.N_LOCATIONS * 4
