"""Unit tests for the parallel execution engine and thread-safety
of the resilience primitives it shares across workers."""

from __future__ import annotations

import threading
import time

import pytest

from repro.llm.base import Usage
from repro.llm.batch import TokenBucket
from repro.parallel import (
    ParallelExecutor,
    TaskCancelledError,
    TaskEnvelope,
    TaskOutcome,
    effective_cpu_count,
    resolve_workers,
)
from repro.resilience import (
    CircuitBreaker,
    RetryOutcome,
    RetryStats,
    WallClock,
)


def _square(item: int) -> int:
    """Module-level so it pickles into child processes."""
    return item * item


def _fail_on_three(item: int) -> int:
    if item == 3:
        raise ValueError("boom at 3")
    return item


def _return_unpicklable(item: int):
    return lambda: item  # closures cannot cross the pickle boundary


class TestResolveWorkers:
    def test_explicit_count_passes_through(self):
        assert resolve_workers(3) == 3

    def test_none_and_zero_resolve_to_cpu_count(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1

    def test_auto_resolves_to_effective_cpu_count(self):
        assert resolve_workers("auto") == effective_cpu_count()

    def test_other_strings_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers("many")

    def test_effective_cpu_count_positive(self):
        assert effective_cpu_count() >= 1


class TestParallelExecutor:
    def test_auto_backend_is_serial_for_one_worker(self):
        assert ParallelExecutor(workers=1).backend == "serial"
        assert ParallelExecutor(workers=4).backend == "thread"

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=2, backend="fork")

    @pytest.mark.parametrize("workers", [1, 4])
    def test_results_come_back_in_submission_order(self, workers):
        def task(item: int) -> int:
            # Later submissions finish first under the thread backend.
            time.sleep(0.002 * (8 - item))
            return item * item

        outcomes = ParallelExecutor(workers=workers).run(task, list(range(8)))
        assert [outcome.index for outcome in outcomes] == list(range(8))
        assert [outcome.result() for outcome in outcomes] == [
            item * item for item in range(8)
        ]

    @pytest.mark.parametrize("workers", [1, 4])
    def test_error_is_captured_and_reraised(self, workers):
        def task(item: int) -> int:
            if item == 3:
                raise ValueError("boom at 3")
            return item

        outcomes = ParallelExecutor(workers=workers).run(task, list(range(6)))
        assert [outcome.ok for outcome in outcomes] == [
            True, True, True, False, True, True
        ]
        with pytest.raises(ValueError, match="boom at 3"):
            outcomes[3].result()
        # Other tasks are unaffected by one failure.
        assert outcomes[5].result() == 5

    @pytest.mark.parametrize("workers", [1, 4])
    def test_cancellation_on_breaker_open(self, workers):
        """Once the circuit opens, unsubmitted work never runs."""
        breaker = CircuitBreaker(
            name="llm", failure_threshold=2, recovery_time_s=60.0
        )
        executed: list[int] = []
        lock = threading.Lock()

        def task(item: int) -> int:
            with lock:
                executed.append(item)
            breaker.record_failure()
            return item

        # A window of 2 keeps submissions close behind the consumer, so
        # the breaker (open after task 1) is observed before the tail.
        executor = ParallelExecutor(workers=workers, max_in_flight=2)
        outcomes = executor.run(
            task, list(range(50)), should_cancel=lambda: not breaker.allow()
        )
        cancelled = [outcome for outcome in outcomes if outcome.cancelled]
        assert cancelled, "breaker open should have cancelled the tail"
        assert len(executed) < 50
        with pytest.raises(TaskCancelledError):
            cancelled[0].result()
        # Ordering still holds for the outcomes that did run.
        assert [outcome.index for outcome in outcomes] == list(range(50))

    def test_bounded_in_flight(self):
        running = 0
        peak = 0
        lock = threading.Lock()

        def task(item: int) -> int:
            nonlocal running, peak
            with lock:
                running += 1
                peak = max(peak, running)
            time.sleep(0.002)
            with lock:
                running -= 1
            return item

        ParallelExecutor(workers=3, max_in_flight=3).run(task, list(range(24)))
        assert peak <= 3

    def test_outcome_result_passthrough(self):
        assert TaskOutcome(index=0, value="v").result() == "v"

    def test_map_results_unwraps_values(self):
        executor = ParallelExecutor(workers=2)
        assert executor.map_results(_square, [1, 2, 3]) == [1, 4, 9]

    def test_map_results_reraises_first_error(self):
        with pytest.raises(ValueError, match="boom at 3"):
            ParallelExecutor(workers=2).map_results(
                _fail_on_three, list(range(6))
            )


class TestProcessBackend:
    def test_auto_prefers_process_for_cpu_bound(self):
        assert ParallelExecutor(workers=4, cpu_bound=True).backend == "process"
        assert ParallelExecutor(workers=4, cpu_bound=False).backend == "thread"
        # One worker stays serial regardless of the hint.
        assert ParallelExecutor(workers=1, cpu_bound=True).backend == "serial"

    def test_results_come_back_in_submission_order(self):
        executor = ParallelExecutor(workers=2, backend="process")
        outcomes = executor.run(_square, list(range(8)))
        assert [outcome.index for outcome in outcomes] == list(range(8))
        assert [outcome.result() for outcome in outcomes] == [
            item * item for item in range(8)
        ]

    def test_task_error_is_captured_per_task(self):
        outcomes = ParallelExecutor(workers=2, backend="process").run(
            _fail_on_three, list(range(6))
        )
        assert [outcome.ok for outcome in outcomes] == [
            True, True, True, False, True, True
        ]
        with pytest.raises(ValueError, match="boom at 3"):
            outcomes[3].result()
        assert outcomes[5].result() == 5

    def test_unpicklable_result_becomes_error_outcome(self):
        """Transport failures mark one task failed, not the whole sweep."""
        outcomes = ParallelExecutor(workers=2, backend="process").run(
            _return_unpicklable, [0, 1]
        )
        assert all(not outcome.ok for outcome in outcomes)
        assert all(not outcome.cancelled for outcome in outcomes)
        with pytest.raises(Exception):
            outcomes[0].result()

    def test_cancellation_skips_unsubmitted_work(self):
        fired = threading.Event()

        def cancel_after_first() -> bool:
            if fired.is_set():
                return True
            fired.set()
            return False

        executor = ParallelExecutor(
            workers=2, backend="process", max_in_flight=2
        )
        outcomes = executor.run(
            _square, list(range(20)), should_cancel=cancel_after_first
        )
        cancelled = [outcome for outcome in outcomes if outcome.cancelled]
        assert cancelled, "cancellation should have marked the tail"
        with pytest.raises(TaskCancelledError):
            cancelled[0].result()
        assert [outcome.index for outcome in outcomes] == list(range(20))

    def test_envelope_runs_inline(self):
        outcome = TaskEnvelope(_square, index=7, item=3).run()
        assert outcome.index == 7
        assert outcome.result() == 9


class TestTokenBucketThreadSafety:
    def test_no_double_spend_under_contention(self):
        """8 threads × 25 acquires cannot finish faster than the rate
        allows: the pre-fix race let two threads spend one token."""
        bucket = TokenBucket(rate=1000.0, capacity=100.0, clock=WallClock())
        acquires_per_thread = 25
        n_threads = 8

        def hammer() -> None:
            for _ in range(acquires_per_thread):
                bucket.acquire()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started

        # 200 tokens spent from a burst of 100 at 1000/s: the last 100
        # must wait for refill, so at least ~0.1 s of wall time.
        assert elapsed >= 0.095
        # The bucket never goes negative (each token spent once).
        assert bucket._tokens >= 0.0

    def test_serial_semantics_unchanged(self):
        from repro.resilience import VirtualClock

        clock = VirtualClock()
        bucket = TokenBucket(rate=2.0, capacity=1.0, clock=clock)
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == pytest.approx(0.5)
        assert clock.sleeps == [pytest.approx(0.5)]


class TestSharedStatsThreadSafety:
    def test_retry_stats_absorb_is_atomic(self):
        stats = RetryStats()
        outcome = RetryOutcome(value=1, attempts=2, retries=1, slept_s=0.25)

        def absorb_many() -> None:
            for _ in range(500):
                stats.absorb(outcome)

        threads = [threading.Thread(target=absorb_many) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert stats.operations == 4000
        assert stats.attempts == 8000
        assert stats.retries == 4000
        assert stats.slept_s == pytest.approx(1000.0)

    def test_client_stats_record_is_atomic(self):
        from repro.llm.base import ClientStats

        stats = ClientStats()

        def record_many() -> None:
            for _ in range(500):
                stats.record(Usage(prompt_tokens=3, completion_tokens=2))

        threads = [threading.Thread(target=record_many) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert stats.requests == 4000
        assert stats.prompt_tokens == 12000
        assert stats.completion_tokens == 8000

    def test_breaker_trips_exactly_under_contention(self):
        breaker = CircuitBreaker(
            name="x", failure_threshold=100, recovery_time_s=1e9
        )

        def fail_many() -> None:
            for _ in range(100):
                breaker.record_failure()

        threads = [threading.Thread(target=fail_many) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not breaker.allow()
        assert breaker.opens == 1
