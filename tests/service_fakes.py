"""Lightweight fakes for scheduler-level service tests.

The real :class:`~repro.service.stack.ServiceStack` calibrates clients
and runs the full survey engine — exactly right for the golden session
and wrong for property/stress tests that need hundreds of jobs.  These
fakes keep the daemon's *own* machinery (admission, scheduling,
ledgers, checkpoints, settlement, recovery) fully real while replacing
the engine with a deterministic per-location recorder: every completed
location still lands in a real
:class:`~repro.resilience.checkpoint.SurveyCheckpoint` with the real
``images`` payload, so canonical fee reconstruction — the billing
invariant under test — runs the production code path.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

from repro.resilience.clock import VirtualClock
from repro.service.jobs import CAPTURES_PER_LOCATION


class FakeReport:
    """Just enough report surface for the daemon's DONE path."""

    def __init__(self, n_locations: int, fees_usd: float) -> None:
        self.n_locations = n_locations
        self.fees_usd = fees_usd
        self.metrics: dict = {}

    def to_json(self) -> str:
        return json.dumps(
            {"locations": self.n_locations, "fees_usd": self.fees_usd},
            sort_keys=True,
        )


class FakeDecoder:
    """Record one checkpoint entry per location, maybe failing.

    ``fail_plan`` maps a checkpoint-key seed to the location index at
    which the run should raise — *after* earlier locations were
    durably recorded, modelling a mid-job crash the next attempt
    resumes past (the plan entry is consumed, so the retry succeeds).
    """

    def __init__(self, stack: "FakeStack") -> None:
        self.stack = stack

    async def survey_async(
        self,
        county,
        n_locations,
        seed=0,
        checkpoint=None,
        max_inflight=1,
        microbatch=None,
        checkpoint_store=None,
        bridge=None,
    ):
        assert checkpoint_store is not None, "daemon always owns the store"
        assert bridge is not None and not bridge.closed
        self.stack.started += 1
        self.stack.concurrent += 1
        self.stack.peak_concurrent = max(
            self.stack.peak_concurrent, self.stack.concurrent
        )
        try:
            fees = 0.0
            fail_at = self.stack.fail_plan.pop(seed, None)
            for index in range(n_locations):
                if checkpoint_store.has(index):
                    continue
                if fail_at is not None and index >= fail_at:
                    raise RuntimeError(f"engine fault at location {index}")
                checkpoint_store.record(
                    index, {"images": CAPTURES_PER_LOCATION}
                )
                fees += CAPTURES_PER_LOCATION * 0.007
            return FakeReport(n_locations, round(fees, 9))
        finally:
            self.stack.concurrent -= 1

    # The daemon calls the stream engine for "classify" jobs with the
    # same owned-store contract; aggregate vs retained is irrelevant
    # to scheduling and billing, so one implementation serves both.
    survey_stream_async = survey_async


class FakeStack:
    """Duck-typed :class:`ServiceStack` for scheduler-level tests."""

    def __init__(self, clock=None) -> None:
        self.clock = clock or VirtualClock()
        self.bridge = SimpleNamespace(closed=False)
        self.closed = False
        #: seed -> location index to fail at (consumed on use).
        self.fail_plan: dict[int, int] = {}
        self.started = 0
        self.concurrent = 0
        self.peak_concurrent = 0

    def county(self, seed: int):
        return SimpleNamespace(name="Durham")

    def decoder(self, kind: str, county_seed: int) -> FakeDecoder:
        return FakeDecoder(self)

    def close(self) -> None:
        self.closed = True
        self.bridge.closed = True
