"""Tests for route planning and detection error analysis."""

import numpy as np
import pytest

from repro.core.indicators import ALL_INDICATORS
from repro.detect import (
    ModelConfig,
    TrainConfig,
    analyze_errors,
    train_detector,
)
from repro.geo import (
    LatLon,
    NoRouteError,
    build_road_network,
    make_robeson_like,
    nearest_node,
    plan_route,
    route_captures,
    route_sample_points,
)


@pytest.fixture(scope="module")
def county():
    return make_robeson_like(seed=2)


@pytest.fixture(scope="module")
def graph(county):
    return build_road_network(county, seed=9)


class TestRoutePlanning:
    def test_nearest_node_snaps(self, graph):
        node = next(iter(graph.nodes))
        assert nearest_node(graph, node) == node

    def test_route_between_corners(self, county, graph):
        route = plan_route(
            graph,
            LatLon(county.south + 0.01, county.west + 0.01),
            LatLon(county.north - 0.01, county.east - 0.01),
        )
        assert len(route.nodes) >= 2
        assert route.length_m > 10_000

    def test_route_start_end_properties(self, county, graph):
        route = plan_route(graph, county.center, county.center)
        assert route.start == route.end
        assert route.length_m == 0.0

    def test_route_length_matches_edges(self, county, graph):
        route = plan_route(
            graph,
            LatLon(county.south + 0.02, county.west + 0.02),
            county.center,
        )
        recomputed = sum(
            a.distance_m(b) for a, b in zip(route.nodes, route.nodes[1:])
        )
        assert route.length_m == pytest.approx(recomputed, rel=0.01)

    def test_no_route_raises(self, county, graph):
        import networkx as nx

        disconnected = nx.Graph()
        a, b = LatLon(34.5, -79.0), LatLon(34.6, -79.1)
        disconnected.add_node(a)
        disconnected.add_node(b)
        with pytest.raises(NoRouteError):
            plan_route(disconnected, a, b)

    def test_sample_points_spacing(self, county, graph):
        route = plan_route(
            graph,
            LatLon(county.south + 0.02, county.west + 0.02),
            county.center,
        )
        points = route_sample_points(county, graph, route)
        assert len(points) > 10
        gaps = [
            points[i].location.distance_m(points[i + 1].location)
            for i in range(min(20, len(points) - 1))
        ]
        # Intra-edge spacing is the 50-ft interval (~15.24 m); node
        # boundaries may produce a shorter seam gap.
        assert max(gaps) < 16.0

    def test_captures_per_point(self, county, graph):
        route = plan_route(
            graph,
            LatLon(county.south + 0.02, county.west + 0.02),
            county.center,
        )
        points = route_sample_points(county, graph, route)
        captures = route_captures(county, graph, route)
        assert len(captures) == 4 * len(points)


class TestErrorAnalysis:
    @pytest.fixture(scope="class")
    def trained(self, small_dataset):
        splits = small_dataset.split(seed=0)
        result = train_detector(
            splits.train,
            model_config=ModelConfig(hidden=64),
            train_config=TrainConfig(epochs=6, seed=0),
        )
        return result.model, splits

    def test_taxonomy_partitions_ground_truth(self, trained):
        model, splits = trained
        report = analyze_errors(model, splits.test)
        for indicator in ALL_INDICATORS:
            breakdown = report.per_class[indicator]
            expected = sum(
                image.count_of(indicator) for image in splits.test
            )
            assert breakdown.n_ground_truth == expected

    def test_render_contains_all_classes(self, trained):
        model, splits = trained
        text = analyze_errors(model, splits.test).render()
        for indicator in ALL_INDICATORS:
            assert indicator.display_name in text

    def test_dominant_error_labels(self, trained):
        model, splits = trained
        report = analyze_errors(model, splits.test)
        valid = {
            "none", "missed", "mislocalized", "background_fp", "duplicates",
        }
        for row in report.rows():
            assert row["dominant_error"] in valid

    def test_threshold_validation(self, trained):
        model, splits = trained
        with pytest.raises(ValueError):
            analyze_errors(model, splits.test, hit_iou=0.1, loc_iou=0.5)

    def test_counts_nonnegative(self, trained):
        model, splits = trained
        report = analyze_errors(model, splits.test)
        for breakdown in report.per_class.values():
            for value in (
                breakdown.detected,
                breakdown.mislocalized,
                breakdown.missed,
                breakdown.duplicates,
                breakdown.background_fp,
            ):
                assert value >= 0
