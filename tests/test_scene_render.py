"""Tests for the rasterizer and raster primitives."""

import numpy as np
import pytest

from repro.core.indicators import Indicator
from repro.scene import render_scene
from repro.scene.raster import (
    draw_line,
    fill_convex_polygon,
    fill_ellipse,
    fill_rect,
    speckle,
    vertical_gradient,
)


@pytest.fixture()
def canvas():
    return np.zeros((64, 64, 3), dtype=np.float64)


class TestRasterPrimitives:
    def test_fill_rect_inside(self, canvas):
        fill_rect(canvas, 10, 10, 20, 20, (1.0, 0.0, 0.0))
        assert canvas[15, 15, 0] == 1.0
        assert canvas[5, 5, 0] == 0.0

    def test_fill_rect_clipped(self, canvas):
        fill_rect(canvas, -10, -10, 5, 5, (0.0, 1.0, 0.0))
        assert canvas[0, 0, 1] == 1.0

    def test_fill_rect_fully_outside_noop(self, canvas):
        fill_rect(canvas, 100, 100, 120, 120, (1.0, 1.0, 1.0))
        assert canvas.sum() == 0.0

    def test_fill_rect_opacity(self, canvas):
        canvas[:] = 0.5
        fill_rect(canvas, 0, 0, 64, 64, (1.0, 1.0, 1.0), opacity=0.5)
        assert canvas[0, 0, 0] == pytest.approx(0.75)

    def test_polygon_triangle(self, canvas):
        fill_convex_polygon(
            canvas, [(32, 10), (10, 50), (54, 50)], (0.0, 0.0, 1.0)
        )
        assert canvas[40, 32, 2] == 1.0  # inside
        assert canvas[15, 5, 2] == 0.0  # outside

    def test_polygon_winding_independent(self):
        a = np.zeros((64, 64, 3))
        b = np.zeros((64, 64, 3))
        pts = [(32, 10), (10, 50), (54, 50)]
        fill_convex_polygon(a, pts, (1.0, 1.0, 1.0))
        fill_convex_polygon(b, list(reversed(pts)), (1.0, 1.0, 1.0))
        assert np.array_equal(a, b)

    def test_polygon_needs_three_vertices(self, canvas):
        with pytest.raises(ValueError):
            fill_convex_polygon(canvas, [(0, 0), (1, 1)], (1, 1, 1))

    def test_line_horizontal(self, canvas):
        draw_line(canvas, 5, 32, 60, 32, (1.0, 0.0, 0.0), thickness=3)
        assert canvas[32, 30, 0] == 1.0
        assert canvas[20, 30, 0] == 0.0

    def test_line_zero_length_is_dot(self, canvas):
        draw_line(canvas, 32, 32, 32, 32, (1.0, 0.0, 0.0), thickness=4)
        assert canvas[32, 32, 0] == 1.0

    def test_line_rejects_bad_thickness(self, canvas):
        with pytest.raises(ValueError):
            draw_line(canvas, 0, 0, 10, 10, (1, 1, 1), thickness=0)

    def test_ellipse(self, canvas):
        fill_ellipse(canvas, 32, 32, 10, 5, (0.0, 1.0, 0.0))
        assert canvas[32, 32, 1] == 1.0
        assert canvas[32, 41, 1] == 1.0  # inside rx
        assert canvas[40, 32, 1] == 0.0  # outside ry

    def test_ellipse_rejects_bad_radius(self, canvas):
        with pytest.raises(ValueError):
            fill_ellipse(canvas, 0, 0, 0, 5, (1, 1, 1))

    def test_vertical_gradient_monotone(self, canvas):
        vertical_gradient(canvas, 0, 64, (0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        column = canvas[:, 0, 0]
        assert np.all(np.diff(column) >= 0)
        assert column[0] == 0.0
        assert column[-1] == 1.0

    @pytest.mark.parametrize("y0,y1", [(0, 64), (10, 50), (-5, 70), (20, 21)])
    def test_vertical_gradient_matches_loop(self, canvas, y0, y1):
        """The broadcast blend reproduces the per-row loop bit-for-bit."""
        top, bottom = (0.2, 0.4, 0.9), (0.1, 0.8, 0.3)
        vertical_gradient(canvas, y0, y1, top, bottom)

        expected = np.zeros_like(canvas)
        height = expected.shape[0]
        iy0 = max(0, int(y0))
        iy1 = min(height, int(y1))
        span = max(1, iy1 - iy0 - 1)
        top_arr = np.asarray(top, dtype=expected.dtype)
        bottom_arr = np.asarray(bottom, dtype=expected.dtype)
        for row in range(iy0, iy1):
            t = (row - iy0) / span
            expected[row, :, :] = (1.0 - t) * top_arr + t * bottom_arr

        assert np.array_equal(canvas, expected)

    def test_vertical_gradient_empty_band_noop(self, canvas):
        vertical_gradient(canvas, 40, 40, (1.0, 1.0, 1.0), (0.0, 0.0, 0.0))
        assert canvas.sum() == 0.0

    def test_speckle_bounded(self, canvas):
        canvas[:] = 0.5
        speckle(canvas, 0, 0, 64, 64, 0.1, np.random.default_rng(0))
        assert canvas.min() >= 0.0
        assert canvas.max() <= 1.0
        assert canvas.std() > 0.0


class TestRenderScene:
    def test_shape_and_dtype(self, urban_scene):
        image = render_scene(urban_scene, 320)
        assert image.shape == (320, 320, 3)
        assert image.dtype == np.uint8

    def test_rejects_tiny_size(self, urban_scene):
        with pytest.raises(ValueError):
            render_scene(urban_scene, 16)

    def test_deterministic(self, urban_scene):
        a = render_scene(urban_scene, 256)
        b = render_scene(urban_scene, 256)
        assert np.array_equal(a, b)

    def test_sky_is_blue_grass_is_green(self, rural_scene):
        image = render_scene(rural_scene, 256).astype(float) / 255.0
        sky = image[10, 128]
        assert sky[2] > sky[0]  # blue dominant
        # Bottom corner is grass or road; both are darker than sky.
        assert image[250, 5].mean() < sky.mean() + 0.1

    def test_road_darker_than_sky(self, urban_scene):
        image = render_scene(urban_scene, 256).astype(float) / 255.0
        road = image[240, 128]
        sky = image[10, 128]
        assert road.mean() < sky.mean()

    def test_apartment_scene_renders_windows(self, generator):
        from repro.geo import ZoneKind

        for i in range(50):
            scene = generator.generate(f"apt{i}", ZoneKind.URBAN)
            apartments = scene.objects_of(Indicator.APARTMENT)
            if not apartments:
                continue
            image = render_scene(scene, 320).astype(float) / 255.0
            x0, y0, x1, y1 = apartments[0].box.to_pixels(320, 320)
            patch = image[y0:y1, x0:x1]
            # The window grid makes the facade high-variance.
            assert patch.std() > 0.03
            return
        pytest.fail("no apartment generated in 50 urban scenes")


class TestSceneFingerprint:
    def test_stable_for_same_scene(self, urban_scene):
        from repro.scene import scene_fingerprint

        assert scene_fingerprint(urban_scene) == scene_fingerprint(urban_scene)

    def test_differs_across_scenes_and_sizes(self, urban_scene, rural_scene):
        from repro.scene import scene_fingerprint

        assert scene_fingerprint(urban_scene) != scene_fingerprint(rural_scene)
        assert scene_fingerprint(urban_scene, 256) != scene_fingerprint(
            urban_scene, 320
        )


class TestRenderCache:
    def test_hit_returns_identical_pixels(self, urban_scene):
        from repro.scene import RenderCache

        cache = RenderCache(max_entries=4)
        first = cache.get_or_render(urban_scene, 256)
        second = cache.get_or_render(urban_scene, 256)
        assert np.array_equal(first, second)
        assert np.array_equal(first, render_scene(urban_scene, 256))
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_returns_copy_not_cached_frame(self, urban_scene):
        from repro.scene import RenderCache

        cache = RenderCache(max_entries=4)
        frame = cache.get_or_render(urban_scene, 256)
        frame[:] = 0  # simulate in-place noise augmentation
        clean = cache.get_or_render(urban_scene, 256)
        assert clean.sum() > 0

    def test_lru_eviction_bounds_entries(self, generator):
        from repro.geo import ZoneKind
        from repro.scene import RenderCache

        cache = RenderCache(max_entries=2)
        scenes = [
            generator.generate(f"lru{i}", ZoneKind.URBAN) for i in range(3)
        ]
        for scene in scenes:
            cache.get_or_render(scene, 128)
        assert len(cache) == 2
        # The oldest entry was evicted: asking again is a miss.
        cache.get_or_render(scenes[0], 128)
        assert cache.misses == 4 and cache.hits == 0
