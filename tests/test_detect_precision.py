"""Dtype-tiered inference: float32 tolerance, int8 agreement, caching.

The fused float64 kernel's bit-identity is pinned in
``test_detect_features.py`` and by the golden fixtures; this module
covers the *approximate* tiers — that float32 stays within tolerance
of float64, that int8 quantization preserves the presence decisions
the cascade routes on, and that the per-tier weight caches invalidate
when the model's parameters change.
"""

import numpy as np
import pytest

from repro.detect import (
    ModelConfig,
    NanoDetector,
    PRECISIONS,
    TrainConfig,
    train_detector,
)
from repro.parallel import TensorArena


@pytest.fixture(scope="module")
def tiered(small_dataset):
    splits = small_dataset.split(seed=0)
    result = train_detector(
        splits.train[:32],
        model_config=ModelConfig(hidden=32),
        train_config=TrainConfig(epochs=3, seed=1),
    )
    frames = [image.render() for image in splits.test[:8]]
    return result.model, frames


class TestFloat32Tolerance:
    """Property: over random test frames, float32 scores track float64
    to well under any decision threshold's resolution."""

    def test_scores_within_tolerance(self, tiered):
        model, frames = tiered
        exact, exact_boxes = model.predict_cells_batch(frames)
        fast, fast_boxes = model.predict_cells_batch(
            frames, precision="float32"
        )
        assert exact.shape == fast.shape
        # The backbone's float32 rounding (~1e-2 in feature space)
        # amplifies through standardization, so scores carry a few
        # 1e-3 of drift — far below the 0.5 decision threshold's
        # resolution, which the agreement assertion pins directly.
        assert float(np.abs(fast - exact).max()) < 2e-2
        assert float(np.abs(fast_boxes - exact_boxes).max()) < 5e-2
        assert np.mean((fast >= 0.5) == (exact >= 0.5)) >= 0.999

    def test_scores_are_float64_at_every_tier(self, tiered):
        # Decoding is tier-agnostic: scores come back float64 even
        # when the backbone and head ran in float32/int8.
        model, frames = tiered
        for precision in PRECISIONS:
            scores, boxes = model.predict_cells_batch(
                frames[:2], precision=precision
            )
            assert scores.dtype == np.float64
            assert boxes.dtype == np.float64

    def test_float64_tier_is_detect_exactly(self, tiered):
        model, frames = tiered
        for frame in frames[:3]:
            via_predict = model.predict(frame)
            via_detect = model.detect(frame)
            assert len(via_predict) == len(via_detect)
            for a, b in zip(via_predict, via_detect):
                assert a.indicator == b.indicator
                assert a.score == b.score
                assert np.array_equal(a.box, b.box)

    def test_unknown_precision_rejected(self, tiered):
        model, frames = tiered
        with pytest.raises(ValueError, match="precision"):
            model.predict_cells_batch(frames[:1], precision="float16")


class TestInt8Agreement:
    """Property: int8 quantization may perturb scores but must keep
    the presence decisions the cascade's tier 0 is built on."""

    def test_presence_decisions_agree(self, tiered):
        model, frames = tiered
        exact, _ = model.predict_cells_batch(frames)
        quantized, _ = model.predict_cells_batch(frames, precision="int8")
        exact_peaks = NanoDetector.indicator_scores(exact)
        quant_peaks = NanoDetector.indicator_scores(quantized)
        agreement = np.mean(
            (exact_peaks >= 0.5) == (quant_peaks >= 0.5)
        )
        assert agreement >= 0.95
        # And the peaks themselves stay close in absolute terms.
        assert float(np.abs(quant_peaks - exact_peaks).max()) < 0.15

    def test_int8_deterministic(self, tiered):
        model, frames = tiered
        a, _ = model.predict_cells_batch(frames[:2], precision="int8")
        b, _ = model.predict_cells_batch(frames[:2], precision="int8")
        assert np.array_equal(a, b)

    def test_batch_matches_per_image(self, tiered):
        # Per-image activation scales: the quantized forward of one
        # image cannot depend on which batch it rode in... unless the
        # whole batch shares one dynamic scale, which it does — so pin
        # the *decision* agreement instead of bit equality.
        model, frames = tiered
        batch, _ = model.predict_cells_batch(frames[:4], precision="int8")
        for index, frame in enumerate(frames[:4]):
            single, _ = model.predict_cells(frame, precision="int8")
            assert np.mean(
                (batch[index] >= 0.5) == (single >= 0.5)
            ) >= 0.99


class TestTierCacheInvalidation:
    """The float32/int8 weight caches key on parameter identity: any
    rebind of the model's arrays must stop matching stale entries."""

    def test_tier_cache_reused_across_calls(self, tiered):
        model, frames = tiered
        model.predict_cells_batch(frames[:1], precision="float32")
        tier_a = model._inference_tier("float32")
        model.predict_cells_batch(frames[:1], precision="float32")
        tier_b = model._inference_tier("float32")
        assert tier_a is tier_b

    def test_weight_rebind_invalidates_tiers(self, tiered):
        model, frames = tiered
        before, _ = model.predict_cells_batch(frames[:1], precision="float32")
        before8, _ = model.predict_cells_batch(frames[:1], precision="int8")
        original = model.w1
        try:
            model.w1 = model.w1 * 2.0  # fresh array, new identity
            after, _ = model.predict_cells_batch(
                frames[:1], precision="float32"
            )
            after8, _ = model.predict_cells_batch(
                frames[:1], precision="int8"
            )
            assert not np.array_equal(after, before)
            assert not np.array_equal(after8, before8)
        finally:
            model.w1 = original

    def test_arena_path_matches_fresh_allocation(self, tiered):
        model, frames = tiered
        arena = TensorArena()
        pooled, _ = model.predict_cells_batch(
            frames, precision="float32", arena=arena
        )
        fresh, _ = model.predict_cells_batch(frames, precision="float32")
        assert np.array_equal(pooled, fresh)
        assert len(arena) > 0
