"""Unit tests for the benchmark trajectory comparator.

``repro bench --compare`` gates merges on the headline metrics of
every ``BENCH_*.json``; these tests pin the pure comparison function
it delegates to.
"""

from __future__ import annotations

import pytest

from repro.perf import HEADLINE_METRICS, compare_benchmarks


def _detect_doc(
    speedup,
    warm=9.0,
    capped=False,
    extract=4.0,
    int8=1.2,
    f1_delta=0.005,
):
    return {
        "bench": "detect",
        "process_parallel": {"speedup": speedup, "core_capped": capped},
        "artifact_cache": {"warm_speedup": warm},
        "detect": {
            "extract_speedup": extract,
            "int8_speedup": int8,
            "int8_f1_delta": f1_delta,
        },
    }


class TestCompareBenchmarks:
    def test_registry_covers_every_bench_suite(self):
        assert set(HEADLINE_METRICS) == {
            "cascade",
            "pipeline",
            "async",
            "detect",
            "stream",
            "obs",
            "coord",
            "service",
        }

    def test_no_regression_when_fresh_is_equal_or_better(self):
        result = compare_benchmarks(_detect_doc(1.5), _detect_doc(1.5))
        assert result["regressions"] == []
        assert len(result["compared"]) == 5

    def test_drop_beyond_threshold_is_a_regression(self):
        result = compare_benchmarks(_detect_doc(0.7), _detect_doc(1.0))
        paths = [entry["path"] for entry in result["regressions"]]
        assert paths == ["process_parallel.speedup"]
        entry = result["regressions"][0]
        assert entry["baseline"] == 1.0
        assert entry["fresh"] == 0.7
        assert entry["relative_change"] == pytest.approx(-0.3)

    def test_drop_within_threshold_passes(self):
        result = compare_benchmarks(_detect_doc(0.85), _detect_doc(1.0))
        assert result["regressions"] == []

    def test_improvement_is_never_a_regression(self):
        result = compare_benchmarks(_detect_doc(3.0), _detect_doc(1.0))
        assert result["regressions"] == []

    def test_honesty_flag_waives_metric_in_either_document(self):
        for fresh_capped, base_capped in [(True, False), (False, True)]:
            result = compare_benchmarks(
                _detect_doc(0.1, capped=fresh_capped),
                _detect_doc(2.0, capped=base_capped),
            )
            assert "process_parallel.speedup" in result["waived"]
            assert result["regressions"] == []

    def test_metric_missing_from_baseline_reported_not_failed(self):
        baseline = {"bench": "detect", "process_parallel": {"speedup": 1.0}}
        result = compare_benchmarks(_detect_doc(1.0), baseline)
        assert "artifact_cache.warm_speedup" in result["missing"]
        assert result["regressions"] == []

    def test_bench_name_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            compare_benchmarks(_detect_doc(1.0), {"bench": "pipeline"})

    def test_non_positive_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_benchmarks(
                _detect_doc(1.0), _detect_doc(1.0), threshold=0.0
            )

    def test_unknown_bench_compares_nothing(self):
        result = compare_benchmarks({"bench": "novel"}, {"bench": "novel"})
        assert result["compared"] == []
        assert result["regressions"] == []

    def test_custom_threshold(self):
        tight = compare_benchmarks(
            _detect_doc(0.9), _detect_doc(1.0), threshold=0.05
        )
        assert len(tight.get("regressions")) == 1


class TestLowerIsBetterMetrics:
    """``detect.int8_f1_delta`` regresses when it *rises*."""

    def test_rise_beyond_threshold_is_a_regression(self):
        result = compare_benchmarks(
            _detect_doc(1.0, f1_delta=0.009), _detect_doc(1.0, f1_delta=0.006)
        )
        paths = [entry["path"] for entry in result["regressions"]]
        assert paths == ["detect.int8_f1_delta"]
        assert result["regressions"][0]["relative_change"] == pytest.approx(
            0.5
        )

    def test_drop_is_an_improvement_not_a_regression(self):
        result = compare_benchmarks(
            _detect_doc(1.0, f1_delta=0.001), _detect_doc(1.0, f1_delta=0.009)
        )
        assert result["regressions"] == []

    def test_floor_absorbs_noise_near_perfect_baselines(self):
        # Baseline delta 0.0001; fresh 0.0002.  Relative to the raw
        # baseline that is a 2x blow-up, but the rise is tiny against
        # the 0.005 floor, so it is measurement noise, not a regression.
        result = compare_benchmarks(
            _detect_doc(1.0, f1_delta=0.0002), _detect_doc(1.0, f1_delta=0.0001)
        )
        assert result["regressions"] == []

    def test_zero_baseline_still_catches_real_rises(self):
        # From a perfectly-agreeing baseline, a rise past the floor x
        # threshold must still regress (no divide-by-zero free pass).
        result = compare_benchmarks(
            _detect_doc(1.0, f1_delta=0.008), _detect_doc(1.0, f1_delta=0.0)
        )
        paths = [entry["path"] for entry in result["regressions"]]
        assert paths == ["detect.int8_f1_delta"]
