"""Tests for the chat API types and request validation."""

import pytest

from repro.llm import (
    ChatMessage,
    ChatRequest,
    ImageAttachment,
    Usage,
    estimate_prompt_tokens,
)


@pytest.fixture()
def attachment(urban_scene):
    return ImageAttachment(scene=urban_scene)


class TestChatTypes:
    def test_message_rejects_unknown_role(self):
        with pytest.raises(ValueError):
            ChatMessage(role="robot", text="hi")

    def test_request_requires_messages(self):
        with pytest.raises(ValueError):
            ChatRequest(model="m", messages=())

    def test_request_validates_temperature(self, attachment):
        message = ChatMessage(role="user", text="hi", images=(attachment,))
        with pytest.raises(ValueError):
            ChatRequest(model="m", messages=(message,), temperature=3.0)

    def test_request_validates_top_p(self, attachment):
        message = ChatMessage(role="user", text="hi", images=(attachment,))
        with pytest.raises(ValueError):
            ChatRequest(model="m", messages=(message,), top_p=0.0)

    def test_user_text_concatenates(self, attachment):
        request = ChatRequest(
            model="m",
            messages=(
                ChatMessage(role="system", text="be brief"),
                ChatMessage(role="user", text="first"),
                ChatMessage(role="user", text="second", images=(attachment,)),
            ),
        )
        assert request.user_text == "first\nsecond"
        assert len(request.images) == 1

    def test_usage_total(self):
        usage = Usage(prompt_tokens=10, completion_tokens=5)
        assert usage.total_tokens == 15

    def test_image_tokens_in_estimate(self, attachment):
        with_image = ChatRequest(
            model="m",
            messages=(
                ChatMessage(role="user", text="x" * 400, images=(attachment,)),
            ),
        )
        without = ChatRequest(
            model="m",
            messages=(ChatMessage(role="user", text="x" * 400),),
        )
        assert (
            estimate_prompt_tokens(with_image)
            == estimate_prompt_tokens(without) + 85
        )

    def test_attachment_image_id(self, attachment, urban_scene):
        assert attachment.image_id == urban_scene.scene_id
