"""Tests for binary classification metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ClassificationReport, ConfusionCounts, accuracy_by_indicator
from repro.core.indicators import ALL_INDICATORS, Indicator, IndicatorPresence


class TestConfusionCounts:
    def test_perfect(self):
        counts = ConfusionCounts(tp=10, fp=0, tn=10, fn=0)
        assert counts.precision == 1.0
        assert counts.recall == 1.0
        assert counts.f1 == 1.0
        assert counts.accuracy == 1.0

    def test_known_values(self):
        counts = ConfusionCounts(tp=6, fp=2, tn=10, fn=2)
        assert counts.precision == pytest.approx(0.75)
        assert counts.recall == pytest.approx(0.75)
        assert counts.f1 == pytest.approx(0.75)
        assert counts.accuracy == pytest.approx(0.8)

    def test_no_predictions_nan_precision(self):
        counts = ConfusionCounts(tp=0, fp=0, tn=5, fn=5)
        assert np.isnan(counts.precision)
        assert counts.recall == 0.0

    def test_no_positives_nan_recall(self):
        counts = ConfusionCounts(tp=0, fp=2, tn=5, fn=0)
        assert np.isnan(counts.recall)

    def test_addition(self):
        total = ConfusionCounts(1, 2, 3, 4) + ConfusionCounts(4, 3, 2, 1)
        assert (total.tp, total.fp, total.tn, total.fn) == (5, 5, 5, 5)

    def test_fpr(self):
        counts = ConfusionCounts(tp=0, fp=3, tn=7, fn=0)
        assert counts.false_positive_rate == pytest.approx(0.3)


def _presences(vectors):
    return [IndicatorPresence.from_vector(v) for v in vectors]


class TestClassificationReport:
    def test_perfect_predictions(self):
        truths = _presences([[1, 0, 0, 0, 0, 0], [0, 1, 0, 0, 0, 0]])
        report = ClassificationReport.from_predictions(truths, truths)
        assert report.mean_accuracy == 1.0
        assert report.counts[Indicator.STREETLIGHT].tp == 1

    def test_all_wrong(self):
        truths = _presences([[1, 1, 1, 1, 1, 1]])
        preds = _presences([[0, 0, 0, 0, 0, 0]])
        report = ClassificationReport.from_predictions(truths, preds)
        assert report.mean_accuracy == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ClassificationReport.from_predictions(
                _presences([[0] * 6]), _presences([])
            )

    def test_rows_shape(self):
        truths = _presences([[1, 0, 1, 0, 1, 0]] * 4)
        report = ClassificationReport.from_predictions(truths, truths)
        rows = report.rows()
        assert len(rows) == 7  # six classes + average
        assert rows[-1]["label"] == "Average"

    def test_accuracy_by_indicator(self):
        truths = _presences([[1, 0, 0, 0, 0, 0], [1, 0, 0, 0, 0, 0]])
        preds = _presences([[1, 0, 0, 0, 0, 0], [0, 0, 0, 0, 0, 0]])
        accuracy = accuracy_by_indicator(truths, preds)
        assert accuracy[Indicator.STREETLIGHT] == pytest.approx(0.5)
        assert accuracy[Indicator.SIDEWALK] == 1.0

    @given(
        data=st.lists(
            st.tuples(
                st.lists(st.booleans(), min_size=6, max_size=6),
                st.lists(st.booleans(), min_size=6, max_size=6),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_counts_partition_total(self, data):
        truths = _presences([t for t, _ in data])
        preds = _presences([p for _, p in data])
        report = ClassificationReport.from_predictions(truths, preds)
        for indicator in ALL_INDICATORS:
            assert report.counts[indicator].total == len(data)

    @given(
        vectors=st.lists(
            st.lists(st.booleans(), min_size=6, max_size=6),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_self_prediction_is_perfect(self, vectors):
        presences = _presences(vectors)
        report = ClassificationReport.from_predictions(presences, presences)
        for indicator in ALL_INDICATORS:
            counts = report.counts[indicator]
            assert counts.fp == 0 and counts.fn == 0


class TestConfusionAccumulator:
    """Streaming tallies must equal the batch report *exactly*."""

    def _random_pairs(self, seed, n):
        rng = np.random.default_rng(seed)
        truths = _presences((rng.random((n, 6)) > 0.5).astype(int).tolist())
        preds = _presences((rng.random((n, 6)) > 0.4).astype(int).tolist())
        return truths, preds

    def test_update_matches_batch_report(self):
        from repro.core import ConfusionAccumulator

        truths, preds = self._random_pairs(seed=1, n=37)
        accumulator = ConfusionAccumulator()
        for truth, predicted in zip(truths, preds):
            accumulator.update(truth, predicted)
        assert accumulator.pairs_seen == 37
        assert accumulator.report() == ClassificationReport.from_predictions(
            truths, preds
        )

    @given(split=st.integers(min_value=0, max_value=25))
    @settings(max_examples=25)
    def test_any_shard_split_merges_to_batch(self, split):
        from repro.core import ConfusionAccumulator

        truths, preds = self._random_pairs(seed=2, n=25)
        left, right = ConfusionAccumulator(), ConfusionAccumulator()
        left.update_many(truths[:split], preds[:split])
        right.update_many(truths[split:], preds[split:])
        merged = left.merge(right)
        assert merged.report() == ClassificationReport.from_predictions(
            truths, preds
        )
        assert merged.pairs_seen == 25

    def test_update_many_rejects_length_mismatch(self):
        from repro.core import ConfusionAccumulator

        truths, preds = self._random_pairs(seed=3, n=4)
        with pytest.raises(ValueError):
            ConfusionAccumulator().update_many(truths, preds[:3])


class TestPresenceAccumulator:
    def test_rates_equal_np_mean_exactly(self):
        from repro.core import PresenceAccumulator

        rng = np.random.default_rng(5)
        presences = _presences(
            (rng.random((23, 6)) > 0.5).astype(int).tolist()
        )
        accumulator = PresenceAccumulator()
        for presence in presences:
            accumulator.update(presence)
        for indicator in ALL_INDICATORS:
            batch = float(np.mean([p[indicator] for p in presences]))
            assert accumulator.rate(indicator) == batch  # not approx: exact

    def test_merge_equals_whole(self):
        from repro.core import PresenceAccumulator

        rng = np.random.default_rng(6)
        presences = _presences(
            (rng.random((17, 6)) > 0.5).astype(int).tolist()
        )
        whole = PresenceAccumulator()
        for presence in presences:
            whole.update(presence)
        left, right = PresenceAccumulator(), PresenceAccumulator()
        for presence in presences[:9]:
            left.update(presence)
        for presence in presences[9:]:
            right.update(presence)
        merged = left.merge(right)
        assert merged.n == whole.n == 17
        assert merged.rates() == whole.rates()

    def test_empty_rates_are_nan(self):
        from repro.core import PresenceAccumulator

        accumulator = PresenceAccumulator()
        assert accumulator.n == 0
        for value in accumulator.rates().values():
            assert np.isnan(value)
