"""Seeded randomized property tests for parsing and voting.

The response parser and the vote combinator sit between untrusted
model output and the survey's statistics, so their contracts are
stated as properties and hammered with seeded random inputs rather
than a handful of examples:

* :func:`~repro.core.parsing.extract_decisions` never raises, on any
  text, and only ever yields booleans;
* :func:`~repro.core.parsing.parse_answers` either returns exactly the
  planted decisions (however mangled the surrounding formatting) or
  raises :class:`~repro.core.parsing.ResponseParseError` — never
  anything else;
* :func:`~repro.core.voting.majority_vote` is invariant under vote
  permutation and agrees with a brute-force per-indicator count.

Every random stream is seeded, so a failure reproduces exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.core.indicators import ALL_INDICATORS, IndicatorPresence
from repro.core.parsing import (
    ResponseParseError,
    answers_to_presence,
    extract_decisions,
    parse_answers,
)
from repro.core.voting import majority_vote

#: Yes/No surface forms across the paper's four prompt languages,
#: with the messy capitalization and punctuation real models emit.
_YES_FORMS = ("Yes", "YES", "yes", "y", "Sí", "si", "是", "是的", "হ্যাঁ", "True")
_NO_FORMS = ("No", "NO", "no", "n", "否", "不是", "না", "False")

#: Filler that must never parse as a decision.
_JUNK = (
    "Answer:", "the", "image", "shows", "maybe", "presence", "model",
    "->", "...", "##", "(see", "below)", "claro", "图像", "উত্তর",
)

_SEPARATORS = (", ", " ", ",", "，", "、", "; ", " / ", "\n", "\t")


def _render_reply(rng: random.Random, answers: list[bool]) -> str:
    """A reply containing exactly ``answers`` plus random junk."""
    parts: list[str] = []
    if rng.random() < 0.5:
        parts.append(rng.choice(_JUNK))
    for answer in answers:
        token = rng.choice(_YES_FORMS if answer else _NO_FORMS)
        if rng.random() < 0.3:
            token += rng.choice((".", "!", "?", "。", ")"))
        if rng.random() < 0.2:
            token = "(" + token
        parts.append(token)
    tail = rng.choice(("", rng.choice(_JUNK)))
    if tail:
        parts.append(tail)
    out = parts[0]
    for part in parts[1:]:
        out += rng.choice(_SEPARATORS) + part
    return out


class TestParsingProperties:
    @pytest.mark.parametrize("seed", range(5))
    def test_extract_decisions_never_raises_on_arbitrary_text(self, seed):
        rng = random.Random(seed)
        alphabet = (
            "abcyn NOYes, 是否;/ \n\t。，！?.'\"()[]{}«»héñ中文ङ্কাαβ\x00\x7f"
        )
        for _ in range(300):
            text = "".join(
                rng.choice(alphabet)
                for _ in range(rng.randrange(0, 60))
            )
            decisions = extract_decisions(text)
            assert all(isinstance(d, bool) for d in decisions)

    @pytest.mark.parametrize("seed", range(5))
    def test_planted_decisions_survive_any_formatting(self, seed):
        rng = random.Random(1000 + seed)
        for _ in range(200):
            answers = [rng.random() < 0.5 for _ in range(rng.randrange(1, 9))]
            reply = _render_reply(rng, answers)
            parsed = parse_answers(reply, expected=len(answers))
            assert list(parsed.answers) == answers
            assert parsed.raw == reply

    @pytest.mark.parametrize("seed", range(5))
    def test_parse_answers_raises_only_parse_errors(self, seed):
        """Truncated/overfull replies fail loudly but predictably."""
        rng = random.Random(2000 + seed)
        for _ in range(200):
            answers = [rng.random() < 0.5 for _ in range(rng.randrange(1, 7))]
            reply = _render_reply(rng, answers)
            # Truncate or pad so the count cannot match.
            if answers and rng.random() < 0.5:
                expected = len(answers) + rng.randrange(1, 4)
            else:
                reply = rng.choice(_JUNK)
                expected = rng.randrange(1, 4)
            with pytest.raises(ResponseParseError):
                parse_answers(reply, expected=expected)

    @pytest.mark.parametrize("seed", range(3))
    def test_answers_always_map_to_a_valid_presence_vector(self, seed):
        rng = random.Random(3000 + seed)
        for _ in range(200):
            n = rng.randrange(1, len(ALL_INDICATORS) + 1)
            indicators = tuple(rng.sample(ALL_INDICATORS, n))
            answers = tuple(rng.random() < 0.5 for _ in range(n))
            presence = answers_to_presence(answers, indicators)
            assert isinstance(presence, IndicatorPresence)
            for indicator, answer in zip(indicators, answers):
                assert presence[indicator] is answer
            for indicator in set(ALL_INDICATORS) - set(indicators):
                assert presence[indicator] is False

    def test_bilingual_reply_parses_in_order(self):
        reply = "Sí, no, 是, 否, হ্যাঁ, no"
        parsed = parse_answers(reply, expected=6)
        assert parsed.answers == (True, False, True, False, True, False)

    def test_glued_cjk_answers_split_per_character(self):
        assert extract_decisions("是否是") == [True, False, True]


def _random_presence(rng: random.Random) -> IndicatorPresence:
    return IndicatorPresence(
        [ind for ind in ALL_INDICATORS if rng.random() < 0.5]
    )


class TestVotingProperties:
    @pytest.mark.parametrize("seed", range(5))
    def test_majority_vote_is_invariant_under_permutation(self, seed):
        rng = random.Random(4000 + seed)
        for _ in range(200):
            votes = [
                _random_presence(rng) for _ in range(rng.randrange(1, 8))
            ]
            quorum = (
                rng.randrange(1, len(votes) + 1)
                if rng.random() < 0.5
                else None
            )
            baseline = majority_vote(votes, quorum=quorum)
            shuffled = list(votes)
            rng.shuffle(shuffled)
            assert majority_vote(shuffled, quorum=quorum) == baseline

    @pytest.mark.parametrize("seed", range(3))
    def test_majority_vote_matches_brute_force_count(self, seed):
        rng = random.Random(5000 + seed)
        for _ in range(200):
            votes = [
                _random_presence(rng) for _ in range(rng.randrange(1, 8))
            ]
            threshold = len(votes) // 2 + 1
            result = majority_vote(votes)
            for indicator in ALL_INDICATORS:
                tally = sum(1 for vote in votes if vote[indicator])
                assert result[indicator] is (tally >= threshold)

    def test_unanimous_vote_is_identity(self):
        rng = random.Random(6000)
        for _ in range(50):
            vote = _random_presence(rng)
            assert majority_vote([vote] * 3) == vote

    def test_invalid_quorum_rejected(self):
        votes = [IndicatorPresence(), IndicatorPresence()]
        with pytest.raises(ValueError):
            majority_vote(votes, quorum=0)
        with pytest.raises(ValueError):
            majority_vote(votes, quorum=3)
        with pytest.raises(ValueError):
            majority_vote([])
