"""Chaos drills for the sharded coordinator (``-m faults``).

The acceptance drill for the crash-safe coordinator: SIGKILL workers
at seeded-random progress points across a 1,000+ location sharded
survey, resume, and require the merged report to be **byte-identical**
to an undisturbed serial ``survey_stream`` of the same frame — with
zero re-billed fee units for shards that had already completed.
"""

from __future__ import annotations

import pytest

from repro.coordinator import (
    CrashSchedule,
    ShardState,
    SurveyCoordinator,
)
from repro.core import LLMIndicatorClassifier, NeighborhoodDecoder
from repro.geo import make_durham_like, plan_survey_points
from repro.gsv import StreetViewClient
from repro.obs.audit import COORDINATOR_STAGES, audit_trace, reconcile_survey
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.trace import Tracer, use_tracer

pytestmark = pytest.mark.faults

N_LOCATIONS = 1_100
SHARD_SIZE = 64  # 18 shards


@pytest.fixture(scope="module")
def county():
    return make_durham_like(seed=3)


@pytest.fixture(scope="module")
def frame(county):
    points = plan_survey_points([county], N_LOCATIONS, seed=5)
    assert len(points) == N_LOCATIONS
    return points


@pytest.fixture(scope="module")
def baseline(county, clients, frame):
    """The undisturbed serial run every drill must reproduce exactly."""
    return _decoder(county, clients).survey_stream(
        locations=frame, workers=1, keep_locations=True
    )


def _decoder(county, clients):
    return NeighborhoodDecoder(
        street_view=StreetViewClient(counties=[county], api_key="x"),
        classifier=LLMIndicatorClassifier(clients["gemini-1.5-pro"]),
    )


def _coordinator(tmp_path, county, clients, **overrides):
    kwargs = dict(
        state_dir=tmp_path / "state",
        counties=[county],
        n_locations=N_LOCATIONS,
        seed=5,
        decoder=_decoder(county, clients),
        shard_size=SHARD_SIZE,
        max_workers=4,
        lease_ttl_s=30.0,
        max_attempts=3,
        keep_locations=True,
    )
    kwargs.update(overrides)
    return SurveyCoordinator(**kwargs)


class TestSeededKillDrill:
    def test_sigkill_storm_then_resume_is_byte_identical(
        self, tmp_path, county, clients, baseline
    ):
        """The headline acceptance drill.

        Phase 1: roughly half the shards' first attempts are SIGKILLed
        at seeded-random progress points, and shard 0 is killed on
        *every* attempt so the budget quarantines it.  Phase 2 resumes
        (fresh budget), completes, and must merge to the exact bytes of
        the serial baseline without re-dispatching completed shards.
        """
        n_shards = -(-N_LOCATIONS // SHARD_SIZE)
        schedule = CrashSchedule.seeded_kills(
            n_shards, seed=99, attempts=1, max_after=3, fraction=0.5
        )
        for attempt in range(1, 4):
            schedule.kill(0, attempt, after_locations=2)
        assert len(schedule) >= 4  # the storm actually scheduled kills

        with use_metrics(MetricsRegistry()):
            crashed = _coordinator(
                tmp_path, county, clients, crash_schedule=schedule
            ).run()
        assert crashed.quarantined == (0,)
        assert crashed.requeues >= 1
        assert crashed.report.completed_locations < N_LOCATIONS
        completed_before = len(
            crashed.manifest.in_state(ShardState.COMPLETED)
        )
        assert completed_before >= 1

        tracer = Tracer()
        with use_metrics(MetricsRegistry()), use_tracer(tracer):
            resumed = _coordinator(tmp_path, county, clients).run(
                resume=True
            )
        report = resumed.report

        # Byte-identity is the whole contract: every location, every
        # fee cent, every retry counter — exactly the serial run.
        assert report.to_json() == baseline.to_json()
        assert report.fees_usd == baseline.fees_usd
        assert report.payload() == baseline.payload()

        # Zero re-billing: completed shards were not re-dispatched.
        assert resumed.workers_spawned == n_shards - completed_before
        assert reconcile_survey(report) == []
        assert (
            audit_trace(tracer, required_names=COORDINATOR_STAGES) == []
        )

    def test_kill_storm_without_poison_self_heals_in_one_run(
        self, tmp_path, county, clients, baseline
    ):
        """Kills on first attempts only: requeues absorb the storm and
        a single run (no resume needed) already matches the baseline."""
        n_shards = -(-N_LOCATIONS // SHARD_SIZE)
        schedule = CrashSchedule.seeded_kills(
            n_shards, seed=7, attempts=1, max_after=5, fraction=0.4
        )
        with use_metrics(MetricsRegistry()):
            result = _coordinator(
                tmp_path, county, clients, crash_schedule=schedule
            ).run()
        assert result.requeues == len(schedule)
        assert result.quarantined == ()
        assert result.report.to_json() == baseline.to_json()
        assert reconcile_survey(result.report) == []


class TestFrozenStragglerDrill:
    def test_heartbeat_freeze_is_fenced_by_lease_expiry(
        self, tmp_path, county, clients
    ):
        """A wedged worker (alive, silent) is fenced and re-dispatched.

        Smaller frame so the drill's wall-clock cost is one lease TTL,
        not many.
        """
        n = 120
        points = plan_survey_points([county], n, seed=5)
        serial = _decoder(county, clients).survey_stream(
            locations=points, workers=1, keep_locations=True
        )
        schedule = CrashSchedule().freeze(1, 1, after_locations=3)
        with use_metrics(MetricsRegistry()):
            result = _coordinator(
                tmp_path,
                county,
                clients,
                n_locations=n,
                shard_size=24,
                lease_ttl_s=2.0,
                heartbeat_interval_s=0.25,
                crash_schedule=schedule,
            ).run()
        assert result.lease_expiries == 1
        assert result.requeues == 1
        assert result.report.to_json() == serial.to_json()
        assert reconcile_survey(result.report) == []
