"""Tests for the end-to-end NeighborhoodDecoder."""

import pytest

from repro.core import (
    ClassifierConfig,
    LLMIndicatorClassifier,
    NeighborhoodDecoder,
    VotingEnsemble,
)
from repro.core.indicators import ALL_INDICATORS, Indicator
from repro.geo import make_durham_like, make_robeson_like
from repro.gsv import StreetViewClient


@pytest.fixture(scope="module")
def street_view():
    return StreetViewClient(
        counties=[make_robeson_like(seed=2), make_durham_like(seed=3)],
        api_key="survey",
    )


class TestNeighborhoodDecoder:
    def test_requires_exactly_one_predictor(self, street_view, clients):
        classifier = LLMIndicatorClassifier(clients["gemini-1.5-pro"])
        with pytest.raises(ValueError):
            NeighborhoodDecoder(street_view=street_view)
        with pytest.raises(ValueError):
            NeighborhoodDecoder(
                street_view=street_view,
                classifier=classifier,
                ensemble=VotingEnsemble(
                    {
                        "a": classifier,
                        "b": LLMIndicatorClassifier(clients["grok-2"]),
                    }
                ),
            )

    def test_survey_with_single_classifier(self, street_view, clients):
        decoder = NeighborhoodDecoder(
            street_view=street_view,
            classifier=LLMIndicatorClassifier(clients["gemini-1.5-pro"]),
        )
        report = decoder.survey(make_robeson_like(seed=2), n_locations=8, seed=0)
        assert len(report.locations) == 8
        assert report.images_classified == 32
        assert report.fees_usd > 0

    def test_survey_rates_in_unit_interval(self, street_view, clients):
        decoder = NeighborhoodDecoder(
            street_view=street_view,
            classifier=LLMIndicatorClassifier(clients["claude-3.7"]),
        )
        report = decoder.survey(make_durham_like(seed=3), n_locations=6, seed=1)
        for rate in report.indicator_rates().values():
            assert 0.0 <= rate <= 1.0

    def test_survey_with_ensemble(self, street_view, clients):
        ensemble = VotingEnsemble(
            {
                name: LLMIndicatorClassifier(clients[name])
                for name in ("gemini-1.5-pro", "claude-3.7", "grok-2")
            }
        )
        decoder = NeighborhoodDecoder(
            street_view=street_view, ensemble=ensemble
        )
        report = decoder.survey(make_durham_like(seed=3), n_locations=5, seed=2)
        assert len(report.locations) == 5

    def test_rates_by_zone_keys(self, street_view, clients):
        decoder = NeighborhoodDecoder(
            street_view=street_view,
            classifier=LLMIndicatorClassifier(clients["gpt-4o-mini"]),
        )
        report = decoder.survey(
            make_durham_like(seed=3), n_locations=10, seed=3
        )
        by_zone = report.rates_by_zone()
        assert by_zone
        for zone_rates in by_zone.values():
            assert set(zone_rates) == set(ALL_INDICATORS)

    def test_urban_county_decodes_more_sidewalks(self, street_view, clients):
        decoder = NeighborhoodDecoder(
            street_view=street_view,
            classifier=LLMIndicatorClassifier(clients["gemini-1.5-pro"]),
        )
        rural = decoder.survey(make_robeson_like(seed=2), 25, seed=5)
        urban = decoder.survey(make_durham_like(seed=3), 25, seed=5)
        assert (
            urban.indicator_rates()[Indicator.SIDEWALK]
            > rural.indicator_rates()[Indicator.SIDEWALK]
        )
