"""Tests for the end-to-end NeighborhoodDecoder."""

import pytest

from repro.core import (
    ClassifierConfig,
    LLMIndicatorClassifier,
    NeighborhoodDecoder,
    VotingEnsemble,
)
from repro.core.indicators import ALL_INDICATORS, Indicator
from repro.geo import make_durham_like, make_robeson_like
from repro.gsv import StreetViewClient


@pytest.fixture(scope="module")
def street_view():
    return StreetViewClient(
        counties=[make_robeson_like(seed=2), make_durham_like(seed=3)],
        api_key="survey",
    )


class TestNeighborhoodDecoder:
    def test_requires_exactly_one_predictor(self, street_view, clients):
        classifier = LLMIndicatorClassifier(clients["gemini-1.5-pro"])
        with pytest.raises(ValueError):
            NeighborhoodDecoder(street_view=street_view)
        with pytest.raises(ValueError):
            NeighborhoodDecoder(
                street_view=street_view,
                classifier=classifier,
                ensemble=VotingEnsemble(
                    {
                        "a": classifier,
                        "b": LLMIndicatorClassifier(clients["grok-2"]),
                    }
                ),
            )

    def test_survey_with_single_classifier(self, street_view, clients):
        decoder = NeighborhoodDecoder(
            street_view=street_view,
            classifier=LLMIndicatorClassifier(clients["gemini-1.5-pro"]),
        )
        report = decoder.survey(make_robeson_like(seed=2), n_locations=8, seed=0)
        assert len(report.locations) == 8
        assert report.images_classified == 32
        assert report.fees_usd > 0

    def test_survey_rates_in_unit_interval(self, street_view, clients):
        decoder = NeighborhoodDecoder(
            street_view=street_view,
            classifier=LLMIndicatorClassifier(clients["claude-3.7"]),
        )
        report = decoder.survey(make_durham_like(seed=3), n_locations=6, seed=1)
        for rate in report.indicator_rates().values():
            assert 0.0 <= rate <= 1.0

    def test_survey_with_ensemble(self, street_view, clients):
        ensemble = VotingEnsemble(
            {
                name: LLMIndicatorClassifier(clients[name])
                for name in ("gemini-1.5-pro", "claude-3.7", "grok-2")
            }
        )
        decoder = NeighborhoodDecoder(
            street_view=street_view, ensemble=ensemble
        )
        report = decoder.survey(make_durham_like(seed=3), n_locations=5, seed=2)
        assert len(report.locations) == 5

    def test_rates_by_zone_keys(self, street_view, clients):
        decoder = NeighborhoodDecoder(
            street_view=street_view,
            classifier=LLMIndicatorClassifier(clients["gpt-4o-mini"]),
        )
        report = decoder.survey(
            make_durham_like(seed=3), n_locations=10, seed=3
        )
        by_zone = report.rates_by_zone()
        assert by_zone
        for zone_rates in by_zone.values():
            assert set(zone_rates) == set(ALL_INDICATORS)

    def test_urban_county_decodes_more_sidewalks(self, street_view, clients):
        decoder = NeighborhoodDecoder(
            street_view=street_view,
            classifier=LLMIndicatorClassifier(clients["gemini-1.5-pro"]),
        )
        rural = decoder.survey(make_robeson_like(seed=2), 25, seed=5)
        urban = decoder.survey(make_durham_like(seed=3), 25, seed=5)
        assert (
            urban.indicator_rates()[Indicator.SIDEWALK]
            > rural.indicator_rates()[Indicator.SIDEWALK]
        )


class TestSurveyStream:
    """The streaming engine must be observably identical to batch."""

    def _decoder(self, street_view, clients, name="gemini-1.5-pro"):
        return NeighborhoodDecoder(
            street_view=street_view,
            classifier=LLMIndicatorClassifier(clients[name]),
        )

    def test_keep_locations_is_byte_identical_to_batch(
        self, street_view, clients
    ):
        county = make_durham_like(seed=3)
        batch = self._decoder(street_view, clients).survey(
            county, n_locations=9, seed=4
        )
        stream = self._decoder(street_view, clients).survey_stream(
            county, 9, seed=4, shard_size=3, keep_locations=True
        )
        assert stream.to_json() == batch.to_json()
        assert stream.completed_locations == batch.completed_locations == 9

    def test_aggregate_mode_rates_equal_batch_exactly(
        self, street_view, clients
    ):
        county = make_robeson_like(seed=2)
        batch = self._decoder(street_view, clients).survey(
            county, n_locations=8, seed=6
        )
        stream = self._decoder(street_view, clients).survey_stream(
            county, 8, seed=6, shard_size=3
        )
        assert stream.locations == []  # memory-bounded: nothing retained
        assert stream.indicator_rates() == batch.indicator_rates()
        assert stream.rates_by_zone() == batch.rates_by_zone()
        assert stream.coverage == batch.coverage

    def test_iterable_mode_consumes_a_generator(self, street_view, clients):
        county = make_durham_like(seed=3)
        points = NeighborhoodDecoder._select_points(county, 7, seed=1)
        report = self._decoder(street_view, clients).survey_stream(
            locations=iter(points), shard_size=2
        )
        assert report.requested_locations == 7
        assert report.completed_locations == 7
        for rate in report.indicator_rates().values():
            assert 0.0 <= rate <= 1.0

    def test_mode_arguments_are_mutually_exclusive(
        self, street_view, clients
    ):
        county = make_durham_like(seed=3)
        decoder = self._decoder(street_view, clients)
        points = NeighborhoodDecoder._select_points(county, 2, seed=1)
        with pytest.raises(ValueError):
            decoder.survey_stream(county, 2, locations=iter(points))
        with pytest.raises(ValueError):
            decoder.survey_stream()
        with pytest.raises(ValueError):
            decoder.survey_stream(
                locations=iter(points), checkpoint="somewhere.json"
            )

    def test_coalesce_stats_reported_but_not_in_payload(
        self, street_view, clients
    ):
        county = make_durham_like(seed=3)
        report = self._decoder(street_view, clients).survey_stream(
            county, 4, seed=2, shard_size=2
        )
        assert set(report.coalesce_stats) >= {"coalesced"}
        assert "coalesce_stats" not in report.payload()
