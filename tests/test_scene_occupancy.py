"""Tests for occupancy footprints and stable seeding."""

import numpy as np
import pytest

from repro.core.indicators import Indicator
from repro.geo import RoadClass, ZoneKind
from repro.scene import BoundingBox, SceneGenerator, stable_seed
from repro.scene.model import SceneObject
from repro.scene.occupancy import occupancy_boxes


@pytest.fixture(scope="module")
def many_scenes():
    gen = SceneGenerator(seed=13)
    scenes = []
    for i in range(200):
        zone = list(ZoneKind)[i % 4]
        scenes.append(
            gen.generate(
                f"occ{i}",
                zone,
                road_class=RoadClass.ARTERIAL if i % 2 else RoadClass.LOCAL,
                heading=0,
                road_bearing=float((i * 53) % 180),
            )
        )
    return scenes


class TestOccupancyBoxes:
    def test_every_object_has_occupancy(self, many_scenes):
        for scene in many_scenes:
            for obj in scene.objects:
                parts = occupancy_boxes(obj)
                assert parts, obj.indicator

    def test_occupancy_boxes_valid(self, many_scenes):
        for scene in many_scenes:
            for obj in scene.objects:
                for part in occupancy_boxes(obj):
                    assert 0.0 <= part.x_min < part.x_max <= 1.0
                    assert 0.0 <= part.y_min < part.y_max <= 1.0

    def test_occupancy_overlaps_bbox(self, many_scenes):
        """Every occupancy part must intersect the object's box."""
        for scene in many_scenes:
            for obj in scene.objects:
                for part in occupancy_boxes(obj):
                    ix = min(part.x_max, obj.box.x_max) - max(
                        part.x_min, obj.box.x_min
                    )
                    iy = min(part.y_max, obj.box.y_max) - max(
                        part.y_min, obj.box.y_min
                    )
                    assert ix > -0.06 and iy > -0.06, obj.indicator

    def test_sidewalk_along_occupancy_smaller_than_bbox(self, many_scenes):
        found = False
        for scene in many_scenes:
            for obj in scene.objects_of(Indicator.SIDEWALK):
                if obj.attributes.get("view") != "along":
                    continue
                found = True
                area = sum(p.area for p in occupancy_boxes(obj))
                assert area < obj.box.area * 0.9
        assert found

    def test_across_objects_use_bbox(self, many_scenes):
        for scene in many_scenes:
            for obj in scene.objects_of(Indicator.SIDEWALK):
                if obj.attributes.get("view") == "across":
                    assert occupancy_boxes(obj) == [obj.box]
                    return

    def test_missing_attributes_fall_back_to_bbox(self):
        bare = SceneObject(
            indicator=Indicator.STREETLIGHT,
            box=BoundingBox(0.4, 0.2, 0.5, 0.8),
        )
        assert occupancy_boxes(bare) == [bare.box]

    def test_apartment_is_boxlike(self):
        obj = SceneObject(
            indicator=Indicator.APARTMENT,
            box=BoundingBox(0.1, 0.2, 0.5, 0.6),
            attributes={"floors": 5},
        )
        assert occupancy_boxes(obj) == [obj.box]

    def test_powerline_band_spans_width(self, many_scenes):
        for scene in many_scenes:
            for obj in scene.objects_of(Indicator.POWERLINE):
                band = occupancy_boxes(obj)[0]
                assert band.x_min == 0.0 and band.x_max == 1.0
                return
        pytest.fail("no powerline generated")


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1, "b") == stable_seed("a", 1, "b")

    def test_order_sensitive(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")

    def test_type_sensitive(self):
        assert stable_seed(1) != stable_seed("1")

    def test_in_numpy_seed_range(self):
        for parts in (("x",), (1, 2, 3), ("scene", 99, "id")):
            seed = stable_seed(*parts)
            assert 0 <= seed < 2**63
            np.random.default_rng(seed)  # must not raise

    def test_distribution_no_collisions(self):
        seeds = {stable_seed("s", i) for i in range(10_000)}
        assert len(seeds) == 10_000
