"""Tests for dataset persistence and the batch runner."""

import numpy as np
import pytest

from repro.core import build_parallel_prompt
from repro.gsv.storage import (
    load_dataset,
    save_dataset,
    scene_from_json,
    scene_to_json,
)
from repro.llm import ImageAttachment, InvalidRequestError
from repro.llm.base import ChatMessage, ChatRequest
from repro.llm.batch import (
    BatchRunner,
    TokenBucket,
    VirtualClock,
)


class TestSceneSerialization:
    def test_round_trip_equality(self, urban_scene):
        assert scene_from_json(scene_to_json(urban_scene)) == urban_scene

    def test_round_trip_through_json_text(self, rural_scene):
        import json

        blob = json.dumps(scene_to_json(rural_scene))
        assert scene_from_json(json.loads(blob)) == rural_scene

    def test_renders_identically(self, urban_scene):
        recovered = scene_from_json(scene_to_json(urban_scene))
        from repro.scene import render_scene

        assert np.array_equal(
            render_scene(urban_scene, 128), render_scene(recovered, 128)
        )


class TestDatasetPersistence:
    def test_save_load_round_trip(self, small_dataset, tmp_path):
        save_dataset(small_dataset, tmp_path / "survey")
        loaded = load_dataset(tmp_path / "survey")
        assert len(loaded) == len(small_dataset)
        assert loaded.counties == small_dataset.counties
        for a, b in zip(small_dataset, loaded):
            assert a.image_id == b.image_id
            assert a.scene == b.scene
            assert a.annotations == b.annotations

    def test_labelme_files_written(self, small_dataset, tmp_path):
        save_dataset(small_dataset, tmp_path / "survey")
        annotation_files = list((tmp_path / "survey" / "annotations").glob("*.json"))
        assert len(annotation_files) == len(small_dataset)

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "nowhere")

    def test_version_check(self, small_dataset, tmp_path):
        import json

        manifest_path = save_dataset(small_dataset, tmp_path / "survey")
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError):
            load_dataset(tmp_path / "survey")


class TestTokenBucket:
    def test_burst_within_capacity_is_free(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=1.0, capacity=5.0, clock=clock)
        waits = [bucket.acquire() for _ in range(5)]
        assert sum(waits) == 0.0

    def test_sustained_rate_enforced(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=2.0, capacity=1.0, clock=clock)
        bucket.acquire()
        wait = bucket.acquire()
        assert wait == pytest.approx(0.5)  # 2 req/s → 0.5 s apart

    def test_refills_over_time(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=1.0, capacity=2.0, clock=clock)
        bucket.acquire()
        bucket.acquire()
        clock.sleep(2.0)
        assert bucket.acquire() == 0.0

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, capacity=1.0)


class TestBatchRunner:
    def _requests(self, clients, scenes, n=6):
        prompt = build_parallel_prompt()
        return [
            ChatRequest(
                model="gpt-4o-mini",
                messages=(
                    ChatMessage(
                        role="user",
                        text=prompt,
                        images=(ImageAttachment(scene=scenes[i % len(scenes)]),),
                    ),
                ),
            )
            for i in range(n)
        ]

    def test_all_succeed_without_failures(self, clients, small_dataset):
        scenes = [image.scene for image in small_dataset.images[:6]]
        runner = BatchRunner(clients["gpt-4o-mini"])
        outcomes, stats = runner.run(self._requests(clients, scenes))
        assert stats.succeeded == 6
        assert stats.failed == 0
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_retries_rate_limits(self, calibration_dataset, small_dataset):
        from repro.llm import build_clients

        limited = build_clients(
            [im.scene for im in calibration_dataset.images[:40]],
            model_ids=("gpt-4o-mini",),
            rate_limit_every=3,
        )["gpt-4o-mini"]
        scenes = [image.scene for image in small_dataset.images[:6]]
        clock = VirtualClock()
        runner = BatchRunner(limited, clock=clock, backoff_base_s=0.1)
        outcomes, stats = runner.run(self._requests(None, scenes))
        assert stats.succeeded == 6
        assert stats.retries >= 1
        assert clock.sleeps  # backoff happened on the virtual clock

    def test_non_retryable_recorded_not_raised(self, clients, urban_scene):
        bad = ChatRequest(
            model="grok-2",  # wrong client below → InvalidRequestError
            messages=(
                ChatMessage(
                    role="user",
                    text="Is there a sidewalk visible in the image?",
                    images=(ImageAttachment(scene=urban_scene),),
                ),
            ),
        )
        runner = BatchRunner(clients["gpt-4o-mini"])
        outcomes, stats = runner.run([bad])
        assert stats.failed == 1
        assert isinstance(outcomes[0].error, InvalidRequestError)
        assert outcomes[0].attempts == 1

    def test_rate_limited_batch_timing(self, clients, small_dataset):
        scenes = [image.scene for image in small_dataset.images[:4]]
        clock = VirtualClock()
        bucket = TokenBucket(rate=2.0, capacity=1.0, clock=clock)
        runner = BatchRunner(
            clients["gpt-4o-mini"], limiter=bucket, clock=clock
        )
        _, stats = runner.run(self._requests(None, scenes, n=4))
        # 4 requests at 2/s with burst 1 → ≥1.5 s of waiting.
        assert stats.rate_limit_waits == pytest.approx(1.5, abs=0.01)

    def test_progress_callback(self, clients, small_dataset):
        scenes = [image.scene for image in small_dataset.images[:3]]
        seen = []
        runner = BatchRunner(
            clients["gpt-4o-mini"],
            on_progress=lambda done, total: seen.append((done, total)),
        )
        runner.run(self._requests(None, scenes, n=3))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_validates_attempts(self, clients):
        with pytest.raises(ValueError):
            BatchRunner(clients["gpt-4o-mini"], max_attempts=0)


class TestBatchCoalescing:
    def _duplicated_requests(self, scenes, n):
        prompt = build_parallel_prompt()
        return [
            ChatRequest(
                model="gpt-4o-mini",
                messages=(
                    ChatMessage(
                        role="user",
                        text=prompt,
                        images=(ImageAttachment(scene=scenes[i % len(scenes)]),),
                    ),
                ),
            )
            for i in range(n)
        ]

    def test_duplicates_share_one_upstream_call(self, clients, small_dataset):
        scenes = [image.scene for image in small_dataset.images[:2]]
        requests = self._duplicated_requests(scenes, n=6)  # 2 unique
        client = clients["gpt-4o-mini"]
        before = client.stats.requests
        runner = BatchRunner(client, coalesce=True)
        outcomes, stats = runner.run(requests)
        assert client.stats.requests - before == 2
        assert stats.coalesced == 4
        assert stats.succeeded == 6
        assert [o.index for o in outcomes] == list(range(6))
        # A duplicate's outcome is a copy of its representative's.
        assert outcomes[2].response.content == outcomes[0].response.content

    def test_outcomes_match_uncoalesced_run(self, clients, small_dataset):
        scenes = [image.scene for image in small_dataset.images[:2]]
        requests = self._duplicated_requests(scenes, n=4)
        client = clients["gpt-4o-mini"]
        plain, plain_stats = BatchRunner(client).run(requests)
        merged, merged_stats = BatchRunner(client, coalesce=True).run(requests)
        assert plain_stats.coalesced == 0
        assert merged_stats.coalesced == 2
        for a, b in zip(plain, merged):
            assert a.index == b.index
            assert a.response.content == b.response.content

    def test_unique_requests_are_never_coalesced(self, clients, small_dataset):
        scenes = [image.scene for image in small_dataset.images[:4]]
        requests = self._duplicated_requests(scenes, n=4)  # all unique
        _, stats = BatchRunner(clients["gpt-4o-mini"], coalesce=True).run(
            requests
        )
        assert stats.coalesced == 0
        assert stats.succeeded == 4
