"""Tests for road-network generation and the sampling frame."""

import networkx as nx
import pytest

from repro.geo import (
    CARDINAL_HEADINGS,
    RoadClass,
    build_road_network,
    build_sampling_frame,
    expand_to_captures,
    frame_statistics,
    iter_edges,
    make_durham_like,
    make_robeson_like,
    multilane_fraction,
    select_survey_locations,
    total_length_m,
)


@pytest.fixture(scope="module")
def county():
    return make_robeson_like(seed=2)


@pytest.fixture(scope="module")
def graph(county):
    return build_road_network(county, seed=9)


class TestRoadNetwork:
    def test_connected(self, graph):
        assert nx.is_connected(graph)

    def test_has_edges_with_attributes(self, graph):
        for _, _, data in graph.edges(data=True):
            assert isinstance(data["road_class"], RoadClass)
            assert data["length_m"] > 0

    def test_deterministic(self, county):
        a = build_road_network(county, seed=4)
        b = build_road_network(county, seed=4)
        assert set(a.edges) == set(b.edges)

    def test_rejects_tiny_lattice(self, county):
        with pytest.raises(ValueError):
            build_road_network(county, lattice_rows=1, lattice_cols=5)

    def test_total_length_positive(self, graph):
        assert total_length_m(graph) > 100_000  # county-scale network

    def test_multilane_fraction_in_range(self, graph):
        assert 0.0 < multilane_fraction(graph) < 1.0

    def test_urban_county_has_more_multilane(self):
        rural = build_road_network(make_robeson_like(seed=2), seed=3)
        urban = build_road_network(make_durham_like(seed=2), seed=3)
        assert multilane_fraction(urban) > multilane_fraction(rural)

    def test_iter_edges_deterministic_order(self, graph):
        first = iter_edges(graph)
        second = iter_edges(graph)
        assert first == second


class TestSamplingFrame:
    def test_frame_covers_all_edges(self, county, graph):
        frame = build_sampling_frame(county, graph)
        # Every edge contributes at least one sample point.
        assert len(frame) >= graph.number_of_edges()

    def test_frame_statistics_fractions_sum(self, county, graph):
        frame = build_sampling_frame(county, graph)
        stats = frame_statistics(frame)
        zone_total = sum(
            value for key, value in stats.items() if key.startswith("zone_")
        )
        road_total = sum(
            value for key, value in stats.items() if key.startswith("road_")
        )
        assert zone_total == pytest.approx(1.0)
        assert road_total == pytest.approx(1.0)

    def test_empty_frame_statistics(self):
        assert frame_statistics([]) == {"n_points": 0}

    def test_select_is_deterministic(self, county, graph):
        frame = build_sampling_frame(county, graph)
        a = select_survey_locations({"X": frame}, 50, seed=1)
        b = select_survey_locations({"X": frame}, 50, seed=1)
        assert a == b

    def test_select_without_replacement(self, county, graph):
        frame = build_sampling_frame(county, graph)
        chosen = select_survey_locations({"X": frame}, 100, seed=1)
        assert len({p.location for p in chosen}) == len(chosen)

    def test_select_rejects_oversized_request(self, county, graph):
        frame = build_sampling_frame(county, graph)[:10]
        with pytest.raises(ValueError):
            select_survey_locations({"X": frame}, 11, seed=0)

    def test_expand_to_captures_four_headings(self, county, graph):
        frame = build_sampling_frame(county, graph)
        points = select_survey_locations({"X": frame}, 5, seed=0)
        captures = expand_to_captures(points)
        assert len(captures) == 20
        headings = {c.heading for c in captures}
        assert headings == set(CARDINAL_HEADINGS)
