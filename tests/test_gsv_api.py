"""Tests for the simulated Street View API."""

import numpy as np
import pytest

from repro.geo import LatLon, study_counties
from repro.gsv import (
    FEE_PER_IMAGE_USD,
    AuthenticationError,
    NoImageryError,
    QuotaExceededError,
    StreetViewClient,
    TransientNetworkError,
)
from repro.gsv.api import IMAGERY_STAGE, UsageMeter


@pytest.fixture(scope="module")
def counties():
    return study_counties(seed=1)


@pytest.fixture()
def client(counties):
    return StreetViewClient(counties=counties, api_key="k")


@pytest.fixture()
def in_county(counties):
    county = counties[0]
    return county.center


class TestAuthAndQuota:
    def test_empty_key_rejected(self, counties, in_county):
        client = StreetViewClient(counties=counties, api_key="")
        with pytest.raises(AuthenticationError):
            client.fetch(in_county, heading=0)

    def test_quota_enforced(self, counties, in_county):
        client = StreetViewClient(
            counties=counties, api_key="k", daily_quota=2
        )
        client.fetch(in_county, heading=0, render=False)
        client.fetch(in_county, heading=90, render=False)
        with pytest.raises(QuotaExceededError):
            client.fetch(in_county, heading=180, render=False)

    def test_metadata_does_not_consume_quota(self, counties, in_county):
        client = StreetViewClient(
            counties=counties, api_key="k", daily_quota=1
        )
        for _ in range(5):
            assert client.metadata(in_county)["status"] == "OK"
        client.fetch(in_county, heading=0, render=False)

    def test_fee_accounting(self, client, in_county):
        for heading in (0, 90, 270):
            client.fetch(in_county, heading=heading, render=False)
        usage = client.usage()
        assert usage.images_served == 3
        assert usage.fees_usd == pytest.approx(3 * FEE_PER_IMAGE_USD)


class TestImagery:
    def test_fetch_returns_scene_and_pixels(self, client, in_county):
        served = client.fetch(in_county, heading=0, size=256)
        assert served.pixels.shape == (256, 256, 3)
        assert served.scene.scene_id == served.pano_id

    def test_deferred_render(self, client, in_county):
        served = client.fetch(in_county, heading=0, size=256, render=False)
        assert served.pixels is None
        pixels = served.require_pixels()
        assert pixels.shape == (256, 256, 3)

    def test_same_request_same_scene(self, client, in_county):
        a = client.fetch(in_county, heading=0, render=False)
        b = client.fetch(in_county, heading=0, render=False)
        assert a.scene == b.scene

    def test_different_headings_different_panos(self, client, in_county):
        a = client.fetch(in_county, heading=0, render=False)
        b = client.fetch(in_county, heading=90, render=False)
        assert a.pano_id != b.pano_id

    def test_non_cardinal_heading_rejected(self, client, in_county):
        with pytest.raises(ValueError):
            client.fetch(in_county, heading=45)

    def test_heading_normalized(self, client, in_county):
        served = client.fetch(in_county, heading=360 + 90, render=False)
        assert served.heading == 90

    def test_no_imagery_outside_counties(self, client):
        with pytest.raises(NoImageryError):
            client.fetch(LatLon(0.0, 0.0), heading=0)

    def test_metadata_outside_counties(self, client):
        assert client.metadata(LatLon(0.0, 0.0))["status"] == "ZERO_RESULTS"


class TestFailureInjection:
    def test_transient_failures(self, counties, in_county):
        client = StreetViewClient(
            counties=counties, api_key="k", failure_rate=0.5, generator_seed=3
        )
        failures = 0
        successes = 0
        for heading in (0, 90, 180, 270) * 10:
            try:
                client.fetch(in_county, heading=heading, render=False)
                successes += 1
            except TransientNetworkError:
                failures += 1
        assert failures > 5
        assert successes > 5

    def test_failure_rate_validated(self, counties):
        with pytest.raises(ValueError):
            StreetViewClient(counties=counties, failure_rate=1.5)


class TestStageAttribution:
    def test_imagery_fills_the_imagery_bucket(self, client, in_county):
        for heading in (0, 90):
            client.fetch(in_county, heading=heading, render=False)
        stages = client.usage().stage_totals()
        assert stages == {
            IMAGERY_STAGE: {
                "requests": 2,
                "images": 2,
                "fees_usd": round(2 * FEE_PER_IMAGE_USD, 9),
                "prompt_tokens": 0,
                "completion_tokens": 0,
            }
        }

    def test_record_stage_books_tokens_without_touching_headline_fees(self):
        meter = UsageMeter()
        meter.record_stage(
            "tier1.scout",
            requests=3,
            fees_usd=0.25,
            prompt_tokens=100,
            completion_tokens=40,
        )
        meter.record_stage("tier1.scout", requests=1, fees_usd=0.05)
        # Stage fees are attribution, not billing: the imagery bill
        # (which golden fixtures pin) must be untouched.
        assert meter.fees_usd == 0.0
        assert meter.requests == 0
        bucket = meter.stage_totals()["tier1.scout"]
        assert bucket["requests"] == 4
        assert bucket["fees_usd"] == pytest.approx(0.30)
        assert bucket["prompt_tokens"] == 100
        assert bucket["completion_tokens"] == 40

    def test_stage_totals_sorted_by_label(self):
        meter = UsageMeter()
        meter.record_stage("tier2.ensemble", requests=1)
        meter.record_stage("tier0.detector", requests=1)
        assert list(meter.stage_totals()) == [
            "tier0.detector",
            "tier2.ensemble",
        ]
