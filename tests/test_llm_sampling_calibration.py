"""Tests for decision sampling and policy calibration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.llm import (
    ResponsePolicy,
    apply_temperature,
    derive_rates,
    effective_yes_probability,
    expected_yes_rate,
    fit_policy,
    fit_threshold,
    sample_yes,
)
from repro.llm.sampling import token_fidelity

PROB = st.floats(min_value=0.01, max_value=0.99, allow_nan=False)


class TestApplyTemperature:
    def test_identity_at_one(self):
        assert apply_temperature(0.3, 1.0) == pytest.approx(0.3)

    def test_low_temperature_sharpens(self):
        assert apply_temperature(0.7, 0.1) > 0.97
        assert apply_temperature(0.3, 0.1) < 0.03

    def test_high_temperature_flattens(self):
        assert abs(apply_temperature(0.9, 2.0) - 0.5) < abs(0.9 - 0.5)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            apply_temperature(0.5, -0.1)

    @given(p=PROB, t=st.floats(0.05, 2.0))
    @settings(max_examples=60)
    def test_preserves_direction(self, p, t):
        out = apply_temperature(p, t)
        if p > 0.5:
            assert out >= 0.5
        if p < 0.5:
            assert out <= 0.5


class TestTokenFidelity:
    def test_defaults_are_deterministic(self):
        # Calibration exactness depends on this: at T=1/top-p=0.95 a
        # confident answer never flips.
        assert token_fidelity(0.99, 1.0, 0.95) == 1.0
        assert token_fidelity(0.01, 1.0, 0.95) == 1.0

    def test_borderline_at_high_temperature_can_flip(self):
        assert token_fidelity(0.5, 1.5, 0.95) < 1.0

    def test_low_temperature_always_faithful(self):
        for p in (0.1, 0.5, 0.9):
            assert token_fidelity(p, 0.1, 0.95) == 1.0

    def test_low_top_p_truncates_to_deterministic(self):
        assert token_fidelity(0.5, 1.5, 0.5) == 1.0

    def test_rejects_bad_top_p(self):
        with pytest.raises(ValueError):
            token_fidelity(0.5, 1.0, 0.0)


class TestEffectiveAndSample:
    def test_effective_matches_p_at_defaults(self):
        for p in (0.1, 0.4, 0.7, 0.95):
            assert effective_yes_probability(p, 1.0, 0.95) == pytest.approx(p)

    @given(p=PROB)
    @settings(max_examples=40)
    def test_sample_mean_matches_effective(self, p):
        rng = np.random.default_rng(0)
        draws = [sample_yes(p, 1.5, 0.95, rng) for _ in range(3000)]
        expected = effective_yes_probability(p, 1.5, 0.95)
        assert np.mean(draws) == pytest.approx(expected, abs=0.05)


class TestDeriveRates:
    def test_perfect_precision_zero_fpr(self):
        tpr, fpr = derive_rates(1.0, 0.9, 0.3)
        assert tpr == 0.9
        assert fpr == 0.0

    def test_known_case(self):
        # precision 0.5, recall 1.0, prevalence 0.5 → FPR 1.0.
        _, fpr = derive_rates(0.5, 1.0, 0.5)
        assert fpr == pytest.approx(1.0)

    def test_lower_precision_higher_fpr(self):
        _, fpr_hi = derive_rates(0.9, 0.9, 0.3)
        _, fpr_lo = derive_rates(0.5, 0.9, 0.3)
        assert fpr_lo > fpr_hi

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            derive_rates(0.0, 0.9, 0.3)
        with pytest.raises(ValueError):
            derive_rates(0.9, 0.9, 0.0)


class TestResponsePolicy:
    def test_monotone_in_evidence(self):
        policy = ResponsePolicy(threshold=0.5, slope=0.1)
        values = [policy.p_yes(e) for e in np.linspace(0, 1, 11)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_threshold_is_midpoint(self):
        policy = ResponsePolicy(threshold=0.4, slope=0.1)
        assert policy.p_yes(0.4) == pytest.approx(0.5)

    def test_shifted(self):
        policy = ResponsePolicy(0.4, 0.1).shifted(0.2)
        assert policy.threshold == pytest.approx(0.6)

    def test_rejects_bad_slope(self):
        with pytest.raises(ValueError):
            ResponsePolicy(0.5, 0.0)


class TestFitting:
    @pytest.fixture()
    def samples(self):
        rng = np.random.default_rng(7)
        present = np.clip(rng.normal(0.75, 0.12, 400), 0.01, 0.99)
        absent = np.clip(rng.normal(0.25, 0.15, 800), 0.01, 0.99)
        return present, absent

    def test_fit_threshold_hits_rate(self, samples):
        present, _ = samples
        threshold = fit_threshold(present, slope=0.05, target_rate=0.8)
        policy = ResponsePolicy(threshold, 0.05)
        assert expected_yes_rate(present, policy) == pytest.approx(
            0.8, abs=0.01
        )

    def test_fit_policy_hits_both_targets(self, samples):
        present, absent = samples
        fit = fit_policy(present, absent, target_tpr=0.9, target_fpr=0.15)
        assert fit.achieved_tpr == pytest.approx(0.9, abs=0.02)
        assert fit.achieved_fpr == pytest.approx(0.15, abs=0.04)

    def test_fit_policy_extreme_targets_best_effort(self, samples):
        present, absent = samples
        fit = fit_policy(present, absent, target_tpr=0.99, target_fpr=0.001)
        # Distributions overlap: the exact pair is unreachable, but the
        # TPR (fit exactly by bisection) must hold.
        assert fit.achieved_tpr == pytest.approx(0.99, abs=0.02)

    def test_fit_policy_requires_samples(self):
        with pytest.raises(ValueError):
            fit_policy(np.zeros(0), np.ones(5) * 0.2, 0.9, 0.1)

    def test_fit_policy_validates_targets(self, samples):
        present, absent = samples
        with pytest.raises(ValueError):
            fit_policy(present, absent, target_tpr=0.0, target_fpr=0.1)

    @given(
        tpr=st.floats(0.3, 0.97),
        fpr=st.floats(0.02, 0.6),
    )
    @settings(max_examples=15, deadline=None)
    def test_fit_policy_tpr_always_matched(self, tpr, fpr):
        rng = np.random.default_rng(3)
        present = np.clip(rng.normal(0.7, 0.15, 300), 0.01, 0.99)
        absent = np.clip(rng.normal(0.3, 0.15, 300), 0.01, 0.99)
        fit = fit_policy(present, absent, tpr, fpr)
        assert fit.tpr_error < 0.03
