"""Parallel execution through the pipeline layers: survey fan-out
determinism, batch running, and ensemble member fan-out."""

from __future__ import annotations

import pytest

from repro.core import LLMIndicatorClassifier, NeighborhoodDecoder
from repro.core.voting import VotingEnsemble
from repro.geo import make_durham_like
from repro.gsv import StreetViewClient
from repro.llm import ImageAttachment
from repro.llm.base import ChatMessage, ChatRequest
from repro.llm.batch import BatchRunner, TokenBucket
from repro.parallel import ParallelExecutor
from repro.resilience import WallClock


@pytest.fixture(scope="module")
def county():
    return make_durham_like(seed=3)


def _decoder(county, clients, model="gemini-1.5-pro"):
    return NeighborhoodDecoder(
        street_view=StreetViewClient(counties=[county], api_key="x"),
        classifier=LLMIndicatorClassifier(clients[model]),
    )


class TestParallelSurvey:
    def test_parallel_report_byte_identical_to_serial(self, county, clients):
        serial = _decoder(county, clients).survey(
            county, n_locations=8, seed=0, workers=1
        )
        parallel = _decoder(county, clients).survey(
            county, n_locations=8, seed=0, workers=4
        )
        assert parallel.to_json() == serial.to_json()
        assert parallel.payload() == serial.payload()
        assert parallel.fees_usd == serial.fees_usd

    def test_workers_none_resolves_and_still_matches(self, county, clients):
        serial = _decoder(county, clients).survey(
            county, n_locations=4, seed=1, workers=1
        )
        auto = _decoder(county, clients).survey(
            county, n_locations=4, seed=1, workers=None
        )
        assert auto.to_json() == serial.to_json()

    def test_parallel_resume_from_checkpoint(self, county, clients, tmp_path):
        path = tmp_path / "survey.ckpt.json"
        first = _decoder(county, clients).survey(
            county, n_locations=6, seed=0, checkpoint=path, workers=4
        )
        assert first.fees_usd > 0

        resumed = _decoder(county, clients).survey(
            county, n_locations=6, seed=0, checkpoint=path, workers=4
        )
        # Every location restored: same results, nothing re-billed.
        assert resumed.payload()["locations"] == first.payload()["locations"]
        assert resumed.coverage == first.coverage
        assert resumed.images_classified == first.images_classified
        assert resumed.fees_usd == 0.0


class TestParallelBatchRunner:
    def _requests(self, small_dataset, n=12):
        return [
            ChatRequest(
                model="gpt-4o-mini",
                messages=(
                    ChatMessage(
                        role="user",
                        text="Is there a sidewalk visible in the image?",
                        images=(ImageAttachment(scene=image.scene),),
                    ),
                ),
            )
            for image in small_dataset.images[:n]
        ]

    def test_parallel_run_matches_serial(self, clients, small_dataset):
        requests = self._requests(small_dataset)
        serial, _ = BatchRunner(clients["gpt-4o-mini"]).run(requests)

        limiter = TokenBucket(rate=10_000.0, capacity=64.0, clock=WallClock())
        runner = BatchRunner(
            clients["gpt-4o-mini"], limiter=limiter, workers=4
        )
        parallel, stats = runner.run(requests)

        assert [outcome.index for outcome in parallel] == list(
            range(len(requests))
        )
        assert all(outcome.ok for outcome in parallel)
        assert [outcome.response.content for outcome in parallel] == [
            outcome.response.content for outcome in serial
        ]
        assert stats.succeeded == len(requests)

    def test_progress_reported_in_order(self, clients, small_dataset):
        seen: list[int] = []
        runner = BatchRunner(
            clients["gpt-4o-mini"],
            workers=4,
            on_progress=lambda done, total: seen.append(done),
        )
        runner.run(self._requests(small_dataset, n=8))
        assert seen == list(range(1, 9))


class TestParallelEnsemble:
    def test_executor_votes_match_serial(self, clients, small_dataset):
        members = {
            name: LLMIndicatorClassifier(clients[name])
            for name in ("gemini-1.5-pro", "claude-3.7", "gpt-4o-mini")
        }
        serial = VotingEnsemble(classifiers=dict(members))
        parallel = VotingEnsemble(
            classifiers=dict(members),
            executor=ParallelExecutor(workers=3),
        )
        for image in small_dataset.images[:6]:
            a = serial.vote_image(image)
            b = parallel.vote_image(image)
            assert b.presence == a.presence
            assert b.members_voted == a.members_voted
            assert b.members_failed == a.members_failed
