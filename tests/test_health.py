"""Tests for the health-outcome substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.indicators import ALL_INDICATORS, Indicator
from repro.geo import make_durham_like
from repro.health import (
    OUTCOMES,
    TRUE_COEFFICIENTS,
    ConvergenceError,
    HealthModel,
    build_tract_survey,
    fit_logistic,
    run_association_study,
)


class TestHealthModel:
    @pytest.fixture()
    def model(self):
        return HealthModel(seed=1)

    @pytest.fixture()
    def exposure(self):
        return {ind: 0.3 for ind in ALL_INDICATORS}

    def test_probability_in_unit_interval(self, model, exposure):
        for outcome in OUTCOMES:
            p = model.outcome_probability(outcome, exposure)
            assert 0.0 < p < 1.0

    def test_unknown_outcome_rejected(self, model, exposure):
        with pytest.raises(ValueError):
            model.outcome_probability("happiness", exposure)

    def test_powerlines_raise_obesity(self, model):
        low = {ind: 0.2 for ind in ALL_INDICATORS}
        high = {**low, Indicator.POWERLINE: 0.9}
        assert model.outcome_probability(
            "obesity", high
        ) > model.outcome_probability("obesity", low)

    def test_sidewalks_lower_inactivity(self, model):
        low = {ind: 0.2 for ind in ALL_INDICATORS}
        high = {**low, Indicator.SIDEWALK: 0.9}
        assert model.outcome_probability(
            "physical_inactivity", high
        ) < model.outcome_probability("physical_inactivity", low)

    def test_sample_tract_counts_bounded(self, model, exposure, rng):
        tract = model.sample_tract(
            "t0", "Durham", "urban", exposure, population=1000, rng=rng
        )
        for outcome in OUTCOMES:
            assert 0 <= tract.outcome_counts[outcome] <= 1000
            assert 0.0 <= tract.prevalence(outcome) <= 1.0

    def test_sample_tract_validates_inputs(self, model, exposure, rng):
        with pytest.raises(ValueError):
            model.sample_tract("t", "c", "z", exposure, population=0, rng=rng)
        with pytest.raises(ValueError):
            model.sample_tract(
                "t", "c", "z", {Indicator.SIDEWALK: 2.0}, 100, rng
            )


class TestLogisticRegression:
    def _simulate(self, beta, n=400, seed=0):
        rng = np.random.default_rng(seed)
        design = rng.uniform(0, 1, size=(n, len(beta) - 1))
        eta = beta[0] + design @ np.asarray(beta[1:])
        p = 1.0 / (1.0 + np.exp(-eta))
        trials = rng.integers(200, 800, size=n)
        successes = rng.binomial(trials, p)
        return design, successes, trials

    def test_recovers_known_coefficients(self):
        true_beta = [-1.0, 2.0, -1.5]
        design, successes, trials = self._simulate(true_beta)
        fit = fit_logistic(design, successes, trials, ["a", "b"])
        assert fit.converged
        assert fit.coefficient("(intercept)").estimate == pytest.approx(
            -1.0, abs=0.1
        )
        assert fit.coefficient("a").estimate == pytest.approx(2.0, abs=0.15)
        assert fit.coefficient("b").estimate == pytest.approx(-1.5, abs=0.15)

    def test_standard_errors_shrink_with_data(self):
        small = self._simulate([-1.0, 1.0], n=50, seed=1)
        large = self._simulate([-1.0, 1.0], n=2000, seed=1)
        se_small = fit_logistic(*small, ["a"]).coefficient("a").std_error
        se_large = fit_logistic(*large, ["a"]).coefficient("a").std_error
        assert se_large < se_small

    def test_odds_ratio(self):
        design, successes, trials = self._simulate([-1.0, 1.0])
        fit = fit_logistic(design, successes, trials, ["a"])
        coefficient = fit.coefficient("a")
        assert coefficient.odds_ratio == pytest.approx(
            np.exp(coefficient.estimate)
        )

    def test_confidence_interval_brackets_estimate(self):
        design, successes, trials = self._simulate([-1.0, 1.0])
        fit = fit_logistic(design, successes, trials, ["a"])
        coefficient = fit.coefficient("a")
        low, high = coefficient.confidence_interval()
        assert low < coefficient.estimate < high

    def test_significance_of_null_effect(self):
        design, successes, trials = self._simulate([-1.0, 0.0], n=300)
        fit = fit_logistic(design, successes, trials, ["a"])
        # A true-zero coefficient is usually not significant.
        assert abs(fit.coefficient("a").z_value) < 4.0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fit_logistic(np.ones((3, 1)), np.array([1, 2, 3]), np.zeros(3))
        with pytest.raises(ValueError):
            fit_logistic(
                np.ones((2, 1)), np.array([5, 1]), np.array([3, 3])
            )
        with pytest.raises(ValueError):
            fit_logistic(np.ones(3), np.ones(3), np.ones(3))

    @given(
        beta0=st.floats(-2, 0),
        beta1=st.floats(-2, 2),
    )
    @settings(max_examples=20, deadline=None)
    def test_loglik_increases_from_null(self, beta0, beta1):
        design, successes, trials = self._simulate([beta0, beta1], n=200)
        fit = fit_logistic(design, successes, trials, ["a"])
        null = fit_logistic(
            np.zeros((200, 0)), successes, trials, []
        )
        assert fit.log_likelihood >= null.log_likelihood - 1e-6


class TestAssociationStudy:
    @pytest.fixture(scope="class")
    def survey(self):
        return build_tract_survey(
            make_durham_like(seed=3),
            n_tracts=24,
            locations_per_tract=4,
            seed=2,
        )

    def test_survey_shape(self, survey):
        assert len(survey.tracts) == 24
        for tract in survey.tracts:
            images = survey.images_by_tract[tract.tract_id]
            assert len(images) == 16  # 4 locations × 4 headings
            for indicator in ALL_INDICATORS:
                assert 0.0 <= tract.exposure[indicator] <= 1.0

    def test_truth_study_recovers_signs(self, survey):
        study = run_association_study(
            survey, survey.true_exposures(), "truth"
        )
        assert study.sign_agreement(TRUE_COEFFICIENTS) > 0.7

    def test_all_outcomes_fitted(self, survey):
        study = run_association_study(
            survey, survey.true_exposures(), "truth"
        )
        assert set(study.fits) == set(OUTCOMES)
        for fit in study.fits.values():
            assert fit.converged

    def test_missing_exposures_rejected(self, survey):
        with pytest.raises(ValueError):
            run_association_study(survey, {}, "broken")

    def test_validates_construction_args(self):
        with pytest.raises(ValueError):
            build_tract_survey(make_durham_like(seed=3), n_tracts=0)
