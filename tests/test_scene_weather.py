"""Tests for weather/lighting corruptions."""

import numpy as np
import pytest

from repro.scene import render_scene
from repro.scene.weather import (
    CONDITIONS,
    SEVERITY_LEVELS,
    apply_condition,
    apply_dusk,
    apply_fog,
    apply_rain,
)


@pytest.fixture(scope="module")
def image():
    rng = np.random.default_rng(3)
    return (rng.uniform(0.1, 0.9, size=(96, 96, 3)) * 255).astype(np.uint8)


class TestCommonBehaviour:
    @pytest.mark.parametrize("name", sorted(CONDITIONS))
    def test_preserves_shape_and_dtype(self, image, name):
        out = apply_condition(image, name, 0.5)
        assert out.shape == image.shape
        assert out.dtype == image.dtype

    @pytest.mark.parametrize("name", sorted(CONDITIONS))
    def test_zero_severity_near_identity(self, image, name):
        out = apply_condition(image, name, 0.0)
        diff = np.abs(out.astype(float) - image.astype(float)).mean()
        assert diff < 3.0

    @pytest.mark.parametrize("name", sorted(CONDITIONS))
    def test_severity_monotone_distortion(self, image, name):
        mild = apply_condition(image, name, 0.25).astype(float)
        harsh = apply_condition(image, name, 1.0).astype(float)
        base = image.astype(float)
        assert np.abs(harsh - base).mean() > np.abs(mild - base).mean()

    def test_unknown_condition_rejected(self, image):
        with pytest.raises(ValueError):
            apply_condition(image, "blizzard")

    def test_severity_validated(self, image):
        with pytest.raises(ValueError):
            apply_fog(image, 1.5)

    def test_float_images_supported(self):
        image = np.full((32, 32, 3), 0.5)
        out = apply_fog(image, 0.5)
        assert out.dtype == image.dtype
        assert 0.0 <= out.min() and out.max() <= 1.0

    def test_severity_levels_constant(self):
        assert all(0.0 < s <= 1.0 for s in SEVERITY_LEVELS)


class TestPhysicalStructure:
    def test_fog_brightens_dark_scenes_toward_airlight(self):
        dark = np.full((64, 64, 3), 20, dtype=np.uint8)
        fogged = apply_fog(dark, 1.0)
        assert fogged.mean() > dark.mean()

    def test_fog_stronger_near_top(self, image):
        fogged = apply_fog(image, 1.0).astype(float)
        base = image.astype(float)
        top_change = np.abs(fogged[:10] - base[:10]).mean()
        bottom_change = np.abs(fogged[-10:] - base[-10:]).mean()
        assert top_change > bottom_change

    def test_rain_reduces_contrast(self, image):
        rained = apply_rain(image, 1.0)
        assert rained.astype(float).std() < image.astype(float).std()

    def test_rain_deterministic_in_seed(self, image):
        a = apply_rain(image, 0.7, seed=5)
        b = apply_rain(image, 0.7, seed=5)
        assert np.array_equal(a, b)
        c = apply_rain(image, 0.7, seed=6)
        assert not np.array_equal(a, c)

    def test_dusk_darkens(self, image):
        dusked = apply_dusk(image, 1.0)
        assert dusked.mean() < image.mean()

    def test_on_rendered_scene(self, urban_scene):
        pixels = render_scene(urban_scene, 128)
        for name in CONDITIONS:
            out = apply_condition(pixels, name, 0.5)
            assert out.shape == pixels.shape
