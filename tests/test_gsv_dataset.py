"""Tests for survey dataset assembly, splits, and augmented copies."""

import numpy as np
import pytest

from repro.core.indicators import ALL_INDICATORS, PAPER_OBJECT_COUNTS
from repro.gsv import (
    DatasetSplits,
    build_survey_dataset,
    cropped_image,
    rotated_image,
)


class TestBuildSurveyDataset:
    def test_size_and_multiple_of_four(self, small_dataset):
        assert len(small_dataset) == 120

    def test_rejects_non_multiple_of_four(self):
        with pytest.raises(ValueError):
            build_survey_dataset(n_images=10)

    def test_deterministic_in_seed(self):
        a = build_survey_dataset(n_images=40, size=256, seed=5)
        b = build_survey_dataset(n_images=40, size=256, seed=5)
        assert [i.scene for i in a] == [i.scene for i in b]

    def test_annotations_match_scene(self, small_dataset):
        for image in small_dataset:
            assert len(image.annotations) == len(image.scene.objects)
            for (indicator, box), obj in zip(
                image.annotations, image.scene.objects
            ):
                assert indicator == obj.indicator
                assert box == obj.box

    def test_every_indicator_present_somewhere(self, small_dataset):
        counts = small_dataset.presence_counts()
        for indicator in ALL_INDICATORS:
            assert counts[indicator] > 0, indicator

    def test_prevalence_calibrated_to_paper(self):
        dataset = build_survey_dataset(n_images=1200, size=256, seed=0)
        report = dataset.calibration_report()
        for indicator in ALL_INDICATORS:
            ratio = report[indicator.value]["ratio"]
            assert 0.6 <= ratio <= 1.5, (indicator, ratio)

    def test_presence_matrix_shape(self, small_dataset):
        matrix = small_dataset.presence_matrix()
        assert matrix.shape == (len(small_dataset), 6)
        assert matrix.dtype == bool


class TestSplits:
    def test_split_sizes(self, small_dataset):
        splits = small_dataset.split(seed=0)
        assert splits.total == len(small_dataset)
        assert len(splits.train) == pytest.approx(0.7 * 120, abs=4)
        assert len(splits.val) == pytest.approx(0.2 * 120, abs=4)
        assert len(splits.test) == pytest.approx(0.1 * 120, abs=4)

    def test_split_disjoint(self, small_dataset):
        splits = small_dataset.split(seed=0)
        ids = [
            img.image_id
            for part in (splits.train, splits.val, splits.test)
            for img in part
        ]
        assert len(ids) == len(set(ids))

    def test_split_stratified(self):
        dataset = build_survey_dataset(n_images=400, size=256, seed=1)
        splits = dataset.split(seed=2)
        train = np.array(
            [im.presence.as_vector() for im in splits.train]
        ).mean(axis=0)
        test = np.array(
            [im.presence.as_vector() for im in splits.test]
        ).mean(axis=0)
        assert np.abs(train - test).max() < 0.12

    def test_split_rejects_bad_fractions(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.split(train=0.5, val=0.2, test=0.1)

    def test_splits_reject_overlap(self, small_dataset):
        image = small_dataset[0]
        with pytest.raises(ValueError):
            DatasetSplits(train=[image], val=[image], test=[])


class TestAugmentedCopies:
    def test_rotated_image_renders_rotated(self, small_dataset):
        image = small_dataset[0]
        rotated = rotated_image(image, 90)
        base = image.render(128)
        out = rotated.render(128)
        assert np.array_equal(out, np.rot90(base, k=-1))

    def test_rotated_annotations_count_preserved(self, small_dataset):
        image = small_dataset[0]
        rotated = rotated_image(image, 180)
        assert len(rotated.annotations) == len(image.annotations)

    def test_rotated_occupancy_attached(self, small_dataset):
        image = small_dataset[0]
        rotated = rotated_image(image, 270)
        assert rotated.occupancy is not None
        assert len(rotated.occupancy) == len(image.annotations)

    def test_cropped_image_same_size(self, small_dataset):
        image = small_dataset[0]
        cropped = cropped_image(image, np.random.default_rng(0))
        assert cropped.render(128).shape == (128, 128, 3)

    def test_cropped_boxes_valid(self, small_dataset):
        for image in small_dataset.images[:20]:
            cropped = cropped_image(image, np.random.default_rng(3))
            for _, box in cropped.annotations:
                assert 0.0 <= box.x_min < box.x_max <= 1.0
                assert 0.0 <= box.y_min < box.y_max <= 1.0

    def test_unknown_render_op_rejected(self, small_dataset):
        from dataclasses import replace

        image = replace(small_dataset[0], render_ops=(("zoom", 2),))
        with pytest.raises(ValueError):
            image.render(128)
