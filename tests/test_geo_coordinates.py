"""Unit and property tests for repro.geo.coordinates."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geo import (
    CARDINAL_HEADINGS,
    SEGMENT_INTERVAL_M,
    LatLon,
    heading_name,
    normalize_heading,
    segment_points,
)

LAT = st.floats(min_value=-80, max_value=80, allow_nan=False)
LON = st.floats(min_value=-179, max_value=179, allow_nan=False)


class TestLatLon:
    def test_rejects_out_of_range_latitude(self):
        with pytest.raises(ValueError):
            LatLon(91.0, 0.0)
        with pytest.raises(ValueError):
            LatLon(-90.5, 0.0)

    def test_rejects_out_of_range_longitude(self):
        with pytest.raises(ValueError):
            LatLon(0.0, 181.0)

    def test_distance_to_self_is_zero(self):
        point = LatLon(35.0, -79.0)
        assert point.distance_m(point) == 0.0

    def test_distance_is_symmetric(self):
        a = LatLon(35.0, -79.0)
        b = LatLon(35.1, -78.9)
        assert a.distance_m(b) == pytest.approx(b.distance_m(a))

    def test_known_distance_one_degree_latitude(self):
        a = LatLon(35.0, -79.0)
        b = LatLon(36.0, -79.0)
        # One degree of latitude ≈ 111.2 km.
        assert a.distance_m(b) == pytest.approx(111_200, rel=0.01)

    def test_offset_north_increases_latitude(self):
        start = LatLon(35.0, -79.0)
        moved = start.offset(north_m=1000.0, east_m=0.0)
        assert moved.lat > start.lat
        assert moved.lon == pytest.approx(start.lon)

    def test_offset_round_trip_distance(self):
        start = LatLon(35.0, -79.0)
        moved = start.offset(north_m=300.0, east_m=400.0)
        assert start.distance_m(moved) == pytest.approx(500.0, rel=0.01)

    def test_bearing_north(self):
        a = LatLon(35.0, -79.0)
        assert a.bearing_to(LatLon(35.5, -79.0)) == pytest.approx(0.0, abs=0.1)

    def test_bearing_east(self):
        a = LatLon(35.0, -79.0)
        assert a.bearing_to(LatLon(35.0, -78.5)) == pytest.approx(
            90.0, abs=0.5
        )

    def test_toward_endpoints(self):
        a = LatLon(35.0, -79.0)
        b = LatLon(36.0, -78.0)
        assert a.toward(b, 0.0) == a
        assert a.toward(b, 1.0) == b

    def test_toward_rejects_bad_fraction(self):
        a = LatLon(35.0, -79.0)
        with pytest.raises(ValueError):
            a.toward(a, 1.5)

    @given(lat=LAT, lon=LON, north=st.floats(-5000, 5000), east=st.floats(-5000, 5000))
    def test_offset_distance_close_to_euclidean(self, lat, lon, north, east):
        start = LatLon(lat, lon)
        moved = start.offset(north, east)
        expected = math.hypot(north, east)
        if expected > 1.0:
            assert start.distance_m(moved) == pytest.approx(expected, rel=0.02)


class TestHeadings:
    def test_normalize_wraps_positive(self):
        assert normalize_heading(450.0) == 90.0

    def test_normalize_wraps_negative(self):
        assert normalize_heading(-90.0) == 270.0

    def test_cardinal_names(self):
        names = [heading_name(h) for h in CARDINAL_HEADINGS]
        assert names == ["north", "east", "south", "west"]

    def test_non_cardinal_rejected(self):
        with pytest.raises(ValueError):
            heading_name(45.0)

    @given(heading=st.floats(-1000, 1000, allow_nan=False))
    def test_normalize_range(self, heading):
        folded = normalize_heading(heading)
        assert 0.0 <= folded < 360.0


class TestSegmentPoints:
    def test_includes_start_not_end(self):
        a = LatLon(35.0, -79.0)
        b = a.offset(north_m=100.0, east_m=0.0)
        points = segment_points(a, b, interval_m=15.24)
        assert points[0] == a
        assert points[-1] != b

    def test_fifty_foot_interval_count(self):
        a = LatLon(35.0, -79.0)
        b = a.offset(north_m=152.4, east_m=0.0)  # 500 ft
        points = segment_points(a, b)
        assert len(points) == 10  # 500/50

    def test_zero_length_edge(self):
        a = LatLon(35.0, -79.0)
        assert segment_points(a, a) == [a]

    def test_rejects_nonpositive_interval(self):
        a = LatLon(35.0, -79.0)
        with pytest.raises(ValueError):
            segment_points(a, a, interval_m=0.0)

    def test_consecutive_spacing_matches_interval(self):
        a = LatLon(35.0, -79.0)
        b = a.offset(north_m=1000.0, east_m=500.0)
        points = segment_points(a, b)
        gaps = [
            points[i].distance_m(points[i + 1])
            for i in range(len(points) - 1)
        ]
        for gap in gaps:
            assert gap == pytest.approx(SEGMENT_INTERVAL_M, rel=0.05)
