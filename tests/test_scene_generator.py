"""Tests for procedural scene generation."""

import numpy as np
import pytest

from repro.core.indicators import ALL_INDICATORS, Indicator
from repro.geo import RoadClass, ZoneKind
from repro.scene import GeneratorConfig, RoadView, SceneGenerator


@pytest.fixture()
def gen():
    return SceneGenerator(seed=3)


class TestDeterminism:
    def test_same_id_same_scene(self, gen):
        a = gen.generate("abc", ZoneKind.URBAN)
        b = gen.generate("abc", ZoneKind.URBAN)
        assert a == b

    def test_different_ids_differ(self, gen):
        scenes = [
            gen.generate(f"s{i}", ZoneKind.URBAN) for i in range(20)
        ]
        signatures = {s.presence for s in scenes}
        assert len(signatures) > 1

    def test_generation_order_independent(self, gen):
        first = gen.generate("x1", ZoneKind.RURAL)
        gen.generate("noise", ZoneKind.URBAN)
        second = gen.generate("x1", ZoneKind.RURAL)
        assert first == second


class TestRoadView:
    def test_heading_along_road_shows_full_road(self, gen):
        scene = gen.generate(
            "r1",
            ZoneKind.SUBURBAN,
            road_class=RoadClass.ARTERIAL,
            heading=0,
            road_bearing=10.0,
        )
        assert scene.road_view is RoadView.ALONG
        assert scene.presence[Indicator.MULTILANE_ROAD]

    def test_reverse_heading_also_along(self, gen):
        scene = gen.generate(
            "r2",
            ZoneKind.SUBURBAN,
            road_class=RoadClass.LOCAL,
            heading=180,
            road_bearing=10.0,
        )
        assert scene.road_view is RoadView.ALONG
        assert scene.presence[Indicator.SINGLE_LANE_ROAD]

    def test_road_class_decides_lane_count(self, gen):
        for i in range(10):
            scene = gen.generate(
                f"lanes{i}",
                ZoneKind.URBAN,
                road_class=RoadClass.ARTERIAL,
                heading=0,
                road_bearing=0.0,
            )
            assert scene.presence[Indicator.MULTILANE_ROAD]
            assert not scene.presence[Indicator.SINGLE_LANE_ROAD]

    def test_perpendicular_heading_sometimes_no_road(self, gen):
        views = set()
        for i in range(40):
            scene = gen.generate(
                f"p{i}",
                ZoneKind.RURAL,
                road_class=RoadClass.LOCAL,
                heading=0,
                road_bearing=90.0,
            )
            views.add(scene.road_view)
        assert RoadView.NONE in views
        assert RoadView.ACROSS in views
        assert RoadView.ALONG not in views

    def test_across_road_is_partial(self, gen):
        for i in range(40):
            scene = gen.generate(
                f"q{i}",
                ZoneKind.SUBURBAN,
                road_class=RoadClass.ARTERIAL,
                heading=90,
                road_bearing=0.0,
            )
            if scene.road_view is RoadView.ACROSS:
                road = scene.objects_of(Indicator.MULTILANE_ROAD)[0]
                assert road.attributes.get("partial")
                return
        pytest.fail("no across view in 40 draws")


class TestComposition:
    def test_prevalence_tracks_zone_priors(self, gen):
        urban = [
            gen.generate(f"u{i}", ZoneKind.URBAN) for i in range(300)
        ]
        rural = [
            gen.generate(f"r{i}", ZoneKind.RURAL) for i in range(300)
        ]
        urban_sidewalks = np.mean(
            [s.presence[Indicator.SIDEWALK] for s in urban]
        )
        rural_sidewalks = np.mean(
            [s.presence[Indicator.SIDEWALK] for s in rural]
        )
        assert urban_sidewalks > rural_sidewalks + 0.2

    def test_boxes_valid_for_all_objects(self, gen):
        for i in range(100):
            scene = gen.generate(f"b{i}", ZoneKind.SUBURBAN)
            for obj in scene.objects:
                assert 0.0 <= obj.box.x_min < obj.box.x_max <= 1.0
                assert 0.0 <= obj.box.y_min < obj.box.y_max <= 1.0

    def test_prior_scale_zero_empties_scene(self):
        config = GeneratorConfig(
            prior_scale=0.0,
            bare_pole_probability=0.0,
            house_probability=0.0,
            across_road_probability=0.0,
        )
        gen = SceneGenerator(config=config, seed=1)
        scene = gen.generate(
            "empty", ZoneKind.URBAN, heading=90, road_bearing=0.0
        )
        assert not scene.presence.present

    def test_distractors_only_without_object(self, gen):
        # A bare-pole distractor never coexists with a powerline.
        for i in range(200):
            scene = gen.generate(f"d{i}", ZoneKind.RURAL)
            kinds = {d.kind for d in scene.distractors}
            if "bare_pole" in kinds:
                assert not scene.presence[Indicator.POWERLINE]

    def test_streetlight_attributes_complete(self, gen):
        for i in range(200):
            scene = gen.generate(f"sl{i}", ZoneKind.COMMERCIAL)
            for obj in scene.objects_of(Indicator.STREETLIGHT):
                for key in ("pole_x", "y_top", "y_base", "arm_x", "scale"):
                    assert key in obj.attributes

    def test_all_indicators_reachable(self, gen):
        seen = set()
        for i in range(400):
            zone = list(ZoneKind)[i % 4]
            scene = gen.generate(f"all{i}", zone, road_class=RoadClass.ARTERIAL if i % 2 else RoadClass.LOCAL, heading=0, road_bearing=(i % 4) * 45.0)
            seen |= scene.presence.present
        assert seen == set(ALL_INDICATORS)
