"""Road-network generation over a synthetic county.

The sampling frame in the paper is "all roadways" in the two study
counties.  We synthesize a road network per county as a planar graph:

* a sparse arterial grid of multilane roads through urban/commercial
  zones,
* a denser lattice of local single-lane roads,
* rural connector roads meandering between zone centers.

Each edge carries a ``RoadClass`` that the scene generator uses to
decide lane count, shoulder type, and roadside furniture.  The graph is
a ``networkx.Graph`` whose nodes are ``LatLon`` points, so standard
graph algorithms (connectivity checks, shortest paths for route-based
surveys) work out of the box.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import networkx as nx
import numpy as np

from .coordinates import LatLon
from .county import County, ZoneKind


class RoadClass(enum.Enum):
    """Functional classification of a road edge."""

    LOCAL = "local"  # single-lane residential / rural road
    COLLECTOR = "collector"  # mixed; usually single-lane per direction
    ARTERIAL = "arterial"  # multilane road

    @property
    def is_multilane(self) -> bool:
        return self is RoadClass.ARTERIAL


@dataclass(frozen=True)
class RoadEdge:
    """One edge of the road network with its classification."""

    start: LatLon
    end: LatLon
    road_class: RoadClass

    @property
    def length_m(self) -> float:
        return self.start.distance_m(self.end)

    @property
    def bearing(self) -> float:
        return self.start.bearing_to(self.end)


#: Probability that a lattice edge is kept, per zone kind.  Urban areas
#: have denser street grids than rural ones.
_KEEP_PROBABILITY = {
    ZoneKind.RURAL: 0.35,
    ZoneKind.SUBURBAN: 0.60,
    ZoneKind.URBAN: 0.85,
    ZoneKind.COMMERCIAL: 0.80,
}

#: Probability that a kept edge is an arterial, per zone kind.
_ARTERIAL_PROBABILITY = {
    ZoneKind.RURAL: 0.14,
    ZoneKind.SUBURBAN: 0.44,
    ZoneKind.URBAN: 0.74,
    ZoneKind.COMMERCIAL: 0.90,
}


def build_road_network(
    county: County,
    lattice_rows: int = 14,
    lattice_cols: int = 14,
    seed: int = 0,
) -> nx.Graph:
    """Generate the road network for ``county``.

    The network is built on a jittered lattice clipped to the county
    extent.  Edge retention and classification follow the land-use zone
    at the edge midpoint, then the largest connected component is kept
    so every road is reachable (GSV coverage follows drivable roads).

    Nodes are ``LatLon``; edges carry ``road_class`` (a ``RoadClass``)
    and ``length_m`` attributes.
    """
    if lattice_rows < 2 or lattice_cols < 2:
        raise ValueError("lattice must be at least 2x2")
    rng = np.random.default_rng(seed)
    lat_step = (county.north - county.south) / (lattice_rows - 1)
    lon_step = (county.east - county.west) / (lattice_cols - 1)

    # Jittered lattice nodes: regular spacing with a bounded random
    # displacement so roads are not perfectly rectilinear.
    nodes: dict[tuple[int, int], LatLon] = {}
    for i in range(lattice_rows):
        for j in range(lattice_cols):
            jlat = float(rng.uniform(-0.22, 0.22)) * lat_step
            jlon = float(rng.uniform(-0.22, 0.22)) * lon_step
            nodes[(i, j)] = LatLon(
                county.south + i * lat_step + jlat,
                county.west + j * lon_step + jlon,
            )

    graph = nx.Graph(county=county.name)
    for key, point in nodes.items():
        graph.add_node(point, grid=key)

    def consider(a: tuple[int, int], b: tuple[int, int]) -> None:
        pa, pb = nodes[a], nodes[b]
        midpoint = pa.toward(pb, 0.5)
        zone = county.zone_at(midpoint)
        if rng.random() > _KEEP_PROBABILITY[zone.kind]:
            return
        if rng.random() < _ARTERIAL_PROBABILITY[zone.kind]:
            road_class = RoadClass.ARTERIAL
        elif rng.random() < 0.5:
            road_class = RoadClass.COLLECTOR
        else:
            road_class = RoadClass.LOCAL
        graph.add_edge(
            pa,
            pb,
            road_class=road_class,
            length_m=pa.distance_m(pb),
        )

    for i in range(lattice_rows):
        for j in range(lattice_cols):
            if j + 1 < lattice_cols:
                consider((i, j), (i, j + 1))
            if i + 1 < lattice_rows:
                consider((i, j), (i + 1, j))

    # Keep the largest connected component; prune isolated stubs.
    if graph.number_of_edges() == 0:
        raise RuntimeError(
            f"road network generation for {county.name!r} produced no "
            "edges; increase lattice density or keep probabilities"
        )
    largest = max(nx.connected_components(graph), key=len)
    graph.remove_nodes_from(set(graph.nodes) - largest)
    return graph


def iter_edges(graph: nx.Graph) -> list[RoadEdge]:
    """Materialize the network's edges as ``RoadEdge`` records.

    Edge direction is normalized (lexicographically smaller endpoint
    first) so iteration order is deterministic across runs.
    """
    edges = []
    for u, v, data in graph.edges(data=True):
        start, end = sorted((u, v))
        edges.append(RoadEdge(start, end, data["road_class"]))
    edges.sort(key=lambda e: (e.start, e.end))
    return edges


def total_length_m(graph: nx.Graph) -> float:
    """Total drivable road length represented by the network."""
    return float(
        sum(data["length_m"] for _, _, data in graph.edges(data=True))
    )


def multilane_fraction(graph: nx.Graph) -> float:
    """Fraction of road length classified as multilane (diagnostic)."""
    total = total_length_m(graph)
    if total == 0:
        return 0.0
    arterial = sum(
        data["length_m"]
        for _, _, data in graph.edges(data=True)
        if data["road_class"].is_multilane
    )
    return float(arterial) / total
