"""Synthetic county models with zoned land use.

The paper draws its imagery from two North Carolina counties chosen to
cover both rural and urban settings: Robeson (predominantly rural) and
Durham (predominantly urban).  Land-use zoning is what drives the class
prevalence of the six environmental indicators — e.g. sidewalks,
streetlights and apartments concentrate in urban zones while powerlines
on wooden poles dominate rural road frontage.

This module defines a ``County`` as a rectangular extent subdivided
into ``Zone`` patches, each with a ``ZoneKind`` that parameterizes the
downstream scene generator.  The two study counties are provided as
constructors with zoning mixes calibrated so that the assembled dataset
approximates the paper's per-indicator object counts (Section IV-A).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from .coordinates import LatLon


class ZoneKind(enum.Enum):
    """Land-use category of a zone patch."""

    RURAL = "rural"
    SUBURBAN = "suburban"
    URBAN = "urban"
    COMMERCIAL = "commercial"


#: Indicator presence propensities per zone kind.  These are *scene
#: generation priors*, not dataset labels: the generator draws actual
#: object placements from them.  Tuned so the 1,200-image dataset lands
#: near the paper's counts (streetlight 206, sidewalk 444, single-lane
#: 346, multilane 505, powerline 301, apartment 125).
ZONE_PRIORS: dict[ZoneKind, dict[str, float]] = {
    ZoneKind.RURAL: {
        "streetlight": 0.025,
        "sidewalk": 0.05,
        "single_lane_road": 0.78,
        "multilane_road": 0.10,
        "powerline": 0.42,
        "apartment": 0.01,
    },
    ZoneKind.SUBURBAN: {
        "streetlight": 0.08,
        "sidewalk": 0.45,
        "single_lane_road": 0.40,
        "multilane_road": 0.45,
        "powerline": 0.28,
        "apartment": 0.06,
    },
    ZoneKind.URBAN: {
        "streetlight": 0.18,
        "sidewalk": 0.80,
        "single_lane_road": 0.15,
        "multilane_road": 0.75,
        "powerline": 0.12,
        "apartment": 0.22,
    },
    ZoneKind.COMMERCIAL: {
        "streetlight": 0.21,
        "sidewalk": 0.70,
        "single_lane_road": 0.08,
        "multilane_road": 0.85,
        "powerline": 0.10,
        "apartment": 0.10,
    },
}


@dataclass(frozen=True)
class Zone:
    """A rectangular land-use patch inside a county."""

    kind: ZoneKind
    south: float
    west: float
    north: float
    east: float

    def __post_init__(self) -> None:
        if self.north <= self.south:
            raise ValueError("zone north edge must exceed south edge")
        if self.east <= self.west:
            raise ValueError("zone east edge must exceed west edge")

    def contains(self, point: LatLon) -> bool:
        return (
            self.south <= point.lat < self.north
            and self.west <= point.lon < self.east
        )

    @property
    def center(self) -> LatLon:
        return LatLon(
            (self.south + self.north) / 2.0, (self.west + self.east) / 2.0
        )


@dataclass
class County:
    """A named rectangular county subdivided into land-use zones."""

    name: str
    south: float
    west: float
    north: float
    east: float
    zones: list[Zone] = field(default_factory=list)

    def zone_at(self, point: LatLon) -> Zone:
        """Return the zone containing ``point``.

        Falls back to the nearest zone center when the point sits on a
        seam or marginally outside (road networks can wander a hair
        past the bounding box during generation).
        """
        if not self.zones:
            raise ValueError(f"county {self.name!r} has no zones")
        for zone in self.zones:
            if zone.contains(point):
                return zone
        return min(
            self.zones, key=lambda z: point.distance_m(z.center)
        )

    @property
    def center(self) -> LatLon:
        return LatLon(
            (self.south + self.north) / 2.0, (self.west + self.east) / 2.0
        )

    def zone_mix(self) -> dict[ZoneKind, float]:
        """Fraction of zone patches by kind (diagnostic)."""
        if not self.zones:
            return {}
        counts: dict[ZoneKind, int] = {}
        for zone in self.zones:
            counts[zone.kind] = counts.get(zone.kind, 0) + 1
        total = len(self.zones)
        return {kind: count / total for kind, count in counts.items()}


def _grid_zones(
    south: float,
    west: float,
    north: float,
    east: float,
    rows: int,
    cols: int,
    kind_weights: dict[ZoneKind, float],
    rng: np.random.Generator,
) -> list[Zone]:
    """Tile the county extent into a rows×cols grid of random zones."""
    kinds = list(kind_weights)
    weights = np.asarray([kind_weights[k] for k in kinds], dtype=float)
    weights = weights / weights.sum()
    lat_edges = np.linspace(south, north, rows + 1)
    lon_edges = np.linspace(west, east, cols + 1)
    zones = []
    for i in range(rows):
        for j in range(cols):
            kind = kinds[int(rng.choice(len(kinds), p=weights))]
            zones.append(
                Zone(
                    kind=kind,
                    south=float(lat_edges[i]),
                    west=float(lon_edges[j]),
                    north=float(lat_edges[i + 1]),
                    east=float(lon_edges[j + 1]),
                )
            )
    return zones


def make_robeson_like(seed: int = 7) -> County:
    """A predominantly rural county modeled on Robeson County, NC."""
    rng = np.random.default_rng(seed)
    south, west, north, east = 34.30, -79.45, 34.75, -78.85
    zones = _grid_zones(
        south,
        west,
        north,
        east,
        rows=6,
        cols=8,
        kind_weights={
            ZoneKind.RURAL: 0.68,
            ZoneKind.SUBURBAN: 0.22,
            ZoneKind.URBAN: 0.06,
            ZoneKind.COMMERCIAL: 0.04,
        },
        rng=rng,
    )
    return County("Robeson", south, west, north, east, zones)


def make_durham_like(seed: int = 11) -> County:
    """A predominantly urban county modeled on Durham County, NC."""
    rng = np.random.default_rng(seed)
    south, west, north, east = 35.85, -79.00, 36.25, -78.70
    zones = _grid_zones(
        south,
        west,
        north,
        east,
        rows=6,
        cols=6,
        kind_weights={
            ZoneKind.RURAL: 0.14,
            ZoneKind.SUBURBAN: 0.34,
            ZoneKind.URBAN: 0.36,
            ZoneKind.COMMERCIAL: 0.16,
        },
        rng=rng,
    )
    return County("Durham", south, west, north, east, zones)


def study_counties(seed: int = 7) -> list[County]:
    """The paper's two-county study area (rural + urban coverage)."""
    return [make_robeson_like(seed), make_durham_like(seed + 4)]
