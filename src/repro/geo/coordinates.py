"""Geographic coordinate primitives for the sampling frame.

The paper samples Google Street View locations by segmenting every
roadway in two North Carolina counties at 50-foot intervals and
requesting imagery for the four cardinal headings at each point.  This
module provides the small amount of geodesy needed to do that on a
synthetic county: a ``LatLon`` value type, distance/bearing math on a
local flat-earth approximation (counties are ~30 miles across, so the
approximation error is far below the 50-foot segment length), and the
cardinal heading set used throughout the reproduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Mean earth radius in meters (IUGG value).
EARTH_RADIUS_M = 6_371_008.8

#: One US survey foot in meters.
FOOT_M = 0.3048

#: Sampling interval used by the paper: 50 feet, expressed in meters.
SEGMENT_INTERVAL_M = 50 * FOOT_M

#: The four cardinal headings requested per location (degrees clockwise
#: from north), matching the paper's ``0 = north, 90 = east, 180 =
#: south, 270 = west`` convention.
CARDINAL_HEADINGS = (0, 90, 180, 270)


def normalize_heading(heading_deg: float) -> float:
    """Fold an arbitrary heading into the ``[0, 360)`` range."""
    folded = math.fmod(heading_deg, 360.0)
    if folded < 0:
        folded += 360.0
    if folded >= 360.0:  # tiny negative inputs round up to exactly 360
        folded = 0.0
    return folded


def heading_name(heading_deg: float) -> str:
    """Return the compass name for a cardinal heading.

    Raises ``ValueError`` for non-cardinal headings, since the GSV
    sampling frame only uses the four cardinal directions.
    """
    names = {0: "north", 90: "east", 180: "south", 270: "west"}
    folded = normalize_heading(heading_deg)
    if folded not in names:
        raise ValueError(f"not a cardinal heading: {heading_deg!r}")
    return names[int(folded)]


@dataclass(frozen=True, order=True)
class LatLon:
    """A WGS-84 style latitude/longitude pair in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")

    def offset(self, north_m: float, east_m: float) -> "LatLon":
        """Return the point displaced by the given local offsets.

        Uses the equirectangular (flat-earth) approximation around
        ``self``; accurate to millimeters at county scale.
        """
        dlat = math.degrees(north_m / EARTH_RADIUS_M)
        dlon = math.degrees(
            east_m / (EARTH_RADIUS_M * math.cos(math.radians(self.lat)))
        )
        return LatLon(self.lat + dlat, self.lon + dlon)

    def distance_m(self, other: "LatLon") -> float:
        """Great-circle distance to ``other`` in meters (haversine)."""
        phi1 = math.radians(self.lat)
        phi2 = math.radians(other.lat)
        dphi = phi2 - phi1
        dlmb = math.radians(other.lon - self.lon)
        a = (
            math.sin(dphi / 2) ** 2
            + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2) ** 2
        )
        return 2 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))

    def bearing_to(self, other: "LatLon") -> float:
        """Initial bearing from ``self`` to ``other`` in degrees."""
        phi1 = math.radians(self.lat)
        phi2 = math.radians(other.lat)
        dlmb = math.radians(other.lon - self.lon)
        y = math.sin(dlmb) * math.cos(phi2)
        x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(
            phi2
        ) * math.cos(dlmb)
        return normalize_heading(math.degrees(math.atan2(y, x)))

    def toward(self, other: "LatLon", fraction: float) -> "LatLon":
        """Linearly interpolate toward ``other`` (fraction in [0, 1])."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction out of range: {fraction}")
        return LatLon(
            self.lat + (other.lat - self.lat) * fraction,
            self.lon + (other.lon - self.lon) * fraction,
        )


def segment_points(
    start: LatLon, end: LatLon, interval_m: float = SEGMENT_INTERVAL_M
) -> list[LatLon]:
    """Segment the ``start``→``end`` road edge at a fixed interval.

    Returns the ordered sample points, always including ``start`` and
    never duplicating ``end`` (the next edge will contribute it).  This
    is the paper's "segment all roadways with an interval of 50 feet"
    operation.
    """
    if interval_m <= 0:
        raise ValueError(f"interval must be positive: {interval_m}")
    length = start.distance_m(end)
    if length == 0.0:
        return [start]
    count = max(1, int(length // interval_m))
    return [start.toward(end, i * interval_m / length) for i in range(count)]
