"""Roadway segmentation and street-view sampling frame.

Reproduces the paper's data-collection protocol (Section IV-A):

    "We randomly selected 1,200 images from the locations where we
    segment all roadways with an interval of 50 feet across two
    counties ... We obtained the coordinates for each location and
    request images ... from all four directions."

``build_sampling_frame`` enumerates every 50-foot sample point on a
county's road network; ``select_survey_locations`` draws the random
subset of locations; each selected location expands into four
``CaptureRequest`` records (one per cardinal heading).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from .coordinates import (
    CARDINAL_HEADINGS,
    SEGMENT_INTERVAL_M,
    LatLon,
    segment_points,
)
from .county import County, ZoneKind
from .roadnet import RoadClass, build_road_network, iter_edges


@dataclass(frozen=True)
class SamplePoint:
    """One 50-foot roadway sample point and its local context."""

    location: LatLon
    county: str
    zone_kind: ZoneKind
    road_class: RoadClass
    road_bearing: float


@dataclass(frozen=True)
class CaptureRequest:
    """A single street-view image request (location + heading)."""

    point: SamplePoint
    heading: int

    @property
    def location(self) -> LatLon:
        return self.point.location


def build_sampling_frame(
    county: County,
    graph: nx.Graph,
    interval_m: float = SEGMENT_INTERVAL_M,
) -> list[SamplePoint]:
    """Segment every road edge of ``graph`` at ``interval_m``.

    Returns the full deterministic sampling frame for the county.
    """
    frame = []
    for edge in iter_edges(graph):
        for location in segment_points(edge.start, edge.end, interval_m):
            zone = county.zone_at(location)
            frame.append(
                SamplePoint(
                    location=location,
                    county=county.name,
                    zone_kind=zone.kind,
                    road_class=edge.road_class,
                    road_bearing=edge.bearing,
                )
            )
    return frame


def select_survey_locations(
    frames: dict[str, list[SamplePoint]],
    n_locations: int,
    seed: int = 0,
) -> list[SamplePoint]:
    """Randomly select survey locations across counties.

    Locations are drawn without replacement, proportionally to each
    county's share of the combined sampling frame, mirroring a uniform
    draw over the pooled frame.  Raises ``ValueError`` if the pooled
    frame is smaller than ``n_locations``.
    """
    pooled: list[SamplePoint] = []
    for county_name in sorted(frames):
        pooled.extend(frames[county_name])
    if n_locations > len(pooled):
        raise ValueError(
            f"requested {n_locations} locations but the sampling frame "
            f"only has {len(pooled)} points"
        )
    rng = np.random.default_rng(seed)
    indices = rng.choice(len(pooled), size=n_locations, replace=False)
    return [pooled[int(i)] for i in sorted(indices)]


def plan_survey_points(
    counties: list[County],
    n_locations: int,
    seed: int = 0,
) -> list[SamplePoint]:
    """Plan a deterministic survey frame across one or many counties.

    This is the single sampling entry point shared by the batch
    pipeline and the shard coordinator: each county's road network is
    built from ``seed + 17`` and the pooled draw uses ``seed + 23``,
    exactly matching the historical single-county path — so a
    one-county plan is byte-identical to what ``decoder.survey``
    samples, and a multi-county plan is the natural generalization
    (pooled proportional draw over the combined frame).

    Returns an empty list when every county yields an empty frame;
    raises ``ValueError`` (from :func:`select_survey_locations`) when
    the pooled frame is smaller than ``n_locations``.
    """
    frames: dict[str, list[SamplePoint]] = {}
    for county in counties:
        graph = build_road_network(county, seed=seed + 17)
        frames[county.name] = build_sampling_frame(county, graph)
    if not any(frames.values()):
        return []
    return select_survey_locations(frames, n_locations, seed=seed + 23)


def expand_to_captures(
    points: list[SamplePoint],
    headings: tuple[int, ...] = CARDINAL_HEADINGS,
) -> list[CaptureRequest]:
    """Expand survey locations into per-heading capture requests."""
    return [
        CaptureRequest(point=point, heading=heading)
        for point in points
        for heading in headings
    ]


def frame_statistics(frame: list[SamplePoint]) -> dict[str, float]:
    """Descriptive statistics of a sampling frame (diagnostics)."""
    if not frame:
        return {"n_points": 0}
    zone_counts: dict[str, int] = {}
    road_counts: dict[str, int] = {}
    for point in frame:
        zone_counts[point.zone_kind.value] = (
            zone_counts.get(point.zone_kind.value, 0) + 1
        )
        road_counts[point.road_class.value] = (
            road_counts.get(point.road_class.value, 0) + 1
        )
    stats: dict[str, float] = {"n_points": float(len(frame))}
    for name, count in sorted(zone_counts.items()):
        stats[f"zone_{name}"] = count / len(frame)
    for name, count in sorted(road_counts.items()):
        stats[f"road_{name}"] = count / len(frame)
    return stats
