"""Route-based surveys: sample imagery along a driving route.

Besides area-wide random sampling, practitioners often audit a
specific corridor — a school walking route, a bus line, a proposed
sidewalk extension.  This module plans shortest-distance routes on the
road network and produces the same 50-foot capture sequence the
area-wide sampler uses, so the whole decoding pipeline applies
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from .coordinates import SEGMENT_INTERVAL_M, LatLon, segment_points
from .county import County
from .roadnet import RoadClass
from .sampling import CaptureRequest, SamplePoint


class NoRouteError(ValueError):
    """The endpoints are not connected on the road network."""


@dataclass(frozen=True)
class Route:
    """A planned route: ordered nodes and total length."""

    nodes: tuple[LatLon, ...]
    length_m: float

    @property
    def start(self) -> LatLon:
        return self.nodes[0]

    @property
    def end(self) -> LatLon:
        return self.nodes[-1]


def nearest_node(graph: nx.Graph, point: LatLon) -> LatLon:
    """The road-network node closest to an arbitrary point."""
    if graph.number_of_nodes() == 0:
        raise ValueError("empty road network")
    return min(graph.nodes, key=lambda node: point.distance_m(node))


def plan_route(graph: nx.Graph, start: LatLon, end: LatLon) -> Route:
    """Shortest route (by road distance) between two points.

    Endpoints snap to their nearest network nodes first.
    """
    source = nearest_node(graph, start)
    target = nearest_node(graph, end)
    try:
        nodes = nx.shortest_path(
            graph, source, target, weight="length_m"
        )
    except nx.NetworkXNoPath as err:
        raise NoRouteError(
            f"no route between ({start.lat:.4f}, {start.lon:.4f}) and "
            f"({end.lat:.4f}, {end.lon:.4f})"
        ) from err
    length = sum(
        graph.edges[a, b]["length_m"] for a, b in zip(nodes, nodes[1:])
    )
    return Route(nodes=tuple(nodes), length_m=float(length))


def route_sample_points(
    county: County,
    graph: nx.Graph,
    route: Route,
    interval_m: float = SEGMENT_INTERVAL_M,
) -> list[SamplePoint]:
    """50-foot sample points along a route, in travel order."""
    points = []
    for a, b in zip(route.nodes, route.nodes[1:]):
        road_class: RoadClass = graph.edges[a, b]["road_class"]
        bearing = a.bearing_to(b)
        for location in segment_points(a, b, interval_m):
            zone = county.zone_at(location)
            points.append(
                SamplePoint(
                    location=location,
                    county=county.name,
                    zone_kind=zone.kind,
                    road_class=road_class,
                    road_bearing=bearing,
                )
            )
    return points


def route_captures(
    county: County,
    graph: nx.Graph,
    route: Route,
    headings: tuple[int, ...] = (0, 90, 180, 270),
    interval_m: float = SEGMENT_INTERVAL_M,
) -> list[CaptureRequest]:
    """Capture requests for every sample point along the route."""
    return [
        CaptureRequest(point=point, heading=heading)
        for point in route_sample_points(county, graph, route, interval_m)
        for heading in headings
    ]
