"""Survey report exports: CSV, GeoJSON, and Markdown.

Downstream consumers of a neighborhood survey live in different
tools — spreadsheets (CSV), GIS software (GeoJSON point features),
and documents (Markdown).  This module renders a
:class:`~repro.core.pipeline.SurveyReport` into each, with no
third-party dependencies.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from .core.indicators import ALL_INDICATORS
from .core.pipeline import SurveyReport


def survey_to_csv(report: SurveyReport) -> str:
    """One row per location; one 0/1 column per indicator."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        ["latitude", "longitude", "county", "zone"]
        + [indicator.value for indicator in ALL_INDICATORS]
    )
    for location in report.locations:
        writer.writerow(
            [
                f"{location.latitude:.6f}",
                f"{location.longitude:.6f}",
                location.county,
                location.zone_kind,
            ]
            + [
                int(location.presence[indicator])
                for indicator in ALL_INDICATORS
            ]
        )
    return buffer.getvalue()


def survey_to_geojson(report: SurveyReport) -> dict:
    """A GeoJSON ``FeatureCollection`` of surveyed locations."""
    features = []
    for location in report.locations:
        features.append(
            {
                "type": "Feature",
                "geometry": {
                    "type": "Point",
                    # GeoJSON is (longitude, latitude).
                    "coordinates": [location.longitude, location.latitude],
                },
                "properties": {
                    "county": location.county,
                    "zone": location.zone_kind,
                    **{
                        indicator.value: bool(location.presence[indicator])
                        for indicator in ALL_INDICATORS
                    },
                },
            }
        )
    return {"type": "FeatureCollection", "features": features}


def survey_to_markdown(report: SurveyReport, title: str = "Neighborhood survey") -> str:
    """A human-readable summary document."""
    lines = [f"# {title}", ""]
    lines.append(
        f"Locations surveyed: **{len(report.locations)}** "
        f"({report.images_classified} images, "
        f"${report.fees_usd:.2f} imagery fees)"
    )
    lines.append("")
    lines.append("## Indicator rates")
    lines.append("")
    lines.append("| indicator | rate |")
    lines.append("|---|---|")
    for indicator, rate in report.indicator_rates().items():
        lines.append(f"| {indicator.display_name} | {rate:.2f} |")
    by_zone = report.rates_by_zone()
    if by_zone:
        lines.append("")
        lines.append("## By land-use zone")
        lines.append("")
        header = "| zone | " + " | ".join(
            indicator.abbreviation for indicator in ALL_INDICATORS
        ) + " |"
        lines.append(header)
        lines.append("|" + "---|" * (len(ALL_INDICATORS) + 1))
        for zone, rates in by_zone.items():
            lines.append(
                f"| {zone} | "
                + " | ".join(
                    f"{rates[indicator]:.2f}"
                    for indicator in ALL_INDICATORS
                )
                + " |"
            )
    lines.append("")
    return "\n".join(lines)


def survey_to_ascii_map(
    report: SurveyReport,
    indicator,
    columns: int = 40,
    rows: int = 16,
) -> str:
    """A terminal choropleth: where an indicator was decoded.

    Bins surveyed locations onto a ``rows×columns`` grid over their
    bounding box; each cell shows the indicator's presence rate as a
    density glyph (`` .:-=+*#%@`` from 0 to 1), or a space when no
    location fell in the cell.
    """
    if columns < 4 or rows < 2:
        raise ValueError("map needs at least 4x2 cells")
    if not report.locations:
        return "(no surveyed locations)"
    lats = [loc.latitude for loc in report.locations]
    lons = [loc.longitude for loc in report.locations]
    lat_min, lat_max = min(lats), max(lats)
    lon_min, lon_max = min(lons), max(lons)
    lat_span = (lat_max - lat_min) or 1e-9
    lon_span = (lon_max - lon_min) or 1e-9

    hits = [[0] * columns for _ in range(rows)]
    totals = [[0] * columns for _ in range(rows)]
    for location in report.locations:
        # Latitude grows northward; row 0 renders at the top (north).
        row = min(
            rows - 1,
            int((lat_max - location.latitude) / lat_span * rows),
        )
        col = min(
            columns - 1,
            int((location.longitude - lon_min) / lon_span * columns),
        )
        totals[row][col] += 1
        if location.presence[indicator]:
            hits[row][col] += 1

    glyphs = " .:-=+*#%@"
    lines = [f"{indicator.display_name} presence (north at top)"]
    for row in range(rows):
        cells = []
        for col in range(columns):
            if totals[row][col] == 0:
                cells.append(" ")
            else:
                rate = hits[row][col] / totals[row][col]
                cells.append(glyphs[min(9, int(rate * 9.999))])
        lines.append("".join(cells))
    lines.append(f"legend: '{glyphs}' = 0% → 100%; blank = not surveyed")
    return "\n".join(lines)


def export_survey(
    report: SurveyReport,
    directory: str | Path,
    basename: str = "survey",
) -> dict[str, Path]:
    """Write all three formats; returns the paths by format name."""
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = {
        "csv": out_dir / f"{basename}.csv",
        "geojson": out_dir / f"{basename}.geojson",
        "markdown": out_dir / f"{basename}.md",
    }
    paths["csv"].write_text(survey_to_csv(report))
    paths["geojson"].write_text(json.dumps(survey_to_geojson(report), indent=2))
    paths["markdown"].write_text(survey_to_markdown(report))
    return paths
