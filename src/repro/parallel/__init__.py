"""Parallel execution engine for the survey hot paths.

One abstraction — :class:`~repro.parallel.executor.ParallelExecutor` —
shared by :meth:`repro.core.pipeline.NeighborhoodDecoder.survey`
(per-location fan-out), :class:`repro.llm.batch.BatchRunner`
(per-request fan-out under a shared rate limiter), and
:class:`repro.core.voting.VotingEnsemble` (per-member fan-out).  The
resilience primitives it shares across workers (``TokenBucket``,
``CircuitBreaker``, ``RetryStats``, usage meters) are thread-safe; see
DESIGN.md §8 for the execution model and determinism guarantees.
"""

from .executor import (
    ParallelExecutor,
    TaskCancelledError,
    TaskOutcome,
    resolve_workers,
)

__all__ = [
    "ParallelExecutor",
    "TaskCancelledError",
    "TaskOutcome",
    "resolve_workers",
]
