"""Parallel execution engine for the survey and detector hot paths.

One abstraction — :class:`~repro.parallel.executor.ParallelExecutor` —
shared by :meth:`repro.core.pipeline.NeighborhoodDecoder.survey`
(per-location fan-out), :class:`repro.llm.batch.BatchRunner`
(per-request fan-out under a shared rate limiter),
:class:`repro.core.voting.VotingEnsemble` (per-member fan-out), and
the CPU-bound detector pipeline (chunked feature extraction, batched
inference, concurrent experiments) via the ``process`` backend.  The
resilience primitives it shares across thread workers (``TokenBucket``,
``CircuitBreaker``, ``RetryStats``, usage meters) are thread-safe; see
DESIGN.md §8 for the thread execution model and §9 for the process
backend and its pickling constraints.
"""

from .aio import AIMDController, MicroBatcher, ThreadBridge, imap_async
from .arena import TensorArena
from .executor import (
    ParallelExecutor,
    TaskCancelledError,
    TaskEnvelope,
    TaskOutcome,
    effective_cpu_count,
    resolve_workers,
)
from .shm import (
    DEFAULT_MIN_SHARE_BYTES,
    SharedArrayArena,
    SharedArrayHandle,
    ShmTransport,
    shared_memory_support,
    sweep_result_intents,
)

__all__ = [
    "AIMDController",
    "DEFAULT_MIN_SHARE_BYTES",
    "MicroBatcher",
    "ParallelExecutor",
    "ThreadBridge",
    "SharedArrayArena",
    "SharedArrayHandle",
    "ShmTransport",
    "TaskCancelledError",
    "TaskEnvelope",
    "TaskOutcome",
    "TensorArena",
    "effective_cpu_count",
    "imap_async",
    "resolve_workers",
    "shared_memory_support",
    "sweep_result_intents",
]
