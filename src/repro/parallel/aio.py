"""Asyncio building blocks for the pipelined survey engine.

The survey hot path is latency-dominated: every location pays a GSV
fetch round-trip plus several LLM round-trips, and the thread backend
only overlaps them at whole-location granularity.  This module holds
the generic pieces the async engine
(:meth:`repro.core.pipeline.NeighborhoodDecoder.survey_async`) is
built from — deliberately free of any ``repro.core`` import, mirroring
:mod:`repro.parallel.executor`:

* :func:`imap_async` — the event-loop twin of
  :meth:`~repro.parallel.executor.ParallelExecutor.imap`: ordered
  results, bounded in-flight window, errors captured into
  :class:`~repro.parallel.executor.TaskOutcome`.
* :class:`ThreadBridge` — a *capped* thread pool exposed as an
  awaitable, so synchronous clients (street-view, chat) run off-loop
  without changing their APIs.  ``asyncio.to_thread`` would share the
  loop's default executor, whose size floats with the host's CPU
  count; a bridge sized to the pipeline's own concurrency keeps the
  thread budget explicit.
* :class:`AIMDController` — additive-increase/multiplicative-decrease
  window control for the in-flight LLM stage, fed by observed
  throttle signals (rate-limited retries, token-bucket waits).
* :class:`MicroBatcher` — groups compatible pending classify calls per
  client into one batched dispatch window
  (:meth:`~repro.llm.base.ChatClient.complete_batch`), dovetailing
  with the cache's single-flight coalescing.

See DESIGN.md §15 for the stage layout and the ordering discipline
that keeps async reports byte-identical to serial ones.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from collections import deque
from collections.abc import AsyncIterator, Awaitable, Callable, Iterable
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from ..obs.metrics import get_metrics
from .executor import TaskOutcome

__all__ = [
    "AIMDController",
    "MicroBatcher",
    "ThreadBridge",
    "imap_async",
]


async def imap_async(
    fn: Callable[[Any], Awaitable[Any]],
    items: Iterable[Any],
    *,
    max_inflight: int = 8,
) -> AsyncIterator[TaskOutcome]:
    """Yield one :class:`TaskOutcome` per item, in submission order.

    The asyncio twin of ``ParallelExecutor.imap``: up to
    ``max_inflight`` coroutines run ahead of the consumer, the stream
    is drawn lazily (an unsubmitted item costs no memory), and results
    are consumed strictly in submission order regardless of completion
    order — the property that keeps a pipelined survey's merge loop
    byte-identical to the serial one.  Exceptions are captured into
    outcomes, never raised across the generator; an abandoned
    iteration cancels whatever is still in flight.
    """
    if max_inflight < 1:
        raise ValueError(f"max_inflight must be positive: {max_inflight}")

    async def run_one(index: int, item: Any) -> TaskOutcome:
        try:
            return TaskOutcome(index=index, value=await fn(item))
        except asyncio.CancelledError:
            raise
        except Exception as err:  # noqa: BLE001 - re-raised by result()
            return TaskOutcome(index=index, error=err)

    registry = get_metrics()
    loop = asyncio.get_running_loop()
    pending: deque[asyncio.Task] = deque()
    iterator = enumerate(items)
    exhausted = False
    try:
        while True:
            while not exhausted and len(pending) < max_inflight:
                try:
                    index, item = next(iterator)
                except StopIteration:
                    exhausted = True
                    break
                pending.append(loop.create_task(run_one(index, item)))
            if not pending:
                break
            outcome = await pending.popleft()
            if outcome.error is not None:
                registry.inc("parallel.tasks.errors")
            else:
                registry.inc("parallel.tasks.completed")
            yield outcome
    finally:
        for task in pending:
            task.cancel()
        for task in pending:
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task


class ThreadBridge:
    """A capped thread pool exposed as ``await bridge.run(fn, ...)``.

    Sync clients (street-view fetch, chat completions) block their
    thread for the duration of a call; the bridge gives the event loop
    a dedicated, *bounded* pool to park those calls on.  The cap is
    the contract: at most ``max_threads`` sync calls run concurrently,
    however wide the pipeline above fans out, so a host never sees
    more simultaneous upstream connections than the bridge allows.
    """

    def __init__(self, max_threads: int) -> None:
        if max_threads < 1:
            raise ValueError(f"max_threads must be positive: {max_threads}")
        self.max_threads = max_threads
        self._closed = False
        self._pool = ThreadPoolExecutor(
            max_workers=max_threads, thread_name_prefix="repro-aio"
        )

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (a closed bridge rejects work).

        Long-lived hosts that lend one bridge to many pipelines (the
        service daemon) use this to assert the pool is still open
        before dispatching a job onto it.
        """
        return self._closed

    async def run(self, fn: Callable[..., Any], *args: Any) -> Any:
        loop = asyncio.get_running_loop()
        if args:
            return await loop.run_in_executor(self._pool, lambda: fn(*args))
        return await loop.run_in_executor(self._pool, fn)

    def close(self) -> None:
        self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ThreadBridge":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AIMDController:
    """Adaptive in-flight window: additive increase, multiplicative
    decrease.

    Gates the classify stage of the async pipeline.  The window starts
    at ``initial`` slots and adapts to observed backpressure the way
    TCP congestion control does: every ``increase_window`` consecutive
    un-throttled completions widen the window by ``increase_step``
    (probing for headroom, up to ``max_limit``); any observed throttle
    signal — a rate-limited retry, or cumulative token-bucket wait —
    multiplies it by ``decrease_factor`` (backing off fast, down to
    ``min_limit``).  The caller reports signals via
    :meth:`on_success` / :meth:`on_throttle` from the merge loop;
    slots are taken with ``async with controller.slot():``.

    Single-loop discipline: every method is called from the event
    loop, so there is no lock — waiters park on futures and are woken
    in FIFO order when capacity frees up.  Gauges
    ``pipeline.inflight`` and ``pipeline.concurrency_limit`` track the
    live window for dashboards; :meth:`stats` summarizes the run.
    """

    def __init__(
        self,
        initial: int = 4,
        *,
        min_limit: int = 1,
        max_limit: int = 64,
        increase_step: float = 1.0,
        decrease_factor: float = 0.5,
        increase_window: int = 8,
    ) -> None:
        if not 1 <= min_limit <= initial <= max_limit:
            raise ValueError(
                "need 1 <= min_limit <= initial <= max_limit: "
                f"{min_limit}/{initial}/{max_limit}"
            )
        if not 0.0 < decrease_factor < 1.0:
            raise ValueError(
                f"decrease_factor must be in (0, 1): {decrease_factor}"
            )
        if increase_step <= 0 or increase_window < 1:
            raise ValueError("increase_step/window must be positive")
        self.initial = initial
        self.min_limit = min_limit
        self.max_limit = max_limit
        self.increase_step = increase_step
        self.decrease_factor = decrease_factor
        self.increase_window = increase_window
        self._limit = float(initial)
        self._inflight = 0
        self._successes = 0
        self._waiters: deque[asyncio.Future] = deque()
        self.peak_inflight = 0
        self.throttle_events = 0
        self.increases = 0
        self.decreases = 0
        get_metrics().set_gauge("pipeline.concurrency_limit", self.limit)

    @property
    def limit(self) -> int:
        """The current window, floored to at least ``min_limit`` slots."""
        return max(self.min_limit, int(self._limit))

    @property
    def inflight(self) -> int:
        return self._inflight

    # -- slot accounting ----------------------------------------------

    async def acquire(self) -> None:
        while self._inflight >= self.limit:
            waiter = asyncio.get_running_loop().create_future()
            self._waiters.append(waiter)
            await waiter
        self._inflight += 1
        self.peak_inflight = max(self.peak_inflight, self._inflight)
        get_metrics().set_gauge("pipeline.inflight", self._inflight)

    def release(self) -> None:
        self._inflight -= 1
        get_metrics().set_gauge("pipeline.inflight", self._inflight)
        self._wake()

    @contextlib.asynccontextmanager
    async def slot(self) -> AsyncIterator[None]:
        await self.acquire()
        try:
            yield
        finally:
            self.release()

    def _wake(self) -> None:
        # Woken waiters re-check capacity before taking a slot, so
        # waking at most the available headroom is an optimization,
        # not a correctness requirement.
        headroom = self.limit - self._inflight
        while self._waiters and headroom > 0:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                headroom -= 1

    # -- congestion signals -------------------------------------------

    def on_success(self) -> None:
        """One completion merged without any observed throttle signal."""
        self._successes += 1
        if self._successes < self.increase_window:
            return
        self._successes = 0
        if self._limit < self.max_limit:
            self._limit = min(
                float(self.max_limit), self._limit + self.increase_step
            )
            self.increases += 1
            get_metrics().set_gauge("pipeline.concurrency_limit", self.limit)
            self._wake()

    def on_throttle(self, events: int = 1) -> None:
        """Observed backpressure: shrink the window multiplicatively."""
        self.throttle_events += events
        self._successes = 0
        if self.limit > self.min_limit:
            self._limit = max(
                float(self.min_limit), self._limit * self.decrease_factor
            )
            self.decreases += 1
            get_metrics().set_gauge("pipeline.concurrency_limit", self.limit)

    def stats(self) -> dict[str, int]:
        """Provenance summary for reports and drill artifacts."""
        return {
            "initial_limit": self.initial,
            "final_limit": self.limit,
            "peak_inflight": self.peak_inflight,
            "throttle_events": self.throttle_events,
            "increases": self.increases,
            "decreases": self.decreases,
        }


class _BatchSlot:
    """One caller's seat in a micro-batch window."""

    __slots__ = ("done", "response", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.response: Any = None
        self.error: Exception | None = None


class _BatchWindow:
    """Pending requests accumulating toward one batched dispatch."""

    __slots__ = ("entries", "closed", "full")

    def __init__(self) -> None:
        self.entries: list[tuple[Any, _BatchSlot]] = []
        self.closed = False
        self.full = threading.Event()


class MicroBatcher:
    """Group concurrent ``complete`` calls into batched dispatches.

    Bridge threads funnel their classify calls through
    :meth:`submit`; the first caller into an empty window becomes the
    *leader*, waits up to ``max_wait_s`` for companions (returning
    immediately once ``max_batch`` seats fill), then dispatches the
    whole window as one
    :meth:`~repro.llm.base.ChatClient.complete_batch` call and
    distributes the responses.  Requests for different inner clients
    never share a window — models must not cross-serve — and a window
    leader's failure propagates to every seat, exactly as if each had
    made the call itself.

    The wait is real time by design: batching is a latency/amortization
    trade for *concurrent* traffic, and ``max_wait_s`` bounds the
    worst case a lone request pays.  With the cache's single-flight
    table underneath, duplicate fingerprints inside one window are
    still billed once.

    :meth:`install` wraps a set of classifiers' clients in
    transparent proxies for the duration of a ``with`` block — the
    async engine's integration point.
    """

    def __init__(self, max_batch: int = 8, max_wait_s: float = 0.002) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be positive: {max_batch}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be non-negative: {max_wait_s}")
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self._lock = threading.Lock()
        self._windows: dict[int, _BatchWindow] = {}
        self.batches = 0
        self.batched_requests = 0
        self.max_batch_seen = 0

    def submit(self, client: Any, request: Any) -> Any:
        slot = _BatchSlot()
        key = id(client)
        with self._lock:
            window = self._windows.get(key)
            if window is None or window.closed:
                window = _BatchWindow()
                self._windows[key] = window
                leading = True
            else:
                leading = False
            window.entries.append((request, slot))
            if len(window.entries) >= self.max_batch:
                window.closed = True
                window.full.set()
        if leading:
            self._lead(key, window, client)
        slot.done.wait()
        if slot.error is not None:
            raise slot.error
        return slot.response

    def _lead(self, key: int, window: _BatchWindow, client: Any) -> None:
        window.full.wait(self.max_wait_s)
        with self._lock:
            window.closed = True
            if self._windows.get(key) is window:
                del self._windows[key]
            entries = list(window.entries)
        try:
            responses = client.complete_batch(
                [request for request, _ in entries]
            )
            if len(responses) != len(entries):  # pragma: no cover
                raise RuntimeError(
                    f"client answered {len(responses)} of "
                    f"{len(entries)} batched requests"
                )
        except Exception as err:  # noqa: BLE001 - re-raised per seat
            for _, slot in entries:
                slot.error = err
                slot.done.set()
            return
        with self._lock:
            self.batches += 1
            self.batched_requests += len(entries)
            self.max_batch_seen = max(self.max_batch_seen, len(entries))
        metrics = get_metrics()
        metrics.inc("llm.microbatch.batches")
        metrics.inc("llm.microbatch.requests", len(entries))
        for (_, slot), response in zip(entries, responses):
            slot.response = response
            slot.done.set()

    @contextlib.contextmanager
    def install(self, classifiers: Iterable[Any]):
        """Route the classifiers' clients through this batcher.

        Each classifier's ``client`` is replaced with a transparent
        proxy whose ``complete`` funnels into :meth:`submit`;
        everything else (stats, model name, coalescing counters)
        delegates to the original.  Restored on exit, even on error.
        """
        originals: list[tuple[Any, Any]] = []
        try:
            for clf in classifiers:
                originals.append((clf, clf.client))
                clf.client = _BatchProxy(clf.client, self)
            yield self
        finally:
            for clf, client in originals:
                clf.client = client

    def stats(self) -> dict[str, int]:
        return {
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "max_batch_size": self.max_batch_seen,
        }


class _BatchProxy:
    """Drop-in client wrapper routing ``complete`` through a batcher."""

    __slots__ = ("_inner", "_batcher")

    def __init__(self, inner: Any, batcher: MicroBatcher) -> None:
        self._inner = inner
        self._batcher = batcher

    def complete(self, request: Any) -> Any:
        return self._batcher.submit(self._inner, request)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)
