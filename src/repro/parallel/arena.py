"""Name-keyed reusable tensor buffers for the detector hot paths.

The shared-memory arena (:mod:`repro.parallel.shm`) solved the
*cross-process* allocation problem: ship large arrays without pickling.
This module generalizes the idea to the *intra-process* hot loops: the
fused feature kernel touches ~30 scratch images per input image, and
the SGD loop gathers/standardizes/activates the same batch-shaped
tensors thousands of times per training run.  Allocating those afresh
each iteration costs both allocator time and cache locality; a
:class:`TensorArena` hands the same buffer back every time a call site
asks for the same ``(name, shape, dtype)``.

Buffers are keyed by name *and* shape/dtype, so a loop that alternates
between a full batch and a ragged tail batch keeps both buffers live
instead of thrashing one allocation.  Contents are never zeroed on
reuse — callers own initialization — which is exactly the contract of
``np.empty``.  Arenas are cheap to create and not thread-safe; give
each worker its own.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TensorArena"]


class TensorArena:
    """A pool of reusable scratch ndarrays keyed by name + shape + dtype."""

    def __init__(self) -> None:
        self._buffers: dict[tuple, np.ndarray] = {}

    def take(
        self,
        name: str,
        shape: tuple[int, ...] | int,
        dtype=np.float64,
    ) -> np.ndarray:
        """Return the reusable buffer for ``name`` at this shape/dtype.

        The buffer's contents are whatever the previous user left there
        (``np.empty`` semantics) — initialize before reading.
        """
        if isinstance(shape, int):
            shape = (shape,)
        shape = tuple(int(dim) for dim in shape)
        key = (name, shape, np.dtype(dtype).str)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)
            self._buffers[key] = buffer
        return buffer

    def zeros(
        self,
        name: str,
        shape: tuple[int, ...] | int,
        dtype=np.float64,
    ) -> np.ndarray:
        """Like :meth:`take` but zero-filled on every call."""
        buffer = self.take(name, shape, dtype)
        buffer.fill(0)
        return buffer

    @property
    def nbytes(self) -> int:
        """Total bytes currently held across all buffers."""
        return sum(buffer.nbytes for buffer in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)

    def clear(self) -> None:
        """Drop every buffer (the memory is freed once callers let go)."""
        self._buffers.clear()
