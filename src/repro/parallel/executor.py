"""The one fan-out loop: ordered, bounded, cancellable task execution.

The paper's workload is embarrassingly parallel — 1,056 locations ×
4 headings × 4 LLMs × repeated-query voting (§IV-A, §IV-E) — but the
hot paths (``NeighborhoodDecoder.survey``, ``BatchRunner.run``,
``VotingEnsemble`` member queries) were written serially.
:class:`ParallelExecutor` gives them all the same concurrency shape:

* **backends** — ``serial`` (run inline, the exact legacy semantics)
  or ``thread`` (a ``concurrent.futures`` pool; the right choice here
  because the workload is dominated by simulated network latency and
  numpy releases the GIL in the render hot loops).  ``auto`` picks
  ``serial`` for one worker.
* **ordered collection** — results stream back in *submission* order
  regardless of completion order, which is what keeps parallel
  surveys byte-identical to serial ones: downstream merging never
  observes a reordering.
* **bounded in-flight work** — at most ``max_in_flight`` tasks are
  submitted ahead of the consumer, so a million-location survey never
  materializes a million futures.
* **cooperative cancellation** — a ``should_cancel`` predicate
  (typically "is the circuit breaker open?") is consulted before each
  new submission; once it fires, unsubmitted work is marked cancelled
  without ever running and already-running tasks are drained.

Workers never see raised exceptions swallowed: a task that raises is
captured into its :class:`TaskOutcome` and re-raised by
:meth:`TaskOutcome.result`, mirroring ``RetryOutcome``.
"""

from __future__ import annotations

import os
from collections import deque
from collections.abc import Callable, Iterable, Iterator, Sequence
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

__all__ = ["ParallelExecutor", "TaskCancelledError", "TaskOutcome", "resolve_workers"]


class TaskCancelledError(RuntimeError):
    """The task was cancelled before it started running."""


@dataclass
class TaskOutcome:
    """What one submitted task did, in submission order."""

    index: int
    value: Any = None
    error: Exception | None = None
    cancelled: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None and not self.cancelled

    def result(self) -> Any:
        """The value, or raise the captured error / cancellation."""
        if self.cancelled:
            raise TaskCancelledError(f"task {self.index} was cancelled")
        if self.error is not None:
            raise self.error
        return self.value


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker count: ``None``/``0`` → ``os.cpu_count()``."""
    if workers is None or workers <= 0:
        return max(1, os.cpu_count() or 1)
    return workers


class ParallelExecutor:
    """Run many tasks with ordered results and bounded concurrency.

    Parameters
    ----------
    workers:
        Worker-thread count; ``None`` or ``0`` resolves to
        ``os.cpu_count()`` (production default), ``1`` runs serially.
    backend:
        ``"serial"``, ``"thread"``, or ``"auto"`` (serial when the
        resolved worker count is 1).
    max_in_flight:
        Maximum tasks submitted but not yet consumed; defaults to
        ``2 × workers``.  Bounds memory on huge surveys.
    """

    def __init__(
        self,
        workers: int | None = 1,
        backend: str = "auto",
        max_in_flight: int | None = None,
    ) -> None:
        if backend not in ("serial", "thread", "auto"):
            raise ValueError(f"unknown backend: {backend!r}")
        self.workers = resolve_workers(workers)
        if backend == "auto":
            backend = "serial" if self.workers == 1 else "thread"
        self.backend = backend
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be positive")
        self.max_in_flight = max_in_flight or 2 * self.workers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelExecutor(workers={self.workers}, "
            f"backend={self.backend!r}, max_in_flight={self.max_in_flight})"
        )

    # ------------------------------------------------------------------

    def imap(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        *,
        should_cancel: Callable[[], bool] | None = None,
    ) -> Iterator[TaskOutcome]:
        """Yield one :class:`TaskOutcome` per item, in submission order.

        The serial backend runs each task inline as the consumer
        advances (identical to the pre-parallel code path); the thread
        backend keeps up to ``max_in_flight`` tasks running ahead of
        the consumer.
        """
        if self.backend == "serial":
            yield from self._imap_serial(fn, items, should_cancel)
        else:
            yield from self._imap_threaded(fn, items, should_cancel)

    def run(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        should_cancel: Callable[[], bool] | None = None,
    ) -> list[TaskOutcome]:
        """Eager :meth:`imap`: collect every outcome into a list."""
        return list(self.imap(fn, items, should_cancel=should_cancel))

    # ------------------------------------------------------------------

    @staticmethod
    def _imap_serial(
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        should_cancel: Callable[[], bool] | None,
    ) -> Iterator[TaskOutcome]:
        for index, item in enumerate(items):
            if should_cancel is not None and should_cancel():
                yield TaskOutcome(index=index, cancelled=True)
                continue
            yield ParallelExecutor._execute(fn, index, item)

    def _imap_threaded(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        should_cancel: Callable[[], bool] | None,
    ) -> Iterator[TaskOutcome]:
        pending: deque[tuple[int, Future | None]] = deque()
        iterator = enumerate(items)
        exhausted = False
        cancelling = False
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            try:
                while True:
                    while not exhausted and len(pending) < self.max_in_flight:
                        if not cancelling and should_cancel is not None:
                            cancelling = should_cancel()
                        try:
                            index, item = next(iterator)
                        except StopIteration:
                            exhausted = True
                            break
                        if cancelling:
                            pending.append((index, None))
                        else:
                            pending.append(
                                (index, pool.submit(self._execute, fn, index, item))
                            )
                    if not pending:
                        break
                    index, future = pending.popleft()
                    if future is None:
                        yield TaskOutcome(index=index, cancelled=True)
                    else:
                        yield future.result()
            finally:
                # A consumer that stops early (or a generator close)
                # must not leave queued tasks running.
                for _, future in pending:
                    if future is not None:
                        future.cancel()

    @staticmethod
    def _execute(fn: Callable[[Any], Any], index: int, item: Any) -> TaskOutcome:
        try:
            return TaskOutcome(index=index, value=fn(item))
        except Exception as err:  # noqa: BLE001 - captured, re-raised by result()
            return TaskOutcome(index=index, error=err)
