"""The one fan-out loop: ordered, bounded, cancellable task execution.

The paper's workload splits into two regimes and each gets a backend:

* the survey path (GSV fetch + LLM classify) is dominated by simulated
  network latency, so **threads** overlap the waits;
* the detector path (rendering, feature extraction, training, batched
  inference) is pure-numpy CPU work the GIL serializes, so
  **processes** are the only way to use more than one core.

:class:`ParallelExecutor` gives every hot path the same concurrency
shape regardless of backend:

* **backends** — ``serial`` (run inline, the exact legacy semantics),
  ``thread`` (a ``concurrent.futures`` thread pool), or ``process``
  (a ``ProcessPoolExecutor``; tasks ship to children as picklable
  :class:`TaskEnvelope` objects).  ``auto`` picks ``serial`` for one
  worker, then ``process`` when the call site declares itself
  ``cpu_bound`` and ``thread`` otherwise.
* **ordered collection** — results stream back in *submission* order
  regardless of completion order, which is what keeps parallel runs
  byte-identical to serial ones: downstream merging never observes a
  reordering.
* **bounded in-flight work** — at most ``max_in_flight`` tasks are
  submitted ahead of the consumer, so a million-location survey never
  materializes a million futures (and a process pool never queues a
  gigabyte of pickled images).
* **cooperative cancellation** — a ``should_cancel`` predicate
  (typically "is the circuit breaker open?") is consulted before each
  new submission; once it fires, unsubmitted work is marked cancelled
  without ever running and already-running tasks are drained.  Both
  pooled backends cancel queued futures and join their workers on
  early consumer exit, so no child process outlives its generator.

Workers never see raised exceptions swallowed: a task that raises is
captured into its :class:`TaskOutcome` and re-raised by
:meth:`TaskOutcome.result`, mirroring ``RetryOutcome``.  The process
backend additionally converts transport failures (unpicklable task,
unpicklable result, a crashed child) into error outcomes instead of
tearing down the whole iteration.

Pickling constraints of the process backend (see DESIGN.md §9): the
callable must be importable from the child (a module-level function,
a ``functools.partial`` of one, or a picklable bound method) and both
items and results must survive a round-trip through ``pickle``.

Large numpy arrays are exempt from that round-trip: the process
backend owns a :class:`~repro.parallel.shm.SharedArrayArena` and ships
qualifying tensors through ``multiprocessing.shared_memory`` blocks
(see DESIGN.md §10).  The swap happens inside :class:`TaskEnvelope`,
so call sites pass plain arrays and workers receive plain (read-only)
arrays — nothing changes at the API surface, and on hosts without shm
the arena degrades to pickle with a recorded reason.
"""

from __future__ import annotations

import os
import tempfile
from collections import deque
from collections.abc import Callable, Iterable, Iterator, Sequence
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from ..obs.metrics import get_metrics, nonempty_delta
from .shm import (
    DEFAULT_MIN_SHARE_BYTES,
    SharedArrayArena,
    ShmTransport,
    discard_result,
    pack_result,
    resolve_item,
)

__all__ = [
    "ParallelExecutor",
    "TaskCancelledError",
    "TaskEnvelope",
    "TaskOutcome",
    "effective_cpu_count",
    "resolve_workers",
]


class TaskCancelledError(RuntimeError):
    """The task was cancelled before it started running."""


@dataclass
class TaskOutcome:
    """What one submitted task did, in submission order.

    ``metrics`` carries the metrics delta a child *process*
    accumulated while running the task (``None`` for in-process
    backends, which write to the parent registry directly).  The
    executor merges it into the parent's registry as the outcome is
    consumed, then clears it.
    """

    index: int
    value: Any = None
    error: Exception | None = None
    cancelled: bool = False
    metrics: dict | None = None

    @property
    def ok(self) -> bool:
        return self.error is None and not self.cancelled

    def result(self) -> Any:
        """The value, or raise the captured error / cancellation."""
        if self.cancelled:
            raise TaskCancelledError(f"task {self.index} was cancelled")
        if self.error is not None:
            raise self.error
        return self.value


@dataclass(frozen=True)
class TaskEnvelope:
    """One unit of work shipped to a child process.

    Bundling ``(fn, index, item)`` into a single picklable object keeps
    the process backend's submission path symmetric with the thread
    backend's and puts the pickling boundary in one place: if either
    the callable or the item cannot cross it, the failure surfaces as
    an error outcome for exactly that task.

    When ``transport`` is set, the item may contain
    :class:`~repro.parallel.shm.SharedArrayHandle` placeholders where
    the parent's arena swapped out large arrays; :meth:`run` resolves
    them to zero-copy read-only views before calling ``fn`` and packs
    large *result* arrays into fresh shared blocks on the way back, so
    the callable never sees a handle — shared-memory transport is
    invisible at both ends of the task.
    """

    fn: Callable[[Any], Any]
    index: int
    item: Any
    transport: ShmTransport | None = None

    def run(self) -> TaskOutcome:
        item = self.item
        if self.transport is not None:
            item = resolve_item(item)
        # This code runs inside a worker process: its module-level
        # registry is private to the child, so the per-task delta is
        # exactly what this task contributed (the pool reuses workers,
        # hence the before-snapshot rather than assuming zero).
        registry = get_metrics()
        before = registry.snapshot()
        outcome = ParallelExecutor._execute(self.fn, self.index, item)
        delta = registry.delta_since(before)
        if nonempty_delta(delta):
            outcome.metrics = delta
        if self.transport is not None and outcome.ok:
            outcome.value = pack_result(outcome.value, self.transport)
        return outcome


def _run_envelope(envelope: TaskEnvelope) -> TaskOutcome:
    """Module-level trampoline so the submitted callable always pickles."""
    return envelope.run()


def _consume(outcome: TaskOutcome) -> TaskOutcome:
    """Book one outcome as it reaches the consumer, in submission order.

    Merges any child-process metrics delta into the parent registry
    (submission order makes the merged totals deterministic) and
    counts the task's fate.
    """
    registry = get_metrics()
    if outcome.metrics:
        registry.merge(outcome.metrics)
        outcome.metrics = None
    if outcome.cancelled:
        registry.inc("parallel.tasks.cancelled")
    elif outcome.error is not None:
        registry.inc("parallel.tasks.errors")
    else:
        registry.inc("parallel.tasks.completed")
    return outcome


def _release_handles(
    arena: SharedArrayArena | None, handles: dict[int, list], index: int
) -> None:
    """Release the item blocks the arena shared for one task."""
    if arena is None:
        return
    for handle in handles.pop(index, ()):
        arena.release(handle)


def _discard_result_blocks(future: Future) -> None:
    """Done-callback: reclaim result blocks nobody will ever resolve.

    Attached to in-flight futures when the consumer abandons an
    iteration early — the worker may have already copied its result
    into fresh shared blocks, and without a consumer those would
    outlive the run.
    """
    if future.cancelled():
        return
    try:
        outcome = future.result()
    except Exception:  # noqa: BLE001 - transport failure, nothing to reclaim
        return
    if outcome.ok:
        discard_result(outcome.value)


def effective_cpu_count() -> int:
    """CPUs actually usable by this process, not just present.

    Containers and batch schedulers routinely pin a process to a
    subset of the machine (cpuset/affinity); sizing worker pools by
    ``os.cpu_count()`` then oversubscribes.  Prefers
    ``os.process_cpu_count()`` (Python 3.13+), falls back to the
    scheduling affinity mask, then to ``os.cpu_count()``.
    """
    counter = getattr(os, "process_cpu_count", None)
    count = counter() if counter is not None else None
    if count is None:
        try:
            count = len(os.sched_getaffinity(0))
        except (AttributeError, OSError):  # pragma: no cover - non-Linux
            count = os.cpu_count()
    return max(1, count or 1)


def resolve_workers(workers: int | str | None) -> int:
    """Normalize a worker count: ``None``/``0``/``"auto"`` → usable CPUs."""
    if workers is None or workers == "auto":
        return effective_cpu_count()
    if isinstance(workers, str):
        raise ValueError(f"workers must be an int or 'auto': {workers!r}")
    if workers <= 0:
        return effective_cpu_count()
    return workers


class ParallelExecutor:
    """Run many tasks with ordered results and bounded concurrency.

    Parameters
    ----------
    workers:
        Worker count; ``None``, ``0``, or ``"auto"`` resolves to
        :func:`effective_cpu_count` (production default), ``1`` runs
        serially.
    backend:
        ``"serial"``, ``"thread"``, ``"process"``, or ``"auto"``
        (serial when the resolved worker count is 1, otherwise
        process when ``cpu_bound`` and thread when not).
    max_in_flight:
        Maximum tasks submitted but not yet consumed; defaults to
        ``2 × workers``.  Bounds memory on huge surveys.
    cpu_bound:
        Call-site hint consumed by ``backend="auto"``: CPU-bound work
        (rendering, feature extraction, detector inference) needs
        processes to scale past the GIL, latency-bound work is better
        off with threads.
    shm:
        Whether the process backend ships large numpy arrays through
        shared memory (default) instead of pickling them.  Ignored by
        the serial and thread backends, which share an address space
        already.
    shm_min_bytes:
        Arrays below this size ride pickle even with ``shm`` on — a
        shared block's syscall overhead only amortizes for bulk
        payloads.
    """

    def __init__(
        self,
        workers: int | str | None = 1,
        backend: str = "auto",
        max_in_flight: int | None = None,
        cpu_bound: bool = False,
        shm: bool = True,
        shm_min_bytes: int = DEFAULT_MIN_SHARE_BYTES,
    ) -> None:
        if backend not in ("serial", "thread", "process", "auto"):
            raise ValueError(f"unknown backend: {backend!r}")
        self.workers = resolve_workers(workers)
        if backend == "auto":
            if self.workers == 1:
                backend = "serial"
            else:
                backend = "process" if cpu_bound else "thread"
        self.backend = backend
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be positive")
        self.max_in_flight = max_in_flight or 2 * self.workers
        self.shm = shm
        self.shm_min_bytes = shm_min_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelExecutor(workers={self.workers}, "
            f"backend={self.backend!r}, max_in_flight={self.max_in_flight})"
        )

    # ------------------------------------------------------------------

    def imap(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        *,
        should_cancel: Callable[[], bool] | None = None,
    ) -> Iterator[TaskOutcome]:
        """Yield one :class:`TaskOutcome` per item, in submission order.

        The serial backend runs each task inline as the consumer
        advances (identical to the pre-parallel code path); the pooled
        backends keep up to ``max_in_flight`` tasks running ahead of
        the consumer.
        """
        if self.backend == "serial":
            yield from self._imap_serial(fn, items, should_cancel)
        elif self.backend == "thread":
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                yield from self._imap_pooled(pool, fn, items, should_cancel)
        else:
            # The intent-ledger directory makes abrupt worker death
            # (SIGKILL mid-result) leak-free: workers journal each
            # result block's name into it before creation, and
            # arena.close() reclaims whatever no consumer resolved.
            arena = (
                SharedArrayArena(
                    min_bytes=self.shm_min_bytes,
                    ledger_dir=tempfile.mkdtemp(prefix="repro_shm_ledger_"),
                )
                if self.shm
                else None
            )
            try:
                # Context-manager exit joins the children, so a consumer
                # that stops early never leaks worker processes.
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    yield from self._imap_pooled(
                        pool, fn, items, should_cancel, arena
                    )
            finally:
                # The pool has joined by now: no child still maps any
                # block, so force-unlinking whatever survived (nothing,
                # unless the consumer bailed mid-task) is safe — and
                # the ledger sweep inside close() reclaims result
                # blocks stranded by workers that died abruptly.
                if arena is not None:
                    arena.close()
                    if arena.stats.orphans_reclaimed:
                        get_metrics().inc(
                            "shm.orphans.reclaimed",
                            arena.stats.orphans_reclaimed,
                        )

    def run(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        should_cancel: Callable[[], bool] | None = None,
    ) -> list[TaskOutcome]:
        """Eager :meth:`imap`: collect every outcome into a list."""
        return list(self.imap(fn, items, should_cancel=should_cancel))

    def map_results(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
    ) -> list[Any]:
        """Run all tasks and unwrap their values, re-raising the first error."""
        return [outcome.result() for outcome in self.imap(fn, items)]

    # ------------------------------------------------------------------

    @staticmethod
    def _imap_serial(
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        should_cancel: Callable[[], bool] | None,
    ) -> Iterator[TaskOutcome]:
        for index, item in enumerate(items):
            if should_cancel is not None and should_cancel():
                yield _consume(TaskOutcome(index=index, cancelled=True))
                continue
            yield _consume(ParallelExecutor._execute(fn, index, item))

    def _submit(
        self,
        pool: ThreadPoolExecutor | ProcessPoolExecutor,
        fn,
        index,
        item,
        arena: SharedArrayArena | None = None,
        handles: dict[int, list] | None = None,
    ) -> Future:
        if self.backend == "process":
            transport = None
            if arena is not None and arena.enabled:
                item, task_handles = arena.pack(item)
                if task_handles and handles is not None:
                    handles[index] = task_handles
                transport = arena.transport()
            return pool.submit(
                _run_envelope, TaskEnvelope(fn, index, item, transport)
            )
        return pool.submit(self._execute, fn, index, item)

    def _imap_pooled(
        self,
        pool: ThreadPoolExecutor | ProcessPoolExecutor,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        should_cancel: Callable[[], bool] | None,
        arena: SharedArrayArena | None = None,
    ) -> Iterator[TaskOutcome]:
        pending: deque[tuple[int, Future | None]] = deque()
        handles: dict[int, list] = {}
        iterator = enumerate(items)
        exhausted = False
        cancelling = False
        try:
            while True:
                while not exhausted and len(pending) < self.max_in_flight:
                    if not cancelling and should_cancel is not None:
                        cancelling = should_cancel()
                    try:
                        index, item = next(iterator)
                    except StopIteration:
                        exhausted = True
                        break
                    if cancelling:
                        pending.append((index, None))
                    else:
                        try:
                            future = self._submit(
                                pool, fn, index, item, arena, handles
                            )
                        except Exception as err:  # noqa: BLE001
                            # A pool already broken by a crashed child
                            # raises at *submit* time; surface it as
                            # this task's outcome like any other
                            # transport failure instead of aborting
                            # the sweep mid-iteration.
                            future = Future()
                            future.set_exception(err)
                        pending.append((index, future))
                if not pending:
                    break
                index, future = pending.popleft()
                if future is None:
                    yield _consume(TaskOutcome(index=index, cancelled=True))
                    continue
                try:
                    outcome = future.result()
                except Exception as err:  # noqa: BLE001 - transport failure
                    # The process backend surfaces pickling errors
                    # and crashed children here; report them as the
                    # task's outcome instead of aborting the sweep.
                    outcome = TaskOutcome(index=index, error=err)
                finally:
                    # The worker is done with this task's item blocks
                    # either way; drop the parent's references now so
                    # live shared memory stays bounded by in-flight
                    # work, not sweep length.
                    _release_handles(arena, handles, index)
                if arena is not None and outcome.ok:
                    try:
                        outcome.value = arena.unpack_result(outcome.value)
                    except Exception as err:  # noqa: BLE001 - transport failure
                        outcome = TaskOutcome(index=index, error=err)
                yield _consume(outcome)
        finally:
            # A consumer that stops early (or a generator close)
            # must not leave queued tasks running — and any result
            # block a finished-but-unconsumed task already created
            # must still be reclaimed once its future settles.
            for index, future in pending:
                if future is None:
                    continue
                future.cancel()
                if arena is not None:
                    future.add_done_callback(_discard_result_blocks)
            for index in list(handles):
                _release_handles(arena, handles, index)

    @staticmethod
    def _execute(fn: Callable[[Any], Any], index: int, item: Any) -> TaskOutcome:
        try:
            return TaskOutcome(index=index, value=fn(item))
        except Exception as err:  # noqa: BLE001 - captured, re-raised by result()
            return TaskOutcome(index=index, error=err)
