"""Zero-copy shared-memory transport for numpy arrays between processes.

The process backend of :class:`~repro.parallel.executor.ParallelExecutor`
ships every task and result through ``pickle``: for the detector hot
paths that means each 640×640 image (~1.2 MB) and each per-image
feature tensor (~270 KB) is serialized, pushed through a pipe, and
deserialized — three copies plus syscall traffic per array, paid
exactly where parallelism was supposed to win.  This module moves the
bulk bytes through ``multiprocessing.shared_memory`` instead:

* the parent copies a large array into a named shared-memory block
  once and pickles only a tiny :class:`SharedArrayHandle` (name, shape,
  dtype);
* the worker maps the block and reconstructs a **read-only zero-copy
  view** — no bytes cross the pipe;
* results flow the same way in reverse: the worker materializes large
  result arrays into fresh blocks and the parent maps them, taking
  ownership and unlinking immediately (POSIX keeps the memory alive
  until the last mapping closes).

:class:`SharedArrayArena` owns the parent side: blocks are ref-counted
(sharing the same array object for several in-flight tasks reuses one
block), released explicitly as each task completes, and fully unlinked
by :meth:`close`.  ``live_blocks`` must be zero after an executor
drains — the leak test in ``tests/test_parallel_shm.py`` asserts it.

Arrays below :data:`DEFAULT_MIN_SHARE_BYTES` travel by pickle: a
shared-memory block costs two syscalls and a resource-tracker round
trip, which only amortizes for bulk payloads.  On platforms without
``multiprocessing.shared_memory`` (or when block creation fails) the
arena degrades to plain pickle transport and records *why* in
``fallback_reason``; :func:`repro.perf.machine_info` surfaces the same
status in every benchmark document, so a measurement taken without shm
says so.

Only ``tuple``/``list``/``dict`` containers are traversed when packing
a task payload — the existing chunk payloads are exactly such tuples.
Arrays hidden inside arbitrary objects ride pickle, which is always
correct, merely slower.
"""

from __future__ import annotations

import os
import secrets
import shutil
import threading
import weakref
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = [
    "DEFAULT_MIN_SHARE_BYTES",
    "SharedArrayArena",
    "SharedArrayHandle",
    "ShmTransport",
    "discard_result",
    "pack_result",
    "resolve_item",
    "shared_memory_support",
    "sweep_result_intents",
]

#: Arrays smaller than this travel by pickle: block creation costs two
#: syscalls plus a resource-tracker message, which a 64 KB memcpy
#: through a pipe beats comfortably.
DEFAULT_MIN_SHARE_BYTES = 64 * 1024


def shared_memory_support() -> tuple[type | None, str | None]:
    """``(SharedMemory class, None)`` when usable, else ``(None, reason)``.

    Probed once per arena (and by :func:`repro.perf.machine_info`) so
    the fallback reason lands in benchmark provenance instead of being
    silently swallowed.  Tests monkeypatch this function to exercise
    the pickle-fallback path on hosts where shm works.
    """
    try:
        from multiprocessing import shared_memory
    except ImportError as err:  # pragma: no cover - exercised via monkeypatch
        return None, f"multiprocessing.shared_memory unavailable: {err}"
    return shared_memory.SharedMemory, None


@dataclass(frozen=True)
class SharedArrayHandle:
    """Picklable descriptor of one array living in a shared block.

    ``owns_block`` marks result handles: the worker that created the
    block has already closed its mapping, so whoever resolves the
    handle must unlink it (take ownership).  Item handles stay owned by
    the parent arena, which unlinks them on release.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str
    owns_block: bool = False

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize

    def resolve(self) -> np.ndarray:
        """Map the block and return a read-only zero-copy view.

        The mapping is kept open exactly as long as the returned array
        lives (a ``weakref.finalize`` closes it), so views can be used
        and discarded freely without leaking file descriptors.  An
        owning handle unlinks the block immediately after mapping —
        the memory itself survives until every mapping closes.
        """
        cls, reason = shared_memory_support()
        if cls is None:  # pragma: no cover - resolve implies support
            raise RuntimeError(f"cannot resolve shared array: {reason}")
        block = cls(name=self.name)
        try:
            array = np.ndarray(
                self.shape, dtype=np.dtype(self.dtype), buffer=block.buf
            )
            array.flags.writeable = False
            weakref.finalize(array, _close_block, block)
        except Exception:
            block.close()
            raise
        if self.owns_block:
            block.unlink()
        return array


def _close_block(block) -> None:
    """Finalizer: release the mapping once no view references it."""
    try:
        block.close()
    except (BufferError, OSError):  # pragma: no cover - interpreter teardown
        pass


@dataclass(frozen=True)
class ShmTransport:
    """The picklable slice of arena configuration a worker needs.

    Carried inside :class:`~repro.parallel.executor.TaskEnvelope` so the
    worker can pack large *result* arrays into fresh blocks without
    holding a reference to the (unpicklable) parent arena.

    ``ledger_dir`` names a parent-owned directory of *intent ledgers*:
    before creating a result block, the worker appends the block's name
    to ``<ledger_dir>/<pid>.intents``.  If the worker is killed between
    creating the block and the parent resolving its handle (SIGKILL
    mid-result, OOM), the block would otherwise survive in ``/dev/shm``
    until reboot — the parent sweeps the ledgers after the pool joins
    and unlinks whatever nobody consumed (:func:`sweep_result_intents`).
    """

    min_bytes: int = DEFAULT_MIN_SHARE_BYTES
    ledger_dir: str | None = None


@dataclass
class _Block:
    """Parent-side accounting for one live shared block."""

    shm: object
    array: np.ndarray  # pins id(array) while the block is referenced
    refcount: int = 1


@dataclass
class ArenaStats:
    """Observability counters for one arena's lifetime."""

    arrays_shared: int = 0
    bytes_shared: int = 0
    arrays_passthrough: int = 0
    blocks_created: int = 0
    block_reuses: int = 0
    orphans_reclaimed: int = 0

    def as_dict(self) -> dict:
        return {
            "arrays_shared": self.arrays_shared,
            "bytes_shared": self.bytes_shared,
            "arrays_passthrough": self.arrays_passthrough,
            "blocks_created": self.blocks_created,
            "block_reuses": self.block_reuses,
            "orphans_reclaimed": self.orphans_reclaimed,
        }


class SharedArrayArena:
    """Parent-side manager of ref-counted shared-memory array blocks.

    One arena serves one :class:`~repro.parallel.ParallelExecutor`; the
    executor packs each task payload before submission and releases the
    payload's blocks as the task's outcome is consumed.  Thread-safe —
    the executor's generator may be driven from any thread.

    Parameters
    ----------
    min_bytes:
        Arrays below this size pass through by pickle.
    """

    def __init__(
        self,
        min_bytes: int = DEFAULT_MIN_SHARE_BYTES,
        ledger_dir: str | None = None,
    ) -> None:
        if min_bytes < 0:
            raise ValueError(f"min_bytes must be non-negative: {min_bytes}")
        self.min_bytes = min_bytes
        #: Directory of worker intent ledgers; the arena takes
        #: ownership and removes it (after sweeping) on :meth:`close`.
        self.ledger_dir = ledger_dir
        cls, reason = shared_memory_support()
        self._shm_cls = cls
        self.fallback_reason = reason
        self.stats = ArenaStats()
        self._blocks: dict[str, _Block] = {}
        self._by_array: dict[int, str] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether shared-memory transport is actually in effect."""
        return self._shm_cls is not None

    @property
    def live_blocks(self) -> int:
        """Blocks currently held — zero once every task released."""
        with self._lock:
            return len(self._blocks)

    def transport(self) -> ShmTransport | None:
        """Worker-side transport config (``None`` when degraded)."""
        if not self.enabled:
            return None
        return ShmTransport(
            min_bytes=self.min_bytes, ledger_dir=self.ledger_dir
        )

    # ------------------------------------------------------------------
    # sharing

    def share(self, array: np.ndarray) -> SharedArrayHandle:
        """Copy ``array`` into a shared block and return its handle.

        Sharing the same array object again reuses the existing block
        and bumps its refcount; every handle must eventually be paired
        with one :meth:`release`.
        """
        if not self.enabled:
            raise RuntimeError(
                f"shared memory unavailable: {self.fallback_reason}"
            )
        with self._lock:
            name = self._by_array.get(id(array))
            if name is not None:
                block = self._blocks[name]
                block.refcount += 1
                self.stats.block_reuses += 1
                self.stats.arrays_shared += 1
                return self._handle_for(name, array)
            # Zero-length arrays still get a (1-byte) block so the
            # handle round-trip is uniform; nothing is copied.
            shm = self._shm_cls(
                create=True,
                size=max(1, array.nbytes),
                name=f"repro_arena_{secrets.token_hex(8)}",
            )
            if array.nbytes:
                view = np.ndarray(
                    array.shape, dtype=array.dtype, buffer=shm.buf
                )
                np.copyto(view, array)
                del view
            self._blocks[shm.name] = _Block(shm=shm, array=array)
            self._by_array[id(array)] = shm.name
            self.stats.blocks_created += 1
            self.stats.arrays_shared += 1
            self.stats.bytes_shared += array.nbytes
            return self._handle_for(shm.name, array)

    @staticmethod
    def _handle_for(name: str, array: np.ndarray) -> SharedArrayHandle:
        return SharedArrayHandle(
            name=name, shape=array.shape, dtype=array.dtype.str
        )

    def release(self, handle: SharedArrayHandle) -> None:
        """Drop one reference; the last release closes and unlinks."""
        with self._lock:
            block = self._blocks.get(handle.name)
            if block is None:
                return
            block.refcount -= 1
            if block.refcount > 0:
                return
            del self._blocks[handle.name]
            self._by_array.pop(id(block.array), None)
            shm = block.shm
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass

    def close(self) -> None:
        """Force-release every live block (end-of-run safety net).

        Also sweeps the worker intent ledgers: any result block whose
        creating worker died before the parent resolved its handle is
        unlinked here, so an abrupt worker death never strands memory
        in ``/dev/shm``.  Only call after the worker pool has joined —
        a live worker's just-created block would look orphaned.
        """
        with self._lock:
            blocks = list(self._blocks.values())
            self._blocks.clear()
            self._by_array.clear()
        for block in blocks:
            block.shm.close()
            try:
                block.shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        if self.ledger_dir is not None:
            reclaimed = sweep_result_intents(self.ledger_dir)
            self.stats.orphans_reclaimed += reclaimed
            shutil.rmtree(self.ledger_dir, ignore_errors=True)

    def __enter__(self) -> "SharedArrayArena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # payload packing

    def pack(self, item) -> tuple[object, list[SharedArrayHandle]]:
        """Replace large arrays inside ``item`` with shared handles.

        Returns the packed payload and the handles it references; the
        caller releases each handle once the task has completed.  With
        shm degraded (or nothing large enough) the item passes through
        untouched and the handle list is empty.
        """
        if not self.enabled:
            return item, []
        handles: list[SharedArrayHandle] = []
        packed = self._pack_value(item, handles)
        return packed, handles

    def _pack_value(self, value, handles: list[SharedArrayHandle]):
        if isinstance(value, np.ndarray):
            if not self._shareable(value, self.min_bytes):
                self.stats.arrays_passthrough += 1
                return value
            handle = self.share(value)
            handles.append(handle)
            return handle
        if isinstance(value, tuple):
            return tuple(self._pack_value(v, handles) for v in value)
        if isinstance(value, list):
            return [self._pack_value(v, handles) for v in value]
        if isinstance(value, dict):
            return {k: self._pack_value(v, handles) for k, v in value.items()}
        return value

    @staticmethod
    def _shareable(array: np.ndarray, min_bytes: int) -> bool:
        return array.dtype != object and array.nbytes >= min_bytes

    def unpack_result(self, value):
        """Resolve result handles a worker sent back (parent side)."""
        return resolve_item(value)


# ----------------------------------------------------------------------
# worker-side helpers (module-level: must pickle by reference)


def resolve_item(value):
    """Recursively replace :class:`SharedArrayHandle` with array views."""
    if isinstance(value, SharedArrayHandle):
        return value.resolve()
    if isinstance(value, tuple):
        return tuple(resolve_item(v) for v in value)
    if isinstance(value, list):
        return [resolve_item(v) for v in value]
    if isinstance(value, dict):
        return {k: resolve_item(v) for k, v in value.items()}
    return value


def _record_intent(ledger_dir: str, name: str) -> None:
    """Worker side: durably note a result block *before* creating it.

    Append-then-flush is enough — SIGKILL does not lose flushed page
    cache, and the ledger only ever over-approximates (a name whose
    block was consumed simply fails to attach during the sweep).
    """
    path = os.path.join(ledger_dir, f"{os.getpid()}.intents")
    try:
        with open(path, "a", encoding="utf-8") as ledger:
            ledger.write(name + "\n")
            ledger.flush()
    except OSError:  # pragma: no cover - ledger dir vanished; best effort
        pass


def sweep_result_intents(ledger_dir: str | Path) -> int:
    """Parent side: unlink result blocks whose worker died mid-result.

    Reads every ``*.intents`` ledger under ``ledger_dir`` and attempts
    to reclaim each named block.  Names whose blocks were already
    consumed (the normal case — ``resolve()`` unlinks owning handles)
    fail to attach and are skipped.  Returns the number of orphaned
    blocks actually reclaimed.  Must run only after the worker pool
    has joined: a live worker's just-created block is not an orphan.
    """
    cls, _ = shared_memory_support()
    root = Path(ledger_dir)
    if cls is None or not root.is_dir():
        return 0
    reclaimed = 0
    for ledger in sorted(root.glob("*.intents")):
        try:
            names = ledger.read_text(encoding="utf-8").split()
        except OSError:  # pragma: no cover - racing cleanup
            continue
        for name in names:
            try:
                block = cls(name=name)
            except (FileNotFoundError, ValueError):
                continue
            block.close()
            try:
                block.unlink()
                reclaimed += 1
            except FileNotFoundError:  # pragma: no cover - racing reclaim
                pass
    return reclaimed


def pack_result(value, transport: ShmTransport):
    """Move a result's large arrays into fresh blocks (worker side).

    The worker copies each qualifying array into a new shared block,
    closes its own mapping immediately, and replaces the array with an
    *owning* handle — the parent takes the block over when it resolves
    the outcome.  Any failure falls back to returning the original
    value (plain pickle), never to losing the result.
    """
    cls, _ = shared_memory_support()
    if cls is None:  # pragma: no cover - transport implies support
        return value
    try:
        return _pack_result_value(value, transport, cls)
    except OSError:  # pragma: no cover - e.g. /dev/shm exhausted
        return value


def _pack_result_value(value, transport: ShmTransport, cls):
    if isinstance(value, np.ndarray):
        if not SharedArrayArena._shareable(value, transport.min_bytes):
            return value
        name = f"repro_result_{secrets.token_hex(8)}"
        if transport.ledger_dir is not None:
            _record_intent(transport.ledger_dir, name)
        shm = cls(
            create=True,
            size=max(1, value.nbytes),
            name=name,
        )
        if value.nbytes:
            view = np.ndarray(value.shape, dtype=value.dtype, buffer=shm.buf)
            np.copyto(view, value)
            del view
        handle = SharedArrayHandle(
            name=shm.name,
            shape=value.shape,
            dtype=value.dtype.str,
            owns_block=True,
        )
        shm.close()
        return handle
    if isinstance(value, tuple):
        return tuple(_pack_result_value(v, transport, cls) for v in value)
    if isinstance(value, list):
        return [_pack_result_value(v, transport, cls) for v in value]
    if isinstance(value, dict):
        return {
            k: _pack_result_value(v, transport, cls) for k, v in value.items()
        }
    return value


def _iter_handles(value):
    if isinstance(value, SharedArrayHandle):
        yield value
    elif isinstance(value, (tuple, list)):
        for v in value:
            yield from _iter_handles(v)
    elif isinstance(value, dict):
        for v in value.values():
            yield from _iter_handles(v)


def discard_result(value) -> None:
    """Reclaim result blocks that will never be consumed.

    Used when a consumer abandons an iteration with completed-but-
    unconsumed outcomes still queued: the worker-created blocks would
    otherwise linger until interpreter exit.
    """
    cls, _ = shared_memory_support()
    if cls is None:  # pragma: no cover - handles imply support
        return
    for handle in _iter_handles(value):
        try:
            block = cls(name=handle.name)
        except FileNotFoundError:
            continue
        block.close()
        try:
            block.unlink()
        except FileNotFoundError:  # pragma: no cover - racing reclaim
            pass
