"""Simulated Google Street View Static API.

The paper accessed GSV imagery "lawfully through an API fee": each
request names a location, a heading, and an image size, and is billed
per image.  This module reproduces that request surface against the
synthetic world — the response pixels come from the procedural scene
generator and rasterizer instead of Google's servers.

The client enforces the behaviours downstream code must survive in
production: API-key validation, per-key daily quotas, transient
transport failures (for retry-path testing), fee metering, and
metadata lookups that report whether imagery exists at a location.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..geo.coordinates import CARDINAL_HEADINGS, LatLon, normalize_heading
from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from ..geo.county import County, ZoneKind
from ..geo.roadnet import RoadClass
from ..geo.sampling import CaptureRequest, SamplePoint
from ..resilience.clock import Clock, WallClock
from ..resilience.faults import FaultSchedule
from ..scene.generator import SceneGenerator
from ..scene.model import Scene
from ..scene.render import DEFAULT_SIZE, RenderCache, render_scene
from ..scene.seeding import stable_seed


class StreetViewError(Exception):
    """Base class for simulated GSV API failures."""


class AuthenticationError(StreetViewError):
    """Missing or invalid API key."""


class QuotaExceededError(StreetViewError):
    """The key's daily request quota is exhausted."""


class TransientNetworkError(StreetViewError):
    """A retryable transport failure (HTTP 5xx / timeout analog)."""


class NoImageryError(StreetViewError):
    """No street-view imagery exists at the requested location."""


#: Billing rate mirroring the GSV Static API price sheet (USD/image).
FEE_PER_IMAGE_USD = 0.007


@dataclass(frozen=True)
class StreetViewImage:
    """One successfully served street-view capture."""

    location: LatLon
    heading: int
    size: int
    pixels: np.ndarray | None
    scene: Scene
    pano_id: str

    def require_pixels(self) -> np.ndarray:
        """Pixels, rendering on demand if the fetch deferred them."""
        if self.pixels is not None:
            return self.pixels
        return render_scene(self.scene, self.size)


@dataclass
class StageUsage:
    """One labeled bucket of metered usage (requests/fees/tokens)."""

    requests: int = 0
    images: int = 0
    fees_usd: float = 0.0
    prompt_tokens: int = 0
    completion_tokens: int = 0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "images": self.images,
            "fees_usd": round(self.fees_usd, 9),
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
        }


#: Stage label for plain imagery billing (the only stage GSV itself
#: records; cascade tiers add their own labels on their own meters).
IMAGERY_STAGE = "imagery"


@dataclass
class UsageMeter:
    """Tracks request counts and accumulated fees for one API key.

    Metering is lock-guarded: parallel surveys hit one meter from
    every worker, and billing must not lose increments to races.

    Usage additionally lands in per-stage labeled buckets
    (``stages``): previously every consumer's spend collapsed into one
    undifferentiated pot, so a frontier table could not attribute fees
    to detector vs LLM vs ensemble tiers, and
    :func:`repro.obs.audit.reconcile_survey` had nothing to reconcile
    the split against.  The headline totals (``requests`` /
    ``images_served`` / ``fees_usd``) remain the sum over imagery
    exactly as before — stage buckets are attribution, not new billing.
    """

    requests: int = 0
    images_served: int = 0
    fees_usd: float = 0.0
    stages: dict[str, StageUsage] = field(default_factory=dict)
    _lock: threading.Lock = field(
        init=False, repr=False, compare=False, default_factory=threading.Lock
    )

    def record_image(self, stage: str = IMAGERY_STAGE) -> None:
        with self._lock:
            self.requests += 1
            self.images_served += 1
            self.fees_usd += FEE_PER_IMAGE_USD
            bucket = self.stages.setdefault(stage, StageUsage())
            bucket.requests += 1
            bucket.images += 1
            bucket.fees_usd += FEE_PER_IMAGE_USD

    def record_metadata(self) -> None:
        # Metadata requests are free, matching the real API.
        with self._lock:
            self.requests += 1

    def record_stage(
        self,
        stage: str,
        *,
        requests: int = 0,
        images: int = 0,
        fees_usd: float = 0.0,
        prompt_tokens: int = 0,
        completion_tokens: int = 0,
    ) -> None:
        """Book non-imagery usage into a labeled stage bucket.

        Used by the cascade router to attribute per-tier LLM fees and
        tokens; stage fees never touch ``fees_usd`` (which remains the
        imagery bill the survey report carries).
        """
        with self._lock:
            bucket = self.stages.setdefault(stage, StageUsage())
            bucket.requests += requests
            bucket.images += images
            bucket.fees_usd += fees_usd
            bucket.prompt_tokens += prompt_tokens
            bucket.completion_tokens += completion_tokens

    def stage_totals(self) -> dict[str, dict]:
        """JSON-ready snapshot of the stage buckets, sorted by label."""
        with self._lock:
            return {
                stage: self.stages[stage].as_dict()
                for stage in sorted(self.stages)
            }


@dataclass
class StreetViewClient:
    """Simulated GSV Static API client bound to a synthetic world.

    Parameters
    ----------
    counties:
        The synthetic counties with imagery coverage.
    api_key:
        Any non-empty string is a valid key; each key has its own
        quota and usage meter.
    daily_quota:
        Maximum billable images per key (``None`` = unlimited).
    failure_rate:
        Probability that a request raises ``TransientNetworkError``
        before being served; exercises caller retry logic.
    fault_schedule:
        Optional scripted faults (deterministic bursts, sustained
        outages, quota cliffs) consulted before ``failure_rate``; see
        :class:`~repro.resilience.faults.FaultSchedule`.
    generator_seed:
        Seed for the procedural world behind the camera.
    latency_s:
        Simulated per-request transport latency, slept through
        ``clock`` before a request is served.  Models the network
        round-trip of the real Static API; this is the time a parallel
        survey overlaps.
    render_cache:
        Optional content-addressed :class:`~repro.scene.render.RenderCache`;
        repeated captures of the same scene skip rasterization.
    """

    counties: list[County]
    api_key: str = "test-key"
    daily_quota: int | None = None
    failure_rate: float = 0.0
    fault_schedule: FaultSchedule | None = None
    generator_seed: int = 0
    latency_s: float = 0.0
    clock: Clock = field(default_factory=WallClock)
    render_cache: RenderCache | None = None
    _meters: dict[str, UsageMeter] = field(default_factory=dict)
    _generator: SceneGenerator = field(init=False)
    _failure_rng: np.random.Generator = field(init=False)
    _fault_lock: threading.Lock = field(
        init=False, repr=False, compare=False, default_factory=threading.Lock
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError(f"failure rate out of range: {self.failure_rate}")
        if self.latency_s < 0:
            raise ValueError(f"latency must be non-negative: {self.latency_s}")
        self._generator = SceneGenerator(seed=self.generator_seed)
        self._failure_rng = np.random.default_rng(
            stable_seed("gsv-failures", self.generator_seed)
        )

    # ------------------------------------------------------------------

    def usage(self, api_key: str | None = None) -> UsageMeter:
        """The usage meter for a key (default: the client's own key)."""
        key = api_key if api_key is not None else self.api_key
        return self._meters.setdefault(key, UsageMeter())

    def metadata(self, location: LatLon) -> dict:
        """Free metadata lookup: is imagery available here?

        Mirrors the GSV metadata endpoint's ``status`` field.
        """
        self._check_key()
        self.usage().record_metadata()
        county = self._county_for(location)
        if county is None:
            return {"status": "ZERO_RESULTS"}
        return {
            "status": "OK",
            "copyright": "© synthetic imagery",
            "location": {"lat": location.lat, "lng": location.lon},
        }

    def fetch(
        self,
        location: LatLon,
        heading: int,
        size: int = DEFAULT_SIZE,
        road_class: RoadClass = RoadClass.LOCAL,
        road_bearing: float | None = None,
        render: bool = True,
    ) -> StreetViewImage:
        """Serve one street-view image.

        ``road_class``/``road_bearing`` describe the roadway the
        camera stands on; when fetching from a sampling frame prefer
        :meth:`fetch_capture`, which carries them automatically.
        With ``render=False`` the response defers rasterization (the
        scene and billing are identical; call ``require_pixels`` when
        the pixels are actually needed).
        """
        metrics = get_metrics()
        with get_tracer().span(
            "gsv.fetch", heading=int(heading), render=render
        ) as span:
            metrics.inc("gsv.requests")
            self._check_key()
            self._check_quota()
            self._maybe_fail()
            if self.latency_s > 0:
                self.clock.sleep(self.latency_s)
            heading = int(normalize_heading(heading))
            if heading not in CARDINAL_HEADINGS:
                raise ValueError(
                    f"heading must be one of {CARDINAL_HEADINGS}: {heading}"
                )
            county = self._county_for(location)
            if county is None:
                raise NoImageryError(
                    f"no imagery at ({location.lat:.5f}, {location.lon:.5f})"
                )
            zone = county.zone_at(location)
            pano_id = self._pano_id(location, heading)
            span.set(pano_id=pano_id)
            scene = self._generator.generate(
                scene_id=pano_id,
                zone_kind=zone.kind,
                road_class=road_class,
                heading=heading,
                road_bearing=(
                    road_bearing
                    if road_bearing is not None
                    else float(heading)
                ),
                county=county.name,
                latitude=location.lat,
                longitude=location.lon,
            )
            if not render:
                pixels = None
            else:
                with get_tracer().span("gsv.render", size=size):
                    metrics.inc("gsv.renders")
                    if self.render_cache is not None:
                        pixels = self.render_cache.get_or_render(scene, size)
                    else:
                        pixels = render_scene(scene, size)
            self.usage().record_image()
            metrics.inc("gsv.images_served")
            return StreetViewImage(
                location=location,
                heading=heading,
                size=size,
                pixels=pixels,
                scene=scene,
                pano_id=pano_id,
            )

    def fetch_capture(
        self,
        capture: CaptureRequest,
        size: int = DEFAULT_SIZE,
        render: bool = True,
    ) -> StreetViewImage:
        """Serve the image for a sampling-frame capture request."""
        point: SamplePoint = capture.point
        return self.fetch(
            location=point.location,
            heading=capture.heading,
            size=size,
            road_class=point.road_class,
            road_bearing=point.road_bearing,
            render=render,
        )

    # ------------------------------------------------------------------

    def _check_key(self) -> None:
        if not self.api_key or not self.api_key.strip():
            raise AuthenticationError("missing API key")

    def _check_quota(self) -> None:
        if self.daily_quota is None:
            return
        if self.usage().images_served >= self.daily_quota:
            raise QuotaExceededError(
                f"daily quota of {self.daily_quota} images exhausted"
            )

    def _maybe_fail(self) -> None:
        # Both the fault schedule and the failure RNG are stateful and
        # shared by every worker; advance them under one lock.
        with self._fault_lock:
            if self.fault_schedule is not None:
                self.fault_schedule.check()
            if (
                self.failure_rate > 0
                and self._failure_rng.random() < self.failure_rate
            ):
                get_metrics().inc("gsv.transient_failures")
                raise TransientNetworkError("simulated transport failure")

    #: Imagery coverage extends slightly past the county rectangle —
    #: road-network jitter can push boundary nodes just outside it.
    _COVERAGE_MARGIN_DEG = 0.03

    def _county_for(self, location: LatLon) -> County | None:
        margin = self._COVERAGE_MARGIN_DEG
        for county in self.counties:
            if (
                county.south - margin <= location.lat <= county.north + margin
                and county.west - margin <= location.lon <= county.east + margin
            ):
                return county
        return None

    @staticmethod
    def _pano_id(location: LatLon, heading: int) -> str:
        return (
            f"pano_{location.lat:.6f}_{location.lon:.6f}_{heading:03d}"
        )


def zone_kind_at(counties: list[County], location: LatLon) -> ZoneKind | None:
    """Convenience lookup of the zone kind at a location, if covered."""
    for county in counties:
        if (
            county.south <= location.lat <= county.north
            and county.west <= location.lon <= county.east
        ):
            return county.zone_at(location).kind
    return None
