"""LabelMe-compatible annotation I/O.

The paper's undergraduate annotator used the LabelMe tool [35] to draw
1,927 indicator boxes over 1,200 images.  This module writes and reads
the LabelMe JSON flavor (``version``/``shapes``/``imagePath`` with
rectangle shapes in pixel coordinates) so annotations round-trip
through the same format, and provides a label-noise model for the
human-error discussion in Section V.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.indicators import Indicator
from ..scene.model import BoundingBox, Scene

LABELME_VERSION = "5.4.1"


@dataclass(frozen=True)
class LabelMeShape:
    """One rectangle annotation in pixel coordinates."""

    label: str
    x0: float
    y0: float
    x1: float
    y1: float

    def to_json(self) -> dict:
        return {
            "label": self.label,
            "points": [[self.x0, self.y0], [self.x1, self.y1]],
            "group_id": None,
            "shape_type": "rectangle",
            "flags": {},
        }

    @classmethod
    def from_json(cls, payload: dict) -> "LabelMeShape":
        if payload.get("shape_type") != "rectangle":
            raise ValueError(
                f"unsupported shape type: {payload.get('shape_type')!r}"
            )
        (xa, ya), (xb, yb) = payload["points"]
        return cls(
            label=payload["label"],
            x0=min(xa, xb),
            y0=min(ya, yb),
            x1=max(xa, xb),
            y1=max(ya, yb),
        )


def scene_to_labelme(
    scene: Scene, image_path: str, width: int, height: int
) -> dict:
    """Serialize a scene's ground truth as a LabelMe JSON document."""
    shapes = []
    for obj in scene.objects:
        x0, y0, x1, y1 = obj.box.to_pixels(width, height)
        shapes.append(
            LabelMeShape(
                label=obj.indicator.value,
                x0=float(x0),
                y0=float(y0),
                x1=float(x1),
                y1=float(y1),
            ).to_json()
        )
    return {
        "version": LABELME_VERSION,
        "flags": {},
        "shapes": shapes,
        "imagePath": image_path,
        "imageData": None,
        "imageHeight": height,
        "imageWidth": width,
    }


def labelme_to_annotations(
    payload: dict,
) -> list[tuple[Indicator, BoundingBox]]:
    """Parse a LabelMe document into (indicator, normalized box) pairs."""
    width = int(payload["imageWidth"])
    height = int(payload["imageHeight"])
    if width <= 0 or height <= 0:
        raise ValueError("LabelMe document has invalid image dimensions")
    annotations = []
    for raw in payload.get("shapes", ()):
        shape = LabelMeShape.from_json(raw)
        indicator = Indicator.from_string(shape.label)
        annotations.append(
            (
                indicator,
                BoundingBox.from_pixels(
                    shape.x0, shape.y0, shape.x1, shape.y1, width, height
                ),
            )
        )
    return annotations


def save_labelme(document: dict, path: str | Path) -> None:
    """Write a LabelMe document to disk."""
    Path(path).write_text(json.dumps(document, indent=2))


def load_labelme(path: str | Path) -> dict:
    """Read a LabelMe document from disk."""
    return json.loads(Path(path).read_text())


def perturb_annotations(
    annotations: list[tuple[Indicator, BoundingBox]],
    rng: np.random.Generator,
    jitter: float = 0.01,
    miss_rate: float = 0.02,
    mislabel_rate: float = 0.01,
) -> list[tuple[Indicator, BoundingBox]]:
    """Apply a human-annotator error model to ground-truth boxes.

    Models the three realistic failure modes the paper's Section V
    worries about: imprecise box corners (``jitter``, as a fraction of
    the image), missed objects (``miss_rate``), and wrong class labels
    (``mislabel_rate``).
    """
    if jitter < 0 or miss_rate < 0 or mislabel_rate < 0:
        raise ValueError("error rates must be non-negative")
    indicators = list(Indicator)
    noisy = []
    for indicator, box in annotations:
        if rng.random() < miss_rate:
            continue
        if rng.random() < mislabel_rate:
            others = [ind for ind in indicators if ind != indicator]
            indicator = others[int(rng.integers(len(others)))]
        if jitter > 0:
            dx0, dy0, dx1, dy1 = rng.normal(0.0, jitter, size=4)
            x0 = float(np.clip(box.x_min + dx0, 0.0, 0.99))
            y0 = float(np.clip(box.y_min + dy0, 0.0, 0.99))
            x1 = float(np.clip(box.x_max + dx1, x0 + 1e-3, 1.0))
            y1 = float(np.clip(box.y_max + dy1, y0 + 1e-3, 1.0))
            box = BoundingBox(x0, y0, x1, y1)
        noisy.append((indicator, box))
    return noisy
