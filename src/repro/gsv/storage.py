"""Survey dataset persistence.

A labeled survey is an expensive artifact (billed imagery + annotation
effort in the real world); pipelines persist it and reload across
sessions.  The on-disk layout mirrors what a LabelMe-based project
looks like::

    <root>/
      manifest.json            # dataset metadata + scene descriptions
      annotations/<id>.json    # one LabelMe document per image

Scenes serialize losslessly (objects, distractors, attributes), so a
reloaded dataset renders pixel-identical imagery; the LabelMe files
are redundant with the manifest but keep the directory usable by
external annotation tooling.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.indicators import Indicator
from ..scene.model import (
    BoundingBox,
    Distractor,
    RoadView,
    Scene,
    SceneObject,
)
from .dataset import LabeledImage, SurveyDataset
from .labelme import save_labelme, scene_to_labelme

FORMAT_VERSION = 1


def _box_to_json(box: BoundingBox) -> list[float]:
    return [box.x_min, box.y_min, box.x_max, box.y_max]


def _box_from_json(payload: list[float]) -> BoundingBox:
    return BoundingBox(*payload)


def scene_to_json(scene: Scene) -> dict:
    """Lossless scene serialization."""
    return {
        "scene_id": scene.scene_id,
        "objects": [
            {
                "indicator": obj.indicator.value,
                "box": _box_to_json(obj.box),
                "occlusion": obj.occlusion,
                "contrast": obj.contrast,
                "attributes": obj.attributes,
            }
            for obj in scene.objects
        ],
        "distractors": [
            {
                "kind": distractor.kind,
                "box": _box_to_json(distractor.box),
                "attributes": distractor.attributes,
            }
            for distractor in scene.distractors
        ],
        "road_view": scene.road_view.value,
        "zone_kind": scene.zone_kind,
        "county": scene.county,
        "heading": scene.heading,
        "latitude": scene.latitude,
        "longitude": scene.longitude,
        "daylight": scene.daylight,
        "clutter": scene.clutter,
    }


def scene_from_json(payload: dict) -> Scene:
    """Inverse of :func:`scene_to_json`."""
    return Scene(
        scene_id=payload["scene_id"],
        objects=tuple(
            SceneObject(
                indicator=Indicator.from_string(obj["indicator"]),
                box=_box_from_json(obj["box"]),
                occlusion=obj["occlusion"],
                contrast=obj["contrast"],
                attributes=dict(obj["attributes"]),
            )
            for obj in payload["objects"]
        ),
        distractors=tuple(
            Distractor(
                kind=distractor["kind"],
                box=_box_from_json(distractor["box"]),
                attributes=dict(distractor["attributes"]),
            )
            for distractor in payload["distractors"]
        ),
        road_view=RoadView(payload["road_view"]),
        zone_kind=payload["zone_kind"],
        county=payload["county"],
        heading=payload["heading"],
        latitude=payload["latitude"],
        longitude=payload["longitude"],
        daylight=payload["daylight"],
        clutter=payload["clutter"],
    )


def save_dataset(dataset: SurveyDataset, root: str | Path) -> Path:
    """Persist a survey dataset; returns the manifest path."""
    root = Path(root)
    annotations_dir = root / "annotations"
    annotations_dir.mkdir(parents=True, exist_ok=True)

    images = []
    for image in dataset.images:
        images.append(
            {
                "image_id": image.image_id,
                "size": image.size,
                "scene": scene_to_json(image.scene),
                "annotations": [
                    {
                        "indicator": indicator.value,
                        "box": _box_to_json(box),
                    }
                    for indicator, box in image.annotations
                ],
            }
        )
        save_labelme(
            scene_to_labelme(
                image.scene,
                f"{image.image_id}.png",
                image.size,
                image.size,
            ),
            annotations_dir / f"{image.image_id}.json",
        )

    manifest = {
        "format_version": FORMAT_VERSION,
        "counties": dataset.counties,
        "seed": dataset.seed,
        "images": images,
    }
    manifest_path = root / "manifest.json"
    manifest_path.write_text(json.dumps(manifest))
    return manifest_path


def load_dataset(root: str | Path) -> SurveyDataset:
    """Reload a persisted survey dataset."""
    manifest_path = Path(root) / "manifest.json"
    if not manifest_path.exists():
        raise FileNotFoundError(f"no manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text())
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported dataset format version: {version!r}"
        )
    images = [
        LabeledImage(
            image_id=entry["image_id"],
            scene=scene_from_json(entry["scene"]),
            annotations=tuple(
                (
                    Indicator.from_string(annotation["indicator"]),
                    _box_from_json(annotation["box"]),
                )
                for annotation in entry["annotations"]
            ),
            size=entry["size"],
        )
        for entry in manifest["images"]
    ]
    return SurveyDataset(
        images=images,
        counties=list(manifest["counties"]),
        seed=manifest["seed"],
    )
