"""Street-view service substrate: simulated GSV API, LabelMe I/O, datasets."""

from .api import (
    FEE_PER_IMAGE_USD,
    AuthenticationError,
    NoImageryError,
    QuotaExceededError,
    StreetViewClient,
    StreetViewError,
    StreetViewImage,
    TransientNetworkError,
    UsageMeter,
    zone_kind_at,
)
from .dataset import (
    DatasetSplits,
    LabeledImage,
    SurveyDataset,
    augment_training_set,
    build_survey_dataset,
    cropped_image,
    rotated_image,
)
from .storage import (
    load_dataset,
    save_dataset,
    scene_from_json,
    scene_to_json,
)
from .labelme import (
    LABELME_VERSION,
    LabelMeShape,
    labelme_to_annotations,
    load_labelme,
    perturb_annotations,
    save_labelme,
    scene_to_labelme,
)

__all__ = [
    "FEE_PER_IMAGE_USD",
    "AuthenticationError",
    "NoImageryError",
    "QuotaExceededError",
    "StreetViewClient",
    "StreetViewError",
    "StreetViewImage",
    "TransientNetworkError",
    "UsageMeter",
    "zone_kind_at",
    "DatasetSplits",
    "LabeledImage",
    "SurveyDataset",
    "augment_training_set",
    "build_survey_dataset",
    "cropped_image",
    "rotated_image",
    "load_dataset",
    "save_dataset",
    "scene_from_json",
    "scene_to_json",
    "LABELME_VERSION",
    "LabelMeShape",
    "labelme_to_annotations",
    "load_labelme",
    "perturb_annotations",
    "save_labelme",
    "scene_to_labelme",
]
