"""Survey dataset assembly: the paper's 1,200-image collection.

Builds the study dataset end-to-end through the same path the paper
used: generate the two-county world, segment all roadways at 50-foot
intervals, randomly select survey locations, request one image per
cardinal heading from the (simulated) GSV API, and attach
ground-truth annotations in LabelMe semantics.

Images are *lazy*: a :class:`LabeledImage` holds the scene and renders
pixels on demand, so a full 1,200 × 640×640 dataset costs megabytes
instead of gigabytes until a consumer actually needs pixels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.indicators import (
    ALL_INDICATORS,
    Indicator,
    IndicatorPresence,
    PAPER_OBJECT_COUNTS,
)
from ..geo.county import County, study_counties
from ..geo.roadnet import build_road_network
from ..geo.sampling import (
    build_sampling_frame,
    expand_to_captures,
    select_survey_locations,
)
from ..scene.model import BoundingBox, Scene
from ..scene.render import DEFAULT_SIZE, render_scene
from .api import StreetViewClient

Annotation = tuple[Indicator, BoundingBox]


@dataclass(frozen=True)
class LabeledImage:
    """One survey image with its ground-truth annotations.

    ``render_ops`` is a pipeline of pixel-space transforms applied
    after rasterization (used by the augmentation experiments so
    rotated/cropped copies stay lazy):
    ``("rot", degrees)`` or ``("crop", x0, y0, x1, y1)`` in normalized
    window coordinates.  ``occupancy`` optionally overrides the
    training-target footprints for transformed annotations.
    """

    image_id: str
    scene: Scene
    annotations: tuple[Annotation, ...]
    size: int = DEFAULT_SIZE
    render_ops: tuple = ()
    occupancy: tuple | None = None

    @property
    def presence(self) -> IndicatorPresence:
        """Image-level presence derived from the annotations."""
        return IndicatorPresence(ind for ind, _ in self.annotations)

    def render(self, size: int | None = None) -> np.ndarray:
        """Rasterize the image (lazy; deterministic per scene)."""
        from ..scene.augment import resize_nearest, rotate_image

        pixels = render_scene(
            self.scene, size if size is not None else self.size
        )
        for op in self.render_ops:
            if op[0] == "rot":
                pixels = rotate_image(pixels, op[1])
            elif op[0] == "crop":
                _, x0, y0, x1, y1 = op
                height, width = pixels.shape[:2]
                window = pixels[
                    int(y0 * height) : int(y1 * height),
                    int(x0 * width) : int(x1 * width),
                ]
                pixels = resize_nearest(window, height, width)
            else:
                raise ValueError(f"unknown render op: {op[0]!r}")
        return pixels

    def count_of(self, indicator: Indicator) -> int:
        return sum(1 for ind, _ in self.annotations if ind == indicator)


@dataclass
class DatasetSplits:
    """The paper's 70/20/10 train/validation/test partition."""

    train: list[LabeledImage]
    val: list[LabeledImage]
    test: list[LabeledImage]

    def __post_init__(self) -> None:
        ids = [img.image_id for part in (self.train, self.val, self.test) for img in part]
        if len(ids) != len(set(ids)):
            raise ValueError("splits overlap: duplicate image ids")

    @property
    def total(self) -> int:
        return len(self.train) + len(self.val) + len(self.test)


@dataclass
class SurveyDataset:
    """The assembled survey: images, annotations, and provenance."""

    images: list[LabeledImage]
    counties: list[str] = field(default_factory=list)
    seed: int = 0

    def __len__(self) -> int:
        return len(self.images)

    def __iter__(self):
        return iter(self.images)

    def __getitem__(self, index: int) -> LabeledImage:
        return self.images[index]

    def object_counts(self) -> dict[Indicator, int]:
        """Total labeled objects per indicator (Section IV-A numbers)."""
        counts = {ind: 0 for ind in ALL_INDICATORS}
        for image in self.images:
            for indicator, _ in image.annotations:
                counts[indicator] += 1
        return counts

    def presence_counts(self) -> dict[Indicator, int]:
        """Number of images where each indicator is present."""
        counts = {ind: 0 for ind in ALL_INDICATORS}
        for image in self.images:
            for indicator in image.presence.present:
                counts[indicator] += 1
        return counts

    def prevalence(self) -> dict[Indicator, float]:
        """Image-level presence rate per indicator."""
        if not self.images:
            return {ind: 0.0 for ind in ALL_INDICATORS}
        counts = self.presence_counts()
        return {ind: counts[ind] / len(self.images) for ind in ALL_INDICATORS}

    def presence_matrix(self) -> np.ndarray:
        """Boolean matrix ``(n_images, 6)`` in canonical indicator order."""
        return np.array(
            [image.presence.as_vector() for image in self.images], dtype=bool
        )

    def split(
        self,
        train: float = 0.70,
        val: float = 0.20,
        test: float = 0.10,
        seed: int = 0,
    ) -> DatasetSplits:
        """Stratified 70/20/10 split.

        The paper notes "the samples for each indicator are evenly
        distributed" across splits; we stratify by the full presence
        signature (which indicator combination an image carries) and
        deal each stratum round-robin into shuffled buckets, so every
        split sees every signature in proportion.
        """
        if not np.isclose(train + val + test, 1.0):
            raise ValueError("split fractions must sum to 1")
        if min(train, val, test) <= 0:
            raise ValueError("all split fractions must be positive")
        rng = np.random.default_rng(seed)
        by_signature: dict[tuple[bool, ...], list[LabeledImage]] = {}
        for image in self.images:
            by_signature.setdefault(image.presence.as_vector(), []).append(image)

        buckets: dict[str, list[LabeledImage]] = {"train": [], "val": [], "test": []}
        quota = {"train": train, "val": val, "test": test}
        for signature in sorted(by_signature):
            group = by_signature[signature]
            order = rng.permutation(len(group))
            for rank, index in enumerate(order):
                # Largest-deficit assignment keeps every stratum near
                # its target fractions even for tiny strata.
                assigned = {
                    name: len(buckets[name]) for name in buckets
                }
                total_assigned = sum(assigned.values()) or 1
                deficits = {
                    name: quota[name] - assigned[name] / total_assigned
                    for name in buckets
                }
                target = max(sorted(deficits), key=lambda n: deficits[n])
                buckets[target].append(group[int(index)])
        return DatasetSplits(
            train=buckets["train"], val=buckets["val"], test=buckets["test"]
        )

    def calibration_report(self) -> dict[str, dict[str, float]]:
        """Compare this dataset's object counts to the paper's.

        Returns per-indicator ``{"ours", "paper", "ratio"}`` entries —
        used by tests and benches to confirm the synthetic survey
        approximates the published prevalence.
        """
        ours = self.object_counts()
        scale = len(self.images) / 1200.0 if self.images else 1.0
        report = {}
        for indicator in ALL_INDICATORS:
            paper = PAPER_OBJECT_COUNTS[indicator] * scale
            report[indicator.value] = {
                "ours": float(ours[indicator]),
                "paper": float(paper),
                "ratio": float(ours[indicator]) / paper if paper else float("nan"),
            }
        return report


def _render_one(payload) -> np.ndarray:
    """Process-pool worker: rasterize one labeled image."""
    image, size = payload
    return image.render(size)


def render_images(
    images: list[LabeledImage],
    size: int | None = None,
    workers: int | str = 1,
) -> list[np.ndarray]:
    """Rasterize many labeled images, optionally across processes.

    Rendering is the painter's algorithm over pure numpy — CPU-bound
    work the GIL serializes — so ``workers > 1`` uses the process
    backend.  Results come back in input order and are byte-identical
    to calling ``image.render()`` serially (rendering is deterministic
    per scene).
    """
    from ..parallel import ParallelExecutor

    executor = ParallelExecutor(workers=workers, cpu_bound=True)
    return executor.map_results(_render_one, [(image, size) for image in images])


def rotated_image(image: LabeledImage, degrees: int) -> LabeledImage:
    """A lazily rotated copy of a labeled image (Fig. 2 augmentation)."""
    from ..scene.augment import rotate_box
    from ..scene.occupancy import occupancy_boxes

    annotations = tuple(
        (indicator, rotate_box(box, degrees))
        for indicator, box in image.annotations
    )
    occupancy = tuple(
        (
            obj.indicator,
            rotate_box(obj.box, degrees),
            tuple(rotate_box(part, degrees) for part in occupancy_boxes(obj)),
        )
        for obj in image.scene.objects
    )
    return LabeledImage(
        image_id=f"{image.image_id}_rot{degrees}",
        scene=image.scene,
        annotations=annotations,
        size=image.size,
        render_ops=image.render_ops + (("rot", degrees),),
        occupancy=occupancy,
    )


def cropped_image(
    image: LabeledImage,
    rng: np.random.Generator,
    crop_fraction: float = 0.30,
    min_visible: float = 0.25,
) -> LabeledImage:
    """A lazily cropped copy removing ``crop_fraction`` of the area."""
    from ..scene.occupancy import occupancy_boxes

    keep = float(np.sqrt(1.0 - crop_fraction))
    x0 = float(rng.uniform(0.0, 1.0 - keep))
    y0 = float(rng.uniform(0.0, 1.0 - keep))
    x1, y1 = x0 + keep, y0 + keep

    def transform(box: BoundingBox) -> BoundingBox | None:
        ix0, iy0 = max(box.x_min, x0), max(box.y_min, y0)
        ix1, iy1 = min(box.x_max, x1), min(box.y_max, y1)
        if ix1 <= ix0 or iy1 <= iy0:
            return None
        visible = (ix1 - ix0) * (iy1 - iy0) / box.area
        if visible < min_visible:
            return None
        return BoundingBox(
            (ix0 - x0) / keep,
            (iy0 - y0) / keep,
            min(1.0, (ix1 - x0) / keep),
            min(1.0, (iy1 - y0) / keep),
        )

    annotations = []
    occupancy = []
    for obj in image.scene.objects:
        new_box = transform(obj.box)
        if new_box is None:
            continue
        parts = [
            part
            for part in (transform(p) for p in occupancy_boxes(obj))
            if part is not None
        ]
        annotations.append((obj.indicator, new_box))
        occupancy.append((obj.indicator, new_box, tuple(parts) or (new_box,)))
    return LabeledImage(
        image_id=f"{image.image_id}_crop",
        scene=image.scene,
        annotations=tuple(annotations),
        size=image.size,
        render_ops=image.render_ops + (("crop", x0, y0, x1, y1),),
        occupancy=tuple(occupancy),
    )


def augment_training_set(
    images: list[LabeledImage],
    rotations: tuple[int, ...] = (90, 180, 270),
    add_crops: bool = False,
    seed: int = 0,
) -> list[LabeledImage]:
    """The paper's Fig. 2 augmentation: rotations, optionally + crops."""
    rng = np.random.default_rng(seed)
    augmented = list(images)
    for image in images:
        for degrees in rotations:
            augmented.append(rotated_image(image, degrees))
        if add_crops:
            augmented.append(cropped_image(image, rng))
    return augmented


def build_survey_dataset(
    n_images: int = 1200,
    size: int = DEFAULT_SIZE,
    seed: int = 0,
    counties: list[County] | None = None,
    client: StreetViewClient | None = None,
) -> SurveyDataset:
    """Assemble the survey dataset via the (simulated) GSV API.

    ``n_images`` must be a multiple of 4 (one image per cardinal
    heading at each sampled location).  Scenes and annotations are
    deterministic in ``seed``.
    """
    if n_images <= 0 or n_images % 4 != 0:
        raise ValueError(f"n_images must be a positive multiple of 4: {n_images}")
    if counties is None:
        counties = study_counties(seed=seed + 7)
    if client is None:
        client = StreetViewClient(
            counties=counties, api_key="survey-key", generator_seed=seed
        )

    frames = {}
    for index, county in enumerate(counties):
        graph = build_road_network(county, seed=seed + 13 * (index + 1))
        frames[county.name] = build_sampling_frame(county, graph)
    locations = select_survey_locations(frames, n_images // 4, seed=seed + 29)
    captures = expand_to_captures(locations)

    images = []
    for index, capture in enumerate(captures):
        served = client.fetch_capture(capture, size=size, render=False)
        annotations = tuple(
            (obj.indicator, obj.box) for obj in served.scene.objects
        )
        images.append(
            LabeledImage(
                image_id=f"img_{index:05d}",
                scene=served.scene,
                annotations=annotations,
                size=size,
            )
        )
    return SurveyDataset(
        images=images,
        counties=[county.name for county in counties],
        seed=seed,
    )
