"""Published per-model statistics used as calibration targets.

These constants transcribe the paper's Appendix A (Tables III–VI),
the prompt-structure experiment (Fig. 4), and the prompt-language
experiment (Fig. 6 / §IV-C3).  The simulated models are *fitted to
reproduce these operating points* on the synthetic dataset — see
:mod:`repro.llm.calibration` and DESIGN.md §1 for the rationale.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.indicators import Indicator
from .language import Language


@dataclass(frozen=True)
class ClassTarget:
    """Precision/recall operating point for one model on one class."""

    precision: float
    recall: float


#: Canonical API-style model identifiers.
GPT_4O_MINI = "gpt-4o-mini"
GEMINI_15_PRO = "gemini-1.5-pro"
CLAUDE_37 = "claude-3.7"
GROK_2 = "grok-2"

ALL_MODEL_IDS = (GPT_4O_MINI, GEMINI_15_PRO, CLAUDE_37, GROK_2)

DISPLAY_NAMES = {
    GPT_4O_MINI: "ChatGPT 4o mini",
    GEMINI_15_PRO: "Gemini 1.5 Pro",
    CLAUDE_37: "Claude 3.7",
    GROK_2: "Grok 2",
}

#: Tables III–VI: per-class precision/recall with the parallel prompt.
PAPER_LLM_METRICS: dict[str, dict[Indicator, ClassTarget]] = {
    GPT_4O_MINI: {
        Indicator.STREETLIGHT: ClassTarget(0.61, 0.84),
        Indicator.SIDEWALK: ClassTarget(0.80, 0.82),
        Indicator.SINGLE_LANE_ROAD: ClassTarget(0.49, 0.98),
        Indicator.MULTILANE_ROAD: ClassTarget(0.97, 0.87),
        Indicator.POWERLINE: ClassTarget(0.75, 0.94),
        Indicator.APARTMENT: ClassTarget(0.32, 1.00),
    },
    GEMINI_15_PRO: {
        Indicator.STREETLIGHT: ClassTarget(0.76, 0.96),
        Indicator.SIDEWALK: ClassTarget(0.96, 0.59),
        Indicator.SINGLE_LANE_ROAD: ClassTarget(0.55, 0.89),
        Indicator.MULTILANE_ROAD: ClassTarget(0.89, 0.98),
        Indicator.POWERLINE: ClassTarget(0.91, 0.96),
        Indicator.APARTMENT: ClassTarget(0.57, 1.00),
    },
    CLAUDE_37: {
        Indicator.STREETLIGHT: ClassTarget(0.83, 0.76),
        Indicator.SIDEWALK: ClassTarget(0.76, 0.80),
        Indicator.SINGLE_LANE_ROAD: ClassTarget(0.52, 0.99),
        Indicator.MULTILANE_ROAD: ClassTarget(0.98, 0.85),
        Indicator.POWERLINE: ClassTarget(0.69, 0.99),
        Indicator.APARTMENT: ClassTarget(0.54, 1.00),
    },
    GROK_2: {
        Indicator.STREETLIGHT: ClassTarget(0.76, 0.91),
        Indicator.SIDEWALK: ClassTarget(0.83, 0.92),
        Indicator.SINGLE_LANE_ROAD: ClassTarget(0.41, 0.99),
        Indicator.MULTILANE_ROAD: ClassTarget(0.98, 0.56),
        Indicator.POWERLINE: ClassTarget(0.82, 1.00),
        Indicator.APARTMENT: ClassTarget(0.69, 1.00),
    },
}

#: Fig. 4: average recall with parallel vs sequential prompts.
PAPER_PROMPT_STYLE_RECALL: dict[str, dict[str, float]] = {
    GEMINI_15_PRO: {"parallel": 0.92, "sequential": 0.80},
    GPT_4O_MINI: {"parallel": 0.83, "sequential": 0.79},
    # The paper only measured the style split for Gemini and ChatGPT;
    # the other two models are assigned the milder ChatGPT-like gap.
    CLAUDE_37: {"parallel": 0.90, "sequential": 0.855},
    GROK_2: {"parallel": 0.90, "sequential": 0.855},
}

#: Fig. 6: average recall per prompt language (Gemini 1.5 Pro).
PAPER_LANGUAGE_RECALL: dict[Language, float] = {
    Language.ENGLISH: 0.897,
    Language.BENGALI: 0.86,
    Language.SPANISH: 0.76,
    Language.CHINESE: 0.69,
}

#: §IV-C3: catastrophic per-class term-association failures.
PAPER_LANGUAGE_CLASS_OVERRIDES: dict[tuple[Language, Indicator], float] = {
    (Language.CHINESE, Indicator.SIDEWALK): 0.01,
    (Language.SPANISH, Indicator.SINGLE_LANE_ROAD): 0.18,
}

#: Fig. 5: average accuracy per model with the parallel prompt.
PAPER_MODEL_ACCURACY: dict[str, float] = {
    GPT_4O_MINI: 0.84,
    GEMINI_15_PRO: 0.88,
    CLAUDE_37: 0.86,
    GROK_2: 0.84,
}

#: §IV-C2: majority voting (Gemini + Claude + Grok) per-class accuracy.
PAPER_VOTING_ACCURACY: dict[Indicator, float] = {
    Indicator.STREETLIGHT: 0.9286,
    Indicator.SIDEWALK: 0.8491,
    Indicator.SINGLE_LANE_ROAD: 0.6819,
    Indicator.MULTILANE_ROAD: 0.9707,
    Indicator.POWERLINE: 0.9515,
    Indicator.APARTMENT: 0.9515,
}

#: §IV-C2: the top-3 models used in the majority vote.
VOTING_MODEL_IDS = (GEMINI_15_PRO, CLAUDE_37, GROK_2)

#: §IV-C4: Gemini F1 under temperature / top-p sweeps.
PAPER_TEMPERATURE_F1 = {0.1: 0.78, 1.0: 0.81, 1.5: 0.79}
PAPER_TOP_P_F1 = {0.5: 0.79, 0.75: 0.79, 0.95: 0.81}
