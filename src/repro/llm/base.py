"""Chat-completions API surface shared by all simulated VLM clients.

Mirrors the request/response shape of the commercial APIs the paper
used (OpenAI chat completions and its Gemini/Anthropic/xAI analogs):
messages with mixed text/image parts, sampling parameters
(``temperature``, ``top_p``), token-usage accounting, and a typed
error surface (:mod:`repro.llm.errors`).

An :class:`ImageAttachment` carries the *scene* behind the pixels —
the simulated model's perception layer reads scene ground truth
through a calibrated noisy channel rather than running a real neural
network over the raster (see DESIGN.md §1 for why this substitution
preserves the paper's observable behaviour).
"""

from __future__ import annotations

import abc
import threading
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ..scene.model import Scene

#: Default sampling parameters, matching the Gemini defaults the paper
#: reports (temperature 1.0, top-p 0.95).
DEFAULT_TEMPERATURE = 1.0
DEFAULT_TOP_P = 0.95

#: Flat per-image prompt-token surcharge (the common VLM convention).
IMAGE_PROMPT_TOKENS = 85


@dataclass(frozen=True)
class ImageAttachment:
    """An image part of a chat message.

    ``scene`` is required (it is what the simulated model perceives);
    ``pixels`` may be attached for API fidelity but is not consulted
    by the simulation.
    """

    scene: Scene
    pixels: np.ndarray | None = None

    @property
    def image_id(self) -> str:
        return self.scene.scene_id


@dataclass(frozen=True)
class ChatMessage:
    """One message in a conversation."""

    role: str
    text: str = ""
    images: tuple[ImageAttachment, ...] = ()

    def __post_init__(self) -> None:
        if self.role not in ("system", "user", "assistant"):
            raise ValueError(f"unknown role: {self.role!r}")


@dataclass(frozen=True)
class ChatRequest:
    """A chat-completion request."""

    model: str
    messages: tuple[ChatMessage, ...]
    temperature: float = DEFAULT_TEMPERATURE
    top_p: float = DEFAULT_TOP_P
    max_tokens: int = 256

    def __post_init__(self) -> None:
        if not self.messages:
            raise ValueError("request has no messages")
        if not 0.0 <= self.temperature <= 2.0:
            raise ValueError(f"temperature out of range: {self.temperature}")
        if not 0.0 < self.top_p <= 1.0:
            raise ValueError(f"top_p out of range: {self.top_p}")
        if self.max_tokens <= 0:
            raise ValueError(f"max_tokens must be positive: {self.max_tokens}")

    @property
    def user_text(self) -> str:
        """Concatenated text of all user messages."""
        return "\n".join(
            m.text for m in self.messages if m.role == "user" and m.text
        )

    @property
    def images(self) -> tuple[ImageAttachment, ...]:
        attachments: list[ImageAttachment] = []
        for message in self.messages:
            attachments.extend(message.images)
        return tuple(attachments)


@dataclass(frozen=True)
class Usage:
    """Token accounting for one request."""

    prompt_tokens: int
    completion_tokens: int

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


@dataclass(frozen=True)
class ChatResponse:
    """A chat-completion response."""

    model: str
    content: str
    usage: Usage
    finish_reason: str = "stop"


def estimate_prompt_tokens(request: ChatRequest) -> int:
    """Rough token estimate: ~4 characters per text token + images."""
    text_chars = sum(len(m.text) for m in request.messages)
    return max(1, text_chars // 4) + IMAGE_PROMPT_TOKENS * len(request.images)


@dataclass
class ClientStats:
    """Cumulative usage across a client's lifetime.

    Clients may serve several :class:`~repro.parallel.ParallelExecutor`
    workers at once, so recording is lock-guarded.
    """

    requests: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    errors: int = 0
    _lock: threading.Lock = field(
        init=False, repr=False, compare=False, default_factory=threading.Lock
    )

    def record(self, usage: Usage) -> None:
        with self._lock:
            self.requests += 1
            self.prompt_tokens += usage.prompt_tokens
            self.completion_tokens += usage.completion_tokens


class ChatClient(abc.ABC):
    """Abstract vision-chat client.

    Concrete implementations: the four simulated commercial models in
    :mod:`repro.llm.models`, plus any test double that honors the
    interface.
    """

    def __init__(self, model_name: str) -> None:
        self.model_name = model_name
        self.stats = ClientStats()

    @abc.abstractmethod
    def complete(self, request: ChatRequest) -> ChatResponse:
        """Execute one chat completion (may raise ``LLMError``)."""

    def complete_batch(
        self, requests: Sequence[ChatRequest]
    ) -> list[ChatResponse]:
        """Execute several completions as one dispatch window.

        The default is a plain serial loop, so every client supports
        batching without code changes; clients whose transport has a
        real batched endpoint (or a per-call latency worth amortizing)
        override this.  Responses come back in request order, and a
        failure raises just as :meth:`complete` would — callers that
        need per-request outcomes should use
        :class:`~repro.llm.batch.BatchRunner` instead.
        """
        return [self.complete(request) for request in requests]

    def ask(
        self,
        prompt: str,
        image: ImageAttachment,
        temperature: float = DEFAULT_TEMPERATURE,
        top_p: float = DEFAULT_TOP_P,
    ) -> str:
        """Convenience single-turn request; returns the response text."""
        request = ChatRequest(
            model=self.model_name,
            messages=(
                ChatMessage(role="user", text=prompt, images=(image,)),
            ),
            temperature=temperature,
            top_p=top_p,
        )
        return self.complete(request).content
