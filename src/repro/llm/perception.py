"""Shared visual-evidence model behind every simulated VLM.

The simulated models do not run a neural network over pixels; they
perceive the *scene* through a calibrated noisy channel.  For each
indicator this module produces an evidence score in ``[0, 1]``:

* **present** objects yield high evidence, attenuated by the factors
  that hide real objects from real VLMs — occlusion, low contrast,
  small apparent size, partial views;
* **absent** indicators yield low evidence, *raised by confusers*: a
  bare utility pole looks like a streetlight or powerline, a large
  house reads as an apartment block, and — the paper's headline error
  mode — any visible stretch of roadway suggests "single-lane road"
  regardless of the actual lane count.

Critically the evidence is **shared across models**: each model applies
its own response policy (threshold/slope, fitted to the paper's
published confusion statistics) to the *same* per-scene evidence, plus
a small idiosyncratic perturbation.  Cross-model errors are therefore
correlated through scene difficulty, which is exactly why the paper's
majority vote fails to rescue single-lane-road precision (§IV-C2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.indicators import ALL_INDICATORS, Indicator
from ..scene.model import RoadView, Scene, SceneObject
from ..scene.seeding import stable_seed

#: Standard deviation of the shared per-scene evidence noise.
SCENE_NOISE_SIGMA = 0.07


def _visibility(obj: SceneObject) -> float:
    """How visible an object instance is, in [0, 1]."""
    size_factor = min(1.0, 4.0 * np.sqrt(obj.box.area))
    return obj.contrast * (1.0 - obj.occlusion) * (0.35 + 0.65 * size_factor)


@dataclass
class EvidenceModel:
    """Deterministic scene→evidence mapping with shared noise.

    ``seed`` controls the shared noise channel; two models built on the
    same ``EvidenceModel`` see identical evidence for the same scene.
    """

    seed: int = 0
    noise_sigma: float = SCENE_NOISE_SIGMA

    def evidence(self, scene: Scene) -> dict[Indicator, float]:
        """Per-indicator visual evidence for one scene."""
        raw = {
            indicator: self._base_evidence(scene, indicator)
            for indicator in ALL_INDICATORS
        }
        noisy = {}
        for indicator, value in raw.items():
            rng = np.random.default_rng(
                stable_seed("evidence", self.seed, scene.scene_id, indicator.value)
            )
            shifted = value + float(rng.normal(0.0, self.noise_sigma))
            noisy[indicator] = float(np.clip(shifted, 0.01, 0.99))
        return noisy

    # ------------------------------------------------------------------

    def _base_evidence(self, scene: Scene, indicator: Indicator) -> float:
        objects = scene.objects_of(indicator)
        if objects:
            return self._present_evidence(scene, indicator, objects)
        return self._confuser_evidence(scene, indicator)

    def _present_evidence(
        self,
        scene: Scene,
        indicator: Indicator,
        objects: tuple[SceneObject, ...],
    ) -> float:
        visibility = max(_visibility(obj) for obj in objects)
        base = 0.55 + 0.42 * visibility
        if indicator in (Indicator.SINGLE_LANE_ROAD, Indicator.MULTILANE_ROAD):
            # Roads are unmissable, but a partial (across) view makes
            # the *lane count* ambiguous: multilane roads seen across
            # the frame lose evidence, single-lane roads do not (any
            # road fragment reads "single-lane" to the models).
            if scene.road_view is RoadView.ACROSS:
                if indicator is Indicator.MULTILANE_ROAD:
                    base -= 0.22
                else:
                    base += 0.05
        if indicator is Indicator.POWERLINE:
            thinness = max(
                float(obj.attributes.get("thinness", 0.7)) for obj in objects
            )
            base -= 0.10 * thinness
        return base

    def _confuser_evidence(self, scene: Scene, indicator: Indicator) -> float:
        has = scene.presence
        distractor_kinds = [d.kind for d in scene.distractors]
        large_house = any(
            d.kind == "house" and d.attributes.get("large")
            for d in scene.distractors
        )

        if indicator is Indicator.SINGLE_LANE_ROAD:
            # The paper's dominant failure: any visible roadway —
            # partial or even a full multilane view — pulls a
            # "single-lane" yes out of the models.
            if has[Indicator.MULTILANE_ROAD]:
                if scene.road_view is RoadView.ACROSS:
                    return 0.60
                return 0.52
            return 0.08

        if indicator is Indicator.MULTILANE_ROAD:
            if has[Indicator.SINGLE_LANE_ROAD]:
                return 0.30 if scene.road_view is RoadView.ACROSS else 0.22
            return 0.06

        if indicator is Indicator.STREETLIGHT:
            evidence = 0.06
            if "bare_pole" in distractor_kinds:
                evidence = max(evidence, 0.34)
            if has[Indicator.POWERLINE]:
                evidence = max(evidence, 0.26)
            return evidence

        if indicator is Indicator.POWERLINE:
            evidence = 0.06
            if "bare_pole" in distractor_kinds:
                evidence = max(evidence, 0.30)
            if has[Indicator.STREETLIGHT]:
                evidence = max(evidence, 0.18)
            return evidence

        if indicator is Indicator.APARTMENT:
            if large_house:
                return 0.45
            if "house" in distractor_kinds:
                return 0.22
            return 0.04

        if indicator is Indicator.SIDEWALK:
            evidence = 0.07
            if scene.road_view is RoadView.ACROSS and (
                has[Indicator.SINGLE_LANE_ROAD] or has[Indicator.MULTILANE_ROAD]
            ):
                evidence = max(evidence, 0.20)
            if has[Indicator.APARTMENT]:
                evidence = max(evidence, 0.24)
            return evidence

        raise AssertionError(f"unhandled indicator: {indicator}")

    # ------------------------------------------------------------------

    def evidence_samples(
        self, scenes: list[Scene]
    ) -> dict[Indicator, tuple[np.ndarray, np.ndarray]]:
        """Evidence split by ground truth, for calibration.

        Returns per indicator ``(present_samples, absent_samples)``.
        """
        present: dict[Indicator, list[float]] = {i: [] for i in ALL_INDICATORS}
        absent: dict[Indicator, list[float]] = {i: [] for i in ALL_INDICATORS}
        for scene in scenes:
            scene_evidence = self.evidence(scene)
            truth = scene.presence
            for indicator in ALL_INDICATORS:
                bucket = present if truth[indicator] else absent
                bucket[indicator].append(scene_evidence[indicator])
        return {
            indicator: (
                np.asarray(present[indicator]),
                np.asarray(absent[indicator]),
            )
            for indicator in ALL_INDICATORS
        }
