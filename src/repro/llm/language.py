"""Prompt comprehension: language detection, question parsing, answers.

The simulated models genuinely *read the prompt*: they detect its
language, split it into questions, and match each question against a
multilingual term lexicon to decide which indicator is being asked
about and in what order.  Nothing is passed out-of-band — a prompt
that never mentions sidewalks will never produce a sidewalk answer,
and a question using a term outside the lexicon falls back to a
cautious "No" (the model failed to ground the term), which is the
mechanism behind the paper's catastrophic Chinese-sidewalk and
Spanish-single-lane recall failures (§IV-C3).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from ..core.indicators import Indicator


class Language(enum.Enum):
    """Prompt languages evaluated in the paper (Fig. 6)."""

    ENGLISH = "en"
    SPANISH = "es"
    CHINESE = "zh"
    BENGALI = "bn"


#: Yes/No surface forms per language, as produced by the models.
YES_WORDS = {
    Language.ENGLISH: "Yes",
    Language.SPANISH: "Sí",
    Language.CHINESE: "是",
    Language.BENGALI: "হ্যাঁ",
}

NO_WORDS = {
    Language.ENGLISH: "No",
    Language.SPANISH: "No",
    Language.CHINESE: "否",
    Language.BENGALI: "না",
}

#: Indicator term lexicon.  Terms are matched case-insensitively as
#: substrings of a question (after whitespace normalization).  Order
#: within a question matters for multilane vs single-lane: both
#: mention "lane", so the more specific term lists come first.
LEXICON: dict[Language, dict[Indicator, tuple[str, ...]]] = {
    Language.ENGLISH: {
        Indicator.MULTILANE_ROAD: (
            "multi-lane",
            "multilane",
            "more than one lane",
        ),
        # "one lane per direction" is a substring of the multilane
        # phrasing "more than one lane per direction", so only the
        # unambiguous term is listed.
        Indicator.SINGLE_LANE_ROAD: ("single-lane", "single lane"),
        Indicator.SIDEWALK: ("sidewalk",),
        Indicator.STREETLIGHT: ("streetlight", "street light"),
        Indicator.POWERLINE: ("powerline", "power line"),
        Indicator.APARTMENT: ("apartment",),
    },
    Language.SPANISH: {
        Indicator.MULTILANE_ROAD: ("varios carriles", "más de un carril"),
        Indicator.SINGLE_LANE_ROAD: ("un solo carril",),
        Indicator.SIDEWALK: ("acera",),
        Indicator.STREETLIGHT: ("alumbrado público", "farola"),
        Indicator.POWERLINE: ("cable eléctrico", "línea eléctrica"),
        Indicator.APARTMENT: ("apartamento",),
    },
    Language.CHINESE: {
        Indicator.MULTILANE_ROAD: ("多车道",),
        Indicator.SINGLE_LANE_ROAD: ("单车道",),
        Indicator.SIDEWALK: ("人行道",),
        Indicator.STREETLIGHT: ("路灯",),
        Indicator.POWERLINE: ("电线",),
        Indicator.APARTMENT: ("公寓",),
    },
    Language.BENGALI: {
        Indicator.MULTILANE_ROAD: ("বহু-লেনের",),
        Indicator.SINGLE_LANE_ROAD: ("এক-লেনের",),
        Indicator.SIDEWALK: ("ফুটপাত",),
        Indicator.STREETLIGHT: ("রাস্তার আলো",),
        Indicator.POWERLINE: ("বিদ্যুতের লাইন",),
        Indicator.APARTMENT: ("অ্যাপার্টমেন্ট",),
    },
}


@dataclass(frozen=True)
class ParsedQuestion:
    """One recognized question from a prompt."""

    indicator: Indicator | None
    language: Language
    text: str


@dataclass(frozen=True)
class ParsedPrompt:
    """The model's comprehension of a full prompt."""

    questions: tuple[ParsedQuestion, ...]
    language: Language
    complex_structure: bool

    @property
    def indicators(self) -> tuple[Indicator | None, ...]:
        return tuple(q.indicator for q in self.questions)


_CHINESE_CHARS = re.compile(r"[一-鿿]")
_BENGALI_CHARS = re.compile(r"[ঀ-৿]")
_SPANISH_MARKERS = (
    "¿",
    "carril",
    "imagen",
    "responda",
    "sí",
    "acera",
    "alumbrado",
)


def detect_language(text: str) -> Language:
    """Best-effort language identification for a prompt."""
    if _CHINESE_CHARS.search(text):
        return Language.CHINESE
    if _BENGALI_CHARS.search(text):
        return Language.BENGALI
    lowered = text.lower()
    spanish_hits = sum(1 for marker in _SPANISH_MARKERS if marker in lowered)
    if spanish_hits >= 2:
        return Language.SPANISH
    return Language.ENGLISH


_SENTENCE_SPLIT = re.compile(r"[?？。।|\n]+")


def split_questions(text: str) -> list[str]:
    """Split a prompt into candidate question segments."""
    segments = [seg.strip() for seg in _SENTENCE_SPLIT.split(text)]
    return [seg for seg in segments if seg]


def identify_indicators(
    segment: str, language: Language
) -> list[Indicator]:
    """All indicators a segment asks about, in textual order."""
    lowered = segment.lower()
    hits: list[tuple[int, Indicator]] = []
    for indicator, terms in LEXICON[language].items():
        positions = [
            lowered.find(term.lower())
            for term in terms
            if term.lower() in lowered
        ]
        if positions:
            hits.append((min(p for p in positions if p >= 0), indicator))
    hits.sort()
    return [indicator for _, indicator in hits]


def parse_prompt(text: str) -> ParsedPrompt:
    """Parse a prompt into ordered questions.

    ``complex_structure`` is true when indicator mentions pile up
    inside single sentences (the run-on "sequential" style the paper
    finds harder for the models) rather than one simple question per
    sentence.
    """
    language = detect_language(text)
    segments = split_questions(text)
    questions: list[ParsedQuestion] = []
    max_per_segment = 0
    for segment in segments:
        found = identify_indicators(segment, language)
        max_per_segment = max(max_per_segment, len(found))
        for indicator in found:
            questions.append(
                ParsedQuestion(
                    indicator=indicator, language=language, text=segment
                )
            )
    return ParsedPrompt(
        questions=tuple(questions),
        language=language,
        complex_structure=max_per_segment >= 2,
    )


def format_answers(answers: list[bool], language: Language) -> str:
    """Render Yes/No decisions in the prompt's language."""
    yes = YES_WORDS[language]
    no = NO_WORDS[language]
    return ", ".join(yes if a else no for a in answers)
