"""Model profiles: fitted response policies per simulated VLM.

A :class:`ModelProfile` bundles everything that distinguishes one
simulated model from another:

* per-indicator :class:`~repro.llm.calibration.ResponsePolicy`
  (threshold/slope fitted to the paper's Tables III–VI),
* a per-indicator threshold shift applied under complex ("sequential")
  prompt structure, fitted to the Fig. 4 recall gap,
* per-(language, indicator) threshold shifts fitted to the Fig. 6
  language sweep (term-association failures included),
* an idiosyncratic perception noise level, which controls how much of
  a model's error is private vs. shared scene difficulty.

``calibrate_profiles`` runs the whole fitting procedure against a set
of calibration scenes and returns ready-to-use profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.indicators import ALL_INDICATORS, Indicator
from ..scene.model import Scene
from ..scene.seeding import stable_seed
from .calibration import (
    PolicyFit,
    ResponsePolicy,
    derive_rates,
    fit_policy,
    fit_threshold,
)
from .language import Language
from .paper_targets import (
    ALL_MODEL_IDS,
    DISPLAY_NAMES,
    PAPER_LANGUAGE_CLASS_OVERRIDES,
    PAPER_LANGUAGE_RECALL,
    PAPER_LLM_METRICS,
    PAPER_PROMPT_STYLE_RECALL,
)
from .perception import EvidenceModel

#: Idiosyncratic perception noise per model.  Values are small so the
#: shared scene-difficulty channel dominates (correlated errors).
IDIO_SIGMA: dict[str, float] = {
    "gpt-4o-mini": 0.06,
    "gemini-1.5-pro": 0.04,
    "claude-3.7": 0.05,
    "grok-2": 0.06,
}


@dataclass
class ModelProfile:
    """Everything the simulator needs to answer as one model."""

    model_id: str
    display_name: str
    idio_sigma: float
    policies: dict[Indicator, ResponsePolicy]
    sequential_shifts: dict[Indicator, float] = field(default_factory=dict)
    language_shifts: dict[tuple[Language, Indicator], float] = field(
        default_factory=dict
    )
    fits: dict[Indicator, PolicyFit] = field(default_factory=dict)

    def effective_policy(
        self,
        indicator: Indicator,
        language: Language = Language.ENGLISH,
        complex_structure: bool = False,
        language_shift_scale: float = 1.0,
    ) -> ResponsePolicy:
        """The policy after structure and language threshold shifts.

        ``language_shift_scale`` attenuates the language penalty —
        few-shot exemplars ground the translated terms, partially
        restoring English-level recall (the paper's §V mitigation).
        """
        if not 0.0 <= language_shift_scale <= 1.0:
            raise ValueError(
                f"language shift scale out of range: {language_shift_scale}"
            )
        shift = 0.0
        if complex_structure:
            shift += self.sequential_shifts.get(indicator, 0.0)
        shift += language_shift_scale * self.language_shifts.get(
            (language, indicator), 0.0
        )
        base = self.policies[indicator]
        return base.shifted(shift) if shift else base

    def idio_evidence(self, scene_id: str, indicator: Indicator, evidence: float) -> float:
        """Apply this model's private perception noise to shared evidence."""
        rng = np.random.default_rng(
            stable_seed("idio", self.model_id, scene_id, indicator.value)
        )
        return float(
            np.clip(evidence + rng.normal(0.0, self.idio_sigma), 0.005, 0.995)
        )


def _noised_samples(
    model_id: str,
    idio_sigma: float,
    scenes: list[Scene],
    shared: dict[str, dict[Indicator, float]],
    indicator: Indicator,
    present: bool,
) -> np.ndarray:
    """Evidence samples with the model's idio noise, split by truth."""
    values = []
    for scene in scenes:
        if scene.presence[indicator] != present:
            continue
        evidence = shared[scene.scene_id][indicator]
        rng = np.random.default_rng(
            stable_seed("idio", model_id, scene.scene_id, indicator.value)
        )
        values.append(
            float(
                np.clip(
                    evidence + rng.normal(0.0, idio_sigma), 0.005, 0.995
                )
            )
        )
    return np.asarray(values)


def calibrate_profiles(
    scenes: list[Scene],
    evidence_model: EvidenceModel | None = None,
    model_ids: tuple[str, ...] = ALL_MODEL_IDS,
) -> dict[str, ModelProfile]:
    """Fit all model profiles against calibration scenes.

    ``scenes`` should be a representative survey sample (several
    hundred scenes); class prevalence is measured from it and combined
    with the paper's precision/recall to produce (TPR, FPR) targets.
    """
    if not scenes:
        raise ValueError("no calibration scenes")
    if evidence_model is None:
        evidence_model = EvidenceModel()

    shared = {
        scene.scene_id: evidence_model.evidence(scene) for scene in scenes
    }
    prevalence = {
        indicator: float(
            np.mean([scene.presence[indicator] for scene in scenes])
        )
        for indicator in ALL_INDICATORS
    }

    profiles = {}
    for model_id in model_ids:
        idio_sigma = IDIO_SIGMA.get(model_id, 0.05)
        policies: dict[Indicator, ResponsePolicy] = {}
        fits: dict[Indicator, PolicyFit] = {}
        present_samples: dict[Indicator, np.ndarray] = {}

        for indicator in ALL_INDICATORS:
            target = PAPER_LLM_METRICS[model_id][indicator]
            pi = prevalence[indicator]
            if not 0.0 < pi < 1.0:
                raise ValueError(
                    f"calibration scenes have degenerate prevalence for "
                    f"{indicator.value}: {pi}"
                )
            # A published recall of 1.00 is a rounding artifact; an
            # exact 1.0 target would drive the threshold fit to the
            # degenerate always-yes policy.
            tpr, fpr = derive_rates(
                target.precision, min(target.recall, 0.985), pi
            )
            fpr = max(fpr, 0.002)
            present = _noised_samples(
                model_id, idio_sigma, scenes, shared, indicator, True
            )
            absent = _noised_samples(
                model_id, idio_sigma, scenes, shared, indicator, False
            )
            fit = fit_policy(present, absent, tpr, min(fpr, 0.95))
            policies[indicator] = fit.policy
            fits[indicator] = fit
            present_samples[indicator] = present

        sequential_shifts = _fit_sequential_shifts(
            model_id, policies, present_samples
        )
        language_shifts = _fit_language_shifts(policies, present_samples)
        profiles[model_id] = ModelProfile(
            model_id=model_id,
            display_name=DISPLAY_NAMES.get(model_id, model_id),
            idio_sigma=idio_sigma,
            policies=policies,
            sequential_shifts=sequential_shifts,
            language_shifts=language_shifts,
            fits=fits,
        )
    return profiles


def _fit_sequential_shifts(
    model_id: str,
    policies: dict[Indicator, ResponsePolicy],
    present_samples: dict[Indicator, np.ndarray],
) -> dict[Indicator, float]:
    """Threshold shifts reproducing the Fig. 4 sequential recall drop."""
    style = PAPER_PROMPT_STYLE_RECALL.get(model_id)
    if style is None:
        return {}
    ratio = style["sequential"] / style["parallel"]
    shifts = {}
    for indicator, policy in policies.items():
        base_recall = PAPER_LLM_METRICS[model_id][indicator].recall
        target = float(np.clip(base_recall * ratio, 0.02, 0.995))
        threshold = fit_threshold(
            present_samples[indicator], policy.slope, target
        )
        shifts[indicator] = max(0.0, threshold - policy.threshold)
    return shifts


def _fit_language_shifts(
    policies: dict[Indicator, ResponsePolicy],
    present_samples: dict[Indicator, np.ndarray],
) -> dict[tuple[Language, Indicator], float]:
    """Threshold shifts reproducing the Fig. 6 language degradation.

    The paper only ran the language sweep on Gemini; the same shifts
    are installed in every profile (the mechanism — uneven multilingual
    training data — is model-family-agnostic).
    """
    english = PAPER_LANGUAGE_RECALL[Language.ENGLISH]
    base_recalls = {
        indicator: _implied_recall(policy, present_samples[indicator])
        for indicator, policy in policies.items()
    }
    n_classes = len(policies)
    shifts: dict[tuple[Language, Indicator], float] = {}
    for language, avg_recall in PAPER_LANGUAGE_RECALL.items():
        if language is Language.ENGLISH:
            continue
        # The catastrophic per-class overrides carry most of the
        # average degradation; the remaining classes shrink by the
        # scale that makes the class-mean hit the paper's average
        # (relative to the model's own English recall).
        overrides = {
            indicator: PAPER_LANGUAGE_CLASS_OVERRIDES[(language, indicator)]
            for indicator in policies
            if (language, indicator) in PAPER_LANGUAGE_CLASS_OVERRIDES
        }
        target_mean = avg_recall / english * float(
            np.mean(list(base_recalls.values()))
        )
        others_base = sum(
            recall
            for indicator, recall in base_recalls.items()
            if indicator not in overrides
        )
        others_target = target_mean * n_classes - sum(overrides.values())
        scale = (
            float(np.clip(others_target / others_base, 0.05, 1.0))
            if others_base > 0
            else 1.0
        )
        for indicator, policy in policies.items():
            override = overrides.get(indicator)
            target = (
                override
                if override is not None
                else float(
                    np.clip(base_recalls[indicator] * scale, 0.02, 0.995)
                )
            )
            threshold = fit_threshold(
                present_samples[indicator], policy.slope, target
            )
            shifts[(language, indicator)] = max(
                0.0, threshold - policy.threshold
            )
    return shifts


def _implied_recall(
    policy: ResponsePolicy, present: np.ndarray
) -> float:
    from .calibration import expected_yes_rate

    return expected_yes_rate(present, policy)
