"""Failure modes of the simulated LLM APIs.

The paper's Section V flags "computational costs and API latency" as
practical barriers to multi-LLM majority voting.  The simulated
clients reproduce the corresponding failure surface — rate limits,
transient server errors, and malformed-response risk — so the
pipeline's retry and fallback paths are real, tested code.
"""

from __future__ import annotations


class LLMError(Exception):
    """Base class for simulated LLM API failures."""


class RateLimitError(LLMError):
    """Too many requests; the caller should back off and retry.

    Carries ``retry_after_s`` like the HTTP ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServerError(LLMError):
    """Transient 5xx-style failure; retryable."""


class InvalidRequestError(LLMError):
    """Malformed request (no image, empty prompt, bad parameters).

    Not retryable — the request itself must change.
    """


class ModelNotFoundError(LLMError):
    """Unknown model name passed to the registry."""
