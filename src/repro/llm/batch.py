"""Batch execution with rate limiting and bounded retry.

Driving four commercial APIs over 1,200 images each is where the
paper's cost/latency concerns (§V) bite.  This module provides the
standard client-side machinery:

* a **token-bucket rate limiter** on a pluggable clock (tests inject a
  virtual clock, production uses wall time),
* a **batch runner** that executes many requests through a client,
  delegating retry to the shared
  :class:`~repro.resilience.retry.RetryPolicy` (exponential backoff,
  full jitter, ``Retry-After`` awareness) and collecting per-request
  outcomes instead of dying on the first failure.

The clocks themselves live in :mod:`repro.resilience.clock`; the
``VirtualClock``/``WallClock`` names are re-exported here for
backwards compatibility.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from ..parallel.executor import ParallelExecutor
from ..resilience.breaker import CircuitBreaker
from ..resilience.clock import Clock, VirtualClock, WallClock
from ..resilience.retry import RetryPolicy, RetryStats
from .base import ChatClient, ChatRequest, ChatResponse
from .cache import request_fingerprint
from .errors import LLMError, RateLimitError, ServerError

__all__ = [
    "BatchOutcome",
    "BatchRunner",
    "BatchStats",
    "TokenBucket",
    "VirtualClock",
    "WallClock",
]


@dataclass
class TokenBucket:
    """Token-bucket rate limiter: ``rate`` requests/second, bursting
    to ``capacity``.

    One bucket is shared by every worker talking to an endpoint, so
    refill-and-take runs under a lock: without it two threads can both
    observe ``_tokens >= 1`` and double-spend the same token, silently
    exceeding the provider's rate limit.

    Waiting is **condition-based**, not poll-based: a thread that finds
    the bucket empty computes its deficit and parks on a condition that
    releases the lock while it blocks (so sleepers never hold up
    refills), waking exactly when its token should have accrued.  Each
    concurrent waiter's deficit also counts the waiters already parked
    ahead of it, so N starved threads stagger their wakeups instead of
    stampeding the lock every refill interval — the old sleep-poll loop
    woke all N per token and burned CPU re-checking.  With no
    concurrent waiters the deficit reduces to the classic
    ``(1 - tokens) / rate``, so serial wait times (and the exact-sleep
    assertions the virtual-clock tests make) are unchanged.

    Every second spent throttled is recorded in the cumulative
    ``llm.throttle_wait_seconds`` metric (alongside the existing
    ``ratelimit.waits`` / ``ratelimit.waited_s`` pair) — the signal the
    async engine's AIMD controller reads to narrow its window.
    """

    rate: float
    capacity: float
    clock: Clock = field(default_factory=VirtualClock)

    #: Tolerance for float error in "one full token accrued".
    _EPSILON = 1e-12

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.capacity <= 0:
            raise ValueError("rate and capacity must be positive")
        self._tokens = float(self.capacity)
        self._last = self.clock.now()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._waiting = 0

    def _refill(self) -> None:
        now = self.clock.now()
        self._tokens = min(
            self.capacity, self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    def _take_or_deficit(self) -> float | None:
        """Under the lock: take a token (None) or return the wait needed."""
        self._refill()
        if self._tokens >= 1.0 - self._EPSILON:
            self._tokens = max(0.0, self._tokens - 1.0)
            return None
        return (1.0 + self._waiting - self._tokens) / self.rate

    def _record_wait(self, waited: float) -> None:
        if waited > 0:
            metrics = get_metrics()
            metrics.inc("ratelimit.waits")
            metrics.inc("ratelimit.waited_s", waited)
            metrics.inc("llm.throttle_wait_seconds", waited)

    def acquire(self) -> float:
        """Take one token, waiting if necessary; returns wait time."""
        waited = 0.0
        while True:
            deficit: float | None = None
            with self._cond:
                deficit = self._take_or_deficit()
                if deficit is None:
                    break
                waiter = getattr(self.clock, "wait_condition", None)
                if waiter is not None:
                    self._waiting += 1
                    try:
                        waiter(self._cond, deficit)
                    finally:
                        self._waiting -= 1
                    waited += deficit
                    continue
            # Clock without a timed condition wait: plain sleep outside
            # the lock, then re-contend.
            self.clock.sleep(deficit)
            waited += deficit
        self._record_wait(waited)
        return waited

    async def acquire_async(self) -> float:
        """Async variant of :meth:`acquire` for event-loop callers.

        Identical token accounting and metrics; the wait happens via
        the clock's ``sleep_async`` (``asyncio.sleep`` on a wall clock,
        instant on a virtual one) so the event loop keeps servicing
        other stages while this caller is throttled.
        """
        waited = 0.0
        while True:
            with self._lock:
                deficit = self._take_or_deficit()
                if deficit is None:
                    break
                self._waiting += 1
            try:
                sleeper = getattr(self.clock, "sleep_async", None)
                if sleeper is not None:
                    await sleeper(deficit)
                else:  # pragma: no cover - exotic injected clock
                    self.clock.sleep(deficit)
            finally:
                with self._lock:
                    self._waiting -= 1
            waited += deficit
        self._record_wait(waited)
        return waited


@dataclass
class BatchOutcome:
    """Result of one request within a batch."""

    index: int
    response: ChatResponse | None
    error: Exception | None
    attempts: int

    @property
    def ok(self) -> bool:
        return self.response is not None


@dataclass
class BatchStats:
    """Aggregate view of a finished batch.

    ``retries`` counts *actual* re-attempts: a request that fails
    terminally on its final attempt (or fails on a non-retryable
    error) contributes nothing for that attempt.  ``coalesced`` counts
    duplicate requests that shared another request's single upstream
    call (always 0 unless the runner was built with
    ``coalesce=True``).
    """

    total: int
    succeeded: int
    failed: int
    retries: int
    rate_limit_waits: float
    coalesced: int = 0

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.total if self.total else float("nan")


class BatchRunner:
    """Execute many chat requests with retry + rate limiting.

    With an ``executor`` (or ``workers > 1``) requests fan out across
    a thread pool while sharing one rate limiter, one retry policy,
    and one breaker; outcomes still come back in request order.  The
    default remains strictly serial.

    With ``coalesce=True``, duplicate requests within a batch (same
    :func:`~repro.llm.cache.request_fingerprint`) are executed once:
    the first occurrence makes the upstream call — paying one fee and
    taking one rate-limiter token — and every duplicate's outcome is a
    copy of that result.  The outcome list is unchanged relative to an
    uncoalesced run of the same batch; only ``BatchStats.coalesced``
    and the spend differ.
    """

    RETRYABLE = (RateLimitError, ServerError)

    def __init__(
        self,
        client: ChatClient,
        limiter: TokenBucket | None = None,
        max_attempts: int = 4,
        backoff_base_s: float = 0.5,
        clock: Clock | None = None,
        on_progress: Callable[[int, int], None] | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        executor: ParallelExecutor | None = None,
        workers: int | None = None,
        coalesce: bool = False,
    ) -> None:
        if retry_policy is None:
            retry_policy = RetryPolicy(
                max_attempts=max_attempts, base_delay_s=backoff_base_s
            )
        if executor is None:
            executor = ParallelExecutor(workers=workers or 1)
        self.client = client
        self.limiter = limiter
        self.policy = retry_policy
        self.breaker = breaker
        self.clock = clock or (limiter.clock if limiter else VirtualClock())
        self.on_progress = on_progress
        self.executor = executor
        self.coalesce = coalesce

    def run(
        self, requests: Sequence[ChatRequest]
    ) -> tuple[list[BatchOutcome], BatchStats]:
        """Execute all requests; never raises on per-request failures."""
        with get_tracer().span("llm.batch", requests=len(requests)):
            return self._run(requests)

    def _run(
        self, requests: Sequence[ChatRequest]
    ) -> tuple[list[BatchOutcome], BatchStats]:
        stats = RetryStats()
        n_requests = len(requests)

        # alias[i] is the index whose upstream call serves request i —
        # itself unless coalescing found an earlier identical request.
        if self.coalesce:
            first_by_key: dict[str, int] = {}
            alias = [
                first_by_key.setdefault(request_fingerprint(request), index)
                for index, request in enumerate(requests)
            ]
        else:
            alias = list(range(n_requests))
        representatives = [
            index for index in range(n_requests) if alias[index] == index
        ]
        group_sizes: dict[int, int] = {}
        for rep in alias:
            group_sizes[rep] = group_sizes.get(rep, 0) + 1

        def execute_one(
            indexed: tuple[int, ChatRequest]
        ) -> tuple[BatchOutcome, float]:
            index, request = indexed
            waited = 0.0

            def attempt() -> ChatResponse:
                nonlocal waited
                if self.limiter is not None:
                    waited += self.limiter.acquire()
                return self.client.complete(request)

            retried = self.policy.execute(
                attempt,
                retryable=self.RETRYABLE,
                giveup=(LLMError,),
                clock=self.clock,
                breaker=self.breaker,
                stats=stats,
            )
            return (
                BatchOutcome(
                    index=index,
                    response=retried.value if retried.ok else None,
                    error=retried.error,
                    attempts=retried.attempts,
                ),
                waited,
            )

        rep_outcomes: dict[int, BatchOutcome] = {}
        completed = 0
        waits = 0.0
        for task in self.executor.imap(
            execute_one, [(index, requests[index]) for index in representatives]
        ):
            outcome, waited = task.result()
            rep_outcomes[outcome.index] = outcome
            waits += waited
            completed += group_sizes[outcome.index]
            if self.on_progress is not None:
                self.on_progress(completed, n_requests)

        outcomes: list[BatchOutcome] = []
        for index in range(n_requests):
            rep = rep_outcomes[alias[index]]
            if alias[index] == index:
                outcomes.append(rep)
            else:
                outcomes.append(
                    BatchOutcome(
                        index=index,
                        response=rep.response,
                        error=rep.error,
                        attempts=rep.attempts,
                    )
                )

        batch_stats = BatchStats(
            total=n_requests,
            succeeded=sum(1 for o in outcomes if o.ok),
            failed=sum(1 for o in outcomes if not o.ok),
            retries=stats.retries,
            rate_limit_waits=waits,
            coalesced=n_requests - len(representatives),
        )
        metrics = get_metrics()
        metrics.inc("llm.batch.requests", batch_stats.total)
        metrics.inc("llm.batch.coalesced", batch_stats.coalesced)
        if batch_stats.failed:
            metrics.inc("llm.batch.failures", batch_stats.failed)
        return outcomes, batch_stats
