"""Batch execution with rate limiting and bounded retry.

Driving four commercial APIs over 1,200 images each is where the
paper's cost/latency concerns (§V) bite.  This module provides the
standard client-side machinery:

* a **token-bucket rate limiter** on a pluggable clock (tests inject a
  virtual clock, production uses wall time),
* a **batch runner** that executes many requests through a client,
  delegating retry to the shared
  :class:`~repro.resilience.retry.RetryPolicy` (exponential backoff,
  full jitter, ``Retry-After`` awareness) and collecting per-request
  outcomes instead of dying on the first failure.

The clocks themselves live in :mod:`repro.resilience.clock`; the
``VirtualClock``/``WallClock`` names are re-exported here for
backwards compatibility.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from ..resilience.breaker import CircuitBreaker
from ..resilience.clock import Clock, VirtualClock, WallClock
from ..resilience.retry import RetryPolicy, RetryStats
from .base import ChatClient, ChatRequest, ChatResponse
from .errors import LLMError, RateLimitError, ServerError

__all__ = [
    "BatchOutcome",
    "BatchRunner",
    "BatchStats",
    "TokenBucket",
    "VirtualClock",
    "WallClock",
]


@dataclass
class TokenBucket:
    """Token-bucket rate limiter: ``rate`` requests/second, bursting
    to ``capacity``."""

    rate: float
    capacity: float
    clock: Clock = field(default_factory=VirtualClock)

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.capacity <= 0:
            raise ValueError("rate and capacity must be positive")
        self._tokens = float(self.capacity)
        self._last = self.clock.now()

    def _refill(self) -> None:
        now = self.clock.now()
        self._tokens = min(
            self.capacity, self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    def acquire(self) -> float:
        """Take one token, sleeping if necessary; returns wait time."""
        self._refill()
        waited = 0.0
        if self._tokens < 1.0:
            deficit = (1.0 - self._tokens) / self.rate
            self.clock.sleep(deficit)
            waited = deficit
            self._refill()
        self._tokens -= 1.0
        return waited


@dataclass
class BatchOutcome:
    """Result of one request within a batch."""

    index: int
    response: ChatResponse | None
    error: Exception | None
    attempts: int

    @property
    def ok(self) -> bool:
        return self.response is not None


@dataclass
class BatchStats:
    """Aggregate view of a finished batch.

    ``retries`` counts *actual* re-attempts: a request that fails
    terminally on its final attempt (or fails on a non-retryable
    error) contributes nothing for that attempt.
    """

    total: int
    succeeded: int
    failed: int
    retries: int
    rate_limit_waits: float

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.total if self.total else float("nan")


class BatchRunner:
    """Execute many chat requests with retry + rate limiting."""

    RETRYABLE = (RateLimitError, ServerError)

    def __init__(
        self,
        client: ChatClient,
        limiter: TokenBucket | None = None,
        max_attempts: int = 4,
        backoff_base_s: float = 0.5,
        clock: Clock | None = None,
        on_progress: Callable[[int, int], None] | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        if retry_policy is None:
            retry_policy = RetryPolicy(
                max_attempts=max_attempts, base_delay_s=backoff_base_s
            )
        self.client = client
        self.limiter = limiter
        self.policy = retry_policy
        self.breaker = breaker
        self.clock = clock or (limiter.clock if limiter else VirtualClock())
        self.on_progress = on_progress

    def run(
        self, requests: Sequence[ChatRequest]
    ) -> tuple[list[BatchOutcome], BatchStats]:
        """Execute all requests; never raises on per-request failures."""
        outcomes: list[BatchOutcome] = []
        stats = RetryStats()
        waits = 0.0

        for index, request in enumerate(requests):

            def attempt(request: ChatRequest = request) -> ChatResponse:
                nonlocal waits
                if self.limiter is not None:
                    waits += self.limiter.acquire()
                return self.client.complete(request)

            retried = self.policy.execute(
                attempt,
                retryable=self.RETRYABLE,
                giveup=(LLMError,),
                clock=self.clock,
                breaker=self.breaker,
                stats=stats,
            )
            outcomes.append(
                BatchOutcome(
                    index=index,
                    response=retried.value if retried.ok else None,
                    error=retried.error,
                    attempts=retried.attempts,
                )
            )
            if self.on_progress is not None:
                self.on_progress(index + 1, len(requests))

        batch_stats = BatchStats(
            total=len(requests),
            succeeded=sum(1 for o in outcomes if o.ok),
            failed=sum(1 for o in outcomes if not o.ok),
            retries=stats.retries,
            rate_limit_waits=waits,
        )
        return outcomes, batch_stats
