"""Batch execution with rate limiting and bounded retry.

Driving four commercial APIs over 1,200 images each is where the
paper's cost/latency concerns (§V) bite.  This module provides the
standard client-side machinery:

* a **token-bucket rate limiter** on a pluggable clock (tests inject a
  virtual clock, production uses wall time),
* a **batch runner** that executes many requests through a client,
  retrying rate-limit and transient server errors with exponential
  backoff and collecting per-request outcomes instead of dying on the
  first failure.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from .base import ChatClient, ChatRequest, ChatResponse
from .errors import LLMError, RateLimitError, ServerError


class VirtualClock:
    """A manually advanced clock for deterministic tests."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self.sleeps: list[float] = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep {seconds}s")
        self.sleeps.append(seconds)
        self._now += seconds


@dataclass
class WallClock:
    """The real clock."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


@dataclass
class TokenBucket:
    """Token-bucket rate limiter: ``rate`` requests/second, bursting
    to ``capacity``."""

    rate: float
    capacity: float
    clock: VirtualClock | WallClock = field(default_factory=VirtualClock)

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.capacity <= 0:
            raise ValueError("rate and capacity must be positive")
        self._tokens = float(self.capacity)
        self._last = self.clock.now()

    def _refill(self) -> None:
        now = self.clock.now()
        self._tokens = min(
            self.capacity, self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    def acquire(self) -> float:
        """Take one token, sleeping if necessary; returns wait time."""
        self._refill()
        waited = 0.0
        if self._tokens < 1.0:
            deficit = (1.0 - self._tokens) / self.rate
            self.clock.sleep(deficit)
            waited = deficit
            self._refill()
        self._tokens -= 1.0
        return waited


@dataclass
class BatchOutcome:
    """Result of one request within a batch."""

    index: int
    response: ChatResponse | None
    error: LLMError | None
    attempts: int

    @property
    def ok(self) -> bool:
        return self.response is not None


@dataclass
class BatchStats:
    """Aggregate view of a finished batch."""

    total: int
    succeeded: int
    failed: int
    retries: int
    rate_limit_waits: float

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.total if self.total else float("nan")


class BatchRunner:
    """Execute many chat requests with retry + rate limiting."""

    RETRYABLE = (RateLimitError, ServerError)

    def __init__(
        self,
        client: ChatClient,
        limiter: TokenBucket | None = None,
        max_attempts: int = 4,
        backoff_base_s: float = 0.5,
        clock: VirtualClock | WallClock | None = None,
        on_progress: Callable[[int, int], None] | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.client = client
        self.limiter = limiter
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.clock = clock or (limiter.clock if limiter else VirtualClock())
        self.on_progress = on_progress

    def run(
        self, requests: Sequence[ChatRequest]
    ) -> tuple[list[BatchOutcome], BatchStats]:
        """Execute all requests; never raises on per-request failures."""
        outcomes: list[BatchOutcome] = []
        retries = 0
        waits = 0.0
        for index, request in enumerate(requests):
            response = None
            error: LLMError | None = None
            attempt = 0
            for attempt in range(1, self.max_attempts + 1):
                if self.limiter is not None:
                    waits += self.limiter.acquire()
                try:
                    response = self.client.complete(request)
                    error = None
                    break
                except self.RETRYABLE as err:
                    error = err
                    retries += 1
                    delay = self.backoff_base_s * (2 ** (attempt - 1))
                    if isinstance(err, RateLimitError):
                        delay = max(delay, err.retry_after_s)
                    if attempt < self.max_attempts:
                        self.clock.sleep(delay)
                except LLMError as err:
                    error = err  # not retryable
                    break
            outcomes.append(
                BatchOutcome(
                    index=index,
                    response=response,
                    error=error,
                    attempts=attempt,
                )
            )
            if self.on_progress is not None:
                self.on_progress(index + 1, len(requests))
        stats = BatchStats(
            total=len(requests),
            succeeded=sum(1 for o in outcomes if o.ok),
            failed=sum(1 for o in outcomes if not o.ok),
            retries=retries,
            rate_limit_waits=waits,
        )
        return outcomes, stats
