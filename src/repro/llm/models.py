"""The four simulated commercial VLMs.

Each model is a :class:`SimulatedVLM` — a :class:`~repro.llm.base.ChatClient`
that reads the prompt through :mod:`repro.llm.language`, perceives the
attached scene through the shared :class:`~repro.llm.perception.EvidenceModel`
plus its own idiosyncratic noise, applies its calibrated response
policies (:mod:`repro.llm.profiles`), samples the Yes/No decision
under the request's temperature and top-p, and renders the answers in
the prompt's language with the model's own formatting quirks.

Answers are deterministic per request content (model, scene, question,
language, structure, sampling parameters), which makes every
experiment reproducible while keeping cross-model and cross-scene
variation realistic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..scene.seeding import stable_seed
from .base import (
    ChatClient,
    ChatRequest,
    ChatResponse,
    Usage,
    estimate_prompt_tokens,
)
from .errors import InvalidRequestError, RateLimitError, ServerError
from .language import format_answers, parse_prompt
from .perception import EvidenceModel
from .profiles import ModelProfile
from .sampling import sample_yes


@dataclass(frozen=True)
class Quirks:
    """Surface-level response formatting habits of a model."""

    prefix: str = ""
    suffix: str = ""
    lowercase: bool = False

    def decorate(self, body: str) -> str:
        text = body.lower() if self.lowercase else body
        return f"{self.prefix}{text}{self.suffix}"


#: Mild, parseable formatting differences between vendors.
MODEL_QUIRKS = {
    "gpt-4o-mini": Quirks(),
    "gemini-1.5-pro": Quirks(),
    "claude-3.7": Quirks(suffix="."),
    "grok-2": Quirks(),
}

#: Fallback reply when a prompt contains no recognizable question.
_FALLBACK_REPLY = (
    "This is a street-level photograph of a neighborhood environment."
)

#: Exemplar-block markers (mirrors ``repro.core.fewshot``; duplicated
#: here to keep the llm substrate independent of the core package).
_EXAMPLE_MARKERS = ("Example:", "Ejemplo:", "示例：", "উদাহরণ:")


def _count_exemplars(text: str) -> int:
    return sum(text.count(marker) for marker in _EXAMPLE_MARKERS)


class SimulatedVLM(ChatClient):
    """A calibrated simulated vision-language model.

    Parameters
    ----------
    profile:
        Calibrated response profile (see ``calibrate_profiles``).
    evidence_model:
        The shared perception channel.  Pass the *same instance* to all
        models in an experiment so their errors correlate through scene
        difficulty, as the paper observes.
    rate_limit_every:
        If set, every Nth request raises ``RateLimitError`` before
        being served (exercises caller retry logic).
    server_error_every:
        If set, every Nth request raises ``ServerError``.
    retry_after_s:
        The ``Retry-After`` hint carried by injected rate-limit
        errors; the shared retry policy honors it as a delay floor.
    """

    def __init__(
        self,
        profile: ModelProfile,
        evidence_model: EvidenceModel,
        rate_limit_every: int | None = None,
        server_error_every: int | None = None,
        retry_after_s: float = 0.0,
    ) -> None:
        super().__init__(model_name=profile.model_id)
        self.profile = profile
        self.evidence_model = evidence_model
        self.rate_limit_every = rate_limit_every
        self.server_error_every = server_error_every
        self.retry_after_s = retry_after_s
        self._request_counter = 0

    # ------------------------------------------------------------------

    def complete(self, request: ChatRequest) -> ChatResponse:
        self._request_counter += 1
        self._maybe_fail()
        if request.model != self.model_name:
            raise InvalidRequestError(
                f"client for {self.model_name!r} got request for "
                f"{request.model!r}"
            )
        if not request.images:
            raise InvalidRequestError("vision request has no image")
        text = request.user_text
        if not text.strip():
            raise InvalidRequestError("request has no prompt text")

        parsed = parse_prompt(text)
        # The classified image is the final attachment; any earlier
        # images belong to few-shot exemplar blocks.
        scene = request.images[-1].scene
        n_exemplars = _count_exemplars(text)
        language_shift_scale = max(0.3, 1.0 - 0.22 * n_exemplars)
        if parsed.questions:
            shared = self.evidence_model.evidence(scene)
            answers = []
            for question in parsed.questions:
                evidence = self.profile.idio_evidence(
                    scene.scene_id, question.indicator, shared[question.indicator]
                )
                policy = self.profile.effective_policy(
                    question.indicator,
                    language=parsed.language,
                    complex_structure=parsed.complex_structure,
                    language_shift_scale=language_shift_scale,
                )
                p_yes = policy.p_yes(evidence)
                rng = np.random.default_rng(
                    stable_seed(
                        "answer",
                        self.model_name,
                        scene.scene_id,
                        question.indicator.value,
                        round(request.temperature, 4),
                        round(request.top_p, 4),
                        parsed.language.value,
                        parsed.complex_structure,
                    )
                )
                answers.append(
                    sample_yes(
                        p_yes, request.temperature, request.top_p, rng
                    )
                )
            body = format_answers(answers, parsed.language)
            quirks = MODEL_QUIRKS.get(self.model_name, Quirks())
            content = quirks.decorate(body)
        else:
            content = _FALLBACK_REPLY

        usage = Usage(
            prompt_tokens=estimate_prompt_tokens(request),
            completion_tokens=max(1, len(content) // 4),
        )
        self.stats.record(usage)
        return ChatResponse(
            model=self.model_name, content=content, usage=usage
        )

    # ------------------------------------------------------------------

    def _maybe_fail(self) -> None:
        if (
            self.rate_limit_every
            and self._request_counter % self.rate_limit_every == 0
        ):
            self.stats.errors += 1
            raise RateLimitError(
                f"{self.model_name}: rate limit exceeded",
                retry_after_s=self.retry_after_s,
            )
        if (
            self.server_error_every
            and self._request_counter % self.server_error_every == 0
        ):
            self.stats.errors += 1
            raise ServerError(f"{self.model_name}: upstream error")
