"""Response caching for LLM clients.

Section V flags API cost and latency as the practical barrier to
multi-LLM voting at scale.  The standard mitigation is a response
cache: survey pipelines re-run constantly (new indicators, new vote
configurations, re-scored metrics) over the same images, and identical
requests should never be re-billed.

:class:`CachingChatClient` wraps any :class:`~repro.llm.base.ChatClient`
with an exact-match request cache — in memory, optionally persisted to
disk so interrupted surveys resume for free.  Persistence is an
**append-only JSONL journal**: each miss appends one record (O(1) I/O,
where the previous full-file rewrite made a survey's cache writes
O(n²)), and :meth:`~CachingChatClient.close` compacts the journal
atomically (temp file + rename, the same idiom as
:class:`~repro.resilience.checkpoint.SurveyCheckpoint`).  Legacy
single-JSON-map cache files load transparently and are migrated to
JSONL on the next compaction.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections.abc import Sequence
from pathlib import Path
from typing import IO

from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from .base import ChatClient, ChatRequest, ChatResponse, Usage


class _Flight:
    """One in-flight upstream call that followers wait on."""

    __slots__ = ("done", "response", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.response: ChatResponse | None = None
        self.error: Exception | None = None


def request_fingerprint(request: ChatRequest) -> str:
    """Stable content hash of a request.

    Covers everything that can change the response: model, message
    roles/texts, attached scene ids, and sampling parameters.  The
    model name is included deliberately — ensemble members may share
    one cache path without cross-serving each other's responses.
    """
    payload = {
        "model": request.model,
        "temperature": round(request.temperature, 6),
        "top_p": round(request.top_p, 6),
        "max_tokens": request.max_tokens,
        "messages": [
            {
                "role": message.role,
                "text": message.text,
                "images": [image.image_id for image in message.images],
            }
            for message in request.messages
        ],
    }
    blob = json.dumps(payload, sort_keys=True, ensure_ascii=False)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _cache_record(response: ChatResponse) -> dict:
    return {
        "model": response.model,
        "content": response.content,
        "prompt_tokens": response.usage.prompt_tokens,
        "completion_tokens": response.usage.completion_tokens,
        "finish_reason": response.finish_reason,
    }


def _response_from_record(record: dict) -> ChatResponse:
    return ChatResponse(
        model=record["model"],
        content=record["content"],
        usage=Usage(
            prompt_tokens=record["prompt_tokens"],
            completion_tokens=record["completion_tokens"],
        ),
        finish_reason=record.get("finish_reason", "stop"),
    )


class CachingChatClient(ChatClient):
    """Exact-match response cache around an inner client.

    Cache hits cost nothing: the inner client is not called and no
    usage accrues to it.  The wrapper's own ``stats`` still counts
    every logical request, so hit rates are observable.

    Thread-safe: parallel workers may share one instance.  Identical
    requests in flight at the same moment are **single-flighted**: the
    first worker to miss becomes the leader and makes the one billable
    upstream call; every other worker blocks on that flight and shares
    its response (or its exception) without touching the inner client
    — one call, one fee, however wide the fan-out.  ``coalesced``
    counts the followers.  Usable as a context manager; leaving the
    ``with`` block compacts the journal.
    """

    def __init__(
        self,
        inner: ChatClient,
        cache_path: str | Path | None = None,
    ) -> None:
        super().__init__(model_name=inner.model_name)
        self.inner = inner
        self.cache_path = Path(cache_path) if cache_path else None
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self._cache: dict[str, dict] = {}
        self._inflight: dict[str, _Flight] = {}
        self._lock = threading.RLock()
        self._journal: IO[str] | None = None
        self._journal_broken = False
        if self.cache_path and self.cache_path.exists():
            self._cache = _load_cache_file(self.cache_path)

    # ------------------------------------------------------------------

    def complete(self, request: ChatRequest) -> ChatResponse:
        metrics = get_metrics()
        key = request_fingerprint(request)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self.hits += 1
                metrics.inc("llm.cache.hits")
                self.stats.record(Usage(0, 0))  # logical request, zero tokens
                return _response_from_record(cached)
            flight = self._inflight.get(key)
            if flight is None:
                flight = _Flight()
                self._inflight[key] = flight
                leading = True
            else:
                leading = False

        if not leading:
            return self._follow(flight)

        # Leader: the billable call happens outside the lock so
        # concurrent misses on *different* requests overlap instead of
        # queueing.
        try:
            with get_tracer().span("llm.request", model=request.model):
                response = self.inner.complete(request)
        except Exception as err:
            self._resolve_flight(key, flight, error=err)
            raise
        self._resolve_flight(key, flight, response=response)
        return response

    def complete_batch(
        self, requests: Sequence[ChatRequest]
    ) -> list[ChatResponse]:
        """Serve a batch through the cache with one upstream dispatch.

        Hits are answered from the cache; requests already in flight
        (including duplicates within this batch) become followers of
        the existing leader; everything left is dispatched to the
        inner client as a *single* ``complete_batch`` window — the
        micro-batching entry point, sharing the same single-flight
        table as :meth:`complete` so a threaded worker and a batched
        one never double-bill the same fingerprint.
        """
        metrics = get_metrics()
        keys = [request_fingerprint(request) for request in requests]
        responses: list[ChatResponse | None] = [None] * len(requests)
        followers: list[tuple[int, _Flight]] = []
        leaders: list[tuple[int, _Flight]] = []  # positions whose flight we lead
        with self._lock:
            for pos, key in enumerate(keys):
                cached = self._cache.get(key)
                if cached is not None:
                    self.hits += 1
                    metrics.inc("llm.cache.hits")
                    self.stats.record(Usage(0, 0))
                    responses[pos] = _response_from_record(cached)
                    continue
                flight = self._inflight.get(key)
                if flight is not None:
                    # In flight elsewhere — or a duplicate earlier in
                    # this very batch; either way, follow its leader.
                    followers.append((pos, flight))
                    continue
                flight = _Flight()
                self._inflight[key] = flight
                leaders.append((pos, flight))

        if leaders:
            batch = [requests[pos] for pos, _ in leaders]
            try:
                with get_tracer().span(
                    "llm.request.batch",
                    model=batch[0].model,
                    requests=len(batch),
                ):
                    answered = self.inner.complete_batch(batch)
                if len(answered) != len(batch):  # pragma: no cover
                    raise RuntimeError(
                        f"inner client answered {len(answered)} of "
                        f"{len(batch)} batched requests"
                    )
            except Exception as err:
                for (pos, flight) in leaders:
                    self._resolve_flight(keys[pos], flight, error=err)
                raise
            for (pos, flight), response in zip(leaders, answered):
                self._resolve_flight(keys[pos], flight, response=response)
                responses[pos] = response

        for pos, flight in followers:
            responses[pos] = self._follow(flight)
        assert all(response is not None for response in responses)
        return responses  # type: ignore[return-value]

    def _follow(self, flight: _Flight) -> ChatResponse:
        """Wait (outside the lock) on a leader's flight and share it."""
        flight.done.wait()
        with self._lock:
            self.coalesced += 1
            get_metrics().inc("llm.cache.coalesced")
            if flight.error is None:
                self.stats.record(Usage(0, 0))
        if flight.error is not None:
            raise flight.error
        assert flight.response is not None
        return flight.response

    def _resolve_flight(
        self,
        key: str,
        flight: _Flight,
        *,
        response: ChatResponse | None = None,
        error: Exception | None = None,
    ) -> None:
        """Publish a leader's outcome and release its flight.

        The ``finally`` is the single-flight liveness guarantee: even
        if recording the miss (stats, journal append) raises, the
        in-flight entry is removed and ``done`` is set, so a follower
        that arrived while the response was being journaled can never
        deadlock on an abandoned flight — it either reads the outcome
        published *before* the bookkeeping ran, or re-leads a fresh
        call.  Usage is recorded exactly once, by the leader, before
        journaling.
        """
        if error is not None:
            flight.error = error
            with self._lock:
                self._inflight.pop(key, None)
            flight.done.set()
            return
        assert response is not None
        flight.response = response
        record = _cache_record(response)
        try:
            with self._lock:
                self.misses += 1
                get_metrics().inc("llm.cache.misses")
                self._cache[key] = record
                self.stats.record(response.usage)
                self._append(key, record)
        finally:
            with self._lock:
                # Pop only after the cache holds the record: a request
                # arriving now finds it there, never a gap.
                self._inflight.pop(key, None)
            flight.done.set()

    # ------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else float("nan")

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        with self._lock:
            self._cache.clear()
            self.hits = 0
            self.misses = 0
            self.coalesced = 0
            self._journal_broken = False
            if self._journal is not None:
                self._journal.close()
                self._journal = None
            if self.cache_path and self.cache_path.exists():
                self.cache_path.unlink()

    @property
    def journaling(self) -> bool:
        """Whether a journal file handle is currently open.

        Long-lived hosts (the service daemon's shared stack) assert
        this is False after their explicit close — relying on
        ``__del__`` to release the handle ties resource lifetime to GC
        timing and surfaces as a ``ResourceWarning`` under pytest's
        ``filterwarnings = ["error"]``.
        """
        return self._journal is not None

    def close(self) -> None:
        """Stop journaling and compact the cache file atomically.

        This is the *only* deliberate release path for the journal
        handle — ``__del__`` is a GC-timed backstop, not a close
        policy.  Hosts that own a client for the life of a process
        (the service daemon's stack) must call this (or use the
        context manager) on shutdown.

        Compaction rewrites the journal as one deduplicated JSONL
        document via temp file + rename, so a crash mid-compaction
        leaves the previous journal intact.  Safe to call repeatedly;
        the client remains usable afterwards (the journal reopens on
        the next miss).
        """
        with self._lock:
            if self._journal is not None:
                self._journal.close()
                self._journal = None
            if self.cache_path is None or not self._cache:
                return
            self.cache_path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.cache_path.with_suffix(self.cache_path.suffix + ".tmp")
            with tmp.open("w", encoding="utf-8") as handle:
                for key, record in self._cache.items():
                    handle.write(_record_line(key, record))
            tmp.replace(self.cache_path)

    def __enter__(self) -> "CachingChatClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        # Release only the raw journal handle: compaction belongs to
        # an explicit close() (it rewrites the file, and GC timing
        # must never decide when that happens).
        journal = getattr(self, "_journal", None)
        if journal is not None:
            try:
                journal.close()
            except Exception:  # pragma: no cover - interpreter teardown
                pass

    # ------------------------------------------------------------------

    def _append(self, key: str, record: dict) -> None:
        """Journal one miss: a single appended-and-flushed JSONL line.

        Journal I/O failures (disk full, permissions yanked) must not
        fail the request that triggered them — the upstream call was
        already paid for and its response is already in the in-memory
        cache.  On ``OSError`` the journal is marked broken (counted in
        ``llm.cache.journal_errors``) and persistence quietly stops;
        correctness only loses warm restarts.
        """
        if self.cache_path is None or self._journal_broken:
            return
        try:
            if self._journal is None:
                self.cache_path.parent.mkdir(parents=True, exist_ok=True)
                self._journal = self.cache_path.open("a", encoding="utf-8")
            self._journal.write(_record_line(key, record))
            self._journal.flush()
        except OSError:
            self._journal_broken = True
            if self._journal is not None:
                try:
                    self._journal.close()
                except OSError:  # pragma: no cover - double fault
                    pass
                self._journal = None
            get_metrics().inc("llm.cache.journal_errors")
            return
        get_metrics().inc("llm.cache.journal_writes")


def _record_line(key: str, record: dict) -> str:
    return json.dumps({"key": key, **record}, ensure_ascii=False) + "\n"


def _load_cache_file(path: Path) -> dict[str, dict]:
    """Read a cache file in JSONL or legacy single-JSON-map format.

    A legacy file that later received JSONL appends (an interrupted
    migration) parses line by line: its first line is the old map and
    the rest are journal records, merged in order so newest wins.
    """
    entries: dict[str, dict] = {}
    text = path.read_text(encoding="utf-8")
    if not text.strip():
        return entries
    try:
        whole = json.loads(text)
    except json.JSONDecodeError:
        whole = None
    if isinstance(whole, dict) and "key" not in whole:
        return dict(whole)  # legacy: one JSON map of fingerprint → record
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if "key" in record:
            entries[record.pop("key")] = record
        else:
            entries.update(record)
    return entries
