"""Response caching for LLM clients.

Section V flags API cost and latency as the practical barrier to
multi-LLM voting at scale.  The standard mitigation is a response
cache: survey pipelines re-run constantly (new indicators, new vote
configurations, re-scored metrics) over the same images, and identical
requests should never be re-billed.

:class:`CachingChatClient` wraps any :class:`~repro.llm.base.ChatClient`
with an exact-match request cache — in memory, optionally persisted to
a JSON file on disk so interrupted surveys resume for free.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .base import ChatClient, ChatRequest, ChatResponse, Usage


def request_fingerprint(request: ChatRequest) -> str:
    """Stable content hash of a request.

    Covers everything that can change the response: model, message
    roles/texts, attached scene ids, and sampling parameters.
    """
    payload = {
        "model": request.model,
        "temperature": round(request.temperature, 6),
        "top_p": round(request.top_p, 6),
        "max_tokens": request.max_tokens,
        "messages": [
            {
                "role": message.role,
                "text": message.text,
                "images": [image.image_id for image in message.images],
            }
            for message in request.messages
        ],
    }
    blob = json.dumps(payload, sort_keys=True, ensure_ascii=False)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class CachingChatClient(ChatClient):
    """Exact-match response cache around an inner client.

    Cache hits cost nothing: the inner client is not called and no
    usage accrues to it.  The wrapper's own ``stats`` still counts
    every logical request, so hit rates are observable.
    """

    def __init__(
        self,
        inner: ChatClient,
        cache_path: str | Path | None = None,
    ) -> None:
        super().__init__(model_name=inner.model_name)
        self.inner = inner
        self.cache_path = Path(cache_path) if cache_path else None
        self.hits = 0
        self.misses = 0
        self._cache: dict[str, dict] = {}
        if self.cache_path and self.cache_path.exists():
            self._cache = json.loads(self.cache_path.read_text())

    # ------------------------------------------------------------------

    def complete(self, request: ChatRequest) -> ChatResponse:
        key = request_fingerprint(request)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            response = ChatResponse(
                model=cached["model"],
                content=cached["content"],
                usage=Usage(
                    prompt_tokens=cached["prompt_tokens"],
                    completion_tokens=cached["completion_tokens"],
                ),
                finish_reason=cached.get("finish_reason", "stop"),
            )
            self.stats.record(Usage(0, 0))  # logical request, zero tokens
            return response

        self.misses += 1
        response = self.inner.complete(request)
        self._cache[key] = {
            "model": response.model,
            "content": response.content,
            "prompt_tokens": response.usage.prompt_tokens,
            "completion_tokens": response.usage.completion_tokens,
            "finish_reason": response.finish_reason,
        }
        self.stats.record(response.usage)
        if self.cache_path:
            self._flush()
        return response

    # ------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else float("nan")

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()
        self.hits = 0
        self.misses = 0
        if self.cache_path and self.cache_path.exists():
            self.cache_path.unlink()

    def _flush(self) -> None:
        self.cache_path.parent.mkdir(parents=True, exist_ok=True)
        self.cache_path.write_text(json.dumps(self._cache))
