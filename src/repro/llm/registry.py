"""Client registry: build the four calibrated model clients.

``build_clients`` is the one-stop factory used by examples and
benches: give it calibration scenes and it returns ready-to-use
clients for all four models (or a subset), sharing one evidence model
so cross-model errors correlate.
"""

from __future__ import annotations

from ..scene.model import Scene
from .base import ChatClient
from .errors import ModelNotFoundError
from .models import SimulatedVLM
from .paper_targets import ALL_MODEL_IDS
from .perception import EvidenceModel
from .profiles import ModelProfile, calibrate_profiles


def build_clients(
    calibration_scenes: list[Scene],
    model_ids: tuple[str, ...] = ALL_MODEL_IDS,
    evidence_seed: int = 0,
    rate_limit_every: int | None = None,
) -> dict[str, SimulatedVLM]:
    """Calibrate and construct clients for the requested models."""
    unknown = [m for m in model_ids if m not in ALL_MODEL_IDS]
    if unknown:
        raise ModelNotFoundError(f"unknown model ids: {unknown}")
    evidence_model = EvidenceModel(seed=evidence_seed)
    profiles = calibrate_profiles(
        calibration_scenes, evidence_model, model_ids=model_ids
    )
    return {
        model_id: SimulatedVLM(
            profile=profiles[model_id],
            evidence_model=evidence_model,
            rate_limit_every=rate_limit_every,
        )
        for model_id in model_ids
    }


def client_from_profile(
    profile: ModelProfile,
    evidence_model: EvidenceModel,
    **kwargs,
) -> ChatClient:
    """Build a single client from an existing profile."""
    return SimulatedVLM(profile=profile, evidence_model=evidence_model, **kwargs)
