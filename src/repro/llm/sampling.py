"""Temperature and top-p effects on the Yes/No decision.

The paper's parameter-tuning experiment (§IV-C4) varies Gemini's
``temperature`` (0.1 / 1.0 / 1.5) and ``top_p`` (0.5 / 0.75 / 0.95)
and finds only marginal F1 movement ("Top-P adjustments mainly
influence output variety rather than task performance").

The simulation reproduces that flatness with the decomposition real
VLMs exhibit:

* the model's *perceptual* uncertainty — whether it believes the
  indicator is present — is sampled from the calibrated response
  policy and is independent of the sampling parameters;
* the *token-level* distribution over "Yes"/"No" is then strongly
  saturated toward the intended answer (confidence logit
  :data:`TOKEN_CONFIDENCE_LOGIT`).  Temperature rescales that token
  logit and top-p truncates the token nucleus, so extreme settings
  add (or remove) only a small answer-flip probability.

At the default settings (T=1.0, top-p=0.95) the nucleus collapses to
the intended token, so calibration at defaults is exact.
"""

from __future__ import annotations

import numpy as np

#: Token confidence logit for a maximally uncertain perception.
TOKEN_BASE_LOGIT = 2.5

#: Extra token confidence per unit of perceptual certainty |2q - 1|.
#: A model that is perceptually sure emits its answer token with
#: logit ≈ 6.5 — effectively deterministic at any temperature ≤ 2.
TOKEN_CERTAINTY_GAIN = 4.0

#: Floor that keeps the logit rescale finite at temperature → 0.
_MIN_TEMPERATURE = 0.02


def apply_temperature(p: float, temperature: float) -> float:
    """Rescale a Bernoulli probability's logit by ``1 / temperature``."""
    if not 0.0 <= temperature <= 2.0:
        raise ValueError(f"temperature out of range: {temperature}")
    clipped = float(np.clip(p, 1e-9, 1.0 - 1e-9))
    logit = np.log(clipped / (1.0 - clipped))
    scaled = logit / max(temperature, _MIN_TEMPERATURE)
    return float(1.0 / (1.0 + np.exp(-scaled)))


def token_fidelity(p_yes: float, temperature: float, top_p: float) -> float:
    """Probability the emitted token matches the intended answer.

    The intended token's confidence grows with perceptual certainty
    (``|2 p_yes - 1|``): a model that clearly sees the indicator will
    not flip its answer at any temperature, while borderline cases
    carry genuine token-level entropy.  Nucleus sampling keeps only
    the intended token whenever its probability reaches ``top_p``
    (the dominant token always enters the nucleus first), making the
    emission deterministic.
    """
    if not 0.0 < top_p <= 1.0:
        raise ValueError(f"top_p out of range: {top_p}")
    if not 0.0 <= temperature <= 2.0:
        raise ValueError(f"temperature out of range: {temperature}")
    certainty = abs(2.0 * float(np.clip(p_yes, 0.0, 1.0)) - 1.0)
    z0 = TOKEN_BASE_LOGIT + TOKEN_CERTAINTY_GAIN * certainty
    z = z0 / max(temperature, _MIN_TEMPERATURE)
    p_intended = float(1.0 / (1.0 + np.exp(-z)))
    if p_intended >= top_p:
        return 1.0
    return p_intended


def effective_yes_probability(
    p_yes: float, temperature: float, top_p: float
) -> float:
    """Overall P(answer = Yes) including the token-flip channel.

    Analytic (no sampling); used by the calibration fitter so fitted
    policies account for the full sampling pipeline.
    """
    fidelity = token_fidelity(p_yes, temperature, top_p)
    return p_yes * fidelity + (1.0 - p_yes) * (1.0 - fidelity)


def sample_yes(
    p_yes: float,
    temperature: float,
    top_p: float,
    rng: np.random.Generator,
) -> bool:
    """Draw the Yes/No decision: perceptual draw, then token emission."""
    intended = bool(rng.random() < p_yes)
    fidelity = token_fidelity(p_yes, temperature, top_p)
    if fidelity >= 1.0 or rng.random() < fidelity:
        return intended
    return not intended
