"""Fitting response policies to the paper's published statistics.

Each simulated model answers "is indicator X present?" by passing the
scene's evidence ``e`` through a logistic response policy::

    p_yes = sigmoid((e - threshold) / slope)

and sampling the decision (see :mod:`repro.llm.sampling`).  The paper
publishes per-class precision and recall for all four models (Tables
III–VI); combined with the dataset's class prevalence these determine
the true-positive and false-positive rates each policy must achieve.
This module solves the inverse problem: given evidence samples split
by ground truth and the (TPR, FPR) targets, find ``(threshold,
slope)``.

The fit is deterministic: coarse slope grid, exact threshold bisection
per slope (the expected yes-rate is monotone decreasing in the
threshold), then a local refinement pass.

The second half of the module calibrates the *detector* rather than
the simulated LLMs: :class:`MarginCalibration` maps NanoDetector
per-indicator peak scores (decision margins) to empirical
P(present) via per-indicator isotonic regression — the confidence
source of the cascade router (:mod:`repro.cascade`).  The fit is
pool-adjacent-violators, fully deterministic, and the fitted curves
round-trip exactly through JSON so they persist in the
content-addressed artifact cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .sampling import effective_yes_probability


@dataclass(frozen=True)
class ResponsePolicy:
    """Logistic Yes-probability policy over evidence scores."""

    threshold: float
    slope: float

    def __post_init__(self) -> None:
        if self.slope <= 0:
            raise ValueError(f"slope must be positive: {self.slope}")

    def p_yes(self, evidence: float) -> float:
        z = (evidence - self.threshold) / self.slope
        return float(1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0))))

    def p_yes_array(self, evidence: np.ndarray) -> np.ndarray:
        z = (np.asarray(evidence, dtype=np.float64) - self.threshold) / self.slope
        return 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))

    def shifted(self, delta_threshold: float) -> "ResponsePolicy":
        """A copy with the threshold raised by ``delta_threshold``."""
        return ResponsePolicy(self.threshold + delta_threshold, self.slope)


@dataclass(frozen=True)
class PolicyFit:
    """A fitted policy with its achieved operating point."""

    policy: ResponsePolicy
    achieved_tpr: float
    achieved_fpr: float
    target_tpr: float
    target_fpr: float

    @property
    def tpr_error(self) -> float:
        return abs(self.achieved_tpr - self.target_tpr)

    @property
    def fpr_error(self) -> float:
        return abs(self.achieved_fpr - self.target_fpr)


def derive_rates(
    precision: float, recall: float, prevalence: float
) -> tuple[float, float]:
    """Convert (precision, recall) at a given prevalence to (TPR, FPR).

    From the definition of precision::

        precision = π·TPR / (π·TPR + (1-π)·FPR)
        ⇒ FPR = π·TPR·(1-precision) / (precision·(1-π))
    """
    if not 0.0 < precision <= 1.0:
        raise ValueError(f"precision out of range: {precision}")
    if not 0.0 <= recall <= 1.0:
        raise ValueError(f"recall out of range: {recall}")
    if not 0.0 < prevalence < 1.0:
        raise ValueError(f"prevalence out of range: {prevalence}")
    tpr = recall
    fpr = prevalence * tpr * (1.0 - precision) / (precision * (1.0 - prevalence))
    return tpr, min(fpr, 1.0)


def expected_yes_rate(
    evidence: np.ndarray,
    policy: ResponsePolicy,
    temperature: float = 1.0,
    top_p: float = 0.95,
) -> float:
    """Mean probability of answering Yes over an evidence sample."""
    samples = np.asarray(evidence, dtype=np.float64)
    if samples.size == 0:
        return float("nan")
    probabilities = policy.p_yes_array(samples)
    effective = np.array(
        [
            effective_yes_probability(float(p), temperature, top_p)
            for p in probabilities
        ]
    )
    return float(effective.mean())


def fit_threshold(
    evidence: np.ndarray,
    slope: float,
    target_rate: float,
    temperature: float = 1.0,
    top_p: float = 0.95,
    iterations: int = 40,
) -> float:
    """Bisect the threshold achieving a target yes-rate on a sample."""
    lo, hi = -2.0, 3.0
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        rate = expected_yes_rate(
            evidence, ResponsePolicy(mid, slope), temperature, top_p
        )
        if rate > target_rate:
            lo = mid  # raise threshold to lower the rate
        else:
            hi = mid
    return (lo + hi) / 2.0


def fit_policy(
    present: np.ndarray,
    absent: np.ndarray,
    target_tpr: float,
    target_fpr: float,
    temperature: float = 1.0,
    top_p: float = 0.95,
) -> PolicyFit:
    """Fit ``(threshold, slope)`` to hit (TPR, FPR) targets.

    For each candidate slope the threshold is bisected to match the
    TPR exactly on the present-class evidence, then the slope is chosen
    to minimize the FPR error on the absent-class evidence.  If the
    targets are jointly unreachable (evidence distributions too
    separated or too overlapped) the closest achievable operating
    point is returned — callers can inspect ``fpr_error``.
    """
    present = np.asarray(present, dtype=np.float64)
    absent = np.asarray(absent, dtype=np.float64)
    if present.size == 0 or absent.size == 0:
        raise ValueError("need evidence samples for both classes")
    if not 0.0 < target_tpr <= 1.0:
        raise ValueError(f"target TPR out of range: {target_tpr}")
    if not 0.0 <= target_fpr < 1.0:
        raise ValueError(f"target FPR out of range: {target_fpr}")

    def evaluate(slope: float) -> tuple[float, ResponsePolicy, float, float]:
        threshold = fit_threshold(
            present, slope, target_tpr, temperature, top_p
        )
        policy = ResponsePolicy(threshold, slope)
        tpr = expected_yes_rate(present, policy, temperature, top_p)
        fpr = expected_yes_rate(absent, policy, temperature, top_p)
        return abs(fpr - target_fpr), policy, tpr, fpr

    coarse = np.geomspace(0.015, 0.8, 18)
    scored = [evaluate(float(s)) for s in coarse]
    best_index = int(np.argmin([s[0] for s in scored]))

    lo = coarse[max(0, best_index - 1)]
    hi = coarse[min(len(coarse) - 1, best_index + 1)]
    fine = np.geomspace(lo, hi, 12)
    scored_fine = [evaluate(float(s)) for s in fine]
    best = min(scored_fine, key=lambda s: s[0])
    _, policy, tpr, fpr = best
    return PolicyFit(
        policy=policy,
        achieved_tpr=tpr,
        achieved_fpr=fpr,
        target_tpr=target_tpr,
        target_fpr=target_fpr,
    )


# ----------------------------------------------------------------------
# detector margin → probability calibration (cascade tier-0 confidence)

#: Probabilities are clipped into ``[EPS, 1-EPS]``: an isotonic fit on
#: finite data happily emits exact 0/1 blocks, but the cascade treats
#: "certain" as "doubt is exactly zero" nowhere — every indicator keeps
#: a strictly positive doubt, which is what makes a doubt threshold of
#: 0 escalate *everything* (the full-ensemble byte-identity guarantee).
CALIBRATION_EPS = 1e-3

#: Artifact-cache kind under which fitted calibrations persist.
CALIBRATION_KIND = "calibration"


@dataclass(frozen=True)
class IsotonicCurve:
    """A monotone non-decreasing step function score → probability.

    ``positions`` are the ascending anchor scores observed in the fit;
    ``values`` the pooled (PAV) probabilities, one per anchor.  A query
    score takes the value of the largest anchor ≤ it (scores below the
    first anchor take the first value) — a right-continuous step
    function, evaluated by binary search.
    """

    positions: tuple[float, ...]
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.positions or len(self.positions) != len(self.values):
            raise ValueError("curve needs aligned, non-empty anchors")
        if any(
            b <= a for a, b in zip(self.positions, self.positions[1:])
        ):
            raise ValueError("anchor positions must be strictly ascending")
        if any(
            b < a for a, b in zip(self.values, self.values[1:])
        ):
            raise ValueError("values must be non-decreasing")

    def probability(self, scores: np.ndarray) -> np.ndarray:
        """Vectorized evaluation of the step function."""
        anchors = np.asarray(self.positions, dtype=np.float64)
        values = np.asarray(self.values, dtype=np.float64)
        index = np.searchsorted(anchors, np.asarray(scores), side="right") - 1
        return values[np.clip(index, 0, len(values) - 1)]


def _pool_adjacent_violators(
    positions: np.ndarray, means: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Weighted PAV: the monotone fit minimizing squared error.

    Classic stack algorithm over pre-pooled (position, mean, weight)
    groups in ascending position order; deterministic, O(n).
    """
    blocks: list[list[float]] = []  # [mean, weight]
    for mean, weight in zip(means, weights):
        blocks.append([float(mean), float(weight)])
        while len(blocks) > 1 and blocks[-2][0] >= blocks[-1][0]:
            m2, w2 = blocks.pop()
            m1, w1 = blocks.pop()
            blocks.append([(m1 * w1 + m2 * w2) / (w1 + w2), w1 + w2])
    fitted = np.empty(len(positions), dtype=np.float64)
    start = 0
    cursor = 0
    for mean, weight in blocks:
        # Walk forward until this block's weight is exhausted.
        spent = 0.0
        while spent < weight - 1e-9 and cursor < len(weights):
            fitted[cursor] = mean
            spent += weights[cursor]
            cursor += 1
        start = cursor
    assert start == len(positions)
    return fitted


def fit_isotonic_curve(
    scores: np.ndarray, labels: np.ndarray, eps: float = CALIBRATION_EPS
) -> IsotonicCurve:
    """Fit one indicator's score → P(present) curve.

    Ties in score are pooled before PAV so the curve is a function of
    the score alone; fitted probabilities are clipped into
    ``[eps, 1-eps]`` (see :data:`CALIBRATION_EPS`).
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if scores.size == 0 or scores.shape != labels.shape:
        raise ValueError("need aligned, non-empty scores and labels")
    order = np.argsort(scores, kind="stable")
    positions, starts = np.unique(scores[order], return_index=True)
    sums = np.add.reduceat(labels[order], starts)
    counts = np.diff(np.append(starts, len(order))).astype(np.float64)
    fitted = _pool_adjacent_violators(positions, sums / counts, counts)
    clipped = np.clip(fitted, eps, 1.0 - eps)
    return IsotonicCurve(
        positions=tuple(float(p) for p in positions),
        values=tuple(float(v) for v in clipped),
    )


@dataclass(frozen=True)
class MarginCalibration:
    """Per-indicator detector-margin calibration.

    Operates on arrays shaped ``(..., C)`` whose last axis follows the
    canonical indicator order (``repro.core.indicators.ALL_INDICATORS``)
    — the same order :meth:`NanoDetector.indicator_scores` emits — so
    this module stays free of a ``core`` import.
    """

    curves: tuple[IsotonicCurve, ...]

    def __post_init__(self) -> None:
        if not self.curves:
            raise ValueError("calibration needs at least one curve")

    @property
    def n_indicators(self) -> int:
        return len(self.curves)

    def probabilities(self, peaks: np.ndarray) -> np.ndarray:
        """Calibrated P(present), shape-preserving over ``(..., C)``."""
        peaks = np.asarray(peaks, dtype=np.float64)
        if peaks.shape[-1] != len(self.curves):
            raise ValueError(
                f"expected {len(self.curves)} indicator columns, "
                f"got {peaks.shape[-1]}"
            )
        out = np.empty_like(peaks)
        for column, curve in enumerate(self.curves):
            out[..., column] = curve.probability(peaks[..., column])
        return out

    def doubts(self, peaks: np.ndarray) -> np.ndarray:
        """Calibrated doubt ``min(p, 1-p)`` — strictly positive."""
        probabilities = self.probabilities(peaks)
        return np.minimum(probabilities, 1.0 - probabilities)

    def leans(self, peaks: np.ndarray) -> np.ndarray:
        """The detector's calibrated answer: P(present) ≥ 0.5."""
        return self.probabilities(peaks) >= 0.5

    def to_payload(self) -> dict:
        """JSON-exact representation (floats survive json round-trips)."""
        return {
            "curves": [
                {
                    "positions": list(curve.positions),
                    "values": list(curve.values),
                }
                for curve in self.curves
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "MarginCalibration":
        return cls(
            curves=tuple(
                IsotonicCurve(
                    positions=tuple(entry["positions"]),
                    values=tuple(entry["values"]),
                )
                for entry in payload["curves"]
            )
        )


def fit_margin_calibration(
    peaks: np.ndarray, truths: np.ndarray, eps: float = CALIBRATION_EPS
) -> MarginCalibration:
    """Fit all indicator curves from labeled detector peaks.

    ``peaks`` is ``(N, C)`` per-image peak scores, ``truths`` the
    aligned boolean ground-truth presence matrix.
    """
    peaks = np.asarray(peaks, dtype=np.float64)
    truths = np.asarray(truths, dtype=bool)
    if peaks.ndim != 2 or peaks.shape != truths.shape:
        raise ValueError(
            f"peaks {peaks.shape} and truths {truths.shape} must be "
            "aligned (N, C) matrices"
        )
    return MarginCalibration(
        curves=tuple(
            fit_isotonic_curve(peaks[:, column], truths[:, column], eps=eps)
            for column in range(peaks.shape[1])
        )
    )


def save_margin_calibration(cache, key: str, calibration: MarginCalibration) -> None:
    """Persist a fitted calibration in the artifact cache."""
    cache.put_json(CALIBRATION_KIND, key, calibration.to_payload())


def load_margin_calibration(cache, key: str) -> MarginCalibration | None:
    """Load a calibration back, or ``None`` on a cache miss."""
    payload = cache.get_json(CALIBRATION_KIND, key)
    if payload is None:
        return None
    return MarginCalibration.from_payload(payload)
