"""Fitting response policies to the paper's published statistics.

Each simulated model answers "is indicator X present?" by passing the
scene's evidence ``e`` through a logistic response policy::

    p_yes = sigmoid((e - threshold) / slope)

and sampling the decision (see :mod:`repro.llm.sampling`).  The paper
publishes per-class precision and recall for all four models (Tables
III–VI); combined with the dataset's class prevalence these determine
the true-positive and false-positive rates each policy must achieve.
This module solves the inverse problem: given evidence samples split
by ground truth and the (TPR, FPR) targets, find ``(threshold,
slope)``.

The fit is deterministic: coarse slope grid, exact threshold bisection
per slope (the expected yes-rate is monotone decreasing in the
threshold), then a local refinement pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .sampling import effective_yes_probability


@dataclass(frozen=True)
class ResponsePolicy:
    """Logistic Yes-probability policy over evidence scores."""

    threshold: float
    slope: float

    def __post_init__(self) -> None:
        if self.slope <= 0:
            raise ValueError(f"slope must be positive: {self.slope}")

    def p_yes(self, evidence: float) -> float:
        z = (evidence - self.threshold) / self.slope
        return float(1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0))))

    def p_yes_array(self, evidence: np.ndarray) -> np.ndarray:
        z = (np.asarray(evidence, dtype=np.float64) - self.threshold) / self.slope
        return 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))

    def shifted(self, delta_threshold: float) -> "ResponsePolicy":
        """A copy with the threshold raised by ``delta_threshold``."""
        return ResponsePolicy(self.threshold + delta_threshold, self.slope)


@dataclass(frozen=True)
class PolicyFit:
    """A fitted policy with its achieved operating point."""

    policy: ResponsePolicy
    achieved_tpr: float
    achieved_fpr: float
    target_tpr: float
    target_fpr: float

    @property
    def tpr_error(self) -> float:
        return abs(self.achieved_tpr - self.target_tpr)

    @property
    def fpr_error(self) -> float:
        return abs(self.achieved_fpr - self.target_fpr)


def derive_rates(
    precision: float, recall: float, prevalence: float
) -> tuple[float, float]:
    """Convert (precision, recall) at a given prevalence to (TPR, FPR).

    From the definition of precision::

        precision = π·TPR / (π·TPR + (1-π)·FPR)
        ⇒ FPR = π·TPR·(1-precision) / (precision·(1-π))
    """
    if not 0.0 < precision <= 1.0:
        raise ValueError(f"precision out of range: {precision}")
    if not 0.0 <= recall <= 1.0:
        raise ValueError(f"recall out of range: {recall}")
    if not 0.0 < prevalence < 1.0:
        raise ValueError(f"prevalence out of range: {prevalence}")
    tpr = recall
    fpr = prevalence * tpr * (1.0 - precision) / (precision * (1.0 - prevalence))
    return tpr, min(fpr, 1.0)


def expected_yes_rate(
    evidence: np.ndarray,
    policy: ResponsePolicy,
    temperature: float = 1.0,
    top_p: float = 0.95,
) -> float:
    """Mean probability of answering Yes over an evidence sample."""
    samples = np.asarray(evidence, dtype=np.float64)
    if samples.size == 0:
        return float("nan")
    probabilities = policy.p_yes_array(samples)
    effective = np.array(
        [
            effective_yes_probability(float(p), temperature, top_p)
            for p in probabilities
        ]
    )
    return float(effective.mean())


def fit_threshold(
    evidence: np.ndarray,
    slope: float,
    target_rate: float,
    temperature: float = 1.0,
    top_p: float = 0.95,
    iterations: int = 40,
) -> float:
    """Bisect the threshold achieving a target yes-rate on a sample."""
    lo, hi = -2.0, 3.0
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        rate = expected_yes_rate(
            evidence, ResponsePolicy(mid, slope), temperature, top_p
        )
        if rate > target_rate:
            lo = mid  # raise threshold to lower the rate
        else:
            hi = mid
    return (lo + hi) / 2.0


def fit_policy(
    present: np.ndarray,
    absent: np.ndarray,
    target_tpr: float,
    target_fpr: float,
    temperature: float = 1.0,
    top_p: float = 0.95,
) -> PolicyFit:
    """Fit ``(threshold, slope)`` to hit (TPR, FPR) targets.

    For each candidate slope the threshold is bisected to match the
    TPR exactly on the present-class evidence, then the slope is chosen
    to minimize the FPR error on the absent-class evidence.  If the
    targets are jointly unreachable (evidence distributions too
    separated or too overlapped) the closest achievable operating
    point is returned — callers can inspect ``fpr_error``.
    """
    present = np.asarray(present, dtype=np.float64)
    absent = np.asarray(absent, dtype=np.float64)
    if present.size == 0 or absent.size == 0:
        raise ValueError("need evidence samples for both classes")
    if not 0.0 < target_tpr <= 1.0:
        raise ValueError(f"target TPR out of range: {target_tpr}")
    if not 0.0 <= target_fpr < 1.0:
        raise ValueError(f"target FPR out of range: {target_fpr}")

    def evaluate(slope: float) -> tuple[float, ResponsePolicy, float, float]:
        threshold = fit_threshold(
            present, slope, target_tpr, temperature, top_p
        )
        policy = ResponsePolicy(threshold, slope)
        tpr = expected_yes_rate(present, policy, temperature, top_p)
        fpr = expected_yes_rate(absent, policy, temperature, top_p)
        return abs(fpr - target_fpr), policy, tpr, fpr

    coarse = np.geomspace(0.015, 0.8, 18)
    scored = [evaluate(float(s)) for s in coarse]
    best_index = int(np.argmin([s[0] for s in scored]))

    lo = coarse[max(0, best_index - 1)]
    hi = coarse[min(len(coarse) - 1, best_index + 1)]
    fine = np.geomspace(lo, hi, 12)
    scored_fine = [evaluate(float(s)) for s in fine]
    best = min(scored_fine, key=lambda s: s[0])
    _, policy, tpr, fpr = best
    return PolicyFit(
        policy=policy,
        achieved_tpr=tpr,
        achieved_fpr=fpr,
        target_tpr=target_tpr,
        target_fpr=target_fpr,
    )
