"""Content-addressed artifact store for the experiment suite.

The suite's expensive intermediates — per-image feature/target
tensors, trained detector weights, per-image detector predictions —
are pure functions of describable inputs: a scene fingerprint plus
the configuration that shaped the computation.  :class:`ArtifactCache`
persists each one under a SHA-256 key of exactly those inputs, so a
second ``experiments run-all`` (or the Fig. 2 augmentation sweep,
which re-extracts features for the same base images three times)
replays from disk instead of recomputing.

Key scheme (see DESIGN.md §9):

* ``fingerprint(payload)`` — SHA-256 over the canonical (sorted-key)
  JSON of a plain-data payload; every cache key bottoms out here.
* :func:`image_fingerprint` — extends PR 2's
  :func:`~repro.scene.render.scene_fingerprint` with everything else
  that reaches a labeled image's pixels and training targets: raster
  size, the lazy ``render_ops`` pipeline, annotations, and occupancy
  overrides.  Two images with equal fingerprints render and supervise
  identically.
* :func:`model_fingerprint` — config plus the raw little-endian bytes
  of every weight tensor; byte-identical models hash identically.
* :func:`tensors_fingerprint` — shape + bytes of a training-tensor
  triple, used to key trained weights on *what the trainer saw* so a
  precomputed-tensor path and a from-images path hit the same entry.

Storage is one file per artifact (``.npz`` for arrays, ``.json`` for
structured payloads) under ``root/<kind>/<key[:2]>/<key>``, written
atomically (temp file + rename) so a crashed run never leaves a
corrupt entry; unreadable entries are dropped and treated as misses.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
from pathlib import Path
from typing import Any

import numpy as np

from ..obs.metrics import get_metrics

__all__ = [
    "ArtifactCache",
    "fingerprint",
    "image_fingerprint",
    "model_fingerprint",
    "tensors_fingerprint",
]


def fingerprint(payload: Any) -> str:
    """SHA-256 of the canonical JSON encoding of ``payload``."""
    encoded = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=_jsonify
    ).encode()
    return hashlib.sha256(encoded).hexdigest()


def _jsonify(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer, np.floating)):
        return value.item()
    raise TypeError(f"not fingerprintable: {type(value).__name__}")


def image_fingerprint(image) -> str:
    """Content hash of a :class:`~repro.gsv.dataset.LabeledImage`.

    Covers the scene fingerprint (drawable content + raster size),
    the lazy render-op pipeline, the annotation list, and any
    occupancy overrides — everything that influences both the pixels
    and the training targets derived from them.
    """
    from ..scene.render import scene_fingerprint

    return fingerprint(
        {
            "scene": scene_fingerprint(image.scene, image.size),
            "size": image.size,
            "render_ops": repr(image.render_ops),
            "annotations": [
                (ind.value, box.x_min, box.y_min, box.x_max, box.y_max)
                for ind, box in image.annotations
            ],
            "occupancy": repr(image.occupancy),
        }
    )


def model_fingerprint(model) -> str:
    """Content hash of a trained detector: config + raw weight bytes."""
    hasher = hashlib.sha256()
    config = model.config
    hasher.update(
        repr(
            (
                config.grid,
                config.hidden,
                config.conf_threshold,
                config.nms_iou,
                config.smooth_features,
                config.context_features,
            )
        ).encode()
    )
    for name in ("w1", "b1", "w2", "b2", "feat_mean", "feat_std"):
        tensor = getattr(model, name)
        if tensor is None:
            raise ValueError(f"cannot fingerprint untrained model: {name} unset")
        array = np.ascontiguousarray(tensor, dtype=np.float64)
        hasher.update(name.encode())
        hasher.update(repr(array.shape).encode())
        hasher.update(array.tobytes())
    return hasher.hexdigest()


def tensors_fingerprint(
    features: np.ndarray, obj_targets: np.ndarray, box_targets: np.ndarray
) -> str:
    """Content hash of a training-tensor triple (shapes + bytes)."""
    hasher = hashlib.sha256()
    for name, array in (
        ("features", features),
        ("obj", obj_targets),
        ("box", box_targets),
    ):
        contiguous = np.ascontiguousarray(array, dtype=np.float64)
        hasher.update(name.encode())
        hasher.update(repr(contiguous.shape).encode())
        hasher.update(contiguous.tobytes())
    return hasher.hexdigest()


class ArtifactCache:
    """Disk-backed content-addressed store with hit/miss accounting.

    Artifacts are grouped by ``kind`` (``"tensors"``, ``"models"``,
    ``"predictions"``, ...) purely for introspection — keys are
    already collision-free.  All methods are thread-safe; concurrent
    writers of the same key race benignly (last rename wins, both
    wrote identical content by construction).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {}
        self._misses: dict[str, int] = {}

    # ------------------------------------------------------------------
    # accounting

    @property
    def hits(self) -> int:
        with self._lock:
            return sum(self._hits.values())

    @property
    def misses(self) -> int:
        with self._lock:
            return sum(self._misses.values())

    def stats(self) -> dict:
        """Hit/miss counts, overall and per kind."""
        with self._lock:
            kinds = sorted(set(self._hits) | set(self._misses))
            return {
                "hits": sum(self._hits.values()),
                "misses": sum(self._misses.values()),
                "by_kind": {
                    kind: {
                        "hits": self._hits.get(kind, 0),
                        "misses": self._misses.get(kind, 0),
                    }
                    for kind in kinds
                },
            }

    def _record(self, kind: str, hit: bool) -> None:
        with self._lock:
            counter = self._hits if hit else self._misses
            counter[kind] = counter.get(kind, 0) + 1
        get_metrics().inc(
            "artifacts.hits" if hit else "artifacts.misses"
        )

    # ------------------------------------------------------------------
    # storage

    def _path(self, kind: str, key: str, suffix: str) -> Path:
        if not key or any(ch not in "0123456789abcdef" for ch in key):
            raise ValueError(f"key must be a hex digest: {key!r}")
        return self.root / kind / key[:2] / f"{key}{suffix}"

    def __len__(self) -> int:
        return sum(
            1
            for path in self.root.rglob("*")
            if path.is_file() and path.suffix in (".npz", ".json")
        )

    def clear(self) -> None:
        """Drop every stored artifact and reset the counters."""
        for path in sorted(
            self.root.rglob("*"), key=lambda p: len(p.parts), reverse=True
        ):
            if path.is_file():
                path.unlink()
            elif path.is_dir():
                try:
                    path.rmdir()
                except OSError:  # pragma: no cover - non-empty race
                    pass
        with self._lock:
            self._hits.clear()
            self._misses.clear()

    def _write_atomic(self, path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        tmp.write_bytes(data)
        tmp.replace(path)

    # ------------------------------------------------------------------
    # arrays

    def put_arrays(self, kind: str, key: str, **arrays: np.ndarray) -> None:
        """Store named arrays under ``key`` (compressed, atomic)."""
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **arrays)
        self._write_atomic(self._path(kind, key, ".npz"), buffer.getvalue())

    def get_arrays(self, kind: str, key: str) -> dict[str, np.ndarray] | None:
        """The stored arrays, or ``None`` on a miss (corrupt = miss)."""
        path = self._path(kind, key, ".npz")
        try:
            with np.load(path) as archive:
                payload = {name: archive[name] for name in archive.files}
        except FileNotFoundError:
            self._record(kind, hit=False)
            return None
        except (OSError, ValueError, KeyError):
            # A truncated or corrupt entry: drop it and recompute.
            path.unlink(missing_ok=True)
            self._record(kind, hit=False)
            return None
        self._record(kind, hit=True)
        return payload

    # ------------------------------------------------------------------
    # json

    def put_json(self, kind: str, key: str, payload: Any) -> None:
        """Store a JSON-encodable payload under ``key`` (atomic)."""
        data = json.dumps(payload, sort_keys=True).encode()
        self._write_atomic(self._path(kind, key, ".json"), data)

    def get_json(self, kind: str, key: str) -> Any | None:
        """The stored payload, or ``None`` on a miss (corrupt = miss)."""
        path = self._path(kind, key, ".json")
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self._record(kind, hit=False)
            return None
        except (OSError, ValueError):
            path.unlink(missing_ok=True)
            self._record(kind, hit=False)
            return None
        self._record(kind, hit=True)
        return payload
