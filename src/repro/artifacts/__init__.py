"""Content-addressed artifact cache for expensive pipeline products.

Feature tensors, trained detector weights, and per-image detector
predictions persist to disk keyed by content fingerprints of their
inputs, so reruns of the experiment suite replay from cache instead
of recomputing.  See :mod:`repro.artifacts.cache` for the key scheme
and DESIGN.md §9 for how the hot paths consume it.
"""

from .cache import (
    ArtifactCache,
    fingerprint,
    image_fingerprint,
    model_fingerprint,
    tensors_fingerprint,
)

__all__ = [
    "ArtifactCache",
    "fingerprint",
    "image_fingerprint",
    "model_fingerprint",
    "tensors_fingerprint",
]
