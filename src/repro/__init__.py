"""repro — reproduction of "Decoding Neighborhood Environments with
Large Language Models" (DSN 2025).

The package decodes six environmental indicators (streetlight,
sidewalk, single-lane road, multilane road, powerline, apartment) from
street-view imagery two ways and compares them:

* a supervised YOLO-style detector trained from scratch
  (:mod:`repro.detect`), and
* zero-shot prompting of four (simulated, calibration-fitted)
  commercial vision LLMs (:mod:`repro.llm`), combined with prompt
  engineering, multilingual prompts, and majority voting
  (:mod:`repro.core`).

Quick start::

    from repro import build_survey_dataset, build_clients
    from repro import LLMIndicatorClassifier, ClassificationReport

    dataset = build_survey_dataset(n_images=200, seed=0)
    clients = build_clients([im.scene for im in dataset])
    classifier = LLMIndicatorClassifier(clients["gemini-1.5-pro"])
    predictions = classifier.predictions(dataset.images)
    report = ClassificationReport.from_predictions(
        [im.presence for im in dataset], predictions
    )
    print(report.rows())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .core import (
    ALL_INDICATORS,
    ClassificationReport,
    ClassifierConfig,
    Indicator,
    IndicatorPresence,
    LLMIndicatorClassifier,
    NeighborhoodDecoder,
    PromptStyle,
    VotingEnsemble,
    build_parallel_prompt,
    build_sequential_prompt,
    majority_vote,
)
from .detect import (
    EvaluationReport,
    ModelConfig,
    NanoDetector,
    TrainConfig,
    evaluate_detector,
    train_detector,
)
from .gsv import (
    StreetViewClient,
    SurveyDataset,
    build_survey_dataset,
)
from .health import (
    HealthModel,
    build_tract_survey,
    fit_logistic,
    run_association_study,
)
from .llm import (
    ALL_MODEL_IDS,
    CachingChatClient,
    EvidenceModel,
    Language,
    SimulatedVLM,
    build_clients,
    calibrate_profiles,
)
from .parallel import ParallelExecutor
from .reporting import (
    export_survey,
    survey_to_csv,
    survey_to_geojson,
    survey_to_markdown,
)
from .resilience import (
    CircuitBreaker,
    FaultSchedule,
    RetryPolicy,
    SurveyCheckpoint,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_INDICATORS",
    "ClassificationReport",
    "ClassifierConfig",
    "Indicator",
    "IndicatorPresence",
    "LLMIndicatorClassifier",
    "NeighborhoodDecoder",
    "PromptStyle",
    "VotingEnsemble",
    "build_parallel_prompt",
    "build_sequential_prompt",
    "majority_vote",
    "EvaluationReport",
    "ModelConfig",
    "NanoDetector",
    "TrainConfig",
    "evaluate_detector",
    "train_detector",
    "StreetViewClient",
    "SurveyDataset",
    "build_survey_dataset",
    "ALL_MODEL_IDS",
    "CachingChatClient",
    "EvidenceModel",
    "Language",
    "SimulatedVLM",
    "build_clients",
    "calibrate_profiles",
    "HealthModel",
    "build_tract_survey",
    "fit_logistic",
    "run_association_study",
    "ParallelExecutor",
    "export_survey",
    "survey_to_csv",
    "survey_to_geojson",
    "survey_to_markdown",
    "CircuitBreaker",
    "FaultSchedule",
    "RetryPolicy",
    "SurveyCheckpoint",
    "__version__",
]
