"""Scene graph: the ground truth behind every synthetic street image.

A :class:`Scene` is the structured description of what a street-view
capture contains — typed objects with normalized bounding boxes plus
scene-level context (zone kind, camera heading relative to the road,
lighting).  The rasterizer turns a scene into pixels; the LabelMe layer
turns it into annotations; the LLM perception model reads it through a
noisy channel.  Keeping the scene explicit is what lets the
reproduction run the same image through every subsystem with a single
source of ground truth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..core.indicators import ALL_INDICATORS, Indicator, IndicatorPresence


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned box in normalized image coordinates.

    Coordinates are fractions of image width/height with the origin at
    the top-left corner, ``0 <= x_min < x_max <= 1`` and likewise for
    y.  Normalized coordinates make scene ground truth independent of
    the requested render resolution.
    """

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.x_min < self.x_max <= 1.0):
            raise ValueError(
                f"invalid x extent: [{self.x_min}, {self.x_max}]"
            )
        if not (0.0 <= self.y_min < self.y_max <= 1.0):
            raise ValueError(
                f"invalid y extent: [{self.y_min}, {self.y_max}]"
            )

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return (
            (self.x_min + self.x_max) / 2.0,
            (self.y_min + self.y_max) / 2.0,
        )

    def iou(self, other: "BoundingBox") -> float:
        """Intersection-over-union with ``other``."""
        ix = max(0.0, min(self.x_max, other.x_max) - max(self.x_min, other.x_min))
        iy = max(0.0, min(self.y_max, other.y_max) - max(self.y_min, other.y_min))
        inter = ix * iy
        union = self.area + other.area - inter
        return inter / union if union > 0 else 0.0

    def to_pixels(self, width: int, height: int) -> tuple[int, int, int, int]:
        """Convert to integer pixel coordinates for a given image size."""
        if width <= 0 or height <= 0:
            raise ValueError("image dimensions must be positive")
        return (
            int(round(self.x_min * width)),
            int(round(self.y_min * height)),
            int(round(self.x_max * width)),
            int(round(self.y_max * height)),
        )

    @classmethod
    def from_pixels(
        cls, x0: float, y0: float, x1: float, y1: float, width: int, height: int
    ) -> "BoundingBox":
        """Build a normalized box from pixel coordinates, clamping to the canvas."""
        return cls(
            max(0.0, min(1.0, x0 / width)),
            max(0.0, min(1.0, y0 / height)),
            max(0.0, min(1.0, x1 / width)),
            max(0.0, min(1.0, y1 / height)),
        )

    def clamped_shift(self, dx: float, dy: float) -> "BoundingBox":
        """Translate the box, clamping to the unit canvas."""
        x0 = min(max(self.x_min + dx, 0.0), 0.999)
        y0 = min(max(self.y_min + dy, 0.0), 0.999)
        x1 = min(max(self.x_max + dx, x0 + 1e-3), 1.0)
        y1 = min(max(self.y_max + dy, y0 + 1e-3), 1.0)
        return BoundingBox(x0, y0, x1, y1)


class RoadView(enum.Enum):
    """How the roadway appears for the capture heading."""

    ALONG = "along"  # camera looks down the road: full perspective view
    ACROSS = "across"  # road crosses the foreground: partial view
    NONE = "none"  # no roadway visible (vegetation, open field)


@dataclass(frozen=True)
class SceneObject:
    """A labeled object instance inside a scene.

    ``occlusion`` is the fraction of the object hidden behind other
    geometry (vegetation, parked cars); ``contrast`` is how strongly
    the object stands out from its background.  Both feed the LLM
    perception channel and the renderer.
    """

    indicator: Indicator
    box: BoundingBox
    occlusion: float = 0.0
    contrast: float = 1.0
    attributes: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.occlusion <= 1.0:
            raise ValueError(f"occlusion out of range: {self.occlusion}")
        if not 0.0 < self.contrast <= 1.0:
            raise ValueError(f"contrast out of range: {self.contrast}")


@dataclass(frozen=True)
class Distractor:
    """Unlabeled scene content that can confuse classifiers.

    Examples: a bare utility pole (streetlight confuser), a large
    single-family house (apartment confuser), a paved driveway
    (road/sidewalk confuser).  Distractors render like objects but are
    never part of the ground-truth labels.
    """

    kind: str
    box: BoundingBox
    attributes: dict = field(default_factory=dict, compare=False)


@dataclass(frozen=True)
class Scene:
    """Complete ground truth for one street-view capture."""

    scene_id: str
    objects: tuple[SceneObject, ...]
    distractors: tuple[Distractor, ...] = ()
    road_view: RoadView = RoadView.NONE
    zone_kind: str = "rural"
    county: str = ""
    heading: int = 0
    latitude: float = 0.0
    longitude: float = 0.0
    daylight: float = 1.0
    clutter: float = 0.0

    def __post_init__(self) -> None:
        if not 0.1 <= self.daylight <= 1.0:
            raise ValueError(f"daylight out of range: {self.daylight}")
        if not 0.0 <= self.clutter <= 1.0:
            raise ValueError(f"clutter out of range: {self.clutter}")

    @property
    def presence(self) -> IndicatorPresence:
        """Image-level presence labels derived from the object list."""
        return IndicatorPresence(obj.indicator for obj in self.objects)

    def objects_of(self, indicator: Indicator) -> tuple[SceneObject, ...]:
        return tuple(o for o in self.objects if o.indicator == indicator)

    def count_of(self, indicator: Indicator) -> int:
        return sum(1 for o in self.objects if o.indicator == indicator)

    def object_counts(self) -> dict[Indicator, int]:
        return {ind: self.count_of(ind) for ind in ALL_INDICATORS}

    def with_objects(self, objects: tuple[SceneObject, ...]) -> "Scene":
        """Return a copy of the scene with a replaced object list."""
        return Scene(
            scene_id=self.scene_id,
            objects=objects,
            distractors=self.distractors,
            road_view=self.road_view,
            zone_kind=self.zone_kind,
            county=self.county,
            heading=self.heading,
            latitude=self.latitude,
            longitude=self.longitude,
            daylight=self.daylight,
            clutter=self.clutter,
        )
