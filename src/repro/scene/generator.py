"""Procedural street-scene generation.

Given a sampling-frame capture (zone kind, road class, camera heading
vs. road bearing), the generator composes a :class:`~repro.scene.model.Scene`:
which indicators appear, where their boxes sit, how occluded and how
contrasty they are, and which unlabeled distractors (bare utility
poles, large houses, vegetation) share the frame.

Geometry conventions (normalized coordinates, origin top-left):

* the horizon sits at ``y = HORIZON`` (0.45),
* an *along*-view road is a trapezoid converging to a vanishing point
  on the horizon; an *across*-view road is a horizontal band near the
  bottom of the frame (the paper's "partial view of a roadway"),
* roadside furniture (streetlights, powerline poles) stands between
  the road edge and the image border.

Class prevalence follows the zone priors in
:data:`repro.geo.county.ZONE_PRIORS`, which are calibrated so a
1,200-image survey approximates the paper's Section IV-A object
counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.indicators import Indicator
from ..geo.county import ZONE_PRIORS, ZoneKind
from ..geo.roadnet import RoadClass
from ..geo.sampling import CaptureRequest
from .model import BoundingBox, Distractor, RoadView, Scene, SceneObject
from .seeding import stable_seed

#: Normalized y coordinate of the horizon line.
HORIZON = 0.45


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable knobs for scene composition."""

    #: Probability that a perpendicular (across) heading still shows
    #: the roadway in the foreground.
    across_road_probability: float = 0.45
    #: Probability a second streetlight appears when one does.
    second_streetlight_probability: float = 0.20
    #: Probability of a bare-pole distractor when no powerline exists.
    bare_pole_probability: float = 0.18
    #: Probability of a large-house distractor when no apartment exists.
    house_probability: float = 0.30
    #: Mean number of vegetation blobs per scene.
    vegetation_rate: float = 1.8
    #: Global multiplier on zone presence priors (sweep knob).
    prior_scale: float = 1.0


@dataclass
class SceneGenerator:
    """Deterministic scene factory.

    Each call derives an independent child RNG from the base seed and
    the scene id so scenes are reproducible individually, regardless of
    generation order.
    """

    config: GeneratorConfig = field(default_factory=GeneratorConfig)
    seed: int = 0

    def _rng_for(self, scene_id: str) -> np.random.Generator:
        return np.random.default_rng(stable_seed("scene", self.seed, scene_id))

    # ------------------------------------------------------------------
    # public API

    def generate_for_capture(
        self, capture: CaptureRequest, scene_id: str
    ) -> Scene:
        """Generate the scene for a sampling-frame capture request."""
        return self.generate(
            scene_id=scene_id,
            zone_kind=capture.point.zone_kind,
            road_class=capture.point.road_class,
            heading=capture.heading,
            road_bearing=capture.point.road_bearing,
            county=capture.point.county,
            latitude=capture.point.location.lat,
            longitude=capture.point.location.lon,
        )

    def generate(
        self,
        scene_id: str,
        zone_kind: ZoneKind,
        road_class: RoadClass = RoadClass.LOCAL,
        heading: int = 0,
        road_bearing: float = 0.0,
        county: str = "",
        latitude: float = 0.0,
        longitude: float = 0.0,
    ) -> Scene:
        """Compose a full scene for the given context."""
        rng = self._rng_for(scene_id)
        priors = {
            name: min(1.0, p * self.config.prior_scale)
            for name, p in ZONE_PRIORS[zone_kind].items()
        }
        clutter = self._clutter_for(zone_kind, rng)
        daylight = float(rng.uniform(0.75, 1.0))

        road_view = self._road_view(heading, road_bearing, rng)
        objects: list[SceneObject] = []
        distractors: list[Distractor] = []

        road_obj = self._maybe_road(road_view, road_class, priors, rng)
        if road_obj is not None:
            objects.append(road_obj)

        sidewalk = self._maybe_sidewalk(road_view, priors, clutter, rng)
        if sidewalk is not None:
            objects.append(sidewalk)

        objects.extend(
            self._maybe_streetlights(road_view, priors, clutter, rng)
        )

        powerline = self._maybe_powerline(priors, clutter, rng)
        if powerline is not None:
            objects.append(powerline)

        apartment = self._maybe_apartment(priors, clutter, rng)
        if apartment is not None:
            objects.append(apartment)

        has_powerline = powerline is not None
        has_apartment = apartment is not None
        distractors.extend(
            self._make_distractors(has_powerline, has_apartment, rng)
        )
        distractors.extend(self._make_vegetation(rng))

        return Scene(
            scene_id=scene_id,
            objects=tuple(objects),
            distractors=tuple(distractors),
            road_view=road_view if road_obj is not None else RoadView.NONE,
            zone_kind=zone_kind.value,
            county=county,
            heading=heading,
            latitude=latitude,
            longitude=longitude,
            daylight=daylight,
            clutter=clutter,
        )

    # ------------------------------------------------------------------
    # composition helpers

    @staticmethod
    def _clutter_for(zone_kind: ZoneKind, rng: np.random.Generator) -> float:
        base = {
            ZoneKind.RURAL: 0.45,
            ZoneKind.SUBURBAN: 0.35,
            ZoneKind.URBAN: 0.30,
            ZoneKind.COMMERCIAL: 0.25,
        }[zone_kind]
        return float(np.clip(rng.normal(base, 0.12), 0.0, 0.9))

    def _road_view(
        self, heading: int, road_bearing: float, rng: np.random.Generator
    ) -> RoadView:
        delta = abs((heading - road_bearing) % 180.0)
        delta = min(delta, 180.0 - delta)
        if delta < 45.0:
            return RoadView.ALONG
        if rng.random() < self.config.across_road_probability:
            return RoadView.ACROSS
        return RoadView.NONE

    def _occlusion(
        self, clutter: float, rng: np.random.Generator, scale: float = 1.0
    ) -> float:
        return float(
            np.clip(rng.normal(clutter * 0.35 * scale, 0.10), 0.0, 0.65)
        )

    def _contrast(
        self, rng: np.random.Generator, floor: float = 0.6
    ) -> float:
        return float(rng.uniform(floor, 1.0))

    def _maybe_road(
        self,
        road_view: RoadView,
        road_class: RoadClass,
        priors: dict[str, float],
        rng: np.random.Generator,
    ) -> SceneObject | None:
        if road_view is RoadView.NONE:
            return None
        multilane = road_class.is_multilane
        indicator = (
            Indicator.MULTILANE_ROAD if multilane else Indicator.SINGLE_LANE_ROAD
        )
        if road_view is RoadView.ALONG:
            vp_x = float(rng.uniform(0.45, 0.55))
            half_bottom = (
                float(rng.uniform(0.34, 0.42))
                if multilane
                else float(rng.uniform(0.22, 0.30))
            )
            poly = (
                (vp_x - 0.015, HORIZON),
                (vp_x + 0.015, HORIZON),
                (0.5 + half_bottom, 1.0),
                (0.5 - half_bottom, 1.0),
            )
            xs = [p[0] for p in poly]
            box = BoundingBox(
                max(0.0, min(xs)), HORIZON, min(1.0, max(xs)), 1.0
            )
            attributes = {
                "view": "along",
                "vanishing_x": vp_x,
                "half_bottom": half_bottom,
                "lanes": 4 if multilane else 2,
            }
        else:
            y0 = float(rng.uniform(0.72, 0.80))
            height = float(rng.uniform(0.13, 0.20))
            box = BoundingBox(0.0, y0, 1.0, min(1.0, y0 + height))
            attributes = {
                "view": "across",
                "lanes": 4 if multilane else 2,
                "partial": True,
            }
        return SceneObject(
            indicator=indicator,
            box=box,
            occlusion=0.0 if road_view is RoadView.ALONG else 0.25,
            contrast=self._contrast(rng, floor=0.75),
            attributes=attributes,
        )

    def _maybe_sidewalk(
        self,
        road_view: RoadView,
        priors: dict[str, float],
        clutter: float,
        rng: np.random.Generator,
    ) -> SceneObject | None:
        probability = priors["sidewalk"]
        if road_view is RoadView.ACROSS:
            probability *= 0.7
        elif road_view is RoadView.NONE:
            probability *= 0.3
        if rng.random() >= probability:
            return None
        side = "right" if rng.random() < 0.5 else "left"
        if road_view is RoadView.ALONG:
            # Sidewalk trapezoid hugging one road edge.  The box is the
            # hull of the same trapezoid corners the renderer draws, so
            # labels, pixels, and occupancy all agree.
            inner = float(rng.uniform(0.26, 0.44))
            outer = inner + float(rng.uniform(0.08, 0.13))
            sign = 1.0 if side == "right" else -1.0
            corner_xs = (
                0.5 + sign * 0.02,
                0.5 + sign * 0.032,
                0.5 + sign * inner,
                0.5 + sign * outer,
            )
            box = BoundingBox(
                max(0.0, min(corner_xs)),
                HORIZON + 0.02,
                min(1.0, max(corner_xs)),
                1.0,
            )
            attributes = {"view": "along", "side": side, "inner": inner, "outer": outer}
        else:
            y0 = float(rng.uniform(0.62, 0.70))
            box = BoundingBox(0.0, y0, 1.0, y0 + float(rng.uniform(0.06, 0.10)))
            attributes = {"view": "across", "side": side}
        return SceneObject(
            indicator=Indicator.SIDEWALK,
            box=box,
            occlusion=self._occlusion(clutter, rng),
            contrast=self._contrast(rng),
            attributes=attributes,
        )

    def _maybe_streetlights(
        self,
        road_view: RoadView,
        priors: dict[str, float],
        clutter: float,
        rng: np.random.Generator,
    ) -> list[SceneObject]:
        if rng.random() >= priors["streetlight"]:
            return []
        lights = [self._make_streetlight(clutter, rng, primary=True)]
        if rng.random() < self.config.second_streetlight_probability:
            lights.append(self._make_streetlight(clutter, rng, primary=False))
        return lights

    def _make_streetlight(
        self, clutter: float, rng: np.random.Generator, primary: bool
    ) -> SceneObject:
        side = -1.0 if rng.random() < 0.5 else 1.0
        pole_x = 0.5 + side * float(rng.uniform(0.34, 0.46))
        scale = 1.0 if primary else float(rng.uniform(0.65, 0.9))
        y_top = 0.5 - 0.32 * scale + float(rng.uniform(-0.03, 0.03))
        y_base = HORIZON + 0.33 * scale
        arm_length = 0.085 * scale
        arm_x = pole_x - side * arm_length
        x_lo = min(pole_x, arm_x) - 0.012
        x_hi = max(pole_x, arm_x) + 0.012
        box = BoundingBox(
            max(0.0, x_lo), max(0.0, y_top - 0.02), min(1.0, x_hi), min(1.0, y_base)
        )
        return SceneObject(
            indicator=Indicator.STREETLIGHT,
            box=box,
            # Streetlights stand clear of the tree line on the road
            # margin: low occlusion and solid silhouette contrast.
            occlusion=self._occlusion(clutter, rng, scale=0.4),
            contrast=self._contrast(rng, floor=0.85),
            attributes={
                "pole_x": pole_x,
                "y_top": y_top,
                "y_base": y_base,
                "arm_x": arm_x,
                "scale": scale,
                "side": "left" if side < 0 else "right",
            },
        )

    def _maybe_powerline(
        self,
        priors: dict[str, float],
        clutter: float,
        rng: np.random.Generator,
    ) -> SceneObject | None:
        if rng.random() >= priors["powerline"]:
            return None
        side = -1.0 if rng.random() < 0.5 else 1.0
        pole_x = 0.5 + side * float(rng.uniform(0.30, 0.44))
        wire_y = float(rng.uniform(0.14, 0.22))
        n_wires = int(rng.integers(2, 4))
        sag = float(rng.uniform(0.015, 0.045))
        box = BoundingBox(
            0.0,
            max(0.0, wire_y - 0.02),
            1.0,
            min(1.0, HORIZON + 0.30),
        )
        # Thin wires are the dominant difficulty driver for this class.
        thinness = float(rng.uniform(0.4, 1.0))
        return SceneObject(
            indicator=Indicator.POWERLINE,
            box=box,
            occlusion=self._occlusion(clutter, rng, scale=0.8),
            contrast=self._contrast(rng, floor=0.5) * (0.6 + 0.4 * thinness),
            attributes={
                "pole_x": pole_x,
                "wire_y": wire_y,
                "n_wires": n_wires,
                "sag": sag,
                "thinness": thinness,
            },
        )

    def _maybe_apartment(
        self,
        priors: dict[str, float],
        clutter: float,
        rng: np.random.Generator,
    ) -> SceneObject | None:
        if rng.random() >= priors["apartment"]:
            return None
        center_x = float(rng.choice((0.24, 0.76))) + float(
            rng.uniform(-0.06, 0.06)
        )
        half_width = float(rng.uniform(0.13, 0.21))
        y_top = float(rng.uniform(0.12, 0.22))
        y_base = HORIZON + float(rng.uniform(0.10, 0.17))
        floors = int(rng.integers(4, 7))
        box = BoundingBox(
            max(0.0, center_x - half_width),
            y_top,
            min(1.0, center_x + half_width),
            min(1.0, y_base),
        )
        return SceneObject(
            indicator=Indicator.APARTMENT,
            box=box,
            occlusion=self._occlusion(clutter, rng, scale=0.6),
            contrast=self._contrast(rng, floor=0.7),
            attributes={"floors": floors, "center_x": center_x},
        )

    def _make_distractors(
        self,
        has_powerline: bool,
        has_apartment: bool,
        rng: np.random.Generator,
    ) -> list[Distractor]:
        distractors = []
        if not has_powerline and rng.random() < self.config.bare_pole_probability:
            pole_x = 0.5 + float(rng.choice((-1, 1))) * float(
                rng.uniform(0.30, 0.44)
            )
            distractors.append(
                Distractor(
                    kind="bare_pole",
                    box=BoundingBox(
                        max(0.0, pole_x - 0.012),
                        0.20,
                        min(1.0, pole_x + 0.012),
                        HORIZON + 0.30,
                    ),
                    attributes={"pole_x": pole_x},
                )
            )
        if not has_apartment and rng.random() < self.config.house_probability:
            center_x = float(rng.choice((0.25, 0.75))) + float(
                rng.uniform(-0.05, 0.05)
            )
            half_width = float(rng.uniform(0.07, 0.11))
            # A large house is the paper's implied apartment confuser.
            large = rng.random() < 0.35
            if large:
                half_width *= 1.6
            distractors.append(
                Distractor(
                    kind="house",
                    box=BoundingBox(
                        max(0.0, center_x - half_width),
                        0.33 if large else 0.37,
                        min(1.0, center_x + half_width),
                        HORIZON + 0.12,
                    ),
                    attributes={"center_x": center_x, "large": large},
                )
            )
        return distractors

    def _make_vegetation(self, rng: np.random.Generator) -> list[Distractor]:
        count = int(rng.poisson(self.config.vegetation_rate))
        blobs = []
        for _ in range(min(count, 5)):
            cx = float(rng.uniform(0.02, 0.98))
            # Keep foliage off the road corridor center.
            if 0.35 < cx < 0.65:
                cx = 0.2 if cx < 0.5 else 0.8
            rx = float(rng.uniform(0.04, 0.11))
            cy = float(rng.uniform(0.30, 0.44))
            blobs.append(
                Distractor(
                    kind="tree",
                    box=BoundingBox(
                        max(0.0, cx - rx),
                        max(0.0, cy - rx),
                        min(1.0, cx + rx),
                        min(1.0, cy + rx * 1.4),
                    ),
                    attributes={"cx": cx, "cy": cy, "rx": rx},
                )
            )
        return blobs
