"""Scene substrate: procedural street scenes, rasterization, corruption."""

from .augment import (
    PAPER_CROP_FRACTION,
    PAPER_ROTATIONS_DEG,
    random_crop,
    resize_nearest,
    rotate_annotations,
    rotate_box,
    rotate_image,
)
from .generator import HORIZON, GeneratorConfig, SceneGenerator
from .model import BoundingBox, Distractor, RoadView, Scene, SceneObject
from .noise import (
    PAPER_SNR_LEVELS_DB,
    add_gaussian_noise,
    measured_snr_db,
    noise_sigma_for_snr,
    signal_power,
)
from .render import DEFAULT_SIZE, RenderCache, render_scene, scene_fingerprint
from .seeding import stable_seed

__all__ = [
    "PAPER_CROP_FRACTION",
    "PAPER_ROTATIONS_DEG",
    "random_crop",
    "resize_nearest",
    "rotate_annotations",
    "rotate_box",
    "rotate_image",
    "HORIZON",
    "GeneratorConfig",
    "SceneGenerator",
    "BoundingBox",
    "Distractor",
    "RoadView",
    "Scene",
    "SceneObject",
    "PAPER_SNR_LEVELS_DB",
    "add_gaussian_noise",
    "measured_snr_db",
    "noise_sigma_for_snr",
    "signal_power",
    "DEFAULT_SIZE",
    "RenderCache",
    "render_scene",
    "scene_fingerprint",
    "stable_seed",
]
