"""Gaussian noise injection at controlled signal-to-noise ratios.

The paper's robustness ablation (Fig. 3) corrupts test images with
additive Gaussian noise at SNR levels from 5 to 30 dB in 5 dB steps.
SNR is defined against the image's mean signal power, so a 5 dB image
is dominated by noise while a 30 dB image is only lightly grainy.
"""

from __future__ import annotations

import numpy as np

#: The SNR sweep used in Figure 3 (dB).
PAPER_SNR_LEVELS_DB = (5, 10, 15, 20, 25, 30)


def signal_power(image: np.ndarray) -> float:
    """Mean signal power of an image in float [0, 1] units."""
    as_float = _to_float(image)
    return float(np.mean(np.square(as_float)))


def noise_sigma_for_snr(image: np.ndarray, snr_db: float) -> float:
    """Noise standard deviation achieving ``snr_db`` on ``image``."""
    power = signal_power(image)
    if power == 0.0:
        return 0.0
    return float(np.sqrt(power / (10.0 ** (snr_db / 10.0))))


def add_gaussian_noise(
    image: np.ndarray,
    snr_db: float,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Return a copy of ``image`` corrupted to the target SNR.

    Accepts uint8 or float input; returns the same dtype.  Pixels are
    clipped to the valid range after corruption (as a camera sensor
    would saturate), which makes the *measured* SNR slightly higher
    than nominal at very low SNR — the standard convention.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    as_float = _to_float(image)
    sigma = noise_sigma_for_snr(image, snr_db)
    noisy = as_float + rng.normal(0.0, sigma, size=as_float.shape)
    np.clip(noisy, 0.0, 1.0, out=noisy)
    if image.dtype == np.uint8:
        return (noisy * 255.0 + 0.5).astype(np.uint8)
    return noisy.astype(image.dtype)


def measured_snr_db(clean: np.ndarray, noisy: np.ndarray) -> float:
    """Empirical SNR between a clean image and its corrupted version."""
    clean_f = _to_float(clean)
    noisy_f = _to_float(noisy)
    noise = noisy_f - clean_f
    noise_power = float(np.mean(np.square(noise)))
    if noise_power == 0.0:
        return float("inf")
    return float(10.0 * np.log10(signal_power(clean) / noise_power))


def _to_float(image: np.ndarray) -> np.ndarray:
    if image.dtype == np.uint8:
        return image.astype(np.float64) / 255.0
    return image.astype(np.float64)
