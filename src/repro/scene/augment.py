"""Data augmentation: rotations and random crops with box transforms.

Reproduces the paper's Fig. 2 ablation:

    "We flipped the indicator images in 90°, 180°, and 270° to increase
    the training samples ... We use the same approach by adding cropped
    images, which were randomly cropped by 30% of the object image
    area."

Rotations are exact 90-degree multiples (``numpy.rot90``), with the
annotation boxes rotated consistently.  Crops remove 30% of the image
area (a random window keeping ~70%), resize back to the original
resolution, and drop objects whose surviving area falls below a
visibility threshold.

The paper's finding — that these augmentations *hurt* direction-bound
classes like streetlights and apartments — falls out naturally here:
rotating a scene by 90° puts poles horizontal and sky to the side,
poses that never occur in actual street-level imagery.
"""

from __future__ import annotations

import numpy as np

from ..core.indicators import Indicator
from .model import BoundingBox

#: The rotation sweep from Fig. 2.
PAPER_ROTATIONS_DEG = (90, 180, 270)

#: Fraction of image area removed by the crop augmentation.
PAPER_CROP_FRACTION = 0.30

Annotation = tuple[Indicator, BoundingBox]


def rotate_image(image: np.ndarray, degrees: int) -> np.ndarray:
    """Rotate an image clockwise by a multiple of 90 degrees."""
    turns = _validate_rotation(degrees)
    # np.rot90 rotates counter-clockwise; negate for clockwise.
    return np.ascontiguousarray(np.rot90(image, k=-turns, axes=(0, 1)))


def rotate_box(box: BoundingBox, degrees: int) -> BoundingBox:
    """Rotate a normalized box clockwise by a multiple of 90 degrees."""
    turns = _validate_rotation(degrees)
    current = box
    for _ in range(turns):
        # Clockwise quarter turn: (x, y) -> (1 - y, x).
        current = BoundingBox(
            x_min=1.0 - current.y_max,
            y_min=current.x_min,
            x_max=1.0 - current.y_min,
            y_max=current.x_max,
        )
    return current


def rotate_annotations(
    image: np.ndarray, annotations: list[Annotation], degrees: int
) -> tuple[np.ndarray, list[Annotation]]:
    """Rotate an image together with its annotations."""
    rotated = rotate_image(image, degrees)
    boxes = [(ind, rotate_box(box, degrees)) for ind, box in annotations]
    return rotated, boxes


def resize_nearest(image: np.ndarray, height: int, width: int) -> np.ndarray:
    """Nearest-neighbor resize (sufficient for synthetic imagery)."""
    if height <= 0 or width <= 0:
        raise ValueError("target size must be positive")
    src_h, src_w = image.shape[:2]
    rows = np.minimum(
        (np.arange(height) * src_h / height).astype(int), src_h - 1
    )
    cols = np.minimum(
        (np.arange(width) * src_w / width).astype(int), src_w - 1
    )
    return np.ascontiguousarray(image[rows][:, cols])


def random_crop(
    image: np.ndarray,
    annotations: list[Annotation],
    crop_fraction: float = PAPER_CROP_FRACTION,
    rng: np.random.Generator | None = None,
    min_visible: float = 0.25,
) -> tuple[np.ndarray, list[Annotation]]:
    """Crop away ``crop_fraction`` of the image area, resize back.

    Returns the resized crop and the surviving annotations.  An object
    survives if at least ``min_visible`` of its area remains inside
    the crop window; surviving boxes are re-expressed in the crop's
    coordinate frame.
    """
    if not 0.0 < crop_fraction < 1.0:
        raise ValueError(f"crop fraction out of range: {crop_fraction}")
    if rng is None:
        rng = np.random.default_rng(0)
    height, width = image.shape[:2]
    keep_linear = float(np.sqrt(1.0 - crop_fraction))
    crop_h = max(1, int(round(height * keep_linear)))
    crop_w = max(1, int(round(width * keep_linear)))
    y_off = int(rng.integers(0, height - crop_h + 1))
    x_off = int(rng.integers(0, width - crop_w + 1))
    crop = image[y_off : y_off + crop_h, x_off : x_off + crop_w]

    survivors: list[Annotation] = []
    wx0, wy0 = x_off / width, y_off / height
    wx1, wy1 = (x_off + crop_w) / width, (y_off + crop_h) / height
    for indicator, box in annotations:
        ix0 = max(box.x_min, wx0)
        iy0 = max(box.y_min, wy0)
        ix1 = min(box.x_max, wx1)
        iy1 = min(box.y_max, wy1)
        if ix1 <= ix0 or iy1 <= iy0:
            continue
        visible = (ix1 - ix0) * (iy1 - iy0) / box.area
        if visible < min_visible:
            continue
        # Re-normalize into the crop frame.
        survivors.append(
            (
                indicator,
                BoundingBox(
                    (ix0 - wx0) / (wx1 - wx0),
                    (iy0 - wy0) / (wy1 - wy0),
                    min(1.0, (ix1 - wx0) / (wx1 - wx0)),
                    min(1.0, (iy1 - wy0) / (wy1 - wy0)),
                ),
            )
        )
    resized = resize_nearest(crop, height, width)
    return resized, survivors


def _validate_rotation(degrees: int) -> int:
    if degrees % 90 != 0:
        raise ValueError(f"rotation must be a multiple of 90: {degrees}")
    return (degrees // 90) % 4
