"""Stable seed derivation for reproducible scene generation.

Python's built-in ``hash`` is salted per process, so it must never be
used to derive RNG seeds that should be stable across runs.  This
module derives 63-bit seeds from arbitrary key tuples via SHA-256.
"""

from __future__ import annotations

import hashlib


def stable_seed(*parts: object) -> int:
    """Derive a deterministic 63-bit seed from the given key parts.

    Parts are joined by their ``repr`` so distinct tuples map to
    distinct seeds with overwhelming probability, independent of the
    process hash salt.
    """
    key = "\x1f".join(repr(part) for part in parts)
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1
