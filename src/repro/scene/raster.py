"""Minimal numpy rasterization primitives.

The renderer needs just a handful of operations — filled rectangles,
filled convex polygons, thick line segments, and ellipses — all drawn
into an ``(H, W, 3)`` float image in ``[0, 1]``.  Every primitive
restricts its work to the bounding window of the shape so rendering a
640×640 scene stays in the low milliseconds.

All coordinates are pixels with the origin at the top-left corner,
``x`` rightward and ``y`` downward, matching image indexing
``image[y, x]``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

Color = tuple[float, float, float]


def _window(
    image: np.ndarray,
    x0: float,
    y0: float,
    x1: float,
    y1: float,
) -> tuple[int, int, int, int] | None:
    """Clip a pixel-space bounding window to the image; None if empty."""
    height, width = image.shape[:2]
    ix0 = max(0, int(np.floor(x0)))
    iy0 = max(0, int(np.floor(y0)))
    ix1 = min(width, int(np.ceil(x1)) + 1)
    iy1 = min(height, int(np.ceil(y1)) + 1)
    if ix0 >= ix1 or iy0 >= iy1:
        return None
    return ix0, iy0, ix1, iy1


def _blend(
    patch: np.ndarray, mask: np.ndarray, color: Color, opacity: float
) -> None:
    """Alpha-blend ``color`` into ``patch`` wherever ``mask`` is true."""
    if opacity >= 1.0:
        patch[mask] = color
    else:
        patch[mask] = (1.0 - opacity) * patch[mask] + opacity * np.asarray(
            color, dtype=patch.dtype
        )


def fill_rect(
    image: np.ndarray,
    x0: float,
    y0: float,
    x1: float,
    y1: float,
    color: Color,
    opacity: float = 1.0,
) -> None:
    """Fill the axis-aligned rectangle ``[x0, x1) x [y0, y1)``."""
    win = _window(image, x0, y0, x1 - 1, y1 - 1)
    if win is None:
        return
    ix0, iy0, ix1, iy1 = win
    patch = image[iy0:iy1, ix0:ix1]
    mask = np.ones(patch.shape[:2], dtype=bool)
    _blend(patch, mask, color, opacity)


def fill_convex_polygon(
    image: np.ndarray,
    vertices: Sequence[tuple[float, float]],
    color: Color,
    opacity: float = 1.0,
) -> None:
    """Fill a convex polygon given counter-clockwise or clockwise vertices.

    Uses half-plane tests over the polygon's bounding window.  Vertex
    winding is detected automatically.
    """
    if len(vertices) < 3:
        raise ValueError("polygon needs at least 3 vertices")
    pts = np.asarray(vertices, dtype=np.float64)
    win = _window(
        image, pts[:, 0].min(), pts[:, 1].min(), pts[:, 0].max(), pts[:, 1].max()
    )
    if win is None:
        return
    ix0, iy0, ix1, iy1 = win
    ys, xs = np.mgrid[iy0:iy1, ix0:ix1]
    xs = xs + 0.5
    ys = ys + 0.5

    # Signed area decides the winding so the half-plane tests agree.
    rolled = np.roll(pts, -1, axis=0)
    signed_area = float(
        np.sum(pts[:, 0] * rolled[:, 1] - rolled[:, 0] * pts[:, 1])
    )
    sign = 1.0 if signed_area >= 0 else -1.0

    mask = np.ones(xs.shape, dtype=bool)
    for (px, py), (qx, qy) in zip(pts, rolled):
        cross = (qx - px) * (ys - py) - (qy - py) * (xs - px)
        mask &= sign * cross >= 0
        if not mask.any():
            return
    _blend(image[iy0:iy1, ix0:ix1], mask, color, opacity)


def draw_line(
    image: np.ndarray,
    x0: float,
    y0: float,
    x1: float,
    y1: float,
    color: Color,
    thickness: float = 1.0,
    opacity: float = 1.0,
) -> None:
    """Draw a thick line segment (distance-to-segment test)."""
    if thickness <= 0:
        raise ValueError(f"thickness must be positive: {thickness}")
    radius = thickness / 2.0
    win = _window(
        image,
        min(x0, x1) - radius,
        min(y0, y1) - radius,
        max(x0, x1) + radius,
        max(y0, y1) + radius,
    )
    if win is None:
        return
    ix0, iy0, ix1, iy1 = win
    ys, xs = np.mgrid[iy0:iy1, ix0:ix1]
    xs = xs + 0.5
    ys = ys + 0.5
    dx, dy = x1 - x0, y1 - y0
    length_sq = dx * dx + dy * dy
    if length_sq == 0:
        dist = np.hypot(xs - x0, ys - y0)
    else:
        t = np.clip(((xs - x0) * dx + (ys - y0) * dy) / length_sq, 0.0, 1.0)
        dist = np.hypot(xs - (x0 + t * dx), ys - (y0 + t * dy))
    mask = dist <= radius
    if mask.any():
        _blend(image[iy0:iy1, ix0:ix1], mask, color, opacity)


def draw_polyline(
    image: np.ndarray,
    points: Sequence[tuple[float, float]],
    color: Color,
    thickness: float = 1.0,
    opacity: float = 1.0,
) -> None:
    """Draw connected line segments through ``points``."""
    for (ax, ay), (bx, by) in zip(points, points[1:]):
        draw_line(image, ax, ay, bx, by, color, thickness, opacity)


def fill_ellipse(
    image: np.ndarray,
    cx: float,
    cy: float,
    rx: float,
    ry: float,
    color: Color,
    opacity: float = 1.0,
) -> None:
    """Fill an axis-aligned ellipse centered at ``(cx, cy)``."""
    if rx <= 0 or ry <= 0:
        raise ValueError("ellipse radii must be positive")
    win = _window(image, cx - rx, cy - ry, cx + rx, cy + ry)
    if win is None:
        return
    ix0, iy0, ix1, iy1 = win
    ys, xs = np.mgrid[iy0:iy1, ix0:ix1]
    xs = xs + 0.5
    ys = ys + 0.5
    mask = ((xs - cx) / rx) ** 2 + ((ys - cy) / ry) ** 2 <= 1.0
    if mask.any():
        _blend(image[iy0:iy1, ix0:ix1], mask, color, opacity)


def vertical_gradient(
    image: np.ndarray,
    y0: float,
    y1: float,
    top_color: Color,
    bottom_color: Color,
) -> None:
    """Fill rows ``[y0, y1)`` with a vertical color gradient."""
    height, width = image.shape[:2]
    iy0 = max(0, int(y0))
    iy1 = min(height, int(y1))
    if iy0 >= iy1:
        return
    top = np.asarray(top_color, dtype=image.dtype)
    bottom = np.asarray(bottom_color, dtype=image.dtype)
    span = max(1, iy1 - iy0 - 1)
    # Broadcast blend over all rows at once: t runs 0 → 1 down the
    # band, matching the per-row loop's (row - iy0) / span exactly.
    t = (np.arange(iy1 - iy0, dtype=np.float64) / span)[:, None, None]
    image[iy0:iy1, :, :] = (1.0 - t) * top + t * bottom


def speckle(
    image: np.ndarray,
    x0: float,
    y0: float,
    x1: float,
    y1: float,
    amplitude: float,
    rng: np.random.Generator,
) -> None:
    """Add zero-mean texture noise to a window (asphalt grain, foliage)."""
    win = _window(image, x0, y0, x1 - 1, y1 - 1)
    if win is None:
        return
    ix0, iy0, ix1, iy1 = win
    patch = image[iy0:iy1, ix0:ix1]
    noise = rng.normal(0.0, amplitude, size=patch.shape[:2])
    patch += noise[..., None]
    np.clip(patch, 0.0, 1.0, out=patch)
