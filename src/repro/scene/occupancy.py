"""Object occupancy footprints for training-target assignment.

A bounding box is a poor description of *where an object's pixels
actually are* for diagonal or skeletal objects: an along-view sidewalk
is a thin diagonal strip inside a large box, a streetlight is a 1-pixel
pole plus an arm, powerline wires are a thin band spanning the frame.

``occupancy_boxes`` decomposes a scene object into a small set of
sub-boxes that tightly cover its rendered footprint.  The detector's
target assigner marks a grid cell positive only when occupancy (not
the enclosing box) covers it, which removes the contradictory
supervision that bbox-based assignment creates for such shapes.
"""

from __future__ import annotations

from ..core.indicators import Indicator
from .generator import HORIZON
from .model import BoundingBox, SceneObject


def _clamped(x0: float, y0: float, x1: float, y1: float) -> BoundingBox | None:
    x0, x1 = max(0.0, x0), min(1.0, x1)
    y0, y1 = max(0.0, y0), min(1.0, y1)
    if x1 - x0 < 1e-3 or y1 - y0 < 1e-3:
        return None
    return BoundingBox(x0, y0, x1, y1)


def _strip_slices(
    top_x0: float,
    top_x1: float,
    bottom_x0: float,
    bottom_x1: float,
    y_top: float,
    y_bottom: float,
    slices: int = 5,
) -> list[BoundingBox]:
    """Cover a vertical trapezoid strip with stacked axis-aligned boxes."""
    boxes = []
    for i in range(slices):
        t0 = i / slices
        t1 = (i + 1) / slices
        xa0 = top_x0 + (bottom_x0 - top_x0) * t0
        xa1 = top_x1 + (bottom_x1 - top_x1) * t0
        xb0 = top_x0 + (bottom_x0 - top_x0) * t1
        xb1 = top_x1 + (bottom_x1 - top_x1) * t1
        box = _clamped(
            min(xa0, xb0),
            y_top + (y_bottom - y_top) * t0,
            max(xa1, xb1),
            y_top + (y_bottom - y_top) * t1,
        )
        if box is not None:
            boxes.append(box)
    return boxes


def occupancy_boxes(obj: SceneObject) -> list[BoundingBox]:
    """Sub-boxes tightly covering the object's rendered footprint.

    Falls back to the bounding box itself when the object has no
    structured geometry (or when geometry attributes are missing, as
    for annotations loaded from plain LabelMe files).
    """
    attributes = obj.attributes
    indicator = obj.indicator

    if indicator is Indicator.SIDEWALK and attributes.get("view") == "along":
        inner = attributes.get("inner")
        outer = attributes.get("outer")
        side = attributes.get("side", "right")
        if inner is None or outer is None:
            return [obj.box]
        sign = 1.0 if side == "right" else -1.0
        vp_x = 0.5 + sign * 0.02
        top_lo, top_hi = sorted((vp_x, vp_x + sign * 0.012))
        bot_lo, bot_hi = sorted((0.5 + sign * inner, 0.5 + sign * outer))
        return _strip_slices(
            top_lo, top_hi, bot_lo, bot_hi, HORIZON + 0.02, 1.0, slices=6
        )

    if indicator in (Indicator.SINGLE_LANE_ROAD, Indicator.MULTILANE_ROAD):
        if attributes.get("view") == "along":
            vp_x = attributes.get("vanishing_x")
            half_bottom = attributes.get("half_bottom")
            if vp_x is None or half_bottom is None:
                return [obj.box]
            return _strip_slices(
                vp_x - 0.015,
                vp_x + 0.015,
                0.5 - half_bottom,
                0.5 + half_bottom,
                HORIZON,
                1.0,
                slices=6,
            )
        return [obj.box]

    if indicator is Indicator.STREETLIGHT:
        pole_x = attributes.get("pole_x")
        if pole_x is None:
            return [obj.box]
        y_top = attributes.get("y_top", obj.box.y_min)
        y_base = attributes.get("y_base", obj.box.y_max)
        arm_x = attributes.get("arm_x", pole_x)
        boxes = []
        pole = _clamped(pole_x - 0.012, y_top, pole_x + 0.012, y_base)
        if pole is not None:
            boxes.append(pole)
        arm = _clamped(
            min(pole_x, arm_x) - 0.012,
            y_top - 0.02,
            max(pole_x, arm_x) + 0.012,
            y_top + 0.03,
        )
        if arm is not None:
            boxes.append(arm)
        return boxes or [obj.box]

    if indicator is Indicator.POWERLINE:
        pole_x = attributes.get("pole_x")
        wire_y = attributes.get("wire_y")
        if pole_x is None or wire_y is None:
            return [obj.box]
        n_wires = int(attributes.get("n_wires", 2))
        sag = attributes.get("sag", 0.03)
        boxes = []
        band = _clamped(
            0.0,
            wire_y - 0.015,
            1.0,
            wire_y + n_wires * 0.022 + sag * 1.5 + 0.015,
        )
        if band is not None:
            boxes.append(band)
        pole = _clamped(
            pole_x - 0.05, wire_y - 0.02, pole_x + 0.05, HORIZON + 0.30
        )
        if pole is not None:
            boxes.append(pole)
        return boxes or [obj.box]

    # Apartments and across-view elements are genuinely box-like.
    return [obj.box]
