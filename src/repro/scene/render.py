"""Scene rasterizer: ground truth in, 640×640 RGB pixels out.

This is the reproduction's stand-in for the Google Street View camera.
Scenes render with a painter's algorithm — sky, terrain, background
buildings and vegetation, roadway, sidewalk, lane markings, poles and
wires, then foreground occluders — so the detector substrate trains on
real pixels and the noise/augmentation ablations operate on images,
not on labels.

Rendering is deterministic given the scene (texture noise derives its
RNG from the scene id), which keeps dataset builds reproducible.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from ..core.indicators import Indicator
from .generator import HORIZON
from .model import Distractor, Scene, SceneObject
from .seeding import stable_seed
from .raster import (
    draw_line,
    draw_polyline,
    fill_convex_polygon,
    fill_ellipse,
    fill_rect,
    speckle,
    vertical_gradient,
)

#: Default render resolution, matching the paper's GSV requests.
DEFAULT_SIZE = 640

_SKY_TOP = (0.50, 0.67, 0.90)
_SKY_BOTTOM = (0.79, 0.86, 0.94)
_GRASS = (0.34, 0.50, 0.26)
_ASPHALT = (0.235, 0.235, 0.255)
_SIDEWALK = (0.68, 0.67, 0.64)
_YELLOW_LINE = (0.86, 0.72, 0.16)
_WHITE_LINE = (0.92, 0.92, 0.92)
_LIGHT_POLE = (0.10, 0.10, 0.12)
_LAMP = (1.00, 0.95, 0.66)
_WOOD_POLE = (0.36, 0.25, 0.16)
_WIRE = (0.07, 0.07, 0.09)
_BRICK = (0.62, 0.42, 0.34)
_WINDOW = (0.14, 0.19, 0.30)
_HOUSE_WALL = (0.76, 0.71, 0.60)
_ROOF = (0.36, 0.19, 0.14)
_FOLIAGE = (0.19, 0.37, 0.15)
_FOLIAGE_DARK = (0.14, 0.29, 0.11)


def _shade(color: tuple[float, float, float], factor: float) -> tuple[float, float, float]:
    return (color[0] * factor, color[1] * factor, color[2] * factor)


def _mix(
    color: tuple[float, float, float],
    other: tuple[float, float, float],
    weight: float,
) -> tuple[float, float, float]:
    """Blend ``weight`` of ``color`` over ``other`` (contrast control)."""
    return tuple(
        weight * c + (1.0 - weight) * o for c, o in zip(color, other)
    )


def render_scene(scene: Scene, size: int = DEFAULT_SIZE) -> np.ndarray:
    """Render ``scene`` to an ``(size, size, 3)`` uint8 RGB image."""
    if size < 32:
        raise ValueError(f"render size too small: {size}")
    rng = np.random.default_rng(stable_seed("render", scene.scene_id))
    image = np.zeros((size, size, 3), dtype=np.float64)
    day = scene.daylight

    # Sky and terrain.
    horizon_px = HORIZON * size
    vertical_gradient(
        image, 0, horizon_px, _shade(_SKY_TOP, day), _shade(_SKY_BOTTOM, day)
    )
    vertical_gradient(
        image,
        horizon_px,
        size,
        _shade(_GRASS, day),
        _shade(_GRASS, 0.8 * day),
    )
    speckle(image, 0, horizon_px, size, size, 0.015, rng)

    # Background layers first, foreground last.
    for tree in _of_kind(scene.distractors, "tree"):
        _render_tree(image, tree, size, day)
    for obj in scene.objects_of(Indicator.APARTMENT):
        _render_apartment(image, obj, size, day, rng)
    for house in _of_kind(scene.distractors, "house"):
        _render_house(image, house, size, day)

    for obj in scene.objects:
        if obj.indicator in (
            Indicator.SINGLE_LANE_ROAD,
            Indicator.MULTILANE_ROAD,
        ):
            _render_road(image, obj, size, day, rng)
    for obj in scene.objects_of(Indicator.SIDEWALK):
        _render_sidewalk(image, obj, size, day, rng)

    for pole in _of_kind(scene.distractors, "bare_pole"):
        _render_bare_pole(image, pole, size, day)
    for obj in scene.objects_of(Indicator.POWERLINE):
        _render_powerline(image, obj, size, day)
    for obj in scene.objects_of(Indicator.STREETLIGHT):
        _render_streetlight(image, obj, size, day)

    # Foreground occluders implement each object's occlusion fraction.
    for obj in scene.objects:
        if obj.occlusion > 0.05:
            _render_occluder(image, obj, size, rng)

    speckle(image, 0, 0, size, size, 0.008, rng)
    np.clip(image, 0.0, 1.0, out=image)
    return (image * 255.0 + 0.5).astype(np.uint8)


def _of_kind(distractors: tuple[Distractor, ...], kind: str):
    return [d for d in distractors if d.kind == kind]


# ----------------------------------------------------------------------
# content-addressed render cache


def scene_fingerprint(scene: Scene, size: int = DEFAULT_SIZE) -> str:
    """Content hash of everything that reaches the rasterized pixels.

    Rendering is a pure function of the scene's drawable content (the
    texture RNG is derived from ``scene_id``) and the raster size, so
    two scenes with equal fingerprints render byte-identically — the
    invariant that makes :class:`RenderCache` safe to share between
    repeated captures of the same location/heading.
    """
    hasher = hashlib.sha256()
    hasher.update(f"{scene.scene_id}|{size}|{scene.daylight:.6f}".encode())
    for obj in scene.objects:
        hasher.update(
            "|".join(
                (
                    "obj",
                    obj.indicator.value,
                    repr(obj.box),
                    f"{obj.occlusion:.6f}",
                    f"{obj.contrast:.6f}",
                    repr(sorted(obj.attributes.items())),
                )
            ).encode()
        )
    for distractor in scene.distractors:
        hasher.update(
            "|".join(
                (
                    "distractor",
                    distractor.kind,
                    repr(distractor.box),
                    repr(sorted(distractor.attributes.items())),
                )
            ).encode()
        )
    return hasher.hexdigest()


class RenderCache:
    """Bounded LRU cache of rendered frames, keyed by scene content.

    A survey captures each location/heading up to once per model per
    vote round; without a cache every repeat pays the full painter's
    algorithm again.  Entries are evicted least-recently-used at
    ``max_entries`` (a 640px frame is ~1.2 MB, so the default bounds
    the cache near 150 MB).  Lookups return a *copy* so callers that
    add noise or augment in place cannot corrupt the cached frame.
    Thread-safe; rendering itself happens outside the lock.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[str, np.ndarray] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else float("nan")

    def get_or_render(self, scene: Scene, size: int = DEFAULT_SIZE) -> np.ndarray:
        """The rendered frame for ``scene``, rasterizing on first use."""
        key = scene_fingerprint(scene, size)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return cached.copy()
            self.misses += 1
        pixels = render_scene(scene, size)
        with self._lock:
            self._entries[key] = pixels
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return pixels.copy()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


# ----------------------------------------------------------------------
# per-element renderers


def _render_road(
    image: np.ndarray,
    obj: SceneObject,
    size: int,
    day: float,
    rng: np.random.Generator,
) -> None:
    color = _mix(_shade(_ASPHALT, day), _shade(_GRASS, day), obj.contrast)
    lanes = int(obj.attributes.get("lanes", 2))
    if obj.attributes.get("view") == "along":
        vp_x = obj.attributes["vanishing_x"] * size
        half_bottom = obj.attributes["half_bottom"] * size
        horizon_px = HORIZON * size
        poly = (
            (vp_x - 0.015 * size, horizon_px),
            (vp_x + 0.015 * size, horizon_px),
            (size / 2 + half_bottom, size),
            (size / 2 - half_bottom, size),
        )
        fill_convex_polygon(image, poly, color)
        speckle(
            image,
            min(p[0] for p in poly),
            horizon_px,
            max(p[0] for p in poly),
            size,
            0.02,
            rng,
        )
        _render_along_markings(image, vp_x, half_bottom, size, lanes, day)
    else:
        x0, y0, x1, y1 = obj.box.to_pixels(size, size)
        fill_rect(image, x0, y0, x1, y1, color)
        speckle(image, x0, y0, x1, y1, 0.02, rng)
        _render_across_markings(image, y0, y1, size, lanes, day)


def _render_along_markings(
    image: np.ndarray,
    vp_x: float,
    half_bottom: float,
    size: int,
    lanes: int,
    day: float,
) -> None:
    horizon_px = HORIZON * size

    def lane_line(
        frac: float, color: tuple[float, float, float], dashed: bool
    ) -> None:
        bottom_x = size / 2 + frac * half_bottom
        steps = 12
        for step in range(steps):
            if dashed and step % 2 == 1:
                continue
            t0 = step / steps
            t1 = (step + 0.8) / steps
            # Interpolate along the perspective line, thinner near horizon.
            xa = vp_x + (bottom_x - vp_x) * t0
            ya = horizon_px + (size - horizon_px) * t0
            xb = vp_x + (bottom_x - vp_x) * t1
            yb = horizon_px + (size - horizon_px) * t1
            thickness = max(1.0, 4.5 * t1 * size / DEFAULT_SIZE)
            draw_line(image, xa, ya, xb, yb, _shade(color, day), thickness)

    if lanes <= 2:
        lane_line(0.0, _YELLOW_LINE, dashed=False)
    else:
        lane_line(-0.02, _YELLOW_LINE, dashed=False)
        lane_line(0.02, _YELLOW_LINE, dashed=False)
        lane_line(-0.5, _WHITE_LINE, dashed=True)
        lane_line(0.5, _WHITE_LINE, dashed=True)


def _render_across_markings(
    image: np.ndarray, y0: int, y1: int, size: int, lanes: int, day: float
) -> None:
    mid = (y0 + y1) / 2
    thickness = max(1.0, 3.0 * size / DEFAULT_SIZE)
    if lanes <= 2:
        draw_line(image, 0, mid, size, mid, _shade(_YELLOW_LINE, day), thickness)
    else:
        draw_line(
            image, 0, mid - 2, size, mid - 2, _shade(_YELLOW_LINE, day), thickness
        )
        draw_line(
            image, 0, mid + 2, size, mid + 2, _shade(_YELLOW_LINE, day), thickness
        )
        for offset in (-0.28, 0.28):
            y = mid + offset * (y1 - y0)
            for x0 in range(0, size, size // 8):
                draw_line(
                    image,
                    x0,
                    y,
                    x0 + size // 16,
                    y,
                    _shade(_WHITE_LINE, day),
                    thickness,
                )


def _render_sidewalk(
    image: np.ndarray,
    obj: SceneObject,
    size: int,
    day: float,
    rng: np.random.Generator,
) -> None:
    color = _mix(_shade(_SIDEWALK, day), _shade(_GRASS, day), obj.contrast)
    if obj.attributes.get("view") == "along":
        inner = obj.attributes["inner"]
        outer = obj.attributes["outer"]
        sign = 1.0 if obj.attributes.get("side") == "right" else -1.0
        horizon_px = HORIZON * size
        vp_x = 0.5 * size + sign * 0.02 * size
        poly = (
            (vp_x, horizon_px + 0.02 * size),
            (vp_x + sign * 0.012 * size, horizon_px + 0.02 * size),
            ((0.5 + sign * outer) * size, size),
            ((0.5 + sign * inner) * size, size),
        )
        fill_convex_polygon(image, poly, color)
        # Expansion joints give the sidewalk its characteristic texture.
        for t in np.linspace(0.15, 0.95, 7):
            xa = vp_x + ((0.5 + sign * inner) * size - vp_x) * t
            xb = vp_x + ((0.5 + sign * outer) * size - vp_x) * t
            y = horizon_px + (size - horizon_px) * t
            draw_line(
                image, xa, y, xb, y, _shade((0.5, 0.5, 0.48), day), 1.5
            )
    else:
        x0, y0, x1, y1 = obj.box.to_pixels(size, size)
        fill_rect(image, x0, y0, x1, y1, color)
        for x in range(0, size, max(8, size // 14)):
            draw_line(
                image, x, y0, x, y1, _shade((0.5, 0.5, 0.48), day), 1.5
            )


def _render_streetlight(
    image: np.ndarray, obj: SceneObject, size: int, day: float
) -> None:
    a = obj.attributes
    pole_x = a["pole_x"] * size
    y_top = a["y_top"] * size
    y_base = a["y_base"] * size
    arm_x = a["arm_x"] * size
    scale = a["scale"]
    color = _mix(_shade(_LIGHT_POLE, max(day, 0.8)), _SKY_BOTTOM, obj.contrast)
    thickness = max(3.0, 11.0 * scale * size / DEFAULT_SIZE)
    draw_line(image, pole_x, y_top, pole_x, y_base, color, thickness)
    # Curved mast arm approximated with two segments.
    mid_x = (pole_x + arm_x) / 2
    draw_line(image, pole_x, y_top, mid_x, y_top - 0.012 * size, color, thickness * 0.8)
    draw_line(
        image, mid_x, y_top - 0.012 * size, arm_x, y_top, color, thickness * 0.8
    )
    lamp = _mix(_LAMP, _SKY_BOTTOM, obj.contrast)
    fill_ellipse(
        image,
        arm_x,
        y_top + 0.008 * size,
        max(4.0, 0.026 * scale * size),
        max(2.5, 0.014 * scale * size),
        lamp,
    )


def _render_powerline(
    image: np.ndarray, obj: SceneObject, size: int, day: float
) -> None:
    a = obj.attributes
    pole_x = a["pole_x"] * size
    wire_y = a["wire_y"] * size
    sag = a["sag"] * size
    thinness = a["thinness"]
    pole_color = _mix(_shade(_WOOD_POLE, day), _SKY_BOTTOM, obj.contrast)
    wire_color = _mix(_WIRE, _SKY_BOTTOM, obj.contrast)
    pole_thickness = max(2.0, 6.0 * size / DEFAULT_SIZE)
    y_base = (HORIZON + 0.30) * size
    draw_line(image, pole_x, wire_y - 0.02 * size, pole_x, y_base, pole_color, pole_thickness)
    # Crossarm.
    draw_line(
        image,
        pole_x - 0.045 * size,
        wire_y,
        pole_x + 0.045 * size,
        wire_y,
        pole_color,
        pole_thickness * 0.6,
    )
    wire_thickness = max(1.0, (2.6 - 1.4 * thinness) * size / DEFAULT_SIZE)
    for wire_index in range(int(a["n_wires"])):
        base_y = wire_y + wire_index * 0.022 * size
        points = []
        for t in np.linspace(0.0, 1.0, 9):
            x = t * size
            # Catenary approximated by a parabola sagging between edges.
            y = base_y + sag * 4.0 * (t - 0.5) ** 2 + sag * 0.5
            points.append((x, y))
        draw_polyline(image, points, wire_color, wire_thickness)


def _render_bare_pole(
    image: np.ndarray, pole: Distractor, size: int, day: float
) -> None:
    pole_x = pole.attributes["pole_x"] * size
    color = _shade(_WOOD_POLE, day)
    draw_line(
        image,
        pole_x,
        0.22 * size,
        pole_x,
        (HORIZON + 0.30) * size,
        color,
        max(2.0, 6.0 * size / DEFAULT_SIZE),
    )


def _render_apartment(
    image: np.ndarray,
    obj: SceneObject,
    size: int,
    day: float,
    rng: np.random.Generator,
) -> None:
    x0, y0, x1, y1 = obj.box.to_pixels(size, size)
    wall = _mix(_shade(_BRICK, day), _shade(_SKY_BOTTOM, day), obj.contrast)
    fill_rect(image, x0, y0, x1, y1, wall)
    # Flat parapet roofline.
    fill_rect(image, x0, y0, x1, y0 + max(2, (y1 - y0) // 24), _shade(_ROOF, 0.7))
    floors = int(obj.attributes.get("floors", 5))
    cols = max(4, (x1 - x0) // max(8, size // 26))
    window = _shade(_WINDOW, day)
    for row in range(floors):
        wy0 = y0 + (row + 0.25) * (y1 - y0) / floors
        wy1 = y0 + (row + 0.70) * (y1 - y0) / floors
        for col in range(cols):
            wx0 = x0 + (col + 0.22) * (x1 - x0) / cols
            wx1 = x0 + (col + 0.78) * (x1 - x0) / cols
            fill_rect(image, wx0, wy0, wx1, wy1, window)


def _render_house(
    image: np.ndarray, house: Distractor, size: int, day: float
) -> None:
    x0, y0, x1, y1 = house.box.to_pixels(size, size)
    roof_height = (y1 - y0) * 0.4
    wall = _shade(_HOUSE_WALL, day)
    fill_rect(image, x0, y0 + roof_height, x1, y1, wall)
    fill_convex_polygon(
        image,
        ((x0, y0 + roof_height), ((x0 + x1) / 2, y0), (x1, y0 + roof_height)),
        _shade(_ROOF, day),
    )
    # A door and two windows; houses have far sparser fenestration than
    # apartment blocks, which is what separates the classes visually.
    door_w = max(3, (x1 - x0) // 8)
    cx = (x0 + x1) / 2
    fill_rect(image, cx - door_w / 2, y1 - (y1 - y0) * 0.30, cx + door_w / 2, y1, _shade((0.55, 0.42, 0.30), day))
    for wx in (x0 + (x1 - x0) * 0.2, x0 + (x1 - x0) * 0.8):
        fill_rect(
            image,
            wx - door_w / 2,
            y0 + roof_height + (y1 - y0 - roof_height) * 0.2,
            wx + door_w / 2,
            y0 + roof_height + (y1 - y0 - roof_height) * 0.5,
            _shade(_WINDOW, day),
        )


def _render_tree(
    image: np.ndarray, tree: Distractor, size: int, day: float
) -> None:
    cx = tree.attributes["cx"] * size
    cy = tree.attributes["cy"] * size
    rx = tree.attributes["rx"] * size
    trunk = _shade((0.45, 0.35, 0.22), 0.9 * day)
    draw_line(image, cx, cy, cx, cy + rx * 1.6, trunk, max(1.5, rx * 0.12))
    fill_ellipse(image, cx, cy, rx, rx * 0.9, _shade(_FOLIAGE, day))
    fill_ellipse(
        image, cx - rx * 0.3, cy - rx * 0.25, rx * 0.55, rx * 0.5, _shade(_FOLIAGE_DARK, day)
    )


def _render_occluder(
    image: np.ndarray, obj: SceneObject, size: int, rng: np.random.Generator
) -> None:
    """Cover ``obj.occlusion`` of the object's box with foliage."""
    x0, y0, x1, y1 = obj.box.to_pixels(size, size)
    if x1 <= x0 or y1 <= y0:
        return
    covered_width = (x1 - x0) * obj.occlusion
    from_left = rng.random() < 0.5
    cx = x0 + covered_width / 2 if from_left else x1 - covered_width / 2
    cy = (y0 + y1) / 2
    rx = max(2.0, covered_width / 2 + 1)
    ry = max(2.0, (y1 - y0) * min(0.9, obj.occlusion + 0.25) / 2)
    fill_ellipse(image, cx, cy, rx, ry, _FOLIAGE, opacity=0.95)
