"""Weather and lighting conditions as image-space corruptions.

GSV imagery is captured in whatever conditions the car drove through;
the paper's noise ablation (Fig. 3) covers sensor noise but not
weather.  This module adds the three conditions street-level vision
work usually evaluates, each implemented as a physically motivated
pixel transform:

* **fog** — scattering toward a gray airlight, stronger higher in the
  frame (farther scene content sits near the horizon);
* **rain** — contrast loss plus semi-transparent streak overlays;
* **dusk** — global dimming with a warm sky tint and a blue shadow
  shift.

All transforms accept uint8 or float images and preserve dtype, so
they slot directly into ``evaluate_detector(image_transform=...)``
exactly like the SNR corruption.
"""

from __future__ import annotations

import numpy as np

from .seeding import stable_seed

#: Severity sweep used by the robustness benches.
SEVERITY_LEVELS = (0.25, 0.5, 0.75, 1.0)


def _to_float(image: np.ndarray) -> tuple[np.ndarray, bool]:
    if image.dtype == np.uint8:
        return image.astype(np.float64) / 255.0, True
    return image.astype(np.float64), False


def _from_float(pixels: np.ndarray, was_uint8: bool) -> np.ndarray:
    np.clip(pixels, 0.0, 1.0, out=pixels)
    if was_uint8:
        return (pixels * 255.0 + 0.5).astype(np.uint8)
    return pixels


def apply_fog(image: np.ndarray, severity: float = 0.5) -> np.ndarray:
    """Blend toward gray airlight with height-dependent density."""
    _check_severity(severity)
    pixels, was_uint8 = _to_float(image)
    height = pixels.shape[0]
    airlight = np.array([0.78, 0.80, 0.82])
    # Density falls from the horizon region downward: rows near the
    # top (distant content) fog over first.
    row_factor = np.linspace(1.0, 0.35, height)[:, None, None]
    alpha = severity * 0.75 * row_factor
    fogged = (1.0 - alpha) * pixels + alpha * airlight
    return _from_float(fogged, was_uint8)


def apply_rain(
    image: np.ndarray,
    severity: float = 0.5,
    seed: int | None = None,
) -> np.ndarray:
    """Contrast loss plus diagonal rain streaks."""
    _check_severity(severity)
    pixels, was_uint8 = _to_float(image)
    height, width = pixels.shape[:2]
    rng = np.random.default_rng(
        stable_seed("rain", seed if seed is not None else 0)
    )
    # Wet-scene contrast compression toward the mean.
    mean = pixels.mean()
    pixels = (1.0 - 0.3 * severity) * pixels + 0.3 * severity * mean
    # Streaks: short bright diagonal segments.
    n_streaks = int(severity * width * height / 400)
    streak_color = 0.85
    for _ in range(n_streaks):
        x = int(rng.integers(0, width))
        y = int(rng.integers(0, height))
        length = int(rng.integers(6, 14))
        for step in range(length):
            yy = y + step
            xx = x + step // 3
            if yy < height and xx < width:
                pixels[yy, xx] = (
                    0.6 * pixels[yy, xx] + 0.4 * streak_color
                )
    return _from_float(pixels, was_uint8)


def apply_dusk(image: np.ndarray, severity: float = 0.5) -> np.ndarray:
    """Dim the scene with a warm horizon tint and cool shadows."""
    _check_severity(severity)
    pixels, was_uint8 = _to_float(image)
    dimming = 1.0 - 0.55 * severity
    pixels = pixels * dimming
    # Warm tint strongest near the horizon band, cool shift below.
    height = pixels.shape[0]
    band = np.exp(
        -(((np.arange(height) - 0.45 * height) / (0.12 * height)) ** 2)
    )[:, None]
    pixels[..., 0] += 0.10 * severity * band
    pixels[..., 2] += 0.05 * severity * (1.0 - band)
    return _from_float(pixels, was_uint8)


#: Named condition registry for sweeps.
CONDITIONS = {
    "fog": apply_fog,
    "rain": apply_rain,
    "dusk": apply_dusk,
}


def apply_condition(
    image: np.ndarray, condition: str, severity: float = 0.5
) -> np.ndarray:
    """Apply a named weather condition."""
    if condition not in CONDITIONS:
        raise ValueError(
            f"unknown condition {condition!r}; choose from "
            f"{sorted(CONDITIONS)}"
        )
    return CONDITIONS[condition](image, severity)


def _check_severity(severity: float) -> None:
    if not 0.0 <= severity <= 1.0:
        raise ValueError(f"severity out of range: {severity}")
