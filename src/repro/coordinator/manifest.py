"""The durable shard manifest: one fsynced JSON file of record.

A coordinated survey's entire recoverable state is three kinds of
file under its state directory::

    state/
      manifest.json            <- this module: plan + shard lifecycle
      shards/shard_0007.ckpt.json    <- per-location SurveyCheckpoint
      shards/shard_0007.result.json  <- worker's completion document
      heartbeats/shard_0007.hb       <- liveness (advisory, not durable)

The manifest is the only file whose loss loses the run, so it gets
the full durability treatment: every save writes a temp file, fsyncs
it, renames over the real path, and fsyncs the directory — after a
crash at *any* instant the manifest on disk is a complete document
describing some prefix of the run's state transitions.

The manifest is **content-fingerprinted**: its fingerprint hashes the
plan configuration (county names, n_locations, seed, shard size) and
a digest of every planned sample point.  A resumed coordinator
replans, recomputes the fingerprint, and refuses to adopt state from
a different plan — changing the config invalidates stale state
instead of silently merging two different surveys.  Shard checkpoints
embed the same fingerprint in their keys, so a stale shard file can
never be mistaken for progress either.

Shard lifecycle (see DESIGN.md §12 for the full state machine)::

    PENDING ──claim──► LEASED ──valid result──► COMPLETED
       ▲                 │
       └──crash/expiry───┴──attempt budget exhausted──► QUARANTINED

``attempts`` counts dispatches and survives coordinator restarts, so
a poison shard cannot burn an unbounded number of attempts across
resumes of the *same* run (an explicit resume grants a fresh budget —
the operator asked to try again).
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from ..geo.sampling import SamplePoint
from ..obs.metrics import get_metrics

__all__ = [
    "FORMAT_VERSION",
    "ManifestCorruptError",
    "ManifestMismatchError",
    "ShardManifest",
    "ShardRecord",
    "ShardState",
    "atomic_write_json",
    "plan_fingerprint",
    "points_digest",
]

FORMAT_VERSION = 1

MANIFEST_FILENAME = "manifest.json"


class ManifestMismatchError(ValueError):
    """The manifest on disk was planned from a different config/frame."""


class ManifestCorruptError(ValueError):
    """The manifest on disk is unreadable or structurally invalid."""


class ShardState(enum.Enum):
    PENDING = "pending"
    LEASED = "leased"
    COMPLETED = "completed"
    QUARANTINED = "quarantined"


def atomic_write_json(path: str | Path, payload: dict) -> None:
    """Durable atomic JSON write: temp file + fsync + rename + dir fsync.

    The rename makes the update atomic (readers see old or new, never
    torn); the fsyncs make it durable (a machine crash after return
    cannot roll it back).  Used for the manifest and shard result
    documents — the rare, high-value writes; per-location checkpoints
    skip the fsyncs (see :mod:`repro.resilience.checkpoint`).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, sort_keys=True))
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(path)
    dir_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def points_digest(points: list[SamplePoint]) -> str:
    """Content digest of a sequence of planned sample points.

    ``repr`` round-trips floats exactly, so two identically planned
    frames digest identically and any drift (different seed, different
    road network) changes the digest.
    """
    digest = hashlib.sha256()
    for point in points:
        digest.update(
            (
                f"{point.location.lat!r},{point.location.lon!r},"
                f"{point.county},{point.zone_kind.value},"
                f"{point.road_class.value},{point.road_bearing!r}\n"
            ).encode("utf-8")
        )
    return digest.hexdigest()


def plan_fingerprint(
    *,
    counties: list[str],
    n_locations: int,
    seed: int,
    shard_size: int,
    frame_digest: str,
    extra: dict | None = None,
) -> str:
    """Fingerprint of the whole plan: config + the frame it produced.

    Hashing the frame digest (not just the config) means a change in
    *how* points are planned — a new road-network generator, say —
    also invalidates stale state, even if the config tuple is
    unchanged.
    """
    body = json.dumps(
        {
            "counties": counties,
            "n_locations": n_locations,
            "seed": seed,
            "shard_size": shard_size,
            "frame_digest": frame_digest,
            "extra": extra or {},
        },
        sort_keys=True,
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


@dataclass
class ShardRecord:
    """Durable lifecycle state of one contiguous shard of the frame."""

    shard_id: int
    start: int
    stop: int
    digest: str
    state: ShardState = ShardState.PENDING
    attempts: int = 0
    worker: str | None = None
    lease_expires_s: float | None = None
    error: str | None = None

    @property
    def size(self) -> int:
        return self.stop - self.start

    def as_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "start": self.start,
            "stop": self.stop,
            "digest": self.digest,
            "state": self.state.value,
            "attempts": self.attempts,
            "worker": self.worker,
            "lease_expires_s": self.lease_expires_s,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardRecord":
        return cls(
            shard_id=int(data["shard_id"]),
            start=int(data["start"]),
            stop=int(data["stop"]),
            digest=str(data["digest"]),
            state=ShardState(data["state"]),
            attempts=int(data.get("attempts", 0)),
            worker=data.get("worker"),
            lease_expires_s=data.get("lease_expires_s"),
            error=data.get("error"),
        )


class ShardManifest:
    """The durable document of record for one coordinated survey."""

    def __init__(
        self,
        path: str | Path,
        fingerprint: str,
        shards: list[ShardRecord],
        plan: dict | None = None,
    ) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.shards = shards
        #: Human-readable plan provenance (county names, n, seed, ...);
        #: informational — the fingerprint is what gates resumption.
        self.plan = plan or {}

    # -- planning ------------------------------------------------------

    @classmethod
    def plan_shards(
        cls,
        path: str | Path,
        points: list[SamplePoint],
        shard_size: int,
        fingerprint: str,
        plan: dict | None = None,
    ) -> "ShardManifest":
        """Slice a planned frame into contiguous, digested shards."""
        if shard_size < 1:
            raise ValueError(f"shard_size must be positive: {shard_size}")
        shards = [
            ShardRecord(
                shard_id=shard_id,
                start=start,
                stop=min(start + shard_size, len(points)),
                digest=points_digest(
                    points[start : min(start + shard_size, len(points))]
                ),
            )
            for shard_id, start in enumerate(
                range(0, len(points), shard_size)
            )
        ]
        return cls(path, fingerprint, shards, plan=plan)

    # -- persistence ---------------------------------------------------

    def save(self) -> None:
        atomic_write_json(
            self.path,
            {
                "format_version": FORMAT_VERSION,
                "fingerprint": self.fingerprint,
                "plan": self.plan,
                "shards": [record.as_dict() for record in self.shards],
            },
        )
        get_metrics().inc("coord.manifest.writes")

    @classmethod
    def load(cls, path: str | Path) -> "ShardManifest":
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise
        except (OSError, ValueError) as err:
            raise ManifestCorruptError(
                f"unreadable manifest at {path}: {err}"
            ) from err
        if (
            not isinstance(payload, dict)
            or payload.get("format_version") != FORMAT_VERSION
            or not isinstance(payload.get("shards"), list)
        ):
            raise ManifestCorruptError(
                f"manifest at {path} is structurally invalid"
            )
        try:
            shards = [
                ShardRecord.from_dict(entry)
                for entry in payload["shards"]
            ]
        except (KeyError, TypeError, ValueError) as err:
            raise ManifestCorruptError(
                f"manifest at {path} has an invalid shard record: {err}"
            ) from err
        return cls(
            path,
            str(payload.get("fingerprint", "")),
            shards,
            plan=payload.get("plan") or {},
        )

    # -- queries -------------------------------------------------------

    def record(self, shard_id: int) -> ShardRecord:
        return self.shards[shard_id]

    def in_state(self, *states: ShardState) -> list[ShardRecord]:
        return [r for r in self.shards if r.state in states]

    def counts(self) -> dict[str, int]:
        counts = {state.value: 0 for state in ShardState}
        for record in self.shards:
            counts[record.state.value] += 1
        return counts

    @property
    def finished(self) -> bool:
        """No shard can make further progress without intervention."""
        return not self.in_state(ShardState.PENDING, ShardState.LEASED)
