"""The crash-safe survey supervisor: plan, lease, fence, merge.

:class:`SurveyCoordinator` turns a county-scale sampling frame into a
durable :class:`~repro.coordinator.manifest.ShardManifest`, drives its
shards through forked worker processes under expiring leases, and
merges the survivors' durable records into one canonical
:class:`~repro.core.pipeline.SurveyReport`.  The contract it defends:

* **Crash-invariance** — SIGKILL any worker, or the whole coordinator,
  at any instant; a resumed run completes and its merged report is
  byte-identical to an undisturbed serial survey of the same frame.
* **No re-billing** — a location checkpointed by any attempt is never
  decoded (or billed) again; re-dispatch resumes from the durable
  prefix.
* **Bounded poison** — a shard that keeps killing its workers is
  QUARANTINED after ``max_attempts`` dispatches and degrades to
  ``failed_locations`` rows instead of wedging the run.

Workers are forked (POSIX ``fork`` start method), so the parent-built
decoder is inherited copy-on-write: no pickling, no per-worker model
rebuild, and — because ``fork`` snapshots the parent — every attempt
starts from the identical pristine decoder state, which is one of the
pillars of byte-identity.  The coordinator itself stays single-threaded
precisely so those forks are safe.

Straggler detection is lease-based (:mod:`repro.coordinator.lease`):
workers heartbeat to advisory files, fresh beats renew the lease, and
a lease that expires gets its worker *fenced* — SIGKILL, never a
polite request — before the shard is re-dispatched.  Fencing is what
makes re-dispatch safe: a wedged worker that woke up later could
otherwise double-write its shard's result.
"""

from __future__ import annotations

import json
import multiprocessing
import shutil
from dataclasses import dataclass, field
from pathlib import Path

from ..core.pipeline import NeighborhoodDecoder, SurveyReport
from ..geo.county import County
from ..geo.sampling import SamplePoint, plan_survey_points
from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from ..resilience.clock import Clock, WallClock
from .chaos import CrashSchedule
from .lease import LeaseTable
from .manifest import (
    MANIFEST_FILENAME,
    ManifestCorruptError,
    ManifestMismatchError,
    ShardManifest,
    ShardRecord,
    ShardState,
    plan_fingerprint,
    points_digest,
)
from .merge import merge_shards
from .worker import (
    RESULT_FORMAT_VERSION,
    ShardTask,
    heartbeat_path,
    read_heartbeat,
    result_path,
    run_shard,
)

__all__ = ["CoordinationResult", "CoordinatorError", "SurveyCoordinator"]


class CoordinatorError(RuntimeError):
    """The coordinated run cannot proceed as configured."""


@dataclass
class CoordinationResult:
    """What one coordinated run did, beyond the report itself."""

    report: SurveyReport
    manifest: ShardManifest
    workers_spawned: int = 0
    requeues: int = 0
    lease_expiries: int = 0
    quarantined: tuple[int, ...] = ()
    shard_counts: dict = field(default_factory=dict)


@dataclass
class _ActiveWorker:
    """Parent-side handle on one live shard attempt."""

    proc: "multiprocessing.process.BaseProcess"
    record: ShardRecord
    last_beat_t: float | None = None


def _child_main(task: ShardTask, decoder_factory) -> None:
    """Worker-process entry: resolve the decoder, then run the shard."""
    if task.decoder is None and decoder_factory is not None:
        task.decoder = decoder_factory()
    run_shard(task)


class SurveyCoordinator:
    """Supervise a sharded, crash-safe survey of one or many counties.

    Parameters mirror the CLI flags: ``shard_size`` (locations per
    shard), ``max_workers`` (concurrent shard processes),
    ``lease_ttl_s`` (heartbeat silence tolerated before fencing),
    ``max_attempts`` (dispatches per shard before quarantine).  Pass a
    pre-built ``decoder`` to fork-inherit it (the fast path), or a
    ``decoder_factory`` to build one inside each worker.  ``clock``
    and ``crash_schedule`` exist for tests and drills.
    """

    def __init__(
        self,
        *,
        state_dir: str | Path,
        counties: list[County],
        n_locations: int,
        seed: int = 0,
        decoder: NeighborhoodDecoder | None = None,
        decoder_factory=None,
        shard_size: int = 32,
        max_workers: int = 2,
        lease_ttl_s: float = 30.0,
        heartbeat_interval_s: float | None = None,
        poll_interval_s: float = 0.02,
        max_attempts: int = 3,
        keep_locations: bool = True,
        stream_shard_size: int = 64,
        clock: Clock | None = None,
        crash_schedule: CrashSchedule | None = None,
    ) -> None:
        if decoder is None and decoder_factory is None:
            raise ValueError("need a decoder or a decoder_factory")
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1: {max_workers}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {max_attempts}")
        self.state_dir = Path(state_dir)
        self.counties = counties
        self.n_locations = n_locations
        self.seed = seed
        self.decoder = decoder
        self.decoder_factory = decoder_factory
        self.shard_size = shard_size
        self.max_workers = max_workers
        self.lease_ttl_s = lease_ttl_s
        self.heartbeat_interval_s = (
            heartbeat_interval_s
            if heartbeat_interval_s is not None
            else max(lease_ttl_s / 4.0, 0.01)
        )
        self.poll_interval_s = poll_interval_s
        self.max_attempts = max_attempts
        self.keep_locations = keep_locations
        self.stream_shard_size = stream_shard_size
        self.clock: Clock = clock if clock is not None else WallClock()
        self.crash_schedule = crash_schedule
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as err:  # pragma: no cover - non-POSIX
            raise CoordinatorError(
                "the coordinator requires the fork start method"
            ) from err
        self.points: list[SamplePoint] = []
        self.manifest: ShardManifest | None = None

    # -- planning ------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.state_dir / MANIFEST_FILENAME

    def plan(self, resume: bool = False) -> ShardManifest:
        """Plan the frame and adopt, normalize, or replace prior state.

        * no manifest → fresh plan;
        * fingerprint mismatch → ``resume`` raises
          :class:`~repro.coordinator.manifest.ManifestMismatchError`
          (the operator asked to continue a run that no longer exists),
          a fresh start wipes the stale state and replans;
        * match without ``resume`` → start over (wipe shard state);
        * match with ``resume`` → normalize: LEASED demotes to PENDING
          (those workers are gone; attempts already counted), COMPLETED
          without a valid result document demotes to PENDING, and
          QUARANTINED returns to PENDING with a *fresh* attempt budget —
          an explicit resume is the operator asking to try again.
        """
        self.points = plan_survey_points(
            self.counties, self.n_locations, seed=self.seed
        )
        if not self.points:
            raise CoordinatorError(
                "sampling frame is empty: no roads produced any points"
            )
        fingerprint = plan_fingerprint(
            counties=[county.name for county in self.counties],
            n_locations=self.n_locations,
            seed=self.seed,
            shard_size=self.shard_size,
            frame_digest=points_digest(self.points),
        )
        existing = self._load_existing(resume, fingerprint)
        if existing is not None:
            self.manifest = existing
            if resume:
                self._normalize_for_resume(existing)
            return existing
        self._wipe_shard_state()
        manifest = ShardManifest.plan_shards(
            self.manifest_path,
            self.points,
            self.shard_size,
            fingerprint,
            plan={
                "counties": [county.name for county in self.counties],
                "n_locations": self.n_locations,
                "seed": self.seed,
                "shard_size": self.shard_size,
            },
        )
        manifest.save()
        self.manifest = manifest
        return manifest

    def _load_existing(
        self, resume: bool, fingerprint: str
    ) -> ShardManifest | None:
        try:
            manifest = ShardManifest.load(self.manifest_path)
        except FileNotFoundError:
            return None
        except ManifestCorruptError:
            if resume:
                raise
            return None
        if manifest.fingerprint != fingerprint:
            if resume:
                raise ManifestMismatchError(
                    "manifest on disk was planned from a different "
                    f"config/frame (have {manifest.fingerprint[:12]}…, "
                    f"want {fingerprint[:12]}…)"
                )
            return None
        if not resume:
            return None
        return manifest

    def _normalize_for_resume(self, manifest: ShardManifest) -> None:
        changed = False
        for record in manifest.shards:
            if record.state is ShardState.LEASED:
                record.state = ShardState.PENDING
                record.worker = None
                record.lease_expires_s = None
                changed = True
            elif record.state is ShardState.COMPLETED:
                if not self._valid_result(record):
                    record.state = ShardState.PENDING
                    record.worker = None
                    record.lease_expires_s = None
                    changed = True
            elif record.state is ShardState.QUARANTINED:
                record.state = ShardState.PENDING
                record.attempts = 0
                record.error = None
                changed = True
        if changed:
            manifest.save()

    def _wipe_shard_state(self) -> None:
        shutil.rmtree(self.state_dir / "shards", ignore_errors=True)
        shutil.rmtree(self.state_dir / "heartbeats", ignore_errors=True)
        self.manifest_path.unlink(missing_ok=True)

    # -- supervision ---------------------------------------------------

    def run(self, resume: bool = False) -> CoordinationResult:
        """Drive every shard to COMPLETED or QUARANTINED, then merge."""
        manifest = self.plan(resume=resume)
        tracer = get_tracer()
        metrics = get_metrics()
        leases = LeaseTable(self.lease_ttl_s, self.clock)
        active: dict[int, _ActiveWorker] = {}
        result = CoordinationResult(
            report=SurveyReport(), manifest=manifest
        )
        quarantined: list[int] = []

        with tracer.span(
            "coordinate",
            counties=[county.name for county in self.counties],
            n_locations=self.n_locations,
            shards=len(manifest.shards),
            resume=resume,
        ) as root:
            while True:
                self._dispatch(manifest, leases, active, metrics, result)
                if not active and manifest.finished:
                    break
                self._poll(
                    manifest,
                    leases,
                    active,
                    metrics,
                    result,
                    quarantined,
                    tracer,
                    root,
                )
                if active or not manifest.finished:
                    self.clock.sleep(self.poll_interval_s)
            with tracer.span("coordinate.merge", parent=root) as span:
                report = merge_shards(
                    manifest,
                    self.state_dir,
                    self.points,
                    keep_locations=self.keep_locations,
                )
                span.set(
                    completed=report.completed_locations,
                    failed=len(report.failed_locations),
                )
            root.set(counts=manifest.counts())

        # The merged delta becomes part of the parent's books, so
        # reconcile_survey audits the coordinated run exactly like a
        # single-process survey.
        metrics.merge(report.metrics)
        result.report = report
        result.quarantined = tuple(quarantined)
        result.shard_counts = manifest.counts()
        return result

    def _dispatch(
        self,
        manifest: ShardManifest,
        leases: LeaseTable,
        active: dict[int, _ActiveWorker],
        metrics,
        result: CoordinationResult,
    ) -> None:
        for record in manifest.in_state(ShardState.PENDING):
            if len(active) >= self.max_workers:
                return
            attempt = record.attempts + 1
            worker_name = f"worker-{record.shard_id:04d}-a{attempt}"
            lease = leases.claim(record.shard_id, worker_name)
            record.attempts = attempt
            record.state = ShardState.LEASED
            record.worker = worker_name
            record.lease_expires_s = lease.expires_s
            manifest.save()
            # Stale result/heartbeat files from a previous attempt must
            # not be mistaken for this attempt's output.  The shard
            # *checkpoint* stays — resuming it is the whole point.
            result_path(self.state_dir, record.shard_id).unlink(
                missing_ok=True
            )
            heartbeat_path(self.state_dir, record.shard_id).unlink(
                missing_ok=True
            )
            crash = (
                self.crash_schedule.action_for(record.shard_id, attempt)
                if self.crash_schedule is not None
                else None
            )
            task = ShardTask(
                shard_id=record.shard_id,
                attempt=attempt,
                points=self.points[record.start : record.stop],
                digest=record.digest,
                fingerprint=manifest.fingerprint,
                state_dir=str(self.state_dir),
                heartbeat_interval_s=self.heartbeat_interval_s,
                stream_shard_size=self.stream_shard_size,
                decoder=self.decoder,
                crash=crash,
            )
            proc = self._ctx.Process(
                target=_child_main,
                args=(task, self.decoder_factory),
                name=worker_name,
            )
            proc.start()
            metrics.inc("coord.workers.spawned")
            result.workers_spawned += 1
            active[record.shard_id] = _ActiveWorker(
                proc=proc, record=record
            )

    def _poll(
        self,
        manifest: ShardManifest,
        leases: LeaseTable,
        active: dict[int, _ActiveWorker],
        metrics,
        result: CoordinationResult,
        quarantined: list[int],
        tracer,
        root,
    ) -> None:
        now = self.clock.now()
        for shard_id, worker in list(active.items()):
            record = worker.record
            if not worker.proc.is_alive():
                worker.proc.join()
                exitcode = worker.proc.exitcode
                if exitcode == 0 and self._valid_result(record):
                    record.state = ShardState.COMPLETED
                    record.worker = None
                    record.lease_expires_s = None
                    record.error = None
                    leases.release(shard_id)
                    manifest.save()
                    outcome = "completed"
                else:
                    outcome = self._requeue_or_quarantine(
                        manifest,
                        leases,
                        record,
                        f"worker died (exit {exitcode})",
                        metrics,
                        result,
                        quarantined,
                    )
                del active[shard_id]
                self._shard_span(tracer, root, record, outcome)
                continue
            beat = read_heartbeat(
                heartbeat_path(self.state_dir, shard_id)
            )
            if beat is not None and beat["t"] != worker.last_beat_t:
                worker.last_beat_t = beat["t"]
                lease = leases.renew(shard_id)
                record.lease_expires_s = lease.expires_s
            lease = leases.active(shard_id)
            if lease is not None and lease.expired(now):
                # Fence before re-dispatch: a wedged worker that woke
                # up later must never double-write its shard.
                worker.proc.kill()
                worker.proc.join()
                metrics.inc("coord.leases.expired")
                result.lease_expiries += 1
                outcome = self._requeue_or_quarantine(
                    manifest,
                    leases,
                    record,
                    "lease expired (heartbeats went silent)",
                    metrics,
                    result,
                    quarantined,
                )
                del active[shard_id]
                self._shard_span(tracer, root, record, outcome)

    def _requeue_or_quarantine(
        self,
        manifest: ShardManifest,
        leases: LeaseTable,
        record: ShardRecord,
        reason: str,
        metrics,
        result: CoordinationResult,
        quarantined: list[int],
    ) -> str:
        leases.release(record.shard_id)
        record.worker = None
        record.lease_expires_s = None
        record.error = reason
        if record.attempts >= self.max_attempts:
            record.state = ShardState.QUARANTINED
            metrics.inc("coord.shards.quarantined")
            quarantined.append(record.shard_id)
            outcome = "quarantined"
        else:
            record.state = ShardState.PENDING
            metrics.inc("coord.shards.requeued")
            result.requeues += 1
            outcome = "requeued"
        manifest.save()
        return outcome

    @staticmethod
    def _shard_span(tracer, root, record: ShardRecord, outcome: str) -> None:
        with tracer.span(
            "coordinate.shard",
            parent=root,
            shard=record.shard_id,
            attempt=record.attempts,
            outcome=outcome,
        ):
            pass

    def _valid_result(self, record: ShardRecord) -> bool:
        """Does a durable, internally consistent result document exist?

        A crashed worker leaves no result file (it is written once,
        atomically, as the final act); a stale or foreign one fails the
        fingerprint/attempt checks.  Either way the shard is not done.
        """
        path = result_path(self.state_dir, record.shard_id)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return False
        if not isinstance(payload, dict):
            return False
        manifest = self.manifest
        fingerprint = manifest.fingerprint if manifest else None
        if payload.get("format_version") != RESULT_FORMAT_VERSION:
            return False
        if payload.get("fingerprint") != fingerprint:
            return False
        if payload.get("shard_id") != record.shard_id:
            return False
        completed = payload.get("completed")
        failed = payload.get("failed")
        if not isinstance(completed, int) or not isinstance(failed, list):
            return False
        return completed + len(failed) == record.size
