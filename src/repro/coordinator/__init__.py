"""Crash-safe sharded survey coordination.

County-scale surveys run for hours and bill real money per image; a
crash that loses progress — or worse, re-bills it — is not acceptable.
This package supervises a survey as a fleet of forked shard workers
over a durable manifest:

* :mod:`~repro.coordinator.manifest` — the fsynced document of record
  (plan fingerprint, shard lifecycle states);
* :mod:`~repro.coordinator.lease` — expiring leases + heartbeat
  renewal, the straggler-detection state machine;
* :mod:`~repro.coordinator.worker` — what runs inside one worker
  process (checkpointed ``survey_stream`` + heartbeats + an atomic
  result document);
* :mod:`~repro.coordinator.merge` — deterministic reconstruction of
  the canonical report from durable records only;
* :mod:`~repro.coordinator.chaos` — scripted worker deaths for
  drills (SIGKILL / heartbeat freeze at deterministic points);
* :mod:`~repro.coordinator.coordinator` — the supervisor tying it
  together.

See DESIGN.md §12 for the full state machine and invariants, and
``repro coordinate --drill`` for the self-checking chaos drill.
"""

from .chaos import ChaosCheckpoint, CrashAction, CrashSchedule
from .coordinator import (
    CoordinationResult,
    CoordinatorError,
    SurveyCoordinator,
)
from .lease import Lease, LeaseError, LeaseTable
from .manifest import (
    ManifestCorruptError,
    ManifestMismatchError,
    ShardManifest,
    ShardRecord,
    ShardState,
    atomic_write_json,
    plan_fingerprint,
    points_digest,
)
from .merge import CoordinatorMergeError, merge_shards
from .worker import (
    ShardTask,
    checkpoint_path,
    heartbeat_path,
    read_heartbeat,
    result_path,
    run_shard,
)

__all__ = [
    "ChaosCheckpoint",
    "CoordinationResult",
    "CoordinatorError",
    "CoordinatorMergeError",
    "CrashAction",
    "CrashSchedule",
    "Lease",
    "LeaseError",
    "LeaseTable",
    "ManifestCorruptError",
    "ManifestMismatchError",
    "ShardManifest",
    "ShardRecord",
    "ShardState",
    "ShardTask",
    "SurveyCoordinator",
    "atomic_write_json",
    "checkpoint_path",
    "heartbeat_path",
    "merge_shards",
    "plan_fingerprint",
    "points_digest",
    "read_heartbeat",
    "result_path",
    "run_shard",
]
