"""Expiring leases over shards: the straggler-detection state machine.

A shard dispatched to a worker is held under a **lease**: a grant
that expires ``ttl_s`` after the last observed heartbeat.  A healthy
worker's heartbeats keep renewing the lease; a worker that dies (no
process, no beats) or wedges (process alive, beats stopped — a stuck
NFS read, a deadlock, a paused cgroup) lets its lease expire, at
which point the coordinator *fences* it (SIGKILL — a wedged worker
cannot be trusted to finish cleanly later and double-write its shard)
and re-dispatches the shard.

Time is injected (:class:`~repro.resilience.clock.Clock`), so the
whole claim → renew → expire → steal cycle unit-tests in microseconds
under a :class:`~repro.resilience.clock.VirtualClock` while production
runs on the monotonic wall clock.  The table is purely in-memory
state derived from the durable manifest plus live heartbeats — it is
rebuilt, not recovered, after a coordinator restart.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..resilience.clock import Clock

__all__ = ["Lease", "LeaseError", "LeaseTable"]


class LeaseError(RuntimeError):
    """An illegal lease transition (double claim, renew of nothing)."""


@dataclass
class Lease:
    """One worker's time-bounded hold on one shard."""

    shard_id: int
    worker: str
    granted_s: float
    expires_s: float
    renewals: int = 0

    def expired(self, now: float) -> bool:
        return now > self.expires_s


class LeaseTable:
    """Claim/renew/release/expire bookkeeping under an injected clock."""

    def __init__(self, ttl_s: float, clock: Clock) -> None:
        if ttl_s <= 0:
            raise ValueError(f"lease ttl must be positive: {ttl_s}")
        self.ttl_s = ttl_s
        self.clock = clock
        self._leases: dict[int, Lease] = {}
        self.claims = 0
        self.steals = 0

    def active(self, shard_id: int) -> Lease | None:
        return self._leases.get(shard_id)

    def claim(self, shard_id: int, worker: str) -> Lease:
        """Grant a fresh lease; stealing an *expired* one is legal.

        Claiming over a live lease raises — two workers must never
        hold the same shard, that is the whole invariant.
        """
        now = self.clock.now()
        current = self._leases.get(shard_id)
        if current is not None:
            if not current.expired(now):
                raise LeaseError(
                    f"shard {shard_id} already leased to "
                    f"{current.worker} until {current.expires_s:.3f}"
                )
            self.steals += 1
        lease = Lease(
            shard_id=shard_id,
            worker=worker,
            granted_s=now,
            expires_s=now + self.ttl_s,
        )
        self._leases[shard_id] = lease
        self.claims += 1
        return lease

    def renew(self, shard_id: int) -> Lease:
        """Extend a lease to ``now + ttl`` (a heartbeat arrived).

        Renewal of an already-expired lease is allowed — a beat that
        raced the expiry check is still evidence of life; the caller
        decides whether it already fenced the worker.
        """
        lease = self._leases.get(shard_id)
        if lease is None:
            raise LeaseError(f"shard {shard_id} holds no lease to renew")
        lease.expires_s = self.clock.now() + self.ttl_s
        lease.renewals += 1
        return lease

    def release(self, shard_id: int) -> None:
        """Drop a lease (shard completed or worker fenced)."""
        self._leases.pop(shard_id, None)

    def expired(self) -> list[Lease]:
        """Every lease past its expiry at the current clock reading."""
        now = self.clock.now()
        return [
            lease
            for lease in self._leases.values()
            if lease.expired(now)
        ]
