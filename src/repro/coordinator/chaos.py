"""Chaos drills: scripted worker deaths that replay identically.

The philosophy of :mod:`repro.resilience.faults` — *scripted* faults
beat statistical ones because a drill that replays identically can be
asserted byte-for-byte — extended from API calls to whole processes.
A :class:`CrashSchedule` maps ``(shard_id, attempt)`` to a
:class:`CrashAction`:

* ``sigkill`` — the worker SIGKILLs **itself** after ``after_locations``
  freshly completed (and checkpointed) locations.  No cleanup, no
  atexit, no flushing: the most violent death a process can die, at a
  deterministic point in its progress.
* ``freeze`` — the worker stops heartbeating and blocks forever after
  the same threshold: alive to the OS, dead to the coordinator.  The
  only way past it is lease expiry + fencing, which is exactly the
  straggler path the drill exists to exercise.

The action triggers *after* the Nth fresh location is durably
checkpointed, so every drill knows precisely how much progress the
crash preserved — the crash-resume byte-identity tests rely on it.

The schedule rides into the worker inside its task (looked up by the
coordinator at dispatch, so attempt numbers line up with the durable
manifest), and hooks in via :class:`ChaosCheckpoint`, a
:class:`~repro.resilience.checkpoint.SurveyCheckpoint` that counts
fresh records.  Production never constructs either class.
"""

from __future__ import annotations

import os
import signal
import threading
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..resilience.checkpoint import SurveyCheckpoint

__all__ = ["ChaosCheckpoint", "CrashAction", "CrashSchedule"]


@dataclass(frozen=True)
class CrashAction:
    """What one worker attempt does to itself, and when."""

    kind: str  # "sigkill" | "freeze"
    after_locations: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("sigkill", "freeze"):
            raise ValueError(f"unknown crash kind: {self.kind!r}")
        if self.after_locations < 0:
            raise ValueError(
                f"after_locations must be >= 0: {self.after_locations}"
            )


class CrashSchedule:
    """A deterministic script of worker deaths, keyed by (shard, attempt).

    Builders chain::

        schedule = (
            CrashSchedule()
            .kill(shard_id=1, attempt=1, after_locations=2)
            .freeze(shard_id=0, attempt=1, after_locations=1)
        )
    """

    def __init__(self) -> None:
        self._plan: dict[tuple[int, int], CrashAction] = {}

    def __len__(self) -> int:
        return len(self._plan)

    def kill(
        self, shard_id: int, attempt: int, after_locations: int = 0
    ) -> "CrashSchedule":
        """SIGKILL this shard's Nth attempt after N fresh locations."""
        self._plan[(shard_id, attempt)] = CrashAction(
            "sigkill", after_locations
        )
        return self

    def freeze(
        self, shard_id: int, attempt: int, after_locations: int = 0
    ) -> "CrashSchedule":
        """Freeze (stop heartbeats, block) this shard's Nth attempt."""
        self._plan[(shard_id, attempt)] = CrashAction(
            "freeze", after_locations
        )
        return self

    def action_for(self, shard_id: int, attempt: int) -> CrashAction | None:
        return self._plan.get((shard_id, attempt))

    @classmethod
    def seeded_kills(
        cls,
        n_shards: int,
        *,
        seed: int,
        attempts: int = 1,
        max_after: int = 3,
        fraction: float = 1.0,
    ) -> "CrashSchedule":
        """Random-but-reproducible kills: the standard drill generator.

        Each selected shard's first ``attempts`` dispatches SIGKILL at
        a seeded-random progress point in ``[0, max_after]``;
        ``fraction`` < 1 spares a random subset so drills mix crashing
        and healthy shards.
        """
        rng = np.random.default_rng(seed)
        schedule = cls()
        for shard_id in range(n_shards):
            if rng.random() >= fraction:
                continue
            for attempt in range(1, attempts + 1):
                schedule.kill(
                    shard_id,
                    attempt,
                    after_locations=int(rng.integers(0, max_after + 1)),
                )
        return schedule


class ChaosCheckpoint(SurveyCheckpoint):
    """A checkpoint store that executes a crash action mid-shard.

    Counts *fresh* records (restored ones were someone else's
    progress) and triggers the action immediately after the Nth fresh
    record has been durably persisted — so the drill knows exactly
    which locations survived the crash.
    """

    def __init__(
        self,
        path: str | Path,
        key: dict,
        action: CrashAction | None,
        on_freeze: Callable[[], None] | None = None,
    ) -> None:
        super().__init__(path, key)
        self.action = action
        self.on_freeze = on_freeze
        self._fresh = 0

    def record(self, index: int, payload: dict) -> None:
        super().record(index, payload)
        self._fresh += 1
        if self.action is not None and self._fresh >= max(
            1, self.action.after_locations
        ):
            execute_crash(self.action, on_freeze=self.on_freeze)


def execute_crash(
    action: CrashAction, on_freeze: Callable[[], None] | None = None
) -> None:
    """Carry out a crash action in the current (worker) process.

    ``sigkill`` never returns.  ``freeze`` silences the heartbeat (via
    ``on_freeze``) and then blocks this thread forever — the process
    stays alive until the coordinator fences it.
    """
    if action.kind == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)
        raise AssertionError("unreachable: SIGKILL is immediate")
    if on_freeze is not None:
        on_freeze()
    threading.Event().wait()
