"""What runs inside one shard worker process.

A worker is a forked child of the coordinator (POSIX ``fork`` start
method, so the parent-built decoder — calibrated clients and all — is
inherited copy-on-write instead of being rebuilt or pickled).  Its
contract is deliberately minimal:

1. verify its points match the manifest digest (a mismatched shard is
   a bug, not a fault — crash loudly and let the budget quarantine it);
2. heartbeat to ``heartbeats/shard_NNNN.hb`` on a daemon thread so the
   coordinator can tell wedged from working;
3. run the shard through
   :meth:`~repro.core.pipeline.NeighborhoodDecoder.survey_stream`
   with a per-shard :class:`~repro.resilience.checkpoint.SurveyCheckpoint`
   (serial workers — provenance recording needs one location at a
   time, and cross-shard parallelism is the coordinator's job);
4. write ``shards/shard_NNNN.result.json`` atomically+durably, then
   exit 0.

Everything else — leases, retries of the whole shard, quarantine,
merging — belongs to the coordinator.  A worker that dies at any
point leaves only (a) a valid checkpoint prefix and (b) no result
file, which is exactly the state a re-dispatch resumes from.

Heartbeat timestamps use ``time.monotonic()``: on Linux
``CLOCK_MONOTONIC`` is system-wide, so the parent can compare a
child's reading against its own clock without trusting wall time.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from ..geo.sampling import SamplePoint
from ..obs.metrics import get_metrics
from ..resilience.checkpoint import SurveyCheckpoint
from ..resilience.retry import RetryStats
from .chaos import ChaosCheckpoint, CrashAction, execute_crash
from .manifest import atomic_write_json, points_digest

if TYPE_CHECKING:  # the decoder rides the task object, not an import
    from ..core.pipeline import NeighborhoodDecoder

__all__ = [
    "RESULT_FORMAT_VERSION",
    "ShardTask",
    "checkpoint_path",
    "heartbeat_path",
    "read_heartbeat",
    "result_path",
    "run_shard",
]

RESULT_FORMAT_VERSION = 1


def checkpoint_path(state_dir: str | Path, shard_id: int) -> Path:
    return Path(state_dir) / "shards" / f"shard_{shard_id:04d}.ckpt.json"


def result_path(state_dir: str | Path, shard_id: int) -> Path:
    return Path(state_dir) / "shards" / f"shard_{shard_id:04d}.result.json"


def heartbeat_path(state_dir: str | Path, shard_id: int) -> Path:
    return Path(state_dir) / "heartbeats" / f"shard_{shard_id:04d}.hb"


def shard_checkpoint_key(fingerprint: str, shard_id: int, digest: str) -> dict:
    """The identity a shard checkpoint is keyed by.

    Embedding the plan fingerprint means a checkpoint from a previous,
    differently-configured run raises
    :class:`~repro.resilience.checkpoint.CheckpointMismatchError`
    instead of being silently resumed into the wrong survey.
    """
    return {
        "fingerprint": fingerprint,
        "shard_id": shard_id,
        "digest": digest,
    }


@dataclass
class ShardTask:
    """Everything one worker attempt needs, bundled for the fork."""

    shard_id: int
    attempt: int
    points: list[SamplePoint]
    digest: str
    fingerprint: str
    state_dir: str
    heartbeat_interval_s: float
    stream_shard_size: int = 64
    decoder: "NeighborhoodDecoder | None" = None
    crash: CrashAction | None = None


def write_heartbeat(
    path: Path, shard_id: int, attempt: int, seq: int
) -> None:
    """One liveness beat: atomic so the reader never sees a torn file."""
    payload = json.dumps(
        {
            "shard_id": shard_id,
            "attempt": attempt,
            "seq": seq,
            "t": time.monotonic(),
        }
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(payload, encoding="utf-8")
    tmp.replace(path)


def read_heartbeat(path: Path) -> dict | None:
    """Parse the latest beat; any unreadability reads as silence."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or "t" not in payload:
        return None
    return payload


def run_shard(task: ShardTask) -> None:
    """Process entry point for one shard attempt (see module docs)."""
    registry = get_metrics()
    before = registry.snapshot()

    stop_beats = threading.Event()
    hb_path = heartbeat_path(task.state_dir, task.shard_id)

    def beat_loop() -> None:
        seq = 0
        while not stop_beats.is_set():
            write_heartbeat(hb_path, task.shard_id, task.attempt, seq)
            seq += 1
            stop_beats.wait(task.heartbeat_interval_s)

    beats = threading.Thread(target=beat_loop, daemon=True)
    beats.start()

    if task.decoder is None:
        raise ValueError(f"shard {task.shard_id}: task carries no decoder")
    if points_digest(task.points) != task.digest:
        raise ValueError(
            f"shard {task.shard_id}: points do not match manifest digest"
        )
    if task.crash is not None and task.crash.after_locations <= 0:
        # "Crash before any progress" — triggered here rather than in
        # the checkpoint so a zero-progress crash needs no record().
        execute_crash(task.crash, on_freeze=stop_beats.set)

    key = shard_checkpoint_key(task.fingerprint, task.shard_id, task.digest)
    ckpt_path = checkpoint_path(task.state_dir, task.shard_id)
    if task.crash is not None:
        store: SurveyCheckpoint = ChaosCheckpoint(
            ckpt_path, key, task.crash, on_freeze=stop_beats.set
        )
    else:
        store = SurveyCheckpoint(ckpt_path, key)

    prior = set(store.completed_indices)
    report = task.decoder.survey_stream(
        locations=task.points,
        checkpoint_store=store,
        shard_size=task.stream_shard_size,
        workers=1,
        keep_locations=False,
    )

    # Retry provenance: what the *fresh* completions of this attempt
    # recorded in their payloads, subtracted from the attempt's total,
    # leaves the fault handling spent on locations that ultimately
    # failed — the merge needs that remainder to reconstruct canonical
    # run-wide retry stats.
    fresh_total = RetryStats()
    for index in store.completed_indices:
        if index in prior:
            continue
        fresh_total.merge(
            RetryStats.from_dict(store.get(index).get("retry", {}))
        )
    failed_remainder = report.retry_stats.subtract(fresh_total)

    if len(store) + len(report.failed_locations) != len(task.points):
        raise RuntimeError(
            f"shard {task.shard_id}: durable records do not cover the "
            f"shard ({len(store)} checkpointed + "
            f"{len(report.failed_locations)} failed != {len(task.points)})"
        )

    stop_beats.set()
    atomic_write_json(
        result_path(task.state_dir, task.shard_id),
        {
            "format_version": RESULT_FORMAT_VERSION,
            "fingerprint": task.fingerprint,
            "shard_id": task.shard_id,
            "attempt": task.attempt,
            "completed": len(store),
            "failed": [
                {
                    "index": failed.index,
                    "latitude": failed.latitude,
                    "longitude": failed.longitude,
                    "reason": failed.reason,
                }
                for failed in report.failed_locations
            ],
            "failed_retry": failed_remainder.as_dict(),
            "fees_usd": round(report.fees_usd, 9),
            "metrics": registry.delta_since(before),
        },
    )
