"""Deterministic cross-shard merge: durable records in, one report out.

The merged :class:`~repro.core.pipeline.SurveyReport` is built
entirely from **durable per-location records** — each shard's
checkpoint payloads plus its result document — folded strictly in
manifest order (ascending shard id, ascending location index within a
shard).  Nothing from any in-memory attempt survives into the merge,
which is precisely why the result is crash-invariant: however many
attempts a shard burned, its durable records describe each location
exactly once.

Byte-identity with an undisturbed serial run falls out of three
reconstructions:

* **fees** — re-accumulated as ``fees += FEE_PER_IMAGE_USD`` once per
  image in global location order, the *same float additions in the
  same order* the live :class:`~repro.gsv.api.UsageMeter` performs
  (every addend is identical, so the attempt-partitioning of the live
  sums cannot matter);
* **retry stats** — the sum of every completed location's recorded
  provenance plus every shard's failed-location remainder, instead of
  the sum over attempts (a crashed attempt's in-memory stats die with
  the worker, so attempt sums are not recoverable — per-location
  provenance is);
* **metrics** — the survey/retry counter families are rebuilt from
  the same durable records the report itself is built from, while
  non-survey families (gsv.*, llm.*, checkpoint.*) merge from the
  final attempts' deltas in manifest order.
  :func:`~repro.obs.audit.reconcile_survey` then cross-checks the
  two — a genuine invariant over the merge arithmetic, since report
  and counters are assembled by separate code paths.

Quarantined shards degrade exactly like PR 1's per-location failures:
their checkpointed locations are salvaged, the remainder appear in
``failed_locations`` with a quarantine reason, and ``coverage``
drops below 1.0.  ``coalesce_stats`` is left empty deliberately —
coalescing happened (or not) inside worker processes whose in-flight
windows are not reconstructible, and the audit skips cache checks for
an empty dict.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.pipeline import (
    FailedLocation,
    SurveyReport,
    location_from_payload,
)
from ..core.metrics import PresenceAccumulator
from ..geo.sampling import SamplePoint
from ..gsv.api import FEE_PER_IMAGE_USD
from ..obs.metrics import MetricsRegistry
from ..resilience.checkpoint import SurveyCheckpoint
from ..resilience.retry import RetryStats
from .manifest import ShardManifest, ShardRecord, ShardState
from .worker import checkpoint_path, result_path, shard_checkpoint_key

__all__ = ["CoordinatorMergeError", "merge_shards"]


class CoordinatorMergeError(RuntimeError):
    """Durable shard records are inconsistent with the manifest."""


def _load_result(state_dir: str | Path, record: ShardRecord) -> dict:
    path = result_path(state_dir, record.shard_id)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as err:
        raise CoordinatorMergeError(
            f"shard {record.shard_id} is COMPLETED but its result "
            f"document is unreadable: {err}"
        ) from err
    return payload


def _open_store(
    state_dir: str | Path, record: ShardRecord, fingerprint: str
) -> SurveyCheckpoint | None:
    path = checkpoint_path(state_dir, record.shard_id)
    if not path.exists():
        return None
    return SurveyCheckpoint(
        path,
        shard_checkpoint_key(fingerprint, record.shard_id, record.digest),
    )


def merge_shards(
    manifest: ShardManifest,
    state_dir: str | Path,
    points: list[SamplePoint],
    *,
    keep_locations: bool = True,
) -> SurveyReport:
    """Fold every shard's durable records into one canonical report."""
    report = SurveyReport(requested_locations=len(points))
    if not keep_locations:
        report.presence_stats = PresenceAccumulator()
        report.zone_stats = {}
    report.coalesce_stats = {}

    canonical_retry = RetryStats()
    images_in_order: list[int] = []
    shard_metrics = MetricsRegistry()

    for record in manifest.shards:
        if record.state is ShardState.COMPLETED:
            _merge_completed(
                record,
                state_dir,
                manifest.fingerprint,
                report,
                keep_locations,
                canonical_retry,
                images_in_order,
                shard_metrics,
            )
        else:
            _merge_unfinished(
                record,
                state_dir,
                manifest.fingerprint,
                points,
                report,
                keep_locations,
                canonical_retry,
                images_in_order,
            )

    # Fees: identical float additions in identical order to the live
    # UsageMeter's accumulation — not images * fee, which rounds
    # differently once the sum leaves exact-float territory.
    fees = 0.0
    for images in images_in_order:
        for _ in range(images):
            fees += FEE_PER_IMAGE_USD
    report.fees_usd = fees
    report.retry_stats = canonical_retry
    report.coverage = (
        report.completed_locations / report.requested_locations
        if report.requested_locations
        else 0.0
    )
    report.metrics = _merged_metrics(shard_metrics, report, canonical_retry)
    return report


def _merge_completed(
    record: ShardRecord,
    state_dir: str | Path,
    fingerprint: str,
    report: SurveyReport,
    keep_locations: bool,
    canonical_retry: RetryStats,
    images_in_order: list[int],
    shard_metrics: MetricsRegistry,
) -> None:
    result = _load_result(state_dir, record)
    if result.get("fingerprint") != fingerprint or result.get(
        "shard_id"
    ) != record.shard_id:
        raise CoordinatorMergeError(
            f"shard {record.shard_id}: result document belongs to a "
            "different plan or shard"
        )
    store = _open_store(state_dir, record, fingerprint)
    if store is None:
        raise CoordinatorMergeError(
            f"shard {record.shard_id} is COMPLETED but has no checkpoint"
        )
    failed_by_index = {
        int(entry["index"]): entry for entry in result.get("failed", [])
    }
    covered = set(store.completed_indices) | set(failed_by_index)
    if covered != set(range(record.size)):
        raise CoordinatorMergeError(
            f"shard {record.shard_id}: durable records cover "
            f"{len(covered)}/{record.size} locations"
        )
    for local in range(record.size):
        if store.has(local):
            _fold_completed_location(
                store.get(local),
                report,
                keep_locations,
                canonical_retry,
                images_in_order,
            )
        else:
            entry = failed_by_index[local]
            report.failed_locations.append(
                FailedLocation(
                    index=record.start + local,
                    latitude=entry["latitude"],
                    longitude=entry["longitude"],
                    reason=entry["reason"],
                )
            )
    canonical_retry.merge(
        RetryStats.from_dict(result.get("failed_retry", {}))
    )
    shard_metrics.merge(result.get("metrics", {}))


def _merge_unfinished(
    record: ShardRecord,
    state_dir: str | Path,
    fingerprint: str,
    points: list[SamplePoint],
    report: SurveyReport,
    keep_locations: bool,
    canonical_retry: RetryStats,
    images_in_order: list[int],
) -> None:
    """Quarantined (or never-finished) shard: salvage, then degrade.

    Checkpointed locations are real, billed progress — they fold in
    exactly like a completed shard's.  The rest degrade to
    ``failed_locations`` rows, mirroring how a single survey records
    locations it could not complete.
    """
    store = _open_store(state_dir, record, fingerprint)
    if record.state is ShardState.QUARANTINED:
        reason = (
            f"quarantined after {record.attempts} attempts"
            + (f": {record.error}" if record.error else "")
        )
    else:
        reason = f"shard not completed (state {record.state.value})"
    for local in range(record.size):
        if store is not None and store.has(local):
            _fold_completed_location(
                store.get(local),
                report,
                keep_locations,
                canonical_retry,
                images_in_order,
            )
        else:
            point = points[record.start + local]
            report.failed_locations.append(
                FailedLocation(
                    index=record.start + local,
                    latitude=point.location.lat,
                    longitude=point.location.lon,
                    reason=reason,
                )
            )


def _fold_completed_location(
    payload: dict,
    report: SurveyReport,
    keep_locations: bool,
    canonical_retry: RetryStats,
    images_in_order: list[int],
) -> None:
    result = location_from_payload(payload)
    images = int(payload["images"])
    degraded = int(payload["degraded_votes"])
    report.images_classified += images
    report.degraded_votes += degraded
    report.completed_locations += 1
    images_in_order.append(images)
    canonical_retry.merge(RetryStats.from_dict(payload.get("retry", {})))
    if keep_locations:
        report.locations.append(result)
        return
    assert report.presence_stats is not None
    assert report.zone_stats is not None
    report.presence_stats.update(result.presence)
    zone = report.zone_stats.setdefault(
        result.zone_kind, PresenceAccumulator()
    )
    zone.update(result.presence)


def _merged_metrics(
    shard_metrics: MetricsRegistry,
    report: SurveyReport,
    canonical_retry: RetryStats,
) -> dict:
    """The merged report's metrics delta: canonical books, not attempt sums.

    Survey/retry counter families are *rebuilt from durable records*
    (crashed attempts' registries died with their workers, so the
    final-attempt deltas under-count restored work's fault handling
    and over/under-count nothing else — rather than patching them, we
    recompute from provenance).  All other families — gsv, llm,
    checkpoint, parallel — merge from the final attempts' deltas in
    manifest order, preserving their observability value.
    """
    delta = shard_metrics.delta_since(
        {"counters": {}, "gauges": {}, "histograms": {}}
    )
    counters = delta.setdefault("counters", {})
    for name in [
        key
        for key in counters
        if key.startswith("survey.") or key.startswith("retry.")
    ]:
        del counters[name]

    def put(name: str, value: float) -> None:
        if value:
            counters[name] = float(value)

    put("survey.locations.completed", report.completed_locations)
    put("survey.locations.failed", len(report.failed_locations))
    put("survey.images.classified", report.images_classified)
    put("survey.votes.degraded", report.degraded_votes)
    put("retry.operations", canonical_retry.operations)
    put("retry.attempts", canonical_retry.attempts)
    put("retry.retries", canonical_retry.retries)
    put("retry.failures", canonical_retry.failures)
    put("retry.slept_s", canonical_retry.slept_s)
    put("retry.breaker_blocks", canonical_retry.breaker_blocks)
    return delta
