"""Cost-aware cascade router: detector-first, LLM-on-doubt, ensemble-last.

The paper's central tension is cheap-but-narrow detection versus
expensive-but-general LLM perception.  This package resolves it with a
three-tier cascade (DESIGN.md §13): a :class:`~repro.detect.model.NanoDetector`
scores every image for free, calibrated decision margins turn those
scores into per-indicator probabilities, and only the doubtful residue
escalates — first to a single-LLM scout, then (when the scout and the
detector split, or doubt is deep) to the full voting ensemble.
"""

from .calibrate import (
    cascade_calibration_key,
    fit_cascade_calibration,
    load_or_fit_calibration,
    recommend_threshold,
)
from .frontier import (
    CascadePoint,
    FrontierReport,
    render_frontier_table,
    sweep_frontier,
)
from .router import (
    DEFAULT_DEEP_FACTOR,
    DEFAULT_THRESHOLD,
    TIER_DETECTOR,
    TIER_ENSEMBLE,
    TIER_SCOUT,
    CascadeClassifier,
    CascadeStats,
    token_fee_usd,
)

__all__ = [
    "DEFAULT_DEEP_FACTOR",
    "DEFAULT_THRESHOLD",
    "TIER_DETECTOR",
    "TIER_ENSEMBLE",
    "TIER_SCOUT",
    "CascadeClassifier",
    "CascadePoint",
    "CascadeStats",
    "FrontierReport",
    "cascade_calibration_key",
    "fit_cascade_calibration",
    "load_or_fit_calibration",
    "recommend_threshold",
    "render_frontier_table",
    "sweep_frontier",
    "token_fee_usd",
]
