"""Fitting and persisting the cascade's margin calibration.

The cascade's routing decisions hinge on trusting the detector's peak
scores *as probabilities*.  Raw scores are not probabilities — a 0.6
peak for a sidewalk means something different than a 0.6 peak for a
streetlight — so an isotonic curve per indicator is fit against
labeled data (:func:`repro.llm.calibration.fit_margin_calibration`)
and persisted through the artifact cache keyed by the detector's
weight fingerprint and the calibration split, making a rerun free and
the fitted curves shareable across survey processes.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..artifacts import ArtifactCache, fingerprint, model_fingerprint
from ..core.indicators import ALL_INDICATORS
from ..detect.model import NanoDetector
from ..gsv.dataset import LabeledImage
from ..llm.calibration import (
    CALIBRATION_EPS,
    MarginCalibration,
    fit_margin_calibration,
    load_margin_calibration,
    save_margin_calibration,
)

#: Images per batched detector forward while extracting peaks; fixed
#: (like ``EVAL_BATCH_SIZE``) so stacked matmul shapes — and thus the
#: fitted curves — never depend on how many images the caller holds.
PEAK_BATCH_SIZE = 16


def extract_peaks(
    detector: NanoDetector, images: Sequence[LabeledImage]
) -> np.ndarray:
    """Per-image per-indicator peak scores, ``(N, C)`` canonical order."""
    chunks = []
    for start in range(0, len(images), PEAK_BATCH_SIZE):
        batch = images[start : start + PEAK_BATCH_SIZE]
        pixels = [image.render() for image in batch]
        scores, _ = detector.predict_cells_batch(pixels)
        chunks.append(NanoDetector.indicator_scores(scores))
    if not chunks:
        return np.zeros((0, len(ALL_INDICATORS)))
    return np.concatenate(chunks, axis=0)


def presence_matrix(images: Sequence[LabeledImage]) -> np.ndarray:
    """Ground-truth boolean presence, ``(N, C)`` canonical order."""
    return np.array(
        [
            [image.presence[indicator] for indicator in ALL_INDICATORS]
            for image in images
        ],
        dtype=bool,
    ).reshape(len(images), len(ALL_INDICATORS))


def fit_cascade_calibration(
    detector: NanoDetector,
    images: Sequence[LabeledImage],
    eps: float = CALIBRATION_EPS,
) -> MarginCalibration:
    """Fit the margin calibration on a labeled split."""
    if not images:
        raise ValueError("calibration needs labeled images")
    peaks = extract_peaks(detector, images)
    truths = presence_matrix(images)
    return fit_margin_calibration(peaks, truths, eps=eps)


def cascade_calibration_key(
    detector: NanoDetector, images: Sequence[LabeledImage]
) -> str:
    """Cache key: detector weights x calibration-split identity."""
    return fingerprint(
        {
            "model": model_fingerprint(detector),
            "images": [image.image_id for image in images],
            "n": len(images),
        }
    )


def load_or_fit_calibration(
    cache: ArtifactCache | None,
    detector: NanoDetector,
    images: Sequence[LabeledImage],
    eps: float = CALIBRATION_EPS,
) -> MarginCalibration:
    """The cached calibration for this detector/split, fitting on miss."""
    if cache is None:
        return fit_cascade_calibration(detector, images, eps=eps)
    key = cascade_calibration_key(detector, images)
    cached = load_margin_calibration(cache, key)
    if cached is not None:
        return cached
    calibration = fit_cascade_calibration(detector, images, eps=eps)
    save_margin_calibration(cache, key, calibration)
    return calibration


#: Threshold grid swept by :func:`recommend_threshold` and the
#: frontier CLI — doubt tolerances from "escalate everything" to
#: "trust every detector call".
THRESHOLD_GRID = (0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5)


def recommend_threshold(
    detector: NanoDetector,
    calibration: MarginCalibration,
    images: Sequence[LabeledImage],
    max_tier0_error: float = 0.01,
    grid: Sequence[float] = THRESHOLD_GRID,
) -> float:
    """The largest doubt tolerance whose accepted calls stay accurate.

    Sweeps ``grid`` on a validation split and returns the largest
    threshold whose tier-0-accepted indicators (doubt within
    tolerance) disagree with ground truth at most ``max_tier0_error``
    of the time.  Larger thresholds accept more calls — cheaper — at
    the cost of accepting the detector's mistakes; this picks the
    cheapest point that keeps tier-0 honest.
    """
    if not images:
        raise ValueError("threshold recommendation needs labeled images")
    peaks = extract_peaks(detector, images)
    truths = presence_matrix(images)
    probabilities = calibration.probabilities(peaks)
    doubts = np.minimum(probabilities, 1.0 - probabilities)
    leans = probabilities >= 0.5
    correct = leans == truths
    best = 0.0
    for threshold in sorted(grid):
        accepted = doubts <= threshold
        if not accepted.any():
            best = max(best, float(threshold))
            continue
        error = 1.0 - float(correct[accepted].mean())
        if error <= max_tier0_error:
            best = max(best, float(threshold))
    return best
