"""The three-tier cascade classifier (DESIGN.md §13).

Tier 0 runs the nano detector on every image and converts its
per-indicator peak scores into calibrated probabilities
(:class:`~repro.llm.calibration.MarginCalibration`).  An indicator
whose calibrated *doubt* — ``min(p, 1-p)`` — is within the configured
tolerance is answered by the detector's lean alone.  Doubt beyond the
tolerance escalates:

* **mid band** (``threshold < doubt <= deep_factor * threshold``) —
  a single-LLM *scout* is asked only about the doubted indicators; a
  scout answer that agrees with the detector's lean is accepted, a
  split escalates the indicator to the full ensemble;
* **deep band** (``doubt > deep_factor * threshold``) — the scout is
  skipped and the indicator goes straight to full ensemble voting.

With ``threshold=0`` every doubt is deep (doubt is clipped strictly
positive), so every indicator of every image routes directly to
:meth:`~repro.core.voting.VotingEnsemble.vote_image` with the full
indicator set — the exact code path, requests and retry accounting of
a plain ensemble survey, which is what makes the threshold-0 report
byte-identical to the ensemble golden fixture.

The router never fails a location on LLM trouble: when a scout or the
whole ensemble errors out, the affected indicators fall back to the
detector's calibrated lean and the fallback is counted — a mid-survey
LLM outage degrades coverage *quality*, not coverage.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ..core.classifier import ClassificationError, LLMIndicatorClassifier
from ..core.indicators import ALL_INDICATORS, Indicator, IndicatorPresence
from ..core.voting import VotingEnsemble
from ..detect.model import NanoDetector
from ..gsv.api import UsageMeter
from ..gsv.dataset import LabeledImage
from ..llm.base import Usage
from ..llm.calibration import MarginCalibration
from ..obs.metrics import get_metrics

#: Default doubt tolerance — calibrated against the paper-synthetic
#: benchmark (see ``benchmarks/test_perf_cascade.py``): the largest
#: grid threshold that held the accepted-indicator error under 1% on
#: the validation split while clearing the >=5x fee reduction gate.
DEFAULT_THRESHOLD = 0.2

#: Doubt beyond ``deep_factor * threshold`` skips the scout entirely:
#: when the detector is this unsure, a single second opinion rarely
#: settles it and the scout call is wasted money.
DEFAULT_DEEP_FACTOR = 2.0

#: Stage labels for :class:`~repro.gsv.api.UsageMeter` attribution.
TIER_DETECTOR = "tier0.detector"
TIER_SCOUT = "tier1.scout"
TIER_ENSEMBLE = "tier2.ensemble"

#: Blended flat LLM pricing (USD per 1k tokens), identical across the
#: simulated commercial models — the frontier compares *routing*
#: policies, so per-model price spread would only blur the signal.
PROMPT_PRICE_PER_1K_USD = 0.0025
COMPLETION_PRICE_PER_1K_USD = 0.01


def token_fee_usd(usage: Usage | None) -> float:
    """Blended USD fee for one call's token usage."""
    if usage is None:
        return 0.0
    return (
        usage.prompt_tokens * PROMPT_PRICE_PER_1K_USD
        + usage.completion_tokens * COMPLETION_PRICE_PER_1K_USD
    ) / 1000.0


@dataclass
class CascadeStats:
    """Thread-safe per-tier routing counters.

    ``tierN_indicators`` count indicator decisions settled at each
    tier; their sum is ``images * len(ALL_INDICATORS)``.  Escalation
    reasons are broken out (``split_escalations`` — the scout
    disagreed with the detector's lean; ``deep_escalations`` — doubt
    beyond the deep band skipped the scout), and
    ``detector_fallbacks`` counts indicators answered by the detector
    lean because an LLM tier failed outright.
    """

    images: int = 0
    tier0_indicators: int = 0
    tier1_indicators: int = 0
    tier2_indicators: int = 0
    split_escalations: int = 0
    deep_escalations: int = 0
    detector_fallbacks: int = 0
    scout_calls: int = 0
    ensemble_calls: int = 0
    _lock: threading.Lock = field(
        init=False, repr=False, compare=False, default_factory=threading.Lock
    )

    FIELDS = (
        "images",
        "tier0_indicators",
        "tier1_indicators",
        "tier2_indicators",
        "split_escalations",
        "deep_escalations",
        "detector_fallbacks",
        "scout_calls",
        "ensemble_calls",
    )

    def add(self, **deltas: int) -> None:
        with self._lock:
            for name, delta in deltas.items():
                if name not in self.FIELDS:
                    raise ValueError(f"unknown cascade counter: {name}")
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {name: getattr(self, name) for name in self.FIELDS}


@dataclass
class CascadeClassifier:
    """Route each indicator of each image to the cheapest decisive tier.

    Drop-in classification backend for
    :class:`~repro.core.pipeline.NeighborhoodDecoder` (its ``cascade``
    field): :meth:`predict_location` has the same contract as the
    classifier/ensemble branches plus skipped-vote provenance.

    Fees and tokens land in per-tier buckets of ``meter``
    (:meth:`~repro.gsv.api.UsageMeter.record_stage`), and routing
    counts in ``stats`` — both are cross-checked against the metrics
    registry by :func:`repro.obs.audit.reconcile_survey`.
    """

    detector: NanoDetector
    calibration: MarginCalibration
    scout: LLMIndicatorClassifier
    ensemble: VotingEnsemble
    threshold: float = DEFAULT_THRESHOLD
    deep_factor: float = DEFAULT_DEEP_FACTOR
    #: Inference tier for the tier-0 detector forward (see
    #: :data:`repro.detect.model.PRECISIONS`).  Defaults to the
    #: float32 fast path: the doubt tolerance dwarfs the tier's
    #: ~1e-6 score perturbation, and tier 0 runs on *every* image,
    #: so this is where the fused-kernel speedup actually lands.
    precision: str = "float32"
    meter: UsageMeter = field(default_factory=UsageMeter)
    stats: CascadeStats = field(default_factory=CascadeStats)

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 0.5:
            raise ValueError(
                f"threshold must be a doubt in [0, 0.5]: {self.threshold}"
            )
        if self.deep_factor < 1.0:
            raise ValueError(
                f"deep_factor must be >= 1: {self.deep_factor}"
            )
        from ..detect.model import PRECISIONS

        if self.precision not in PRECISIONS:
            raise ValueError(
                f"precision must be one of {PRECISIONS}: {self.precision}"
            )

    def classifiers(self) -> list[LLMIndicatorClassifier]:
        """Every classifier whose retry stats the survey must merge."""
        return [self.scout, *self.ensemble.classifiers.values()]

    # ------------------------------------------------------------------

    def predict_location(
        self, images: Sequence[LabeledImage]
    ) -> tuple[list[IndicatorPresence], int, int]:
        """Classify one location's images through the cascade.

        Returns ``(presences, degraded_votes, skipped_votes)`` —
        the same contract as the decoder's ensemble branch.  The
        detector forward is batched over the whole location.
        """
        if not images:
            return [], 0, 0
        metrics = get_metrics()
        pixels = [image.render() for image in images]
        scores, _ = self.detector.predict_cells_batch(
            pixels, precision=self.precision
        )
        peaks = NanoDetector.indicator_scores(scores)
        probabilities = self.calibration.probabilities(peaks)
        doubts = np.minimum(probabilities, 1.0 - probabilities)
        leans = probabilities >= 0.5
        self.meter.record_stage(TIER_DETECTOR, requests=1, images=len(images))
        metrics.inc("cascade.images", len(images))
        presences: list[IndicatorPresence] = []
        degraded = skipped = 0
        for position, image in enumerate(images):
            presence, image_degraded, image_skipped = self._route_image(
                image, doubts[position], leans[position]
            )
            presences.append(presence)
            degraded += image_degraded
            skipped += image_skipped
        return presences, degraded, skipped

    # ------------------------------------------------------------------

    def _route_image(
        self,
        image: LabeledImage,
        doubts: np.ndarray,
        leans: np.ndarray,
    ) -> tuple[IndicatorPresence, int, int]:
        """Route one image's indicators; returns (presence, degraded, skipped)."""
        metrics = get_metrics()
        accepted: dict[Indicator, bool] = {}
        mid: list[Indicator] = []
        deep: list[Indicator] = []
        deep_bound = self.deep_factor * self.threshold
        for index, indicator in enumerate(ALL_INDICATORS):
            doubt = float(doubts[index])
            if doubt <= self.threshold:
                accepted[indicator] = bool(leans[index])
            elif doubt <= deep_bound:
                mid.append(indicator)
            else:
                deep.append(indicator)
        self.stats.add(
            images=1,
            tier0_indicators=len(accepted),
            deep_escalations=len(deep),
        )
        if accepted:
            metrics.inc("cascade.tier0.indicators", len(accepted))

        escalated = list(deep)
        if mid:
            settled, splits = self._scout_pass(image, mid, leans)
            accepted.update(settled)
            escalated.extend(splits)

        degraded = skipped = 0
        if escalated:
            voted, degraded, skipped = self._ensemble_pass(image, escalated, leans)
            accepted.update(voted)

        presence = IndicatorPresence(
            indicator for indicator, present in accepted.items() if present
        )
        return presence, degraded, skipped

    def _scout_pass(
        self,
        image: LabeledImage,
        mid: Sequence[Indicator],
        leans: np.ndarray,
    ) -> tuple[dict[Indicator, bool], list[Indicator]]:
        """Tier 1: one cheap LLM opinion on the mid-band indicators.

        Returns the settled answers and the indicators whose scout
        answer split from the detector's lean (those escalate).  A
        scout failure settles everything from the detector lean — the
        outage fallback, counted in ``detector_fallbacks``.
        """
        metrics = get_metrics()
        asked = tuple(
            indicator
            for indicator in self.scout.config.indicators
            if indicator in set(mid)
        )
        lean_of = {
            indicator: bool(leans[index])
            for index, indicator in enumerate(ALL_INDICATORS)
        }
        try:
            outcome = self.scout.classify_image(image, indicators=asked)
        except ClassificationError:
            self.stats.add(
                scout_calls=1,
                tier1_indicators=len(asked),
                detector_fallbacks=len(asked),
            )
            metrics.inc("cascade.tier1.indicators", len(asked))
            metrics.inc("cascade.fallbacks", len(asked))
            return {indicator: lean_of[indicator] for indicator in asked}, []
        self.meter.record_stage(
            TIER_SCOUT,
            requests=1,
            fees_usd=token_fee_usd(outcome.usage),
            prompt_tokens=outcome.usage.prompt_tokens if outcome.usage else 0,
            completion_tokens=(
                outcome.usage.completion_tokens if outcome.usage else 0
            ),
        )
        settled: dict[Indicator, bool] = {}
        splits: list[Indicator] = []
        for indicator in asked:
            answer = outcome.presence[indicator]
            if answer == lean_of[indicator]:
                settled[indicator] = answer
            else:
                splits.append(indicator)
        self.stats.add(
            scout_calls=1,
            tier1_indicators=len(settled),
            split_escalations=len(splits),
        )
        if settled:
            metrics.inc("cascade.tier1.indicators", len(settled))
        return settled, splits

    def _ensemble_pass(
        self,
        image: LabeledImage,
        escalated: Sequence[Indicator],
        leans: np.ndarray,
    ) -> tuple[dict[Indicator, bool], int, int]:
        """Tier 2: full ensemble vote on the escalated indicators.

        When *every* indicator escalated the vote runs with
        ``indicators=None`` — the byte-for-byte plain-ensemble code
        path (prompts, fingerprints, retry accounting all identical),
        which the threshold-0 golden test pins.  Returns
        ``(answers, degraded, skipped)``; a total ensemble failure
        falls back to detector leans instead of failing the location.
        """
        metrics = get_metrics()
        full = set(escalated) == set(ALL_INDICATORS)
        asked = (
            None
            if full
            else tuple(
                indicator
                for indicator in ALL_INDICATORS
                if indicator in set(escalated)
            )
        )
        try:
            record = self.ensemble.vote_image(image, indicators=asked)
        except ClassificationError:
            lean_of = {
                indicator: bool(leans[index])
                for index, indicator in enumerate(ALL_INDICATORS)
            }
            self.stats.add(
                ensemble_calls=1,
                tier2_indicators=len(escalated),
                detector_fallbacks=len(escalated),
            )
            metrics.inc("cascade.tier2.indicators", len(escalated))
            metrics.inc("cascade.fallbacks", len(escalated))
            return (
                {ind: lean_of[ind] for ind in escalated},
                0,
                0,
            )
        self.meter.record_stage(
            TIER_ENSEMBLE,
            requests=1,
            fees_usd=token_fee_usd(
                Usage(
                    prompt_tokens=record.prompt_tokens,
                    completion_tokens=record.completion_tokens,
                )
            ),
            prompt_tokens=record.prompt_tokens,
            completion_tokens=record.completion_tokens,
        )
        self.stats.add(ensemble_calls=1, tier2_indicators=len(escalated))
        metrics.inc("cascade.tier2.indicators", len(escalated))
        answers = {
            indicator: record.presence[indicator] for indicator in escalated
        }
        return answers, int(record.degraded), len(record.members_skipped)
