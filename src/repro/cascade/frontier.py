"""Accuracy-vs-cost frontier: what each doubt tolerance buys.

``sweep_frontier`` replays one labeled image set through the cascade
at every threshold on a grid and through the always-ensemble baseline
once, recording for each point the realized LLM fee, micro-F1 against
ground truth, per-tier routing rates and escalation reasons.  The
result is the reproducible cost/accuracy frontier the paper's
scalability argument needs: the table shows exactly how much fee the
detector absorbs before F1 starts paying for it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..core.indicators import ALL_INDICATORS, IndicatorPresence
from ..core.voting import VotingEnsemble
from ..detect.model import NanoDetector
from ..gsv.dataset import LabeledImage
from ..llm.base import Usage
from ..llm.calibration import MarginCalibration
from .calibrate import THRESHOLD_GRID
from .router import (
    DEFAULT_THRESHOLD,
    TIER_ENSEMBLE,
    TIER_SCOUT,
    CascadeClassifier,
    token_fee_usd,
)

#: Survey locations capture four cardinal headings, so frontier fees
#: aggregate per location as 4x the per-image spend.
IMAGES_PER_LOCATION = 4


def micro_f1(
    predictions: Sequence[IndicatorPresence],
    truths: Sequence[IndicatorPresence],
) -> float:
    """Micro-averaged F1 over all (image, indicator) decisions."""
    if len(predictions) != len(truths):
        raise ValueError("prediction/truth lengths differ")
    tp = fp = fn = 0
    for predicted, actual in zip(predictions, truths):
        for indicator in ALL_INDICATORS:
            p, a = predicted[indicator], actual[indicator]
            if p and a:
                tp += 1
            elif p and not a:
                fp += 1
            elif a and not p:
                fn += 1
    denominator = 2 * tp + fp + fn
    if denominator == 0:
        return 1.0
    return 2 * tp / denominator


@dataclass(frozen=True)
class CascadePoint:
    """One realized point on the cost/accuracy frontier."""

    threshold: float
    fee_usd: float
    fee_per_location_usd: float
    f1: float
    tier0_rate: float
    tier1_rate: float
    tier2_rate: float
    split_escalations: int
    deep_escalations: int
    detector_fallbacks: int

    def fee_reduction_vs(self, baseline_fee_usd: float) -> float | None:
        """Baseline-fee multiple saved; ``None`` when the point is free."""
        if self.fee_usd <= 0:
            return None
        return baseline_fee_usd / self.fee_usd

    def as_dict(self, baseline_fee_usd: float) -> dict:
        return {
            "threshold": self.threshold,
            "fee_usd": round(self.fee_usd, 9),
            "fee_per_location_usd": round(self.fee_per_location_usd, 9),
            "f1": round(self.f1, 6),
            "tier0_rate": round(self.tier0_rate, 6),
            "tier1_rate": round(self.tier1_rate, 6),
            "tier2_rate": round(self.tier2_rate, 6),
            "split_escalations": self.split_escalations,
            "deep_escalations": self.deep_escalations,
            "detector_fallbacks": self.detector_fallbacks,
            "fee_reduction": self.fee_reduction_vs(baseline_fee_usd),
        }


@dataclass
class FrontierReport:
    """The sweep's points plus the always-ensemble baseline."""

    n_images: int
    baseline_fee_usd: float
    baseline_f1: float
    default_threshold: float
    points: list[CascadePoint]

    @property
    def baseline_fee_per_location_usd(self) -> float:
        if self.n_images == 0:
            return 0.0
        return self.baseline_fee_usd * IMAGES_PER_LOCATION / self.n_images

    def point_at(self, threshold: float) -> CascadePoint:
        for point in self.points:
            if abs(point.threshold - threshold) < 1e-12:
                return point
        raise KeyError(f"no frontier point at threshold {threshold}")

    def payload(self) -> dict:
        return {
            "n_images": self.n_images,
            "images_per_location": IMAGES_PER_LOCATION,
            "baseline": {
                "fee_usd": round(self.baseline_fee_usd, 9),
                "fee_per_location_usd": round(
                    self.baseline_fee_per_location_usd, 9
                ),
                "f1": round(self.baseline_f1, 6),
            },
            "default_threshold": self.default_threshold,
            "points": [
                point.as_dict(self.baseline_fee_usd)
                for point in self.points
            ],
        }


def _ensemble_baseline(
    ensemble: VotingEnsemble, images: Sequence[LabeledImage]
) -> tuple[list[IndicatorPresence], float]:
    """Always-ensemble predictions and their realized token fee."""
    predictions: list[IndicatorPresence] = []
    fee = 0.0
    for image in images:
        record = ensemble.vote_image(image)
        predictions.append(record.presence)
        fee += token_fee_usd(
            Usage(
                prompt_tokens=record.prompt_tokens,
                completion_tokens=record.completion_tokens,
            )
        )
    return predictions, fee


def sweep_frontier(
    detector: NanoDetector,
    calibration: MarginCalibration,
    scout,
    ensemble: VotingEnsemble,
    images: Sequence[LabeledImage],
    thresholds: Sequence[float] = THRESHOLD_GRID,
    default_threshold: float = DEFAULT_THRESHOLD,
) -> FrontierReport:
    """Realize the frontier on a labeled image set.

    The default threshold is always included in the sweep so the
    report can quote the operating point the survey CLI ships with.
    """
    if not images:
        raise ValueError("frontier sweep needs labeled images")
    truths = [image.presence for image in images]
    baseline_predictions, baseline_fee = _ensemble_baseline(ensemble, images)
    baseline_f1 = micro_f1(baseline_predictions, truths)
    swept = sorted(set(float(t) for t in thresholds) | {default_threshold})
    points: list[CascadePoint] = []
    total = len(images) * len(ALL_INDICATORS)
    for threshold in swept:
        cascade = CascadeClassifier(
            detector=detector,
            calibration=calibration,
            scout=scout,
            ensemble=ensemble,
            threshold=threshold,
        )
        predictions, _, _ = cascade.predict_location(images)
        stats = cascade.stats.snapshot()
        stages = cascade.meter.stage_totals()
        fee = sum(
            stages.get(tier, {}).get("fees_usd", 0.0)
            for tier in (TIER_SCOUT, TIER_ENSEMBLE)
        )
        points.append(
            CascadePoint(
                threshold=threshold,
                fee_usd=fee,
                fee_per_location_usd=(
                    fee * IMAGES_PER_LOCATION / len(images)
                ),
                f1=micro_f1(predictions, truths),
                tier0_rate=stats["tier0_indicators"] / total,
                tier1_rate=stats["tier1_indicators"] / total,
                tier2_rate=stats["tier2_indicators"] / total,
                split_escalations=stats["split_escalations"],
                deep_escalations=stats["deep_escalations"],
                detector_fallbacks=stats["detector_fallbacks"],
            )
        )
    return FrontierReport(
        n_images=len(images),
        baseline_fee_usd=baseline_fee,
        baseline_f1=baseline_f1,
        default_threshold=default_threshold,
        points=points,
    )


def render_frontier_table(report: FrontierReport) -> str:
    """Markdown frontier table (the CLI/CI artifact)."""
    lines = [
        f"Always-ensemble baseline: F1 {report.baseline_f1:.4f}, "
        f"${report.baseline_fee_per_location_usd:.6f}/location "
        f"over {report.n_images} images",
        "",
        "| threshold | tier0 | tier1 | tier2 | F1 | $/location |"
        " fee reduction |",
        "|---:|---:|---:|---:|---:|---:|---:|",
    ]
    for point in report.points:
        reduction = point.fee_reduction_vs(report.baseline_fee_usd)
        marker = (
            " (default)"
            if abs(point.threshold - report.default_threshold) < 1e-12
            else ""
        )
        lines.append(
            f"| {point.threshold:.2f}{marker} "
            f"| {point.tier0_rate:.0%} "
            f"| {point.tier1_rate:.0%} "
            f"| {point.tier2_rate:.0%} "
            f"| {point.f1:.4f} "
            f"| ${point.fee_per_location_usd:.6f} "
            f"| {'∞' if reduction is None else f'{reduction:.1f}x'} |"
        )
    return "\n".join(lines)
