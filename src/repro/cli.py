"""Command-line interface: run any experiment from the shell.

Usage::

    python -m repro list                 # enumerate experiments
    python -m repro table1               # one experiment
    python -m repro fig5 --scale paper   # full paper scale
    python -m repro all --scale smoke    # everything, fast

Results render as plain-text tables on stdout.
"""

from __future__ import annotations

import argparse
import sys
import time

from .detect.train import TrainConfig
from .experiments import (
    ExperimentConfig,
    ExperimentSuite,
    paper_config,
    smoke_config,
)
from .experiments.extensions import (
    run_correlation_ablation,
    run_cost_accounting,
    run_few_shot_languages,
    run_label_efficiency,
    run_label_noise,
    run_multi_frame,
    run_weather_robustness,
)

#: Experiment name → (description, runner factory).
EXPERIMENTS = {
    "table1": ("Table I: detector accuracy", lambda s: s.run_table1()),
    "fig2": ("Fig. 2: augmentation ablation", lambda s: s.run_fig2()),
    "fig3": ("Fig. 3: SNR robustness", lambda s: s.run_fig3()),
    "table2": ("Table II: example responses", lambda s: s.run_table2()),
    "fig4": ("Fig. 4: prompt structure", lambda s: s.run_fig4()),
    "fig5": ("Fig. 5: LLM accuracy + voting", lambda s: s.run_fig5()),
    "tables3to6": (
        "Tables III-VI: per-LLM confusion",
        lambda s: list(s.run_tables3to6().values()),
    ),
    "fig6": ("Fig. 6: prompt languages", lambda s: s.run_fig6()),
    "param": ("§IV-C4: temperature/top-p", lambda s: s.run_param()),
    "prior": ("§IV-B3: prior work", lambda s: s.run_prior()),
    "label-noise": ("Ext. A: annotation noise", run_label_noise),
    "few-shot": ("Ext. B: few-shot languages", run_few_shot_languages),
    "multi-frame": ("Ext. C: multi-frame fusion", run_multi_frame),
    "cost": ("Ext. D: cost accounting", run_cost_accounting),
    "correlation": (
        "Ext. E: voting vs error correlation",
        run_correlation_ablation,
    ),
    "label-efficiency": (
        "Ext. G: detector F1 vs label budget",
        run_label_efficiency,
    ),
    "weather": ("Ext. H: weather robustness", run_weather_robustness),
}


def _config_for(scale: str) -> ExperimentConfig:
    if scale == "paper":
        return paper_config()
    if scale == "smoke":
        return smoke_config()
    if scale == "bench":
        return ExperimentConfig(
            n_images=600,
            image_size=640,
            n_calibration_images=600,
            detector_train=TrainConfig(epochs=20, batch_size=16),
        )
    raise SystemExit(f"unknown scale: {scale!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce 'Decoding Neighborhood Environments with Large "
            "Language Models' (DSN 2025)"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--scale",
        default="bench",
        choices=["smoke", "bench", "paper"],
        help="input scale (default: bench = 600 images at 640 px)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, (description, _) in sorted(EXPERIMENTS.items()):
            print(f"  {name:12s} {description}")
        return 0

    suite = ExperimentSuite(config=_config_for(args.scale))
    names = (
        sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    for name in names:
        description, runner = EXPERIMENTS[name]
        print(f"\n=== {description} (scale={args.scale}) ===")
        started = time.time()
        outcome = runner(suite)
        results = outcome if isinstance(outcome, list) else [outcome]
        for result in results:
            print(result.render())
        print(f"[{time.time() - started:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
